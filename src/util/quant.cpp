#include "util/quant.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::util {

int SymmetricQuantizer::quantize(double value) const {
  if (bits < 1) throw std::invalid_argument("signed quantizer needs >=1 bit");
  if (!std::isfinite(value)) return 0;  // NaN/inf inputs park at level 0
  if (bits == 1) return value >= 0.0 ? 1 : -1;  // binarized: sign(w)
  if (!std::isfinite(scale) || scale <= 0.0) return 0;
  const int m = max_level();
  const double q = std::round(value / scale * m);
  if (q > m) return m;
  if (q < -m) return -m;
  return static_cast<int>(q);
}

double SymmetricQuantizer::dequantize(int level) const {
  const int m = max_level();
  if (level > m || level < -m) throw std::out_of_range("weight level out of range");
  return scale * static_cast<double>(level) / m;
}

int UnsignedQuantizer::quantize(double value) const {
  if (bits < 1) throw std::invalid_argument("unsigned quantizer needs >=1 bit");
  if (!std::isfinite(value)) return 0;  // NaN/inf inputs park at code 0
  if (!std::isfinite(scale) || scale <= 0.0) return 0;
  const int m = max_code();
  const double q = std::round(value / scale * m);
  if (q > m) return m;
  if (q < 0.0) return 0;
  return static_cast<int>(q);
}

double UnsignedQuantizer::dequantize(int code) const {
  if (code < 0 || code > max_code()) throw std::out_of_range("activation code out of range");
  return scale * static_cast<double>(code) / max_code();
}

std::vector<bool> thermometer_encode(int code, int width) {
  if (code < 0 || code > width) throw std::out_of_range("thermometer code out of range");
  std::vector<bool> bits(static_cast<std::size_t>(width), false);
  for (int i = 0; i < code; ++i) bits[static_cast<std::size_t>(i)] = true;
  return bits;
}

bool thermometer_valid(const std::vector<bool>& code) {
  bool seen_zero = false;
  for (bool b : code) {
    if (b && seen_zero) return false;
    if (!b) seen_zero = true;
  }
  return true;
}

int thermometer_decode(const std::vector<bool>& code) {
  if (!thermometer_valid(code)) {
    throw std::invalid_argument("thermometer code has a bubble");
  }
  int n = 0;
  for (bool b : code) n += b ? 1 : 0;
  return n;
}

double max_abs(const float* data, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::fabs(static_cast<double>(data[i]));
    if (a > m) m = a;
  }
  return m;
}

}  // namespace lightator::util
