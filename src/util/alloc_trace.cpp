#include "util/alloc_trace.hpp"

#include <atomic>

#ifdef LIGHTATOR_ALLOC_TRACE
#include <execinfo.h>
#include <unistd.h>

#include <cstdlib>
#include <new>
#endif

namespace lightator::util::alloc_trace {

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<bool> g_trap{false};
}  // namespace

void set_trap(bool on) { g_trap.store(on, std::memory_order_relaxed); }

bool available() {
#ifdef LIGHTATOR_ALLOC_TRACE
  return true;
#else
  return false;
#endif
}

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t deallocation_count() {
  return g_frees.load(std::memory_order_relaxed);
}

namespace detail {

void count_alloc() {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef LIGHTATOR_ALLOC_TRACE
  // Trap mode: dump the offending call stack to stderr. backtrace() may
  // itself allocate on first use, so callers should prime it (one trapless
  // allocation) before arming; the recursion guard keeps the dump finite
  // either way.
  if (g_trap.load(std::memory_order_relaxed)) {
    static thread_local bool in_dump = false;
    if (!in_dump) {
      in_dump = true;
      void* frames[32];
      const int n = backtrace(frames, 32);
      backtrace_symbols_fd(frames, n, STDERR_FILENO);
      write(STDERR_FILENO, "----\n", 5);
      in_dump = false;
    }
  }
#endif
}
void count_free() { g_frees.fetch_add(1, std::memory_order_relaxed); }

}  // namespace detail

}  // namespace lightator::util::alloc_trace

#ifdef LIGHTATOR_ALLOC_TRACE

// Interposed global allocation functions. malloc/free (not ::operator new
// recursion) back the storage; alignment goes through posix_memalign. Every
// operator delete form funnels into the same free so mismatched counters
// indicate a real leak, not hook asymmetry.

namespace {

void* traced_alloc(std::size_t size) {
  lightator::util::alloc_trace::detail::count_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void* traced_alloc_aligned(std::size_t size, std::size_t align) {
  lightator::util::alloc_trace::detail::count_alloc();
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size == 0 ? 1 : size) != 0) return nullptr;
  return p;
}

void traced_free(void* p) {
  if (p == nullptr) return;
  lightator::util::alloc_trace::detail::count_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = traced_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = traced_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = traced_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = traced_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return traced_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return traced_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return traced_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return traced_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { traced_free(p); }
void operator delete[](void* p) noexcept { traced_free(p); }
void operator delete(void* p, std::size_t) noexcept { traced_free(p); }
void operator delete[](void* p, std::size_t) noexcept { traced_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { traced_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { traced_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  traced_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  traced_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  traced_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  traced_free(p);
}

#endif  // LIGHTATOR_ALLOC_TRACE
