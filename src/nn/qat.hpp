// Quantization-aware training and the [W:A] precision configurations.
//
// PrecisionSchedule expresses the paper's configurations: uniform [4:4],
// [3:4], [2:4], and the mixed-precision Lightator-MX variants where the
// first layer stays [4:4] and the remaining layers run at [3:4] or [2:4].
// enable_qat() applies a schedule to a trained float network; fine_tune()
// runs the paper's "additional six epochs ... employing quantization-aware
// techniques".
#pragma once

#include <string>

#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace lightator::nn {

struct PrecisionConfig {
  int weight_bits = 4;
  int act_bits = 4;
};

struct PrecisionSchedule {
  PrecisionConfig first_layer;
  PrecisionConfig rest;

  static PrecisionSchedule uniform(int weight_bits, int act_bits = 4) {
    return {{weight_bits, act_bits}, {weight_bits, act_bits}};
  }
  /// Lightator-MX: L1 at [4:4], remaining layers at [rest_weight_bits:4].
  static PrecisionSchedule mixed(int rest_weight_bits, int act_bits = 4) {
    return {{4, act_bits}, {rest_weight_bits, act_bits}};
  }

  bool is_mixed() const {
    return first_layer.weight_bits != rest.weight_bits ||
           first_layer.act_bits != rest.act_bits;
  }

  /// "[4:4]" or "[4:4][3:4]" in the paper's notation.
  std::string label() const;

  /// Weight bits for the i-th weighted (conv/fc) layer.
  int weight_bits_for(std::size_t weighted_layer_index) const {
    return weighted_layer_index == 0 ? first_layer.weight_bits : rest.weight_bits;
  }
  int act_bits_for(std::size_t weighted_layer_index) const {
    return weighted_layer_index == 0 ? first_layer.act_bits : rest.act_bits;
  }
};

/// Applies the schedule: conv/fc layers get weight fake-quant, activation
/// layers get 4-bit output fake-quant (scale calibrated while training).
void enable_qat(Network& net, const PrecisionSchedule& schedule);

/// Removes all fake-quant (back to float evaluation).
void disable_qat(Network& net);

/// Clears every activation layer's running-max scale (use before
/// re-calibrating after a parameter restore).
void reset_activation_scales(Network& net);

/// Deep copy of all trainable parameters (for sweeping QAT configurations
/// from a common float checkpoint).
std::vector<tensor::Tensor> snapshot_params(Network& net);

/// Restores parameters captured by snapshot_params.
void restore_params(Network& net, const std::vector<tensor::Tensor>& saved);

/// Runs activation-scale calibration only: a few forward passes in training
/// mode without weight updates, so the running-max scales settle.
void calibrate_activations(Network& net, const Dataset& data,
                           std::size_t num_batches = 4,
                           std::size_t batch_size = 32);

/// The paper's QAT recipe: enable_qat + a short low-LR fine-tune.
EpochStats fine_tune(Network& net, Dataset& train,
                     const PrecisionSchedule& schedule,
                     std::size_t epochs = 6, double lr = 0.005);

}  // namespace lightator::nn
