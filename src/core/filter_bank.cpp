#include "core/filter_bank.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"

namespace lightator::core {

std::vector<FilterKind> all_filter_kinds() {
  return {FilterKind::kIdentity, FilterKind::kSobelX, FilterKind::kSobelY,
          FilterKind::kGaussianBlur, FilterKind::kSharpen,
          FilterKind::kLaplacian, FilterKind::kEmboss, FilterKind::kBoxBlur};
}

const char* filter_name(FilterKind kind) {
  switch (kind) {
    case FilterKind::kIdentity: return "identity";
    case FilterKind::kSobelX: return "sobel_x";
    case FilterKind::kSobelY: return "sobel_y";
    case FilterKind::kGaussianBlur: return "gaussian_blur";
    case FilterKind::kSharpen: return "sharpen";
    case FilterKind::kLaplacian: return "laplacian";
    case FilterKind::kEmboss: return "emboss";
    case FilterKind::kBoxBlur: return "box_blur";
  }
  return "?";
}

std::array<float, 9> filter_taps(FilterKind kind) {
  switch (kind) {
    case FilterKind::kIdentity:
      return {0, 0, 0, 0, 1, 0, 0, 0, 0};
    case FilterKind::kSobelX:
      return {-1, 0, 1, -2, 0, 2, -1, 0, 1};
    case FilterKind::kSobelY:
      return {-1, -2, -1, 0, 0, 0, 1, 2, 1};
    case FilterKind::kGaussianBlur:
      return {1.f / 16, 2.f / 16, 1.f / 16, 2.f / 16, 4.f / 16,
              2.f / 16, 1.f / 16, 2.f / 16, 1.f / 16};
    case FilterKind::kSharpen:
      return {0, -1, 0, -1, 5, -1, 0, -1, 0};
    case FilterKind::kLaplacian:
      return {0, 1, 0, 1, -4, 1, 0, 1, 0};
    case FilterKind::kEmboss:
      return {-2, -1, 0, -1, 1, 1, 0, 1, 2};
    case FilterKind::kBoxBlur:
      return {1.f / 9, 1.f / 9, 1.f / 9, 1.f / 9, 1.f / 9,
              1.f / 9, 1.f / 9, 1.f / 9, 1.f / 9};
  }
  throw std::invalid_argument("unknown filter kind");
}

double image_psnr(const sensor::Image& a, const sensor::Image& b) {
  if (a.height() != b.height() || a.width() != b.width() ||
      a.channels() != b.channels()) {
    throw std::invalid_argument("PSNR images must match in shape");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.data().size());
  if (mse <= 1e-12) return 99.0;
  return 10.0 * std::log10(1.0 / mse);
}

FilterBank::FilterBank(ArchConfig config, int weight_bits)
    : config_(config), oc_(config), mapper_(config), weight_bits_(weight_bits) {
  if (weight_bits < 1 || weight_bits > 8) {
    throw std::invalid_argument("filter weight bits must be in [1,8]");
  }
}

namespace {

tensor::Tensor image_to_tensor(const sensor::Image& gray) {
  if (gray.channels() != 1) {
    throw std::invalid_argument("filter bank expects a grayscale image");
  }
  tensor::Tensor t({1, 1, gray.height(), gray.width()});
  for (std::size_t y = 0; y < gray.height(); ++y) {
    for (std::size_t x = 0; x < gray.width(); ++x) {
      t.at(0, 0, y, x) = gray.at(y, x);
    }
  }
  return t;
}

sensor::Image tensor_to_image(const tensor::Tensor& t) {
  sensor::Image img(t.dim(2), t.dim(3), 1);
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      img.at(y, x) = t.at(0, 0, y, x);
    }
  }
  img.clamp();
  return img;
}

}  // namespace

FilterResult FilterBank::apply(FilterKind kind,
                               const sensor::Image& gray) const {
  const auto results = apply_all({kind}, gray);
  return results.front();
}

std::vector<FilterResult> FilterBank::apply_all(
    const std::vector<FilterKind>& kinds, const sensor::Image& gray) const {
  if (kinds.empty()) throw std::invalid_argument("no filters given");
  const tensor::Tensor x = image_to_tensor(gray);
  const auto xq = tensor::quantize_unsigned(x, 4, 1.0);
  const tensor::ConvSpec spec{1, 1, 3, 1, 1};

  std::vector<FilterResult> out;
  out.reserve(kinds.size());
  for (const FilterKind kind : kinds) {
    const auto taps = filter_taps(kind);
    tensor::Tensor w({1, 1, 3, 3});
    for (std::size_t i = 0; i < 9; ++i) w[i] = taps[i];
    const auto wq = tensor::quantize_symmetric(w, weight_bits_);
    const tensor::Tensor reference =
        tensor::conv2d_forward(x, w, tensor::Tensor(), spec);
    const tensor::Tensor optical = oc_.conv2d(xq, wq, tensor::Tensor(), spec);

    FilterResult r;
    r.output = tensor_to_image(optical);
    r.psnr_vs_float = [&] {
      // PSNR over the raw (pre-clamp) responses, so signed edge maps are
      // compared faithfully.
      double mse = 0.0;
      for (std::size_t i = 0; i < optical.size(); ++i) {
        const double d = optical[i] - reference[i];
        mse += d * d;
      }
      mse /= static_cast<double>(optical.size());
      return mse <= 1e-12 ? 99.0 : 10.0 * std::log10(1.0 / mse);
    }();
    const tensor::Tensor wback = tensor::dequantize(wq);
    double werr = 0.0;
    for (std::size_t i = 0; i < 9; ++i) {
      werr += (wback[i] - w[i]) * (wback[i] - w[i]);
    }
    r.weight_rms_error = std::sqrt(werr / 9.0);
    out.push_back(std::move(r));
  }
  return out;
}

LayerMapping FilterBank::mapping(std::size_t num_kernels, std::size_t height,
                                 std::size_t width) const {
  nn::LayerDesc l;
  l.kind = nn::LayerKind::kConv;
  l.name = "filter_bank_" + std::to_string(num_kernels) + "x3x3";
  l.in_h = height;
  l.in_w = width;
  l.conv = tensor::ConvSpec{1, num_kernels, 3, 1, 1};
  return mapper_.map_layer(l);
}

}  // namespace lightator::core
