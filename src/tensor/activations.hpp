// Activation functions (the three Lightator's electronic block supports:
// ReLU, Sign, Tanh) and the softmax cross-entropy training head.
#pragma once

#include "tensor/tensor.hpp"

namespace lightator::tensor {

enum class ActKind { kReLU, kSign, kTanh, kIdentity };

const char* act_name(ActKind kind);

Tensor act_forward(const Tensor& x, ActKind kind);

/// dL/dx given dL/dy and the *input* x. Sign uses the straight-through
/// estimator (gradient passes where |x| <= 1), the standard trick for
/// training binarized networks like the ROBIN/LightBulb baselines.
Tensor act_backward(const Tensor& dy, const Tensor& x, ActKind kind);

/// Row-wise softmax of logits [N, classes].
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy loss over the batch; also returns dL/dlogits in
/// `dlogits` if non-null. Labels are class indices.
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<std::size_t>& labels,
                             Tensor* dlogits);

/// argmax per row of logits [N, classes].
std::vector<std::size_t> predict(const Tensor& logits);

}  // namespace lightator::tensor
