// ModelRegistry: the name@version → CompiledModel store behind the router.
//
// A registry entry is an immutable, thread-shareable CompiledModel under a
// two-part key: a model name ("lenet") and a version tag ("v1", "2024-08",
// any string without '@'). References are written "name@version", or bare
// "name" for the most recently added version of that name — the rolling-
// release convention the router's hot-swap path leans on. Entries come from
// either an in-process Engine::compile (add) or the on-disk artifact format
// (load → core::load_artifact), which is what makes a registry process-
// restart-cheap: a fleet node loads blobs instead of recompiling.
//
// Eviction & refcounting: set_byte_budget() bounds the resident set
// (CompiledModel::resident_bytes summed over entries). When an add/load
// pushes the registry over budget, the least-recently-used entries with a
// ZERO pin count are evicted (dropped from the registry — a holder of the
// handle keeps the model alive, the registry just forgets it). pin()/unpin()
// are the router's live-route refcounts: a pinned entry is never evicted no
// matter how stale, so the deployed set survives any budget. "Recently
// used" advances on get()/pin(). The resident total is mirrored to the
// process-wide "serve.registry.resident_bytes" gauge.
//
// Thread-safe: every method takes the registry mutex; the returned
// CompiledModel handles are shared-immutable, so holding one outside the
// lock is always safe (unload drops the registry's reference, never the
// model — routes serving it keep it alive).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiled_model.hpp"

namespace lightator::core {
class LightatorSystem;
}

namespace lightator::serve {

class ModelRegistry {
 public:
  /// Registers `model` under name@version. Throws std::invalid_argument on
  /// an empty name, a '@' in either part, an invalid model handle, or a
  /// duplicate name@version (versions are immutable once registered —
  /// publish a new version instead).
  void add(const std::string& name, const std::string& version,
           core::CompiledModel model);

  /// Loads the artifact at `path` (core::load_artifact — full magic/
  /// version/hash validation, repack-on-load) for `system` and registers it
  /// under name@version. Returns the loaded model. Throws core::ArtifactError
  /// on any blob problem, std::invalid_argument on key problems.
  core::CompiledModel load(const std::string& name, const std::string& version,
                           const std::string& path,
                           const core::LightatorSystem& system);

  /// Resolves "name@version" exactly, or bare "name" to the most recently
  /// added version of that name. Throws std::out_of_range for an unknown
  /// ref (the message lists what is registered).
  core::CompiledModel get(const std::string& ref) const;

  /// Version tag get(name) would resolve to. Throws like get().
  std::string resolve_version(const std::string& name) const;

  bool contains(const std::string& ref) const;

  /// Drops the registry's reference (models still held by a route stay
  /// alive). Bare names unload the most recent version only. Throws
  /// std::out_of_range for an unknown ref.
  void unload(const std::string& ref);

  /// "name@version" keys in registration order.
  std::vector<std::string> list() const;

  std::size_t size() const;

  /// Byte budget for the resident set; 0 (default) = unlimited. Setting a
  /// budget evicts immediately if the current set exceeds it (unpinned LRU
  /// entries first; pinned entries never).
  void set_byte_budget(std::size_t bytes);
  std::size_t byte_budget() const;
  /// Sum of CompiledModel::resident_bytes over the registered entries.
  std::size_t resident_bytes() const;
  /// Entries evicted by the byte budget since construction.
  std::uint64_t evictions() const;

  /// Live-route refcount on `ref` (resolved like get()): a pinned entry is
  /// never evicted and cannot be unload()ed. The router pins the model a
  /// route serves and unpins on swap/undeploy. Throws std::out_of_range for
  /// an unknown ref.
  void pin(const std::string& ref);
  /// Reverses one pin(). Throws std::out_of_range for an unknown ref,
  /// std::logic_error when the entry is not pinned.
  void unpin(const std::string& ref);
  /// Current pin count of `ref`. Throws std::out_of_range when unknown.
  std::uint64_t pin_count(const std::string& ref) const;

 private:
  struct Entry {
    std::string name, version;
    core::CompiledModel model;
    std::size_t bytes = 0;     // resident_bytes, cached at registration
    std::uint64_t pins = 0;    // live-route refcount
    std::uint64_t last_used = 0;  // LRU tick (get/pin advance it)
  };

  /// Index of `ref` in entries_, or npos. Bare names match the LAST entry
  /// with that name (latest registration wins). Caller holds mutex_.
  std::size_t find_locked(const std::string& ref) const;
  [[noreturn]] void throw_unknown_locked(const std::string& ref) const;
  std::size_t resident_bytes_locked() const;
  /// Evicts unpinned LRU entries until the budget holds (or only pinned /
  /// the just-added entry at `keep` remain). Caller holds mutex_.
  void enforce_budget_locked(std::size_t keep);
  void publish_resident_locked() const;

  mutable std::mutex mutex_;
  /// mutable: get() is logically const but advances the LRU tick.
  mutable std::vector<Entry> entries_;  // registration order
  std::size_t byte_budget_ = 0;         // 0 = unlimited
  mutable std::uint64_t use_tick_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace lightator::serve
