// LightatorSystem: the top-level device-to-architecture simulator.
//
// Ties together the imager, DMVA, compressive acquisitor, optical core,
// mapper, and the power/timing models:
//   * analyze()            — architecture-level report (per-layer mapping,
//                            power breakdown, timing; Table 1 / Fig. 8-10).
//   * run_network_on_oc()  — functional quantized inference routed through
//                            the OpticalCore MAC path (accuracy evaluation,
//                            equivalence testing against the DNN substrate).
//   * capture_and_infer()  — end-to-end: scene -> pixel array -> CRC codes ->
//                            (optional CA) -> network, as in Fig. 2.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/compressive_acquisitor.hpp"
#include "core/faults.hpp"
#include "core/mapper.hpp"
#include "core/optical_core.hpp"
#include "core/power_model.hpp"
#include "core/timing_model.hpp"
#include "nn/model_desc.hpp"
#include "nn/qat.hpp"
#include "sensor/pixel_array.hpp"

namespace lightator::core {

struct LayerReport {
  std::string name;
  LayerMapping mapping;
  LayerPower power;
  LayerTiming timing;
  int weight_bits = 0;  // 0 for pre-set / pool layers
};

struct SystemReport {
  std::string model;
  std::string precision;
  std::vector<LayerReport> layers;

  double max_power = 0.0;         // W, max over layers (Table 1 "Max Power")
  double avg_power = 0.0;         // W, duration-weighted
  double energy_per_frame = 0.0;  // J
  double latency = 0.0;           // s, single frame (Fig. 10)
  double fps_batched = 0.0;       // 1/s, weight-reuse batch (Table 1)
  double kfps_per_watt = 0.0;     // fps_batched / max_power / 1000
  std::size_t total_macs = 0;
  std::size_t total_weights = 0;

  const LayerReport* find_layer(const std::string& name) const;
};

struct AnalyzeOptions {
  /// Run the CA front end before L1 (paper Fig. 9 experiment). The model's
  /// input geometry must already reflect the compressed size.
  std::optional<CaOptions> ca_frontend;
  /// Input geometry the CA front end consumes (pre-compression size).
  std::size_t ca_in_h = 0, ca_in_w = 0;
};

struct CaptureOptions {
  std::optional<CaOptions> ca;
  /// Per-frame sensor (shot/read/comparator) noise seed; 0 captures
  /// noiselessly — the same convention as ExecutionContext::noise_seed.
  std::uint64_t sensor_noise_seed = 0;
};

/// Pre-quantized weights for every weighted layer of a network, keyed by
/// weighted-layer index. run_network_on_oc quantizes weights on every
/// forward; a server replica programs its weights once and then reuses them
/// for every batch, so the cache is built at replica construction and handed
/// to the forward through ExecutionContext::weight_cache. Entries are
/// bit-identical to what the forward would have computed (same
/// quantize_symmetric call), so cached and uncached runs agree exactly.
struct OcWeightCache {
  std::vector<tensor::QuantizedTensor> weights;  // by weighted-layer index
};

/// Builds the cache for `net` under `schedule` (weight bits per weighted
/// layer; the activation side of the schedule is irrelevant here). When
/// `arch` is given and the packed SIMD kernels are live, each entry also
/// carries its pre-packed GEMM panels (QuantizedTensor::prepack) sized to
/// the arch's arm length — packed once here, shared read-only by every
/// replica that shares the cache.
OcWeightCache build_oc_weight_cache(const nn::Network& net,
                                    const nn::PrecisionSchedule& schedule,
                                    const ArchConfig* arch = nullptr);

class LightatorSystem {
 public:
  explicit LightatorSystem(ArchConfig config);

  const ArchConfig& config() const { return config_; }
  const OpticalCore& optical_core() const { return oc_; }

  /// Architecture-level analysis of a model at a precision schedule.
  SystemReport analyze(const nn::ModelDesc& model,
                       const nn::PrecisionSchedule& schedule,
                       const AnalyzeOptions& options = {}) const;

  /// Same, with arbitrary per-weighted-layer weight bits (the generalized
  /// mixed-precision axis; see precision_search.hpp). `weight_bits[i]`
  /// applies to the i-th conv/fc layer.
  SystemReport analyze(const nn::ModelDesc& model,
                       const std::vector<int>& weight_bits,
                       const AnalyzeOptions& options = {}) const;

  /// Functional quantized forward pass routed through the OpticalCore:
  /// conv/fc MACs via arm-segmented integer reduction, pooling/activation
  /// in the electronic block. Weights/activations quantized per `schedule`;
  /// an optional FaultSpec injects stuck weight cells / dark VCSELs.
  tensor::Tensor run_network_on_oc(nn::Network& net, const tensor::Tensor& x,
                                   const nn::PrecisionSchedule& schedule,
                                   const FaultSpec& faults = {}) const;

  /// Per-weighted-layer weight bits variant (activations stay `act_bits`).
  tensor::Tensor run_network_on_oc(nn::Network& net, const tensor::Tensor& x,
                                   const std::vector<int>& weight_bits,
                                   int act_bits = 4,
                                   const FaultSpec& faults = {}) const;

  /// ExecutionContext variants: choose the compute backend ("reference" /
  /// "gemm" / "physical"), the thread pool for batch-parallel dispatch, the
  /// fault/noise configuration, and (optionally) collect per-layer
  /// power/timing/wall-time stats into `ctx.stats`.
  tensor::Tensor run_network_on_oc(nn::Network& net, const tensor::Tensor& x,
                                   const nn::PrecisionSchedule& schedule,
                                   ExecutionContext& ctx) const;
  tensor::Tensor run_network_on_oc(nn::Network& net, const tensor::Tensor& x,
                                   const std::vector<int>& weight_bits,
                                   int act_bits, ExecutionContext& ctx) const;

  /// Frame-gather variant: runs the batched forward over `frames` (borrowed,
  /// same-geometry [1, C, H, W] tensors — one logical batch item each)
  /// without materializing the stacked batch. The first weighted layer
  /// quantizes straight out of the frame storage, so the serving layer's
  /// dynamic batcher pays zero extra copies per request. Bit-identical to
  /// stacking the frames and calling the tensor overload.
  tensor::Tensor run_network_on_oc(
      nn::Network& net, const std::vector<const tensor::Tensor*>& frames,
      const nn::PrecisionSchedule& schedule, ExecutionContext& ctx) const;

  /// Accuracy at arbitrary per-layer weight bits.
  double evaluate_on_oc(nn::Network& net, const nn::Dataset& data,
                        const std::vector<int>& weight_bits, int act_bits = 4,
                        std::size_t batch_size = 64,
                        std::size_t max_samples = 0) const;

  /// Same, through an explicit ExecutionContext — the entry point the
  /// precision search's measured evaluator uses to run candidate assignments
  /// on a pooled backend.
  double evaluate_on_oc(nn::Network& net, const nn::Dataset& data,
                        const std::vector<int>& weight_bits, int act_bits,
                        ExecutionContext& ctx, std::size_t batch_size = 64,
                        std::size_t max_samples = 0) const;

  /// Top-1 accuracy of the OC functional path on a dataset.
  double evaluate_on_oc(nn::Network& net, const nn::Dataset& data,
                        const nn::PrecisionSchedule& schedule,
                        std::size_t batch_size = 64,
                        std::size_t max_samples = 0,
                        const FaultSpec& faults = {}) const;

  /// Accuracy through an explicit ExecutionContext (backend choice, thread
  /// pool, faults/noise, stats). Batches shard over the batch dimension
  /// inside the backend kernels, so accuracy is thread-count invariant.
  double evaluate_on_oc(nn::Network& net, const nn::Dataset& data,
                        const nn::PrecisionSchedule& schedule,
                        ExecutionContext& ctx, std::size_t batch_size = 64,
                        std::size_t max_samples = 0) const;

  /// End-to-end single-frame pipeline (Fig. 2): expose the pixel array to a
  /// scene, read CRC codes, optionally compress via CA, and return the
  /// network input tensor (1 x C x H x W, values in [0, 1]).
  tensor::Tensor acquire(const sensor::Image& scene,
                         const std::optional<CaOptions>& ca = std::nullopt,
                         util::Rng* noise = nullptr) const;

  /// Multi-frame pipeline mode: acquires every scene in parallel on the
  /// context's pool (per-frame sensor noise seeded from
  /// (sensor_noise_seed, frame index), so results are thread-count
  /// invariant), stacks the frames into one batch, and runs a single batched
  /// OC forward through `ctx`. All scenes must share one geometry. Returns
  /// the logits [num_scenes x classes].
  tensor::Tensor capture_and_infer(nn::Network& net,
                                   const std::vector<sensor::Image>& scenes,
                                   const nn::PrecisionSchedule& schedule,
                                   ExecutionContext& ctx,
                                   const CaptureOptions& capture = {}) const;

 private:
  using BitsFn = std::function<int(std::size_t weighted_index)>;

  SystemReport analyze_impl(const nn::ModelDesc& model, const BitsFn& wbits,
                            std::string precision_label,
                            const AnalyzeOptions& options) const;

  /// `frames` (when non-null) supplies the input as borrowed [1, ...]
  /// tensors instead of `x` — the zero-copy gather path above.
  tensor::Tensor run_network_impl(
      nn::Network& net, const tensor::Tensor& x, const BitsFn& wbits,
      const BitsFn& abits, ExecutionContext& ctx,
      const std::vector<const tensor::Tensor*>* frames = nullptr) const;

  ArchConfig config_;
  OpticalCore oc_;
  Mapper mapper_;
  PowerModel power_;
  TimingModel timing_;
};

}  // namespace lightator::core
