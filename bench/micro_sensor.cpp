// Microbenchmarks of the imager model (capture, CRC readout, CA).
#include <benchmark/benchmark.h>

#include "core/compressive_acquisitor.hpp"
#include "sensor/pixel_array.hpp"
#include "workloads/scenes.hpp"

namespace {

using namespace lightator;

void BM_PixelArrayCapture(benchmark::State& state) {
  sensor::PixelArrayParams params;
  params.rows = params.cols = 256;
  sensor::PixelArray array(params);
  const auto scene = workloads::make_gradient_scene(256, 256);
  for (auto _ : state) {
    array.capture(scene);
    benchmark::DoNotOptimize(array.voltage(128, 128));
  }
}
BENCHMARK(BM_PixelArrayCapture);

void BM_CrcFrameReadout(benchmark::State& state) {
  sensor::PixelArrayParams params;
  params.rows = params.cols = 256;
  sensor::PixelArray array(params);
  const auto scene = workloads::make_gradient_scene(256, 256);
  array.capture(scene);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.read_codes());
  }
}
BENCHMARK(BM_CrcFrameReadout);

void BM_CompressiveAcquisition(benchmark::State& state) {
  const core::CompressiveAcquisitor ca({2, true, 4},
                                       core::ArchConfig::defaults());
  const auto scene = workloads::make_gradient_scene(256, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca.apply(scene));
  }
}
BENCHMARK(BM_CompressiveAcquisition);

void BM_BayerDemosaic(benchmark::State& state) {
  const auto scene = workloads::make_gradient_scene(256, 256);
  const auto raw = sensor::bayer_mosaic(scene);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor::bayer_demosaic(raw));
  }
}
BENCHMARK(BM_BayerDemosaic);

}  // namespace
