// Compressive Acquisitor tests: Eq. 1 weight synthesis and the fused
// grayscale+pool optical pass against the electronic reference.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compressive_acquisitor.hpp"
#include "util/rng.hpp"
#include "workloads/scenes.hpp"

namespace lightator::core {
namespace {

ArchConfig cfg() { return ArchConfig::defaults(); }

TEST(CompressiveAcquisitor, Eq1WeightsForPool2Grayscale) {
  const CompressiveAcquisitor ca({2, true, 8}, cfg());
  const auto w = ca.ideal_weights();
  ASSERT_EQ(w.size(), 12u);  // 3 * 2 * 2 (Eq. 1 terms)
  EXPECT_NEAR(w[0], 0.25 * 0.299, 1e-7);  // float luma coefficients
  EXPECT_NEAR(w[1], 0.25 * 0.587, 1e-7);
  EXPECT_NEAR(w[2], 0.25 * 0.114, 1e-7);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);  // luma weights sum to 1, pooling preserves it
}

TEST(CompressiveAcquisitor, PoolOnlyWeights) {
  const CompressiveAcquisitor ca({2, false, 8}, cfg());
  const auto w = ca.ideal_weights();
  ASSERT_EQ(w.size(), 4u);
  for (double v : w) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(CompressiveAcquisitor, MappedWeightsQuantized) {
  const CompressiveAcquisitor ca({2, true, 4}, cfg());
  const auto ideal = ca.ideal_weights();
  const auto mapped = ca.mapped_weights();
  ASSERT_EQ(ideal.size(), mapped.size());
  double scale = 0.0;
  for (double v : ideal) scale = std::max(scale, v);
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    const double level = mapped[i] / scale * 7.0;
    EXPECT_NEAR(level, std::round(level), 1e-9) << i;
    EXPECT_NEAR(mapped[i], ideal[i], scale / 14.0 + 1e-12);
  }
}

TEST(CompressiveAcquisitor, ApplyMatchesReferenceGrayPool) {
  util::Rng rng(1);
  const auto scene = workloads::make_blob_scene(32, 32, rng);
  const CompressiveAcquisitor ca({2, true, 8}, cfg());  // 8-bit: tiny quant error
  const auto out = ca.apply(scene);
  const auto ref = scene.to_grayscale().average_pool(2);
  ASSERT_EQ(out.height(), 16u);
  ASSERT_EQ(out.width(), 16u);
  ASSERT_EQ(out.channels(), 1u);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) {
      EXPECT_NEAR(out.at(y, x), ref.at(y, x), 0.01) << y << "," << x;
    }
  }
}

TEST(CompressiveAcquisitor, FourBitQuantizationErrorBounded) {
  util::Rng rng(2);
  const auto scene = workloads::make_blob_scene(32, 32, rng);
  const CompressiveAcquisitor ca({2, true, 4}, cfg());
  const auto out = ca.apply(scene);
  const auto ref = scene.to_grayscale().average_pool(2);
  double worst = 0.0;
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) {
      worst = std::max(worst, std::fabs(static_cast<double>(out.at(y, x)) -
                                        ref.at(y, x)));
    }
  }
  EXPECT_LT(worst, 0.06);  // 4-bit coefficient error budget
}

TEST(CompressiveAcquisitor, PoolOnlyPreservesChannels) {
  util::Rng rng(3);
  const auto scene = workloads::make_blob_scene(16, 16, rng);
  const CompressiveAcquisitor ca({2, false, 8}, cfg());
  const auto out = ca.apply(scene);
  EXPECT_EQ(out.channels(), 3u);
  const auto ref = scene.average_pool(2);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(out.at(3, 4, c), ref.at(3, 4, c), 0.01);
  }
}

TEST(CompressiveAcquisitor, GrayscaleOnlyMode) {
  util::Rng rng(4);
  const auto scene = workloads::make_blob_scene(8, 8, rng);
  const CompressiveAcquisitor ca({1, true, 8}, cfg());
  const auto out = ca.apply(scene);
  EXPECT_EQ(out.height(), 8u);
  EXPECT_EQ(out.channels(), 1u);
  const auto ref = scene.to_grayscale();
  EXPECT_NEAR(out.at(2, 2), ref.at(2, 2), 0.01);
}

TEST(CompressiveAcquisitor, CompressionRatio) {
  // 2x2 pool + grayscale: 12 input values -> 1 output (12x data reduction).
  const CompressiveAcquisitor ca({2, true, 4}, cfg());
  EXPECT_EQ(ca.window_size(), 12u);
}

TEST(CompressiveAcquisitor, MappingOnCaBanks) {
  const CompressiveAcquisitor ca({2, true, 4}, cfg());
  const auto m = ca.mapping(32, 32);
  EXPECT_TRUE(m.uses_ca_banks);
  EXPECT_FALSE(m.weighted);
  EXPECT_EQ(m.outputs, 16u * 16u);
  EXPECT_EQ(m.macs_per_output, 12u);
  EXPECT_EQ(m.weight_writes, 0u);
}

TEST(CompressiveAcquisitor, RejectsBadGeometry) {
  EXPECT_THROW(CompressiveAcquisitor({0, true, 4}, cfg()),
               std::invalid_argument);
  EXPECT_THROW(CompressiveAcquisitor({1, false, 4}, cfg()),
               std::invalid_argument);
  const CompressiveAcquisitor ca({2, true, 4}, cfg());
  EXPECT_THROW(ca.apply(sensor::Image(15, 16, 3)), std::invalid_argument);
  EXPECT_THROW(ca.apply(sensor::Image(16, 16, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace lightator::core
