#include <gtest/gtest.h>

#include "accel/electronic_baselines.hpp"
#include "accel/photonic_baselines.hpp"
#include "nn/model_desc.hpp"

namespace lightator::accel {
namespace {

TEST(ElectronicAccel, ExecutionTimeScalesWithWork) {
  const auto eyeriss_model = eyeriss();
  const double alexnet = eyeriss_model.execution_time(nn::alexnet_desc());
  const double vgg16 = eyeriss_model.execution_time(nn::vgg16_desc());
  EXPECT_GT(vgg16, alexnet);  // 15.5 GMACs vs 0.7 GMACs
}

TEST(ElectronicAccel, FcSlowerPerMacThanConv) {
  ElectronicAccelerator a{"x", 1e9, 0.5, 0.05};
  nn::ModelDesc conv_model = nn::alexnet_desc();
  // Pure-FC model: same MACs all in fc.
  nn::ModelDesc fc_model;
  fc_model.name = "fc";
  nn::LayerDesc fc;
  fc.kind = nn::LayerKind::kLinear;
  fc.fc_in = 1000;
  fc.fc_out = 1000;
  fc_model.layers.push_back(fc);
  nn::ModelDesc conv_only;
  nn::LayerDesc conv;
  conv.kind = nn::LayerKind::kConv;
  conv.in_h = conv.in_w = 102;
  conv.conv = tensor::ConvSpec{1, 100, 3, 1, 0};
  conv_only.layers.push_back(conv);
  // conv: 100*100*100*9 = 9e6 MACs; fc: 1e6 MACs but 10x lower utilization.
  const double t_fc = a.execution_time(fc_model);
  EXPECT_NEAR(t_fc, 1e6 / (1e9 * 0.05), 1e-9);
  const double t_conv = a.execution_time(conv_only);
  EXPECT_NEAR(t_conv, 9e6 / (1e9 * 0.5), 1e-6);
}

TEST(ElectronicAccel, AllBaselinesOrderedOnAlexNet) {
  // Fig. 10: ENVISION < Eyeriss < AppCip < YodaNN on AlexNet.
  const auto model = nn::alexnet_desc();
  const double t_eyeriss = eyeriss().execution_time(model);
  const double t_envision = envision().execution_time(model);
  const double t_appcip = appcip().execution_time(model);
  const double t_yodann = yodann().execution_time(model);
  EXPECT_LT(t_envision, t_eyeriss);
  EXPECT_LT(t_eyeriss, t_appcip);
  EXPECT_LT(t_appcip, t_yodann);
}

TEST(ElectronicAccel, AlexNetTimesInFig10Range) {
  // Fig. 10 y-axis: 1e0 .. 1e3 ms.
  const auto model = nn::alexnet_desc();
  for (const auto& a : all_electronic_baselines()) {
    const double t = a.execution_time(model);
    EXPECT_GT(t, 1e-3) << a.name;
    EXPECT_LT(t, 1.0) << a.name;
  }
}

TEST(ElectronicAccel, ZeroPeakThrows) {
  ElectronicAccelerator a{"bad", 0.0, 0.5, 0.1};
  EXPECT_THROW(a.execution_time(nn::lenet_desc()), std::logic_error);
}

TEST(PhotonicAccel, PowerIsComponentSum) {
  const auto a = lightbulb();
  EXPECT_NEAR(a.total_power(),
              a.adc_array_power + a.dac_array_power + a.tuning_power +
                  a.laser_power + a.digital_power,
              1e-12);
}

TEST(PhotonicAccel, Table1PowerTargets) {
  // Rebuilt inventories must land near Table 1's reported max powers.
  EXPECT_NEAR(lightbulb().total_power(), 68.3, 2.0);
  EXPECT_NEAR(holylight().total_power(), 66.9, 2.0);
  EXPECT_NEAR(robin().total_power(), 106.0, 3.0);
  EXPECT_NEAR(crosslight_low().total_power(), 84.0, 3.0);
  EXPECT_NEAR(crosslight_high().total_power(), 390.0, 10.0);
}

TEST(PhotonicAccel, Table1KfpsPerWattTargets) {
  const std::size_t macs = nn::vgg9_desc().total_macs();
  EXPECT_NEAR(lightbulb().summarize(macs).kfps_per_watt, 57.75, 12.0);
  EXPECT_NEAR(holylight().summarize(macs).kfps_per_watt, 3.3, 1.0);
  EXPECT_NEAR(hqnna().summarize(macs).kfps_per_watt, 34.6, 8.0);
  EXPECT_NEAR(robin().summarize(macs).kfps_per_watt, 46.5, 10.0);
  EXPECT_NEAR(crosslight_low().summarize(macs).kfps_per_watt, 10.78, 3.0);
  EXPECT_NEAR(crosslight_high().summarize(macs).kfps_per_watt, 52.59, 12.0);
}

TEST(PhotonicAccel, SummaryFields) {
  const auto s = robin().summarize(nn::vgg9_desc().total_macs());
  EXPECT_EQ(s.name, "Robin");
  EXPECT_EQ(s.precision, "[1:4]");
  EXPECT_EQ(s.process_nm, 45);
  EXPECT_GT(s.fps, 0.0);
}

TEST(PhotonicAccel, ZeroWorkloadSafe) {
  EXPECT_DOUBLE_EQ(lightbulb().fps(0), 0.0);
}

TEST(GpuBaseline, RooflineThroughput) {
  const GpuBaseline gpu;
  EXPECT_NEAR(gpu.board_power, 200.0, 1e-12);
  const double fps = gpu.fps(nn::vgg9_desc().total_macs());
  // ~18 KFPS on a 155-MMAC VGG9 at 35% of 8.1 TMAC/s.
  EXPECT_GT(fps, 5e3);
  EXPECT_LT(fps, 5e4);
}

TEST(PhotonicAccel, AllBaselinesListedInOrder) {
  const auto all = all_photonic_baselines();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "LightBulb");
  EXPECT_EQ(all[1].name, "HolyLight");
  EXPECT_EQ(all[5].name, "CrossLight-H");
}

}  // namespace
}  // namespace lightator::accel
