#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

namespace lightator::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    switch (*s) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += *s;
    }
  }
  return out;
}

}  // namespace

/// One thread's pre-sized event buffer. `buf` is resized once at
/// construction (the thread's only tracing allocation); overwrite-oldest on
/// wrap keeps the newest `capacity` events and advances `dropped`.
struct TraceRecorder::Ring {
  Ring(std::size_t capacity, std::uint32_t tid_in, std::thread::id owner_in)
      : tid(tid_in), owner(owner_in) {
    buf.resize(capacity);
  }

  mutable std::mutex mutex;
  std::vector<TraceEvent> buf;
  std::size_t head = 0;   // next write slot
  std::size_t count = 0;  // live events (<= buf.size())
  std::uint64_t dropped = 0;
  std::uint64_t total_recorded = 0;
  const std::uint32_t tid;
  const std::thread::id owner;
};

namespace {

// Per-thread (recorder_id -> ring) cache so steady-state record() skips the
// registry mutex entirely. Fixed-size with round-robin eviction: no heap, and
// an evicted entry just falls back to the owner scan in local_ring().
struct TlsRingCache {
  static constexpr std::size_t kSlots = 4;
  std::uint64_t recorder_id[kSlots] = {0, 0, 0, 0};
  TraceRecorder::Ring* ring[kSlots] = {nullptr, nullptr, nullptr, nullptr};
  std::size_t next_evict = 0;
};
thread_local TlsRingCache tls_ring_cache;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_ns_(steady_ns()),
      recorder_id_(next_recorder_id()) {}

TraceRecorder::~TraceRecorder() {
  // Invalidate any TLS cache entries held by this thread; other threads'
  // stale entries are keyed by the process-unique recorder_id_, which is
  // never reissued, so they can only miss — never alias a new recorder.
  for (std::size_t i = 0; i < TlsRingCache::kSlots; ++i) {
    if (tls_ring_cache.recorder_id[i] == recorder_id_) {
      tls_ring_cache.recorder_id[i] = 0;
      tls_ring_cache.ring[i] = nullptr;
    }
  }
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

void TraceRecorder::start() {
  if (recorded() == 0) {
    epoch_ns_ = steady_ns();  // fresh capture: rebase so ts starts near 0
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::stop() { enabled_.store(false, std::memory_order_relaxed); }

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    ring->head = 0;
    ring->count = 0;
    ring->dropped = 0;
    ring->total_recorded = 0;
  }
  epoch_ns_ = steady_ns();
}

std::int64_t TraceRecorder::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

std::int64_t TraceRecorder::to_us(
    std::chrono::steady_clock::time_point tp) const {
  return (std::chrono::duration_cast<std::chrono::nanoseconds>(
              tp.time_since_epoch())
              .count() -
          epoch_ns_) /
         1000;
}

TraceRecorder::Ring& TraceRecorder::local_ring() {
  TlsRingCache& cache = tls_ring_cache;
  for (std::size_t i = 0; i < TlsRingCache::kSlots; ++i) {
    if (cache.recorder_id[i] == recorder_id_) return *cache.ring[i];
  }
  // Slow path: first event from this thread (or cache eviction). Find or
  // create the thread's ring under the registry mutex.
  const std::thread::id self = std::this_thread::get_id();
  Ring* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (auto& r : rings_) {
      if (r->owner == self) {
        ring = r.get();
        break;
      }
    }
    if (ring == nullptr) {
      rings_.push_back(std::make_unique<Ring>(
          ring_capacity_, static_cast<std::uint32_t>(rings_.size()), self));
      ring = rings_.back().get();
    }
  }
  const std::size_t slot = cache.next_evict;
  cache.next_evict = (cache.next_evict + 1) % TlsRingCache::kSlots;
  cache.recorder_id[slot] = recorder_id_;
  cache.ring[slot] = ring;
  return *ring;
}

void TraceRecorder::record(const char* name, const char* cat,
                           std::int64_t ts_us, std::int64_t dur_us,
                           std::uint64_t request_id, const char* detail_key0,
                           const char* detail_val0, const char* detail_key1,
                           const char* detail_val1) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  TraceEvent& ev = ring.buf[ring.head];
  std::size_t n = 0;
  for (; n + 1 < TraceEvent::kNameCapacity && name[n] != '\0'; ++n) {
    ev.name[n] = name[n];
  }
  ev.name[n] = '\0';
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = ring.tid;
  ev.request_id = request_id;
  ev.detail_key[0] = detail_key0;
  ev.detail_val[0] = detail_val0;
  ev.detail_key[1] = detail_key1;
  ev.detail_val[1] = detail_val1;
  ring.head = (ring.head + 1) % ring.buf.size();
  if (ring.count < ring.buf.size()) {
    ++ring.count;
  } else {
    ++ring.dropped;  // wrapped: the oldest event was just overwritten
  }
  ++ring.total_recorded;
}

void TraceRecorder::record_async(const char* name, const char* cat,
                                 std::int64_t ts_us, std::int64_t dur_us,
                                 std::uint64_t request_id) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  TraceEvent& ev = ring.buf[ring.head];
  std::size_t n = 0;
  for (; n + 1 < TraceEvent::kNameCapacity && name[n] != '\0'; ++n) {
    ev.name[n] = name[n];
  }
  ev.name[n] = '\0';
  ev.cat = cat;
  ev.ph = 'A';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = ring.tid;
  ev.request_id = request_id;
  ev.detail_key[0] = nullptr;
  ev.detail_val[0] = nullptr;
  ev.detail_key[1] = nullptr;
  ev.detail_val[1] = nullptr;
  ring.head = (ring.head + 1) % ring.buf.size();
  if (ring.count < ring.buf.size()) {
    ++ring.count;
  } else {
    ++ring.dropped;
  }
  ++ring.total_recorded;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    const std::size_t cap = ring->buf.size();
    const std::size_t oldest = (ring->head + cap - ring->count) % cap;
    for (std::size_t i = 0; i < ring->count; ++i) {
      out.push_back(ring->buf[(oldest + i) % cap]);
    }
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

std::uint64_t TraceRecorder::recorded() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    total += ring->total_recorded;
  }
  return total;
}

std::uint32_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  return static_cast<std::uint32_t>(rings_.size());
}

std::string TraceRecorder::chrome_json() const {
  std::vector<TraceEvent> events = snapshot();
  // (ts asc, dur desc): a parent span starts no later and ends no earlier
  // than its children, so this order lets viewers rebuild the nesting stack
  // by containment.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  std::ostringstream out;
  out << "{\n\"traceEvents\": [";
  bool first = true;
  auto emit_args = [&out](const TraceEvent& ev) {
    out << ", \"args\": {";
    bool afirst = true;
    if (ev.request_id != 0) {
      out << "\"request_id\": " << ev.request_id;
      afirst = false;
    }
    for (int slot = 0; slot < 2; ++slot) {
      if (ev.detail_key[slot] != nullptr && ev.detail_val[slot] != nullptr) {
        if (!afirst) out << ", ";
        afirst = false;
        out << "\"" << json_escape(ev.detail_key[slot]) << "\": \""
            << json_escape(ev.detail_val[slot]) << "\"";
      }
    }
    out << "}}";
  };
  for (const TraceEvent& ev : events) {
    const std::string name = json_escape(ev.name);
    const std::string cat = json_escape(ev.cat != nullptr ? ev.cat : "");
    if (ev.ph == 'A') {
      // Async span: a "b"/"e" pair keyed by (cat, id, name) — rendered on
      // its own track, exempt from per-thread stack nesting.
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\": \"" << name << "\", \"cat\": \"" << cat
          << "\", \"ph\": \"b\", \"id\": " << ev.request_id
          << ", \"ts\": " << ev.ts_us << ", \"pid\": 0, \"tid\": " << ev.tid;
      emit_args(ev);
      out << ",\n{\"name\": \"" << name << "\", \"cat\": \"" << cat
          << "\", \"ph\": \"e\", \"id\": " << ev.request_id
          << ", \"ts\": " << ev.ts_us + ev.dur_us
          << ", \"pid\": 0, \"tid\": " << ev.tid << ", \"args\": {}}";
      continue;
    }
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"name\": \"" << name << "\", \"cat\": \"" << cat
        << "\", \"ph\": \"X\", \"ts\": " << ev.ts_us
        << ", \"dur\": " << ev.dur_us << ", \"pid\": 0, \"tid\": " << ev.tid;
    emit_args(ev);
  }
  out << (first ? "" : "\n") << "],\n";
  out << "\"displayTimeUnit\": \"ms\",\n";
  out << "\"otherData\": {\"dropped_events\": " << dropped() << "}\n}";
  return out.str();
}

std::size_t TraceRecorder::write_chrome_json(const std::string& path) const {
  const std::size_t n = snapshot().size();
  std::ofstream out(path);
  out << chrome_json() << "\n";
  return n;
}

}  // namespace lightator::obs
