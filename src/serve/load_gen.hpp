// LoadGen: deterministic closed-loop load generator for the serving layer.
//
// Drives an InferenceServer with a seeded request stream: request i's input
// is inputs[index_i] where the index sequence is a pure function of the
// seed, and at most `concurrency` requests are outstanding at any moment
// (each completion admits the next submission — the classic closed loop).
// Rejected submissions retry after reaping the oldest outstanding request,
// so a capacity smaller than the concurrency degrades throughput instead of
// dropping work. Because the request stream is seed-deterministic, requests
// are submitted under their stream index as the request id, and the
// server's per-request outputs are batching-invariant (including physical-
// backend noise, which seeds from the request id), the collected outputs
// are bit-identical across replica counts and batching policies — which is
// exactly what the determinism tests and the serve_throughput bench check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/server.hpp"

namespace lightator::serve {

struct LoadGenOptions {
  std::size_t requests = 64;
  /// Outstanding-request window (closed loop).
  std::size_t concurrency = 8;
  /// Seeds the input-selection sequence.
  std::uint64_t seed = 1;
};

struct LoadGenReport {
  std::vector<std::size_t> input_index;  // request i -> inputs[] index used
  std::vector<tensor::Tensor> outputs;   // request i -> its [1, ...] output
  std::vector<std::size_t> batch_sizes;  // request i -> batch it rode in
  std::uint64_t reject_retries = 0;      // backpressure events absorbed
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
};

/// Runs the closed loop to completion. `inputs` are single frames
/// ([C, H, W] or [1, C, H, W]); mixed geometries are fine — the server
/// buckets them. Propagates the first request failure as an exception.
LoadGenReport run_closed_loop(InferenceServer& server,
                              const std::vector<tensor::Tensor>& inputs,
                              const LoadGenOptions& options = {});

}  // namespace lightator::serve
