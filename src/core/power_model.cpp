#include "core/power_model.hpp"

#include <cmath>

#include "optics/microring.hpp"
#include "optics/vcsel.hpp"

namespace lightator::core {

PowerBreakdown& PowerBreakdown::operator+=(const PowerBreakdown& o) {
  adc += o.adc;
  dac += o.dac;
  dmva += o.dmva;
  tun += o.tun;
  bpd += o.bpd;
  misc += o.misc;
  return *this;
}

PowerBreakdown& PowerBreakdown::operator*=(double s) {
  adc *= s;
  dac *= s;
  dmva *= s;
  tun *= s;
  bpd *= s;
  misc *= s;
  return *this;
}

PowerModel::PowerModel(ArchConfig config)
    : config_(config),
      weight_mem_(config.weight_sram_bytes),
      buffer_mem_(config.buffer_sram_bytes) {}

double PowerModel::tuning_power_for_weight(double abs_weight) const {
  optics::MicroRing ring(config_.ring, 1550.0 * units::kNm);
  ring.set_weight(std::min(1.0, std::max(0.0, abs_weight)));
  return ring.tuning_power();
}

double PowerModel::expected_tuning_power_per_cell(int weight_bits) const {
  // Signed levels -m..m, uniform; |level|/m is the programmed magnitude on
  // one ring of the pair (the other sits on resonance at zero detuning).
  const int m = (1 << (weight_bits - 1)) - 1;
  if (m <= 0) return tuning_power_for_weight(1.0) * 0.5;
  double acc = 0.0;
  int count = 0;
  for (int level = -m; level <= m; ++level, ++count) {
    acc += tuning_power_for_weight(std::fabs(static_cast<double>(level)) / m);
  }
  return acc / static_cast<double>(count);
}

double PowerModel::vcsel_channel_power() const {
  optics::Vcsel laser(config_.vcsel, 1550.0 * units::kNm);
  laser.drive_code(config_.vcsel.levels / 2);  // mid-scale average drive
  const double driver_dynamic =
      laser.driver_symbol_energy() * config_.modulation_rate;
  return laser.electrical_power() + driver_dynamic + config_.selector_power;
}

LayerPower PowerModel::layer_power(const LayerMapping& mapping, int weight_bits,
                                   bool first_layer,
                                   double mean_abs_weight_level_fraction) const {
  LayerPower out;
  if (mapping.rounds == 0) return out;  // non-compute layer

  // --- streaming-phase power -----------------------------------------
  PowerBreakdown s;
  const auto mrs = static_cast<double>(mapping.mrs_active);
  if (mapping.weighted) {
    s.dac = mrs * config_.dac_power(weight_bits);
  }
  // TUN: from the actual mapped-weight statistics when available.
  double tun_per_cell;
  if (mean_abs_weight_level_fraction >= 0.0) {
    tun_per_cell = tuning_power_for_weight(mean_abs_weight_level_fraction);
  } else if (mapping.weighted) {
    tun_per_cell = expected_tuning_power_per_cell(weight_bits);
  } else {
    // CA banks: pooling coefficients are small positive weights (e.g. 0.25),
    // programmed once; use their actual magnitude class.
    tun_per_cell = tuning_power_for_weight(0.25);
  }
  s.tun = mrs * tun_per_cell;
  s.dmva = static_cast<double>(mapping.vcsels_active) * vcsel_channel_power();
  if (first_layer) {
    // CRC comparators digitize the pixels feeding the current window; a new
    // kernel-column of pixels is converted per streaming cycle.
    const double conversions_per_cycle =
        std::sqrt(static_cast<double>(mapping.vcsels_active));
    const double crc_energy = 15.0 * 12.0 * units::kFJ;  // 15 comparators
    s.dmva += conversions_per_cycle * crc_energy * config_.modulation_rate;
  }
  s.adc = static_cast<double>(mapping.banks_active) * config_.adc_power;
  s.bpd = static_cast<double>(mapping.arms_active) * config_.bpd_power;

  // Misc: controller + memories. The streaming activation path goes through
  // a register-file line buffer (fJ/bit); the SRAM buffer's dynamic energy
  // is per-activation-per-frame and negligible against it. Weight-SRAM
  // leakage is power-gated for layers that never touch it (CA/pooling).
  const double stream_bits_per_s =
      static_cast<double>(mapping.adc_samples_per_cycle + 1) * 4.0 *
      config_.modulation_rate;  // outputs written + window column refilled
  s.misc = config_.controller_power + buffer_mem_.leakage_power() +
           (mapping.weighted ? weight_mem_.leakage_power() : 0.0) +
           stream_bits_per_s * config_.activation_buffer_energy_per_bit;

  // --- remap-phase power ----------------------------------------------
  // While the MRs settle, the optical path is dark: DAC/TUN hold, the weight
  // SRAM streams the next round's weights, VCSELs/BPDs/ADCs idle.
  PowerBreakdown r;
  r.dac = s.dac;
  r.tun = s.tun;
  const double writes_per_round =
      mapping.rounds > 0
          ? static_cast<double>(mapping.weight_writes) /
                static_cast<double>(mapping.rounds)
          : 0.0;
  const double remap_read_bw =
      config_.remap_settle > 0.0
          ? writes_per_round * weight_bits / config_.remap_settle
          : 0.0;
  r.misc = config_.controller_power + buffer_mem_.leakage_power() +
           (mapping.weighted ? weight_mem_.leakage_power() : 0.0) +
           remap_read_bw * weight_mem_.read_energy_per_bit();

  // --- duration-weighted average ---------------------------------------
  const double t_stream = static_cast<double>(mapping.rounds) *
                          static_cast<double>(mapping.cycles_per_round) /
                          config_.modulation_rate;
  const double t_remap =
      mapping.weighted ? static_cast<double>(mapping.rounds) * config_.remap_settle
                       : 0.0;
  const double t_total = t_stream + t_remap;
  out.streaming = s;
  out.duration = t_total;
  if (t_total <= 0.0) {
    out.average = s;
    return out;
  }
  PowerBreakdown avg = s;
  avg *= t_stream / t_total;
  PowerBreakdown remap_share = r;
  remap_share *= t_remap / t_total;
  avg += remap_share;
  out.average = avg;
  out.energy = s.total() * t_stream + r.total() * t_remap;
  return out;
}

}  // namespace lightator::core
