#include "sensor/photodiode.hpp"

#include <algorithm>
#include <stdexcept>

namespace lightator::sensor {

Photodiode::Photodiode(PhotodiodeParams params) : params_(params) {
  if (params_.swing <= 0 || params_.full_well_electrons <= 0) {
    throw std::invalid_argument("photodiode swing/full-well must be positive");
  }
  if (params_.read_noise_electrons < 0 || params_.dark_current_fraction < 0) {
    throw std::invalid_argument("photodiode noise terms must be non-negative");
  }
}

double Photodiode::expose(double brightness) const {
  const double b = std::clamp(brightness, 0.0, 1.0);
  return params_.dark_voltage + params_.swing * b;
}

double Photodiode::expose_noisy(double brightness, util::Rng& rng) const {
  const double b = std::clamp(brightness, 0.0, 1.0);
  const double mean_electrons =
      (b + params_.dark_current_fraction) * params_.full_well_electrons;
  const double shot = static_cast<double>(rng.poisson(mean_electrons));
  const double read = rng.normal(0.0, params_.read_noise_electrons);
  const double electrons = std::max(0.0, shot + read);
  const double fraction =
      std::min(1.0, electrons / params_.full_well_electrons);
  return params_.dark_voltage + params_.swing * fraction;
}

}  // namespace lightator::sensor
