#include "nn/model_desc.hpp"

#include <stdexcept>

namespace lightator::nn {

std::size_t LayerDesc::macs() const {
  switch (kind) {
    case LayerKind::kConv: {
      const std::size_t oh = conv.out_dim(in_h), ow = conv.out_dim(in_w);
      return conv.out_channels * oh * ow * conv.weights_per_filter();
    }
    case LayerKind::kLinear:
      return fc_in * fc_out;
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      // Pooling "MACs": one multiply-accumulate per window element, which is
      // exactly how the CA banks realize average pooling.
      const std::size_t oh = (in_h - pool_kernel) / pool_stride + 1;
      const std::size_t ow = (in_w - pool_kernel) / pool_stride + 1;
      return pool_channels * oh * ow * pool_kernel * pool_kernel;
    }
    case LayerKind::kActivation:
    case LayerKind::kFlatten:
      return 0;
  }
  return 0;
}

std::size_t LayerDesc::weight_count() const {
  switch (kind) {
    case LayerKind::kConv:
      return conv.out_channels * conv.weights_per_filter();
    case LayerKind::kLinear:
      return fc_in * fc_out;
    default:
      return 0;
  }
}

std::size_t LayerDesc::output_count() const {
  switch (kind) {
    case LayerKind::kConv: {
      return conv.out_channels * conv.out_dim(in_h) * conv.out_dim(in_w);
    }
    case LayerKind::kLinear:
      return fc_out;
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const std::size_t oh = (in_h - pool_kernel) / pool_stride + 1;
      const std::size_t ow = (in_w - pool_kernel) / pool_stride + 1;
      return pool_channels * oh * ow;
    }
    case LayerKind::kActivation:
    case LayerKind::kFlatten:
      return 0;
  }
  return 0;
}

std::size_t ModelDesc::total_macs() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.macs();
  return n;
}

std::size_t ModelDesc::total_weights() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.weight_count();
  return n;
}

std::vector<const LayerDesc*> ModelDesc::compute_layers() const {
  std::vector<const LayerDesc*> out;
  for (const auto& l : layers) {
    if (l.is_weighted() || l.is_pool()) out.push_back(&l);
  }
  return out;
}

namespace {

/// Incremental builder tracking spatial geometry through the stack.
class DescBuilder {
 public:
  DescBuilder(std::string name, std::size_t c, std::size_t h, std::size_t w) {
    desc_.name = std::move(name);
    desc_.in_channels = c;
    desc_.in_h = h;
    desc_.in_w = w;
    c_ = c;
    h_ = h;
    w_ = w;
  }

  DescBuilder& conv(std::size_t out_c, std::size_t kernel, std::size_t stride,
                    std::size_t pad) {
    LayerDesc l;
    l.kind = LayerKind::kConv;
    l.in_h = h_;
    l.in_w = w_;
    l.conv = tensor::ConvSpec{c_, out_c, kernel, stride, pad};
    l.name = "conv" + std::to_string(kernel) + "x" + std::to_string(kernel) +
             "_" + std::to_string(c_) + "->" + std::to_string(out_c);
    h_ = l.conv.out_dim(h_);
    w_ = l.conv.out_dim(w_);
    c_ = out_c;
    desc_.layers.push_back(l);
    return relu();
  }

  DescBuilder& pool(LayerKind kind, std::size_t kernel, std::size_t stride) {
    LayerDesc l;
    l.kind = kind;
    l.in_h = h_;
    l.in_w = w_;
    l.pool_kernel = kernel;
    l.pool_stride = stride;
    l.pool_channels = c_;
    l.name = (kind == LayerKind::kMaxPool ? "maxpool" : "avgpool") +
             std::to_string(kernel) + "x" + std::to_string(kernel);
    h_ = (h_ - kernel) / stride + 1;
    w_ = (w_ - kernel) / stride + 1;
    desc_.layers.push_back(l);
    return *this;
  }

  DescBuilder& flatten() {
    LayerDesc l;
    l.kind = LayerKind::kFlatten;
    l.name = "flatten";
    desc_.layers.push_back(l);
    flat_dim_ = c_ * h_ * w_;
    return *this;
  }

  DescBuilder& fc(std::size_t out, bool with_relu = true) {
    LayerDesc l;
    l.kind = LayerKind::kLinear;
    l.fc_in = flat_dim_;
    l.fc_out = out;
    l.name = "fc_" + std::to_string(flat_dim_) + "->" + std::to_string(out);
    desc_.layers.push_back(l);
    flat_dim_ = out;
    return with_relu ? relu() : *this;
  }

  DescBuilder& relu() {
    LayerDesc l;
    l.kind = LayerKind::kActivation;
    l.act = ActKind::kReLU;
    l.name = "relu";
    desc_.layers.push_back(l);
    return *this;
  }

  ModelDesc build() { return desc_; }

 private:
  ModelDesc desc_;
  std::size_t c_, h_, w_;
  std::size_t flat_dim_ = 0;
};

}  // namespace

ModelDesc lenet_desc(std::size_t num_classes) {
  DescBuilder b("LeNet", 1, 28, 28);
  b.conv(6, 5, 1, 2)                        // L1: 28x28x6
      .pool(LayerKind::kAvgPool, 2, 2)      // L2: 14x14x6 (CA bank)
      .conv(16, 5, 1, 0)                    // L3: 10x10x16
      .pool(LayerKind::kAvgPool, 2, 2)      // L4: 5x5x16 (CA bank)
      .flatten()
      .fc(120)                              // L5
      .fc(84)                               // L6
      .fc(num_classes, /*with_relu=*/false);  // L7
  return b.build();
}

ModelDesc vgg9_desc(std::size_t num_classes, double width_mult,
                    std::size_t in_h, std::size_t in_w,
                    std::size_t in_channels) {
  auto ch = [&](std::size_t base) {
    const auto c = static_cast<std::size_t>(base * width_mult);
    return c == 0 ? std::size_t{1} : c;
  };
  DescBuilder b("VGG9", in_channels, in_h, in_w);
  b.conv(ch(64), 3, 1, 1)                  // L1
      .conv(ch(64), 3, 1, 1)               // L2
      .pool(LayerKind::kMaxPool, 2, 2)     // L3
      .conv(ch(128), 3, 1, 1)              // L4
      .conv(ch(128), 3, 1, 1)              // L5
      .pool(LayerKind::kMaxPool, 2, 2)     // L6
      .conv(ch(256), 3, 1, 1)              // L7
      .conv(ch(256), 3, 1, 1)              // L8
      .pool(LayerKind::kMaxPool, 2, 2)     // L9
      .flatten()
      .fc(ch(512))                         // L10
      .fc(ch(512))                         // L11
      .fc(num_classes, /*with_relu=*/false);  // L12
  return b.build();
}

ModelDesc vgg16_desc(std::size_t num_classes) {
  DescBuilder b("VGG16", 3, 224, 224);
  b.conv(64, 3, 1, 1).conv(64, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.conv(128, 3, 1, 1).conv(128, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.conv(256, 3, 1, 1).conv(256, 3, 1, 1).conv(256, 3, 1, 1);
  b.pool(LayerKind::kMaxPool, 2, 2);
  b.conv(512, 3, 1, 1).conv(512, 3, 1, 1).conv(512, 3, 1, 1);
  b.pool(LayerKind::kMaxPool, 2, 2);
  b.conv(512, 3, 1, 1).conv(512, 3, 1, 1).conv(512, 3, 1, 1);
  b.pool(LayerKind::kMaxPool, 2, 2);
  b.flatten().fc(4096).fc(4096).fc(num_classes, /*with_relu=*/false);
  return b.build();
}

ModelDesc vgg13_desc(std::size_t num_classes) {
  DescBuilder b("VGG13", 3, 224, 224);
  b.conv(64, 3, 1, 1).conv(64, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.conv(128, 3, 1, 1).conv(128, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.conv(256, 3, 1, 1).conv(256, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.conv(512, 3, 1, 1).conv(512, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.conv(512, 3, 1, 1).conv(512, 3, 1, 1).pool(LayerKind::kMaxPool, 2, 2);
  b.flatten().fc(4096).fc(4096).fc(num_classes, /*with_relu=*/false);
  return b.build();
}

ModelDesc alexnet_desc(std::size_t num_classes) {
  DescBuilder b("AlexNet", 3, 227, 227);
  b.conv(96, 11, 4, 0).pool(LayerKind::kMaxPool, 3, 2);
  b.conv(256, 5, 1, 2).pool(LayerKind::kMaxPool, 3, 2);
  b.conv(384, 3, 1, 1).conv(384, 3, 1, 1).conv(256, 3, 1, 1);
  b.pool(LayerKind::kMaxPool, 3, 2);
  b.flatten().fc(4096).fc(4096).fc(num_classes, /*with_relu=*/false);
  return b.build();
}

ModelDesc desc_from_network(const Network& net, std::size_t in_channels,
                            std::size_t in_h, std::size_t in_w) {
  ModelDesc desc;
  desc.name = net.name();
  desc.in_channels = in_channels;
  desc.in_h = in_h;
  desc.in_w = in_w;
  std::size_t c = in_channels, h = in_h, w = in_w;
  std::size_t flat = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    LayerDesc l;
    l.kind = layer.kind();
    l.name = layer.name();
    switch (layer.kind()) {
      case LayerKind::kConv: {
        const auto& conv = dynamic_cast<const Conv2d&>(layer);
        l.in_h = h;
        l.in_w = w;
        l.conv = conv.spec();
        h = l.conv.out_dim(h);
        w = l.conv.out_dim(w);
        c = l.conv.out_channels;
        break;
      }
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool: {
        std::size_t kernel, stride;
        if (layer.kind() == LayerKind::kMaxPool) {
          const auto& p = dynamic_cast<const MaxPool&>(layer);
          kernel = p.kernel();
          stride = p.stride();
        } else {
          const auto& p = dynamic_cast<const AvgPool&>(layer);
          kernel = p.kernel();
          stride = p.stride();
        }
        l.in_h = h;
        l.in_w = w;
        l.pool_kernel = kernel;
        l.pool_stride = stride;
        l.pool_channels = c;
        h = (h - kernel) / stride + 1;
        w = (w - kernel) / stride + 1;
        break;
      }
      case LayerKind::kLinear: {
        const auto& fc = dynamic_cast<const Linear&>(layer);
        l.fc_in = fc.in_features();
        l.fc_out = fc.out_features();
        flat = fc.out_features();
        break;
      }
      case LayerKind::kActivation: {
        const auto& act = dynamic_cast<const Activation&>(layer);
        l.act = act.act();
        break;
      }
      case LayerKind::kFlatten:
        flat = c * h * w;
        break;
    }
    desc.layers.push_back(std::move(l));
  }
  (void)flat;
  return desc;
}

}  // namespace lightator::nn
