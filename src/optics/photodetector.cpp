#include "optics/photodetector.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::optics {

BalancedPhotodetector::BalancedPhotodetector(PhotodetectorParams params)
    : params_(params) {
  if (params_.responsivity <= 0) {
    throw std::invalid_argument("responsivity must be positive");
  }
  if (params_.bandwidth <= 0 || params_.tia_feedback_ohms <= 0) {
    throw std::invalid_argument("bandwidth and TIA resistance must be positive");
  }
}

double BalancedPhotodetector::net_current(
    const OpticalSignal& positive_rail, const OpticalSignal& negative_rail) const {
  return params_.responsivity *
         (positive_rail.total_power() - negative_rail.total_power());
}

double BalancedPhotodetector::noise_sigma(double total_detected_power) const {
  const double photo_current =
      params_.responsivity * total_detected_power + params_.dark_current;
  // Shot noise: 2 q I B.
  const double shot_var =
      2.0 * units::kElectronCharge * photo_current * params_.bandwidth;
  // TIA thermal (Johnson) noise: 4 k T B / R_f.
  const double thermal_var = 4.0 * units::kBoltzmann * units::kRoomTemperature *
                             params_.bandwidth / params_.tia_feedback_ohms;
  // Laser RIN: variance = 10^(RIN/10) * I_ph^2 * B.
  const double rin_lin = std::pow(10.0, params_.rin_db_per_hz / 10.0);
  const double rin_var = rin_lin * photo_current * photo_current * params_.bandwidth;
  return std::sqrt(shot_var + thermal_var + rin_var);
}

double BalancedPhotodetector::net_current_noisy(
    const OpticalSignal& positive_rail, const OpticalSignal& negative_rail,
    util::Rng& rng) const {
  const double ideal = net_current(positive_rail, negative_rail);
  const double total = positive_rail.total_power() + negative_rail.total_power();
  return ideal + rng.normal(0.0, noise_sigma(total));
}

}  // namespace lightator::optics
