// Optical-core equivalence tests: the functional quantized path must match
// (a) exact integer math, (b) the reference tensor kernels, and (c) the
// physical device-model path within the analog error budget.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optical_core.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace lightator::core {
namespace {

OpticalCore make_oc() { return OpticalCore(ArchConfig::defaults()); }

TEST(OpticalCore, ArmDotExactIntegerMath) {
  const OpticalCore oc = make_oc();
  const std::vector<int> codes = {15, 0, 7, 3, 1, 0, 0, 0, 0};
  const std::vector<int> levels = {7, -7, 3, 0, -1, 0, 0, 0, 0};
  // sum(code*level) = 105 + 21 - 1 = 125; normalize by 15*7.
  EXPECT_NEAR(oc.arm_dot(codes, levels, 4), 125.0 / 105.0, 1e-12);
}

TEST(OpticalCore, ArmDotValidatesRanges) {
  const OpticalCore oc = make_oc();
  EXPECT_THROW(oc.arm_dot(std::vector<int>{16}, std::vector<int>{1}, 4),
               std::out_of_range);
  EXPECT_THROW(oc.arm_dot(std::vector<int>{1}, std::vector<int>{8}, 4),
               std::out_of_range);
  EXPECT_THROW(oc.arm_dot(std::vector<int>(10, 0), std::vector<int>(10, 0), 4),
               std::invalid_argument);
}

TEST(OpticalCore, ReduceSegmentsMatchesFlatSum) {
  util::Rng rng(1);
  const OpticalCore oc = make_oc();
  std::vector<int> codes(31), levels(31);
  for (auto& c : codes) c = static_cast<int>(rng.uniform_index(16));
  for (auto& l : levels) l = static_cast<int>(rng.uniform_index(15)) - 7;
  double flat = 0.0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    flat += codes[i] * levels[i] / (15.0 * 7.0);
  }
  EXPECT_NEAR(oc.reduce(codes, levels, 4), flat, 1e-9);
}

TEST(OpticalCore, PhysicalMatchesFunctionalArm) {
  util::Rng rng(2);
  const OpticalCore oc = make_oc();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> w(9);
    std::vector<int> codes(9), levels(9);
    for (std::size_t i = 0; i < 9; ++i) {
      w[i] = rng.uniform(-1.0, 1.0);
      codes[i] = static_cast<int>(rng.uniform_index(16));
      levels[i] = static_cast<int>(std::lround(w[i] * 7.0));
    }
    const double functional = oc.arm_dot(codes, levels, 4);
    const double physical = oc.arm_dot_physical(w, codes, 4);
    EXPECT_NEAR(physical, functional, 0.15) << "trial " << trial;
  }
}

TEST(OpticalCore, Conv2dMatchesDequantizedReference) {
  util::Rng rng(3);
  const OpticalCore oc = make_oc();
  const tensor::ConvSpec spec{3, 4, 3, 1, 1};
  tensor::Tensor x({2, 3, 8, 8});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({4, 3, 3, 3});
  w.fill_normal(rng, 0.4f);
  tensor::Tensor b({4});
  b.fill_normal(rng, 0.1f);

  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  const auto via_oc = oc.conv2d(xq, wq, b, spec);
  // Reference: conv of the dequantized tensors must be bit-identical in
  // float (integer products < 2^24 are exact).
  const auto ref = tensor::conv2d_forward(tensor::dequantize(xq),
                                          tensor::dequantize(wq), b, spec);
  EXPECT_TRUE(via_oc.allclose(ref, 2e-5f));
}

TEST(OpticalCore, Conv2dStridedAndPadded) {
  util::Rng rng(4);
  const OpticalCore oc = make_oc();
  const tensor::ConvSpec spec{2, 3, 5, 2, 2};
  tensor::Tensor x({1, 2, 12, 12});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({3, 2, 5, 5});
  w.fill_normal(rng, 0.3f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 3);
  const auto via_oc = oc.conv2d(xq, wq, tensor::Tensor(), spec);
  const auto ref = tensor::conv2d_forward(tensor::dequantize(xq),
                                          tensor::dequantize(wq),
                                          tensor::Tensor(), spec);
  EXPECT_EQ(via_oc.dim(2), 6u);
  EXPECT_TRUE(via_oc.allclose(ref, 2e-5f));
}

TEST(OpticalCore, LinearMatchesDequantizedReference) {
  util::Rng rng(5);
  const OpticalCore oc = make_oc();
  tensor::Tensor x({4, 40});
  x.fill_uniform(rng, 0.0f, 2.0f);
  tensor::Tensor w({10, 40});
  w.fill_normal(rng, 0.5f);
  tensor::Tensor b({10});
  b.fill_normal(rng, 0.2f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  const auto via_oc = oc.linear(xq, wq, b);
  const auto ref = tensor::linear_forward(tensor::dequantize(xq),
                                          tensor::dequantize(wq), b);
  EXPECT_TRUE(via_oc.allclose(ref, 2e-5f));
}

TEST(OpticalCore, RejectsSchemeMixups) {
  const OpticalCore oc = make_oc();
  tensor::Tensor x({1, 4});
  tensor::Tensor w({2, 4});
  const auto xq = tensor::quantize_unsigned(x, 4, 1.0);
  const auto wq = tensor::quantize_symmetric(w, 4, 1.0);
  // Acts must be unsigned, weights signed.
  EXPECT_THROW(oc.linear(wq, wq, tensor::Tensor()), std::invalid_argument);
  EXPECT_THROW(oc.linear(xq, xq, tensor::Tensor()), std::invalid_argument);
}

TEST(OpticalCore, TuningPowerAudit) {
  const OpticalCore oc = make_oc();
  const std::vector<int> zeros(10, 0);
  EXPECT_DOUBLE_EQ(oc.tuning_power_for_levels(zeros, 4), 0.0);
  const std::vector<int> maxed(10, 7);
  EXPECT_GT(oc.tuning_power_for_levels(maxed, 4), 0.0);
  // Symmetric in sign.
  const std::vector<int> negated(10, -7);
  EXPECT_NEAR(oc.tuning_power_for_levels(maxed, 4),
              oc.tuning_power_for_levels(negated, 4), 1e-15);
}

class OcPrecisionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OcPrecisionEquivalence, ConvEquivalentAtAllWeightPrecisions) {
  const int bits = GetParam();
  util::Rng rng(100 + bits);
  const OpticalCore oc = make_oc();
  const tensor::ConvSpec spec{2, 2, 3, 1, 0};
  tensor::Tensor x({1, 2, 6, 6});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({2, 2, 3, 3});
  w.fill_normal(rng, 0.5f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, bits);
  const auto via_oc = oc.conv2d(xq, wq, tensor::Tensor(), spec);
  const auto ref = tensor::conv2d_forward(tensor::dequantize(xq),
                                          tensor::dequantize(wq),
                                          tensor::Tensor(), spec);
  EXPECT_TRUE(via_oc.allclose(ref, 2e-5f)) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, OcPrecisionEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace lightator::core
