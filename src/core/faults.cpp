#include "core/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lightator::core {

std::size_t apply_weight_faults(tensor::QuantizedTensor& weights,
                                const FaultSpec& spec, util::Rng& rng) {
  if (!weights.is_signed) {
    throw std::invalid_argument("weight faults expect a signed tensor");
  }
  if (spec.stuck_cell_rate <= 0.0 && spec.ring_drift_sigma <= 0.0) return 0;
  const int m = weights.max_level();
  std::size_t hit = 0;
  for (auto& level : weights.levels) {
    if (spec.stuck_cell_rate > 0.0 && rng.bernoulli(spec.stuck_cell_rate)) {
      // Stuck anywhere in the level range, independent of the target.
      level = static_cast<std::int16_t>(
          static_cast<int>(
              rng.uniform_index(static_cast<std::uint64_t>(2 * m + 1))) -
          m);
      ++hit;
      continue;  // a dead heater ignores drift too: its level is pinned
    }
    if (spec.ring_drift_sigma > 0.0) {
      // Thermal/aging detuning: the cell realizes a nearby wrong level.
      const double drift = rng.normal(0.0, spec.ring_drift_sigma * m);
      const int drifted = std::clamp(
          static_cast<int>(std::lround(static_cast<double>(level) + drift)),
          -m, m);
      if (drifted != level) {
        level = static_cast<std::int16_t>(drifted);
        ++hit;
      }
    }
  }
  return hit;
}

std::size_t apply_activation_faults(tensor::QuantizedTensor& acts,
                                    const FaultSpec& spec, util::Rng& rng) {
  if (acts.is_signed) {
    throw std::invalid_argument("activation faults expect an unsigned tensor");
  }
  if (spec.dead_channel_rate <= 0.0) return 0;
  std::size_t hit = 0;
  for (auto& code : acts.levels) {
    if (!rng.bernoulli(spec.dead_channel_rate)) continue;
    code = 0;  // dark channel
    ++hit;
  }
  return hit;
}

}  // namespace lightator::core
