#!/usr/bin/env bash
# Tier-1 verify: configure, build, test. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j"$(nproc)"
