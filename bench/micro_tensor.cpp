// Microbenchmarks of the DNN substrate (GEMM / conv / quantization).
#include <benchmark/benchmark.h>

#include "tensor/gemm.hpp"
#include "tensor/gemm_s16.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"
#include "util/rng.hpp"

namespace {

using namespace lightator;
using namespace lightator::tensor;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(),
         n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The segment-blocked int16 GEMM under the OC "gemm" backend, at the K
// blocking the 9-MR arms impose.
void BM_GemmS16Segmented(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  std::vector<std::int16_t> a(n * n), b(n * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_index(15)) - 7;
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_index(16));
  std::vector<double> c(n * n);
  for (auto _ : state) {
    gemm_s16_segmented(n, n, n, a.data(), n, b.data(), n, /*segment=*/9,
                       c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmS16Segmented)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(2);
  const ConvSpec spec{64, 64, 3, 1, 1};
  Tensor x({1, 64, 16, 16});
  Tensor w({64, 64, 3, 3});
  x.fill_normal(rng, 1.0f);
  w.fill_normal(rng, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_forward(x, w, Tensor(), spec));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 16 * 16 * 9);
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  util::Rng rng(3);
  const ConvSpec spec{32, 32, 3, 1, 1};
  Tensor x({1, 32, 16, 16});
  Tensor w({32, 32, 3, 3});
  x.fill_normal(rng, 1.0f);
  w.fill_normal(rng, 0.1f);
  const Tensor dy = conv2d_forward(x, w, Tensor(), spec);
  for (auto _ : state) {
    Tensor dx, dw, db;
    conv2d_backward(x, w, spec, dy, &dx, &dw, &db);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_QuantizeSymmetric(benchmark::State& state) {
  util::Rng rng(4);
  Tensor x({1 << 16});
  x.fill_normal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_symmetric(x, 4));
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_QuantizeSymmetric);

void BM_MaxPool(benchmark::State& state) {
  util::Rng rng(5);
  Tensor x({1, 64, 32, 32});
  x.fill_normal(rng, 1.0f);
  std::vector<std::size_t> argmax;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maxpool_forward(x, 2, 2, &argmax));
  }
}
BENCHMARK(BM_MaxPool);

}  // namespace
