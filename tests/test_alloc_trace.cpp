// Zero-allocation regression gate for the memory-planned hot path.
//
// With -DLIGHTATOR_ALLOC_TRACE=ON the build interposes operator new/delete
// (util/alloc_trace.hpp) and these tests hold the compiler's promise to it:
// once an ExecutionContext's arena is warm, CompiledModel::run performs zero
// heap allocations — including the serving-shaped gather call with per-item
// scales and noise ids. In builds without the hook the tests skip.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "nn/models.hpp"
#include "obs/trace.hpp"
#include "serve/sched/admission.hpp"
#include "serve/sched/autoscaler.hpp"
#include "util/alloc_trace.hpp"

namespace lightator::core {
namespace {

TEST(AllocTrace, CounterSeesAllocations) {
  if (!util::alloc_trace::available()) {
    GTEST_SKIP() << "built without LIGHTATOR_ALLOC_TRACE";
  }
  util::alloc_trace::Scope scope;
  auto* p = new std::vector<int>(1024, 7);
  EXPECT_GE(scope.allocations(), 1u);
  delete p;
  EXPECT_GE(util::alloc_trace::deallocation_count(), 1u);
}

TEST(AllocTrace, SteadyStateCompiledRunIsAllocationFree) {
  if (!util::alloc_trace::available()) {
    GTEST_SKIP() << "built without LIGHTATOR_ALLOC_TRACE";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(201);
  const nn::Network net = nn::build_lenet(rng);
  const CompiledModel compiled = sys.compile(net, {});  // all passes on

  tensor::Tensor x({4, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  // Size-1 pool: batch shards run inline, so worker-thread allocations
  // cannot hide outside the bracketed scope (and there are none to hide —
  // the inline dispatch path is itself allocation-free).
  util::ThreadPool pool(1);
  ExecutionContext ctx;
  ctx.pool = &pool;

  for (int warm = 0; warm < 3; ++warm) {
    const BatchOutput out = compiled.run(x, ctx);
    ASSERT_EQ(out.items(), 4u);
  }

  float sink = 0.0f;
  util::alloc_trace::Scope scope;
  for (int r = 0; r < 5; ++r) {
    const BatchOutput out = compiled.run(x, ctx);
    sink += out.row(0)[0];
  }
  EXPECT_EQ(scope.allocations(), 0u)
      << "steady-state run() allocated (sink=" << sink << ")";
}

TEST(AllocTrace, SteadyStateServingShapedRunIsAllocationFree) {
  // The serving replica's exact call shape: gathered [1, ...] frames,
  // per-item activation scales, per-request noise stream ids, a reused
  // context. This is the path InferenceServer::worker_loop drives per batch.
  if (!util::alloc_trace::available()) {
    GTEST_SKIP() << "built without LIGHTATOR_ALLOC_TRACE";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(202);
  const nn::Network net = nn::build_lenet(rng);
  const CompiledModel compiled = sys.compile(net, {});

  std::vector<tensor::Tensor> storage;
  for (std::size_t i = 0; i < 4; ++i) {
    tensor::Tensor f({1, 1, 28, 28});
    f.fill_uniform(rng, 0.0f, 1.0f);
    storage.push_back(std::move(f));
  }
  std::vector<const tensor::Tensor*> frames;
  for (const auto& f : storage) frames.push_back(&f);

  util::ThreadPool pool(1);
  ExecutionContext ctx;
  ctx.pool = &pool;
  ctx.per_item_act_scale = true;
  ctx.noise_stream_ids = {40, 41, 42, 43};

  for (int warm = 0; warm < 3; ++warm) {
    const BatchOutput out = compiled.run(frames, ctx);
    ASSERT_EQ(out.items(), 4u);
  }

  float sink = 0.0f;
  util::alloc_trace::Scope scope;
  for (int r = 0; r < 5; ++r) {
    const BatchOutput out = compiled.run(frames, ctx);
    sink += out.row(3)[0];
  }
  EXPECT_EQ(scope.allocations(), 0u)
      << "steady-state serving-shaped run() allocated (sink=" << sink << ")";
}

TEST(AllocTrace, SteadyStateRunWithTracingEnabledIsAllocationFree) {
  // The telemetry plane's hot-path contract: with the global TraceRecorder
  // armed, every span CompiledModel::run emits (compiled_run + one per
  // weighted step) lands in the calling thread's pre-sized ring without
  // touching the heap. The thread's ring allocates once, on its first
  // event — covered by the warmup runs below, exactly like the arena.
  if (!util::alloc_trace::available()) {
    GTEST_SKIP() << "built without LIGHTATOR_ALLOC_TRACE";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(203);
  const nn::Network net = nn::build_lenet(rng);
  const CompiledModel compiled = sys.compile(net, {});

  tensor::Tensor x({4, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  util::ThreadPool pool(1);
  ExecutionContext ctx;
  ctx.pool = &pool;

  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.start();
  for (int warm = 0; warm < 3; ++warm) {
    const BatchOutput out = compiled.run(x, ctx);
    ASSERT_EQ(out.items(), 4u);
  }

  float sink = 0.0f;
  {
    util::alloc_trace::Scope scope;
    for (int r = 0; r < 5; ++r) {
      const BatchOutput out = compiled.run(x, ctx);
      sink += out.row(0)[0];
    }
    EXPECT_EQ(scope.allocations(), 0u)
        << "steady-state run() with tracing enabled allocated (sink=" << sink
        << ")";
  }
  rec.stop();
#if !defined(LIGHTATOR_DISABLE_TRACING)
  EXPECT_GE(rec.recorded(), 5u * 6u)
      << "tracing was enabled but run() recorded no spans";
#endif
  rec.clear();
}

TEST(AllocTrace, SchedulerDecisionPathsAreAllocationFree) {
  // The scheduler's per-submit and per-tick decisions sit on the serving
  // hot path: AdmissionController::admit runs before every push and
  // ReplicaAutoscaler::decide on every control tick. Both must stay
  // heap-free — a live SLO config must not cost the zero-alloc contract.
  if (!util::alloc_trace::available()) {
    GTEST_SKIP() << "built without LIGHTATOR_ALLOC_TRACE";
  }
  using namespace lightator::serve::sched;
  AdmissionOptions ao;
  ao.shed_depth = {0.25, 0.5, 1.0};
  const AdmissionController admission(ao, /*queue_capacity=*/64);
  LoadEstimator estimator;
  estimator.observe_batch(/*queue_ms=*/2.0, /*service_ms_per_request=*/1.5);

  AutoscalerOptions sc;
  sc.enabled = true;
  sc.min_replicas = 1;
  sc.max_replicas = 4;
  ReplicaAutoscaler autoscaler(sc, /*initial=*/2);

  bool admit_sink = false;
  std::size_t scale_sink = 0;
  util::alloc_trace::Scope scope;
  for (int r = 0; r < 100; ++r) {
    admit_sink ^= admission.admit(RequestClass::kBestEffort, 0.0,
                                  static_cast<std::size_t>(r % 64), estimator,
                                  autoscaler.current());
    admit_sink ^= admission.admit(RequestClass::kCritical, /*deadline_ms=*/5.0,
                                  static_cast<std::size_t>(r % 64), estimator,
                                  autoscaler.current());
    scale_sink += autoscaler.decide(r % 2 == 0 ? 10.0 : 0.1);
  }
  EXPECT_EQ(scope.allocations(), 0u)
      << "scheduler decision paths allocated (sinks=" << admit_sink << ","
      << scale_sink << ")";
}

}  // namespace
}  // namespace lightator::core
