// Timing model: per-layer latency and batched throughput.
//
// A layer runs in `rounds` remap rounds; each pays the MR settle time (all
// weight DACs retune in parallel) and then streams `cycles_per_round`
// symbols at the modulation rate. Two operating points:
//   * latency mode  — one frame, remap on the critical path (Fig. 10);
//   * batched mode  — `throughput_batch` frames share each weight-load, so
//     the remap cost is amortized (Table 1 FPS).
#pragma once

#include "core/arch_config.hpp"
#include "core/mapper.hpp"

namespace lightator::core {

struct LayerTiming {
  std::size_t rounds = 0;
  double remap_time = 0.0;        // total MR-retune time across rounds (s)
  double stream_time = 0.0;       // total symbol-streaming time, one frame (s)
  double latency = 0.0;           // remap + stream (single frame)
  double amortized_per_frame = 0.0;  // remap/B + stream (batched mode)
};

struct ModelTiming {
  std::vector<LayerTiming> layers;
  double latency = 0.0;            // single-frame, sum over layers
  double amortized_per_frame = 0.0;
  double fps_batched = 0.0;
  double fps_latency = 0.0;
};

class TimingModel {
 public:
  explicit TimingModel(ArchConfig config) : config_(config) {}

  LayerTiming layer_timing(const LayerMapping& mapping) const;

  ModelTiming model_timing(const std::vector<LayerMapping>& mappings) const;

  const ArchConfig& config() const { return config_; }

 private:
  ArchConfig config_;
};

}  // namespace lightator::core
