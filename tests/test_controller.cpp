#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/timing_model.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {
namespace {

Controller make_controller() { return Controller(ArchConfig::defaults()); }

std::vector<LayerMapping> lenet_mappings() {
  const Mapper mapper(ArchConfig::defaults());
  return mapper.map_model(nn::lenet_desc());
}

TEST(Controller, FrameScheduleMatchesTimingModel) {
  const Controller ctrl = make_controller();
  const auto mappings = lenet_mappings();
  const auto schedule = ctrl.schedule_frame(mappings);
  const TimingModel tm(ArchConfig::defaults());
  const auto mt = tm.model_timing(mappings);
  EXPECT_NEAR(schedule.makespan(), mt.latency, mt.latency * 1e-9);
  EXPECT_NEAR(schedule.total_remap_time() + schedule.total_stream_time(),
              schedule.makespan(), 1e-12);
}

TEST(Controller, PhasesAreSequentialAndNonOverlapping) {
  const auto schedule = make_controller().schedule_frame(lenet_mappings());
  for (std::size_t i = 1; i < schedule.phases.size(); ++i) {
    EXPECT_GE(schedule.phases[i].start,
              schedule.phases[i - 1].end() - 1e-15);
  }
}

TEST(Controller, EveryRemapPrecedesItsStream) {
  const auto schedule = make_controller().schedule_frame(lenet_mappings());
  for (std::size_t i = 0; i < schedule.phases.size(); ++i) {
    const auto& p = schedule.phases[i];
    if (p.kind != PhaseKind::kStream) continue;
    // A weighted layer's stream phase of round r must directly follow a
    // remap of the same layer/round.
    bool weighted = false;
    for (const auto& q : schedule.phases) {
      if (q.layer == p.layer && q.kind == PhaseKind::kRemap) weighted = true;
    }
    if (!weighted) continue;
    ASSERT_GT(i, 0u);
    const auto& prev = schedule.phases[i - 1];
    EXPECT_EQ(prev.kind, PhaseKind::kRemap);
    EXPECT_EQ(prev.layer, p.layer);
    EXPECT_EQ(prev.round, p.round);
  }
}

TEST(Controller, CaLayersHaveNoRemapPhases) {
  const auto schedule = make_controller().schedule_frame(lenet_mappings());
  for (const auto& p : schedule.phases) {
    if (p.layer.find("avgpool") != std::string::npos) {
      EXPECT_EQ(p.kind, PhaseKind::kStream);
    }
  }
}

TEST(Controller, BatchScheduleStretchesStreamOnly) {
  const Controller ctrl = make_controller();
  const auto mappings = lenet_mappings();
  const auto one = ctrl.schedule_frame(mappings);
  const auto batch = ctrl.schedule_batch(mappings, 64);
  EXPECT_EQ(batch.frames, 64u);
  EXPECT_NEAR(batch.total_remap_time(), one.total_remap_time(), 1e-12);
  EXPECT_NEAR(batch.total_stream_time(), 64.0 * one.total_stream_time(),
              1e-9);
  // Per-frame time shrinks with batching.
  EXPECT_LT(batch.makespan() / 64.0, one.makespan());
}

TEST(Controller, OpticalDutyLowInLatencyMode) {
  // FC-heavy LeNet in single-frame mode: the optical path is mostly dark
  // (remap-bound) — the Fig. 10 regime.
  const auto schedule = make_controller().schedule_frame(lenet_mappings());
  EXPECT_LT(schedule.optical_duty(), 0.5);
  // Batching flips it.
  const auto batch = make_controller().schedule_batch(lenet_mappings(), 256);
  EXPECT_GT(batch.optical_duty(), schedule.optical_duty());
}

TEST(Controller, TimelineRenders) {
  const auto schedule = make_controller().schedule_frame(lenet_mappings());
  const std::string art = schedule.render_timeline(60);
  EXPECT_NE(art.find('R'), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("conv5x5_1->6"), std::string::npos);
}

TEST(Controller, EmptyScheduleSafe) {
  ExecutionSchedule empty;
  EXPECT_DOUBLE_EQ(empty.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(empty.optical_duty(), 0.0);
  EXPECT_EQ(empty.render_timeline(), "(empty schedule)\n");
}

TEST(Controller, BufferAudit) {
  const Controller ctrl = make_controller();
  // LeNet's biggest adjacent activation maps easily fit 256 KiB.
  EXPECT_TRUE(ctrl.buffer_fits(nn::lenet_desc()));
  EXPECT_GT(ctrl.peak_buffer_bytes(nn::lenet_desc()), 0.0);
  // VGG16 at 224x224: conv1 produces 64x224x224 (1.6M codes) — the biggest
  // pair exceeds a 256 KiB buffer; the audit must catch it.
  EXPECT_FALSE(ctrl.buffer_fits(nn::vgg16_desc()));
  // VGG9 at 32x32 fits.
  EXPECT_TRUE(ctrl.buffer_fits(nn::vgg9_desc()));
}

TEST(Controller, RejectsZeroFrames) {
  const Controller ctrl = make_controller();
  EXPECT_THROW(ctrl.schedule_batch(lenet_mappings(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace lightator::core
