// Fig. 9: layer-wise power breakdown of VGG9 on [3:4], the L8 component pie
// (DACs > 85%), the CA pre-compression experiment (paper: 42.2% first-
// layer power reduction), and a modeled-vs-measured per-layer report from a
// functional inference through the shared ExperimentRunner context.
//
// Runtime knobs (key=value): meas.batch, meas.width, meas.skip=1.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "nn/model_desc.hpp"
#include "nn/models.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  const util::Config cfg = bench::parse_args(argc, argv);
  const core::ArchConfig arch = core::ArchConfig::from_config(cfg);
  const core::LightatorSystem sys(arch);
  const auto schedule = nn::PrecisionSchedule::uniform(3);

  core::ExperimentOptions eo;
  eo.collect_stats = true;
  core::ExperimentRunner runner(eo);

  bench::print_header(
      "Fig. 9 - VGG9 layer-wise power breakdown on [3:4]",
      "DAC 2024 Lightator, Fig. 9 (VGG9 L1..L12, L8 pie, CA front end)");

  const auto report = sys.analyze(nn::vgg9_desc(), schedule);
  util::TablePrinter table(bench::power_table_header());
  std::size_t li = 1;
  for (const auto& layer : report.layers) {
    auto row = bench::power_row(layer);
    row[0] = "L" + std::to_string(li++) + " " + row[0];
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("max layer power: %s (paper Table 1: 2.71 W at [3:4])\n\n",
              util::format_power(report.max_power).c_str());

  // L8 pie chart (index 7: the second 256-channel conv).
  const auto& l8 = report.layers[7];
  const auto& p = l8.power.streaming;
  const double total = p.total();
  std::printf("--- L8 (%s) component shares (paper pie: DACs 85%%, DMVA 9%%, "
              "TUN 4%%, BPD 1%%, ADCs <1%%, Misc <1%%) ---\n",
              l8.name.c_str());
  std::printf("  DACs: %5.1f%%   DMVA: %4.1f%%   TUN: %4.1f%%   BPD: %4.1f%%   "
              "ADCs: %4.1f%%   Misc: %4.1f%%\n\n",
              100 * p.dac / total, 100 * p.dmva / total, 100 * p.tun / total,
              100 * p.bpd / total, 100 * p.adc / total, 100 * p.misc / total);

  // CA front-end experiment: fused grayscale + 2x2 pool before L1.
  core::AnalyzeOptions opts;
  opts.ca_frontend = core::CaOptions{2, true, 4};
  opts.ca_in_h = 32;
  opts.ca_in_w = 32;
  const auto compressed =
      sys.analyze(nn::vgg9_desc(10, 1.0, 16, 16, 1), schedule, opts);
  const double l1_plain = report.layers[0].power.average.total();
  const double l1_ca = compressed.layers[0].power.average.total() +
                       compressed.layers[1].power.average.total();
  std::printf("--- CA pre-compression (Eq. 1: gray + 2x2 avg pool) ---\n");
  std::printf("  L1 power without CA: %s\n",
              util::format_power(l1_plain).c_str());
  std::printf("  CA + L1 power with CA front end: %s\n",
              util::format_power(l1_ca).c_str());
  std::printf("  first-layer power reduction: %.1f%% (paper: 42.2%%)\n\n",
              100.0 * (1.0 - l1_ca / l1_plain));

  // Modeled-vs-measured: a functional VGG9 inference through the runner's
  // context puts the architecture models' per-layer latency/energy next to
  // the simulator's own wall clock. The slim width keeps the functional pass
  // CPU-feasible; the modeled numbers describe the same slim geometry.
  if (!cfg.get_bool("meas.skip", false)) {
    const auto batch =
        static_cast<std::size_t>(cfg.get_int("meas.batch", 8));
    const double width = cfg.get_double("meas.width", 0.25);
    util::Rng rng(7);
    nn::Network net = nn::build_vgg9(rng, 10, width);
    tensor::Tensor x({batch, 3, 32, 32});
    x.fill_uniform(rng, 0.0f, 1.0f);
    core::CompileOptions co;
    co.backend = runner.options().backend;
    co.schedule = schedule;
    sys.compile(net, co).run(x, runner.context());
    std::printf("--- modeled vs measured (VGG9 width=%.2f, batch=%zu, "
                "backend=%s, %zu threads) ---\n%s",
                width, batch, runner.options().backend.c_str(),
                runner.pool().size(),
                core::format_stats_report(runner.context().stats).c_str());
  }
  return 0;
}
