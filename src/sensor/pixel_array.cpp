#include "sensor/pixel_array.hpp"

#include <stdexcept>

namespace lightator::sensor {

PixelArray::PixelArray(PixelArrayParams params)
    : params_(params),
      diode_(params.diode),
      crc_(params.crc, diode_),
      voltages_(params.rows * params.cols, diode_.min_voltage()) {
  if (params_.rows == 0 || params_.cols == 0) {
    throw std::invalid_argument("pixel array must be non-empty");
  }
}

void PixelArray::capture(const Image& scene, util::Rng* rng) {
  if (scene.channels() != 3 || scene.height() != params_.rows ||
      scene.width() != params_.cols) {
    throw std::invalid_argument("scene must be RGB and match the array size");
  }
  const Image raw = bayer_mosaic(scene);
  for (std::size_t y = 0; y < params_.rows; ++y) {
    for (std::size_t x = 0; x < params_.cols; ++x) {
      const double b = raw.at(y, x);
      voltages_[y * params_.cols + x] =
          rng == nullptr ? diode_.expose(b) : diode_.expose_noisy(b, *rng);
    }
  }
}

CodeFrame PixelArray::read_codes(util::Rng* rng) const {
  CodeFrame frame;
  frame.rows = params_.rows;
  frame.cols = params_.cols;
  frame.codes.resize(voltages_.size());
  for (std::size_t i = 0; i < voltages_.size(); ++i) {
    frame.codes[i] = static_cast<std::uint8_t>(crc_.read_code(voltages_[i], rng));
  }
  return frame;
}

double PixelArray::voltage(std::size_t y, std::size_t x) const {
  if (y >= params_.rows || x >= params_.cols) {
    throw std::out_of_range("pixel index out of range");
  }
  return voltages_[y * params_.cols + x];
}

double PixelArray::readout_energy_per_frame() const {
  return crc_.conversion_energy() *
         static_cast<double>(params_.rows * params_.cols);
}

double PixelArray::static_power() const {
  return params_.pixel_static_power *
         static_cast<double>(params_.rows * params_.cols);
}

}  // namespace lightator::sensor
