#include "optics/arm.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::optics {

MrArm::MrArm(ArmParams params)
    : params_(params),
      grid_(params.num_cells, 1550.0 * units::kNm, 1.6 * units::kNm),
      bpd_(params.detector),
      rail_(params.waveguide, params.rail_length,
            /*num_couplers=*/2)  // input splitter + output combiner
{
  if (params_.num_cells == 0) throw std::invalid_argument("arm needs >=1 cell");
  if (params_.activation_levels < 1) {
    throw std::invalid_argument("arm needs >=1 activation level");
  }
  cells_.reserve(params_.num_cells);
  for (std::size_t i = 0; i < params_.num_cells; ++i) {
    cells_.emplace_back(params_.ring, grid_.wavelength(i), params_.weight_bits);
  }
  // Calibration: a full-scale activation (P_max) through a weight of exactly
  // +1 on a lossless arm would produce R * P_max * (1 - T_min). Real rails
  // add the waveguide loss and one insertion loss per ring pass.
  const Vcsel reference(params_.vcsel, grid_.wavelength(0));
  const double per_ring_loss =
      units::db_loss_to_linear(params_.ring.insertion_loss_db);
  const double chain_loss =
      rail_.transmission() *
      std::pow(per_ring_loss, static_cast<double>(params_.num_cells));
  calibration_ = params_.detector.responsivity * reference.max_optical_power() *
                 chain_loss * (1.0 - params_.ring.extinction) *
                 params_.ring.weight_headroom;
}

void MrArm::set_weights(std::span<const double> weights) {
  if (weights.size() != cells_.size()) {
    throw std::invalid_argument("weight count does not match arm cells");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].set_weight(weights[i]);
  }
}

std::vector<double> MrArm::nominal_weights() const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(c.nominal_weight());
  return out;
}

double MrArm::propagate(std::span<const int> activation_codes,
                        util::Rng* rng) const {
  if (activation_codes.size() != cells_.size()) {
    throw std::invalid_argument("activation count does not match arm cells");
  }
  OpticalSignal positive(grid_.num_channels());
  OpticalSignal negative(grid_.num_channels());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Vcsel laser(params_.vcsel, grid_.wavelength(i));
    laser.drive_code(activation_codes[i]);
    positive.set_power(i, laser.optical_power());
    negative.set_power(i, laser.optical_power());
  }
  rail_.propagate(positive);
  rail_.propagate(negative);
  for (const auto& cell : cells_) {
    cell.positive_ring().propagate_through(positive, grid_);
    cell.negative_ring().propagate_through(negative, grid_);
  }
  return rng == nullptr ? bpd_.net_current(positive, negative)
                        : bpd_.net_current_noisy(positive, negative, *rng);
}

double MrArm::compute(std::span<const int> activation_codes) const {
  return propagate(activation_codes, nullptr) / calibration_;
}

double MrArm::compute_noisy(std::span<const int> activation_codes,
                            util::Rng& rng) const {
  return propagate(activation_codes, &rng) / calibration_;
}

double MrArm::ideal(std::span<const int> activation_codes) const {
  if (activation_codes.size() != cells_.size()) {
    throw std::invalid_argument("activation count does not match arm cells");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const int code = activation_codes[i];
    if (code < 0 || code > params_.activation_levels) {
      throw std::out_of_range("activation code out of range");
    }
    const double a = static_cast<double>(code) /
                     static_cast<double>(params_.activation_levels);
    acc += a * cells_[i].nominal_weight();
  }
  return acc;
}

double MrArm::tuning_power() const {
  double sum = 0.0;
  for (const auto& c : cells_) sum += c.tuning_power();
  return sum;
}

}  // namespace lightator::optics
