#include "nn/trainer.hpp"

#include <cstdio>

#include "tensor/activations.hpp"
#include "util/logging.hpp"

namespace lightator::nn {

EpochStats Trainer::fit(Network& net, Dataset& train) {
  if (!rng_seeded_) {
    shuffle_rng_ = util::Rng(params_.shuffle_seed);
    rng_seeded_ = true;
  }
  EpochStats stats;
  for (std::size_t e = 0; e < params_.epochs; ++e) {
    stats = train_epoch(net, train);
    if (params_.verbose) {
      LT_LOG_INFO("%s epoch %zu/%zu: loss=%.4f acc=%.2f%%", net.name().c_str(),
                  e + 1, params_.epochs, stats.loss, 100.0 * stats.accuracy);
    }
    sgd_.set_learning_rate(sgd_.learning_rate() * params_.lr_decay);
  }
  return stats;
}

EpochStats Trainer::train_epoch(Network& net, Dataset& train) {
  train.shuffle(shuffle_rng_);
  const std::size_t n = train.size();
  double loss_sum = 0.0;
  std::size_t correct = 0, seen = 0;
  for (std::size_t begin = 0; begin + params_.batch_size <= n;
       begin += params_.batch_size) {
    const auto x = train.batch_images(begin, params_.batch_size);
    const auto y = train.batch_labels(begin, params_.batch_size);
    const auto logits = net.forward(x, /*training=*/true);
    tensor::Tensor dlogits;
    loss_sum += tensor::softmax_cross_entropy(logits, y, &dlogits) *
                static_cast<double>(params_.batch_size);
    const auto preds = tensor::predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y[i]) ++correct;
    }
    seen += params_.batch_size;
    net.backward(dlogits);
    sgd_.step(net.params(), net.grads());
  }
  EpochStats stats;
  if (seen > 0) {
    stats.loss = loss_sum / static_cast<double>(seen);
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  }
  return stats;
}

double Trainer::evaluate(Network& net, const Dataset& data,
                         std::size_t batch_size) {
  const std::size_t n = data.size();
  std::size_t correct = 0, seen = 0;
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t count = std::min(batch_size, n - begin);
    const auto x = data.batch_images(begin, count);
    const auto y = data.batch_labels(begin, count);
    const auto logits = net.forward(x, /*training=*/false);
    const auto preds = tensor::predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y[i]) ++correct;
    }
    seen += count;
  }
  return seen == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(seen);
}

}  // namespace lightator::nn
