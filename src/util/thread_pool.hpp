// Minimal work-sharing thread pool for batch-parallel execution.
//
// The simulator's hot loops (OC backend conv/fc, tensor conv2d_forward) are
// embarrassingly parallel over the batch dimension, so the only primitive we
// need is a blocking parallel_for. The pool follows the NNPACK idiom: one
// lazily-created process-global pool shared by every caller, sized from
// hardware_concurrency (override with LIGHTATOR_THREADS or
// set_global_threads). Work items are handed out via an atomic cursor, so
// the partition adapts to uneven per-item cost; the calling thread
// participates, which makes a size-1 pool exactly equivalent to a serial
// loop (no worker threads, no locks on that path).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace lightator::util {

class ThreadPool {
 public:
  /// `num_threads` counts the caller as one of the workers; 0 means
  /// hardware_concurrency. A pool of size <= 1 spawns no threads and runs
  /// everything inline.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Runs fn(i) for every i in [begin, end), sharded across the pool, and
  /// blocks until all items complete. The caller participates in the work.
  /// The first exception thrown by any item is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Splits [begin, end) into at most `max_shards` contiguous ranges and runs
  /// fn(shard, lo, hi) for each. The shard count never exceeds the item count
  /// or the pool size, so a caller provisioning per-shard scratch for
  /// min(max_shards, size()) slots always has a slot per shard. The
  /// single-shard case calls fn directly — no std::function conversion, no
  /// heap allocation — which keeps serial steady-state execution on the
  /// allocation-free path.
  template <typename F>
  void for_shards(std::size_t begin, std::size_t end, std::size_t max_shards,
                  F&& fn) {
    if (end <= begin) return;
    const std::size_t count = end - begin;
    std::size_t shards = count < max_shards ? count : max_shards;
    if (shards > size_) shards = size_;
    if (shards <= 1 || impl_ == nullptr) {
      fn(std::size_t{0}, begin, end);
      return;
    }
    parallel_for(0, shards, [&](std::size_t s) {
      const std::size_t lo = begin + s * count / shards;
      const std::size_t hi = begin + (s + 1) * count / shards;
      if (lo < hi) fn(s, lo, hi);
    });
  }

  /// The shared process-global pool (created on first use). Size comes from
  /// set_global_threads() if called, else LIGHTATOR_THREADS, else
  /// hardware_concurrency.
  static ThreadPool& global();

  /// Replaces the global pool with one of `num_threads` (0 = auto). Not safe
  /// to call while another thread is inside the global pool.
  static void set_global_threads(std::size_t num_threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t size_ = 1;
};

/// parallel_for on `pool`, or on the global pool when `pool` is null.
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace lightator::util
