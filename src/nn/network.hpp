// Sequential network container: owns layers, runs forward/backward, exposes
// parameters for the optimizer and layer structure for the hardware mapper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace lightator::nn {

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  // Move-only (owns layer state).
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer; returns a reference to it for configuration.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Independent deep copy (parameters, QAT flags, activation scales). The
  /// replica shares no state with the original, so it can run forward or
  /// backward passes concurrently with it — the building block for sharded
  /// training and parallel Monte-Carlo trials.
  Network clone() const;

  /// Full forward pass. `training=true` caches activations for backward.
  Tensor forward(const Tensor& x, bool training = false);

  /// Backward from dL/dlogits; accumulates gradients in each layer.
  void backward(const Tensor& dlogits);

  /// All trainable parameters / their gradients, flattened across layers.
  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();

  /// Total parameter element count.
  std::size_t num_params() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace lightator::nn
