#include "util/logging.hpp"

#include <cstdio>

namespace lightator::util {
namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (level < g_level) return;
  // Strip directories from __FILE__ for terse output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] ", level_name(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace lightator::util
