#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace lightator::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs >=1 column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    throw std::invalid_argument("row has more cells than header");
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << escape(cells[c]);
      if (c + 1 < cells.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_sig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_power(double watts) {
  const double a = std::fabs(watts);
  char buf[64];
  if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f W", watts);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f mW", watts * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f uW", watts * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f nW", watts * 1e9);
  }
  return buf;
}

std::string format_time(double seconds) {
  const double a = std::fabs(seconds);
  char buf[64];
  if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace lightator::util
