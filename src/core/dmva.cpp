#include "core/dmva.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lightator::core {

Dmva::Dmva(const ArchConfig& config) : config_(config) {}

std::vector<int> Dmva::codes_from_frame(const sensor::CodeFrame& frame) const {
  std::vector<int> codes;
  codes.reserve(frame.codes.size());
  for (std::uint8_t c : frame.codes) {
    if (c > config_.vcsel.levels) {
      throw std::out_of_range("pixel code exceeds VCSEL levels");
    }
    codes.push_back(static_cast<int>(c));
  }
  return codes;
}

std::vector<int> Dmva::codes_from_activations(const std::vector<float>& acts,
                                              double scale) const {
  if (scale <= 0.0) throw std::invalid_argument("activation scale must be > 0");
  std::vector<int> codes;
  codes.reserve(acts.size());
  const int levels = config_.vcsel.levels;
  for (float a : acts) {
    const double normalized = static_cast<double>(a) / scale;
    const int code = static_cast<int>(
        std::lround(std::clamp(normalized, 0.0, 1.0) * levels));
    codes.push_back(code);
  }
  return codes;
}

double Dmva::optical_power(int code) const {
  optics::Vcsel laser(config_.vcsel, 1550.0 * units::kNm);
  laser.drive_code(code);
  return laser.optical_power();
}

double Dmva::max_optical_power() const {
  const optics::Vcsel laser(config_.vcsel, 1550.0 * units::kNm);
  return laser.max_optical_power();
}

double Dmva::symbol_energy() const {
  optics::Vcsel laser(config_.vcsel, 1550.0 * units::kNm);
  laser.drive_code(config_.vcsel.levels / 2);
  return laser.driver_symbol_energy() +
         laser.electrical_power() / config_.modulation_rate;
}

}  // namespace lightator::core
