// Uniform quantization helpers shared by the DNN substrate (QAT / quantized
// inference) and the hardware models (MR weight levels, 4-bit VCSEL
// activation levels, thermometer codes for the CRC and VCSEL driver).
#pragma once

#include <cstdint>
#include <vector>

namespace lightator::util {

/// Symmetric signed quantizer: values in [-scale, scale] map to integer
/// levels in [-(2^(bits-1)-1), +(2^(bits-1)-1)]. This is the weight scheme:
/// the MR weight cell realizes signed levels as a differential pair.
/// bits == 1 is the binarized case (levels {-1, +1}, sign(w) * scale) used
/// by the LightBulb / ROBIN baselines.
struct SymmetricQuantizer {
  int bits = 4;
  double scale = 1.0;  // |value| that maps to the largest level

  int max_level() const { return bits == 1 ? 1 : (1 << (bits - 1)) - 1; }

  /// Nearest-level quantization, saturating.
  int quantize(double value) const;

  /// Level -> real value.
  double dequantize(int level) const;

  /// quantize-then-dequantize ("fake quant"), the QAT forward transform.
  double fake_quant(double value) const { return dequantize(quantize(value)); }
};

/// Unsigned affine quantizer for activations: [0, scale] maps to
/// [0, 2^bits - 1]. The CRC and VCSEL driver realize exactly this with
/// thermometer codes for bits == 4.
struct UnsignedQuantizer {
  int bits = 4;
  double scale = 1.0;  // value that maps to the largest code

  int max_code() const { return (1 << bits) - 1; }

  int quantize(double value) const;  // clamps to [0, max_code]
  double dequantize(int code) const;
  double fake_quant(double value) const { return dequantize(quantize(value)); }
};

/// Thermometer (unary) code of `code` in `width` bits: the lowest `code`
/// bits set. The CRC emits this from its comparator bank and the VCSEL
/// driver consumes it to enable driving transistors.
std::vector<bool> thermometer_encode(int code, int width);

/// Number of set bits == decoded value. Throws on a non-monotone code
/// (a bubble), which would indicate a comparator offset fault.
int thermometer_decode(const std::vector<bool>& code);

/// True if the code is monotone non-increasing (1...10...0).
bool thermometer_valid(const std::vector<bool>& code);

/// Largest absolute value in a span; returns 0 for empty input. Used to pick
/// per-tensor quantizer scales.
double max_abs(const float* data, std::size_t n);

}  // namespace lightator::util
