// Edge pipeline (paper Fig. 2): a 256x256 scene hits the global-shutter
// RGGB imager, the CRC reads 4-bit codes with no ADC, the Compressive
// Acquisitor fuses RGB->grayscale with 2x2 average pooling in one optical
// pass, and the result is handed to the DMVA as the next layer's input.
// Dumps PNM images of each stage and prints the acquisition energy budget.
// Finishes with the serving mode: a burst of scenes acquired with seeded
// sensor noise and submitted through the InferenceServer, whose dynamic
// batcher coalesces them into batched OC forwards — with the serving report
// (throughput, batch histogram, latency percentiles).
//
//   ./examples/edge_pipeline [out_dir=.]
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/compressive_acquisitor.hpp"
#include "core/experiment.hpp"
#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "sensor/pixel_array.hpp"
#include "serve/server.hpp"
#include "tensor/activations.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workloads/image_io.hpp"
#include "workloads/scenes.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const std::string out_dir = cfg.get_string("out_dir", ".");
  const core::ArchConfig arch = core::ArchConfig::defaults();

  std::printf("1) synthesizing a 256x256 scene...\n");
  util::Rng rng(7);
  const sensor::Image scene = workloads::make_blob_scene(256, 256, rng);
  workloads::write_pnm(scene, out_dir + "/scene.ppm");

  std::printf("2) global-shutter capture through the RGGB filter + "
              "CRC readout (ADC-less, 15 comparators -> 4-bit)...\n");
  sensor::PixelArray array(arch.sensor);
  array.capture(scene, &rng);  // includes photon shot / read noise
  const sensor::CodeFrame frame = array.read_codes(&rng);
  sensor::Image raw(frame.rows, frame.cols, 1);
  for (std::size_t y = 0; y < frame.rows; ++y) {
    for (std::size_t x = 0; x < frame.cols; ++x) {
      raw.at(y, x) = static_cast<float>(frame.at(y, x)) / 15.0f;
    }
  }
  workloads::write_pnm(raw, out_dir + "/bayer_codes.pgm");
  std::printf("   frame readout energy: %.2f nJ (%zu pixels x 15 "
              "comparators)\n",
              array.readout_energy_per_frame() * 1e9,
              frame.rows * frame.cols);

  std::printf("3) compressive acquisition (Eq. 1: gray + 2x2 pool, 12x data "
              "reduction)...\n");
  const sensor::Image rgb = sensor::bayer_demosaic(raw);
  const core::CompressiveAcquisitor ca({2, true, 4}, arch);
  const sensor::Image compressed = ca.apply(rgb);
  workloads::write_pnm(compressed, out_dir + "/compressed.pgm");

  const auto mapping = ca.mapping(256, 256);
  const core::PowerModel pm(arch);
  const auto power = pm.layer_power(mapping, 4);
  const core::TimingModel tm(arch);
  const auto timing = tm.layer_timing(mapping);
  std::printf("   CA banks: %zu arms, %zu pre-set MRs, %zu cycles\n",
              mapping.arms_active, mapping.mrs_active,
              mapping.rounds * mapping.cycles_per_round);
  std::printf("   CA power %s, pass latency %s (no DAC, no remap)\n",
              util::format_power(power.average.total()).c_str(),
              util::format_time(timing.latency).c_str());

  std::printf("4) handing %zux%zu grayscale to the DMVA as next-layer "
              "activations...\n",
              compressed.height(), compressed.width());
  core::Dmva dmva(arch);
  dmva.select(core::DmvaSource::kLayerBuffer);
  std::vector<float> acts(compressed.data().begin(), compressed.data().end());
  const auto codes = dmva.codes_from_activations(acts, 1.0);
  std::size_t lit = 0;
  for (int c : codes) lit += c > 0 ? 1 : 0;
  std::printf("   %zu/%zu VCSEL channels lit; per-symbol energy %.2f fJ\n",
              lit, codes.size(), dmva.symbol_energy() * 1e15);

  std::printf("\nwrote %s/scene.ppm, %s/bayer_codes.pgm, %s/compressed.pgm\n",
              out_dir.c_str(), out_dir.c_str(), out_dir.c_str());

  std::printf("\n5) serving mode: a burst of 56x56 scenes -> CA(gray, 2x2) -> "
              "28x28 LeNet inputs,\n   submitted through the InferenceServer "
              "and coalesced by its dynamic batcher...\n");
  {
    const core::LightatorSystem sys(arch);
    util::Rng wrng(21);
    nn::Network net = nn::build_lenet(wrng);  // untrained: pipeline demo

    serve::ServerOptions so;
    so.replicas = 2;
    so.batch.max_batch = 8;
    so.batch.max_wait_us = 2000.0;
    serve::InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4),
                                  so);

    // Acquire the burst with per-frame seeded sensor noise, then submit each
    // frame as its own request — the batcher reassembles the batch.
    const std::optional<core::CaOptions> ca = core::CaOptions{2, true, 4};
    const std::uint64_t sensor_seed = 99;
    std::vector<serve::SubmitTicket> tickets;
    for (int i = 0; i < 6; ++i) {
      const sensor::Image scene = workloads::make_blob_scene(56, 56, rng);
      util::Rng noise(core::mix_seed(sensor_seed, /*stream=*/0,
                                     static_cast<std::size_t>(i)));
      tickets.push_back(server.submit(sys.acquire(scene, ca, &noise)));
    }
    std::printf("   %zu frames through %zu replicas -> class predictions:",
                tickets.size(), server.replica_count());
    for (auto& ticket : tickets) {
      if (ticket.status != serve::SubmitStatus::kAccepted) {
        std::printf(" (rejected)");
        continue;
      }
      const auto result = ticket.result.get();
      // Classify straight off the zero-copy row view into the shared batch
      // logits — no per-request output copy anywhere on this path.
      const std::span<const float> logits = result.output();
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.size(); ++c) {
        if (logits[c] > logits[best]) best = c;
      }
      std::printf(" %zu", best);
    }
    std::printf("\n   serving report:\n%s", server.stats().to_text().c_str());
  }
  return 0;
}
