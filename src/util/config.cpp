#include "util/config.hpp"

#include <sstream>
#include <stdexcept>

namespace lightator::util {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value argument, got: " + token);
    }
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    if (token.empty() || token[0] == '#') {
      // Skip the rest of a comment line.
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value pair, got: " + token);
    }
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not a number: " +
                                it->second);
  }
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not an int: " +
                                it->second);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key '" + key + "' is not a bool: " + v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::dump() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << k << '=' << v << '\n';
  return out.str();
}

}  // namespace lightator::util
