#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/power_model.hpp"

namespace lightator::core {
namespace {

Calibrator make_calibrator() { return Calibrator(ArchConfig::defaults()); }

TEST(Calibrator, TableCoversAllLevels) {
  const auto table = make_calibrator().calibrate(4);
  EXPECT_EQ(table.entries.size(), 15u);  // -7..7
  EXPECT_EQ(table.entries.front().level, -7);
  EXPECT_EQ(table.entries.back().level, 7);
  EXPECT_NO_THROW(table.entry_for_level(0));
  EXPECT_THROW(table.entry_for_level(8), std::out_of_range);
}

TEST(Calibrator, ResidualErrorSmallWith10BitDac) {
  const auto table = make_calibrator().calibrate(4, 10);
  // A 10-bit heater DAC resolves every 4-bit weight level to well under
  // half an LSB of the weight grid (1/14).
  EXPECT_LT(table.max_error(), 0.5 / 7.0);
  EXPECT_LT(table.rms_error(), table.max_error() + 1e-12);
}

TEST(Calibrator, CoarseDacDegradesCalibration) {
  const Calibrator cal = make_calibrator();
  const double fine = cal.calibrate(4, 12).rms_error();
  const double coarse = cal.calibrate(4, 4).rms_error();
  EXPECT_GT(coarse, fine);
}

TEST(Calibrator, DacCodesMonotoneInLevelMagnitude) {
  const auto table = make_calibrator().calibrate(3);
  // |level| up => more detuning => larger DAC code.
  int prev_code = -1;
  for (int level = 0; level <= 3; ++level) {
    const auto& e = table.entry_for_level(level);
    EXPECT_GT(e.dac_code, prev_code);
    prev_code = e.dac_code;
  }
}

TEST(Calibrator, ZeroLevelCostsNoHeaterPower) {
  const auto table = make_calibrator().calibrate(4);
  EXPECT_NEAR(table.entry_for_level(0).heater_power, 0.0, 1e-9);
  EXPECT_GT(table.entry_for_level(7).heater_power, 0.0);
}

TEST(Calibrator, MeanHeaterPowerMatchesPowerModelExpectation) {
  const ArchConfig cfg = ArchConfig::defaults();
  const auto table = Calibrator(cfg).calibrate(4);
  const PowerModel pm(cfg);
  // One ring of the differential pair is active per level; the power model's
  // per-cell expectation assumes the same uniform level usage.
  EXPECT_NEAR(table.mean_heater_power(),
              pm.expected_tuning_power_per_cell(4),
              0.15 * pm.expected_tuning_power_per_cell(4));
}

TEST(Calibrator, MeasureWeightMonotoneInCode) {
  const Calibrator cal = make_calibrator();
  double prev = -1.0;
  for (int code = 0; code <= 255; code += 16) {
    const double w = cal.measure_weight(code, 8);
    EXPECT_GE(w, prev);
    prev = w;
  }
  EXPECT_THROW(cal.measure_weight(-1, 8), std::out_of_range);
  EXPECT_THROW(cal.measure_weight(256, 8), std::out_of_range);
}

TEST(Calibrator, DifferentialRejectsCommonModeDrift) {
  const Calibrator cal = make_calibrator();
  const auto table = cal.calibrate(4);
  const double baseline = cal.drift_rms_error(table, 0.0);
  // 10 pm of common-mode drift (a fraction of the 100 pm FWHM): the
  // differential cell must keep the error well under one weight LSB.
  const double drifted = cal.drift_rms_error(table, 0.01e-9);
  EXPECT_LT(baseline, 0.02);
  EXPECT_LT(drifted, 1.0 / 7.0);
  // More drift, more error.
  EXPECT_GT(cal.drift_rms_error(table, 0.05e-9), drifted);
}

TEST(Calibrator, RejectsBadArguments) {
  const Calibrator cal = make_calibrator();
  EXPECT_THROW(cal.calibrate(0), std::invalid_argument);
  EXPECT_THROW(cal.calibrate(9), std::invalid_argument);
  EXPECT_THROW(cal.calibrate(4, 1), std::invalid_argument);
  EXPECT_THROW(cal.calibrate(4, 17), std::invalid_argument);
}

class CalibratorBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(CalibratorBitsSweep, AllPrecisionsCalibratable) {
  const int bits = GetParam();
  const auto table = make_calibrator().calibrate(bits, 10);
  const int m = bits == 1 ? 1 : (1 << (bits - 1)) - 1;
  EXPECT_EQ(table.entries.size(), static_cast<std::size_t>(2 * m + 1));
  EXPECT_LT(table.max_error(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Bits, CalibratorBitsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace lightator::core
