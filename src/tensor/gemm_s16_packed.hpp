// Packed, runtime-dispatched SIMD layer over the segmented int16 GEMM.
//
// The scalar gemm_s16_segmented streams B rows out of the im2col panel one k
// at a time; the packed layer instead reshapes both operands once into
// SIMD-friendly panels and runs an AVX2 microkernel over them:
//
//   * PackedA — the left operand (weights for conv, activation codes for fc)
//     with every arm segment zero-padded to an even length, so a 32-bit
//     broadcast always reads a (k, k+1) pair from ONE segment (the trailing
//     pad pairs a live term with a zero — a dark channel, exactly what the
//     OC's padded arm cells compute).
//   * PackedB — the right operand (im2col panel for conv, Wᵀ for fc) in
//     strip-major layout: 16-column strips, and within a strip the two rows
//     of each k-pair interleaved per column. One `_mm256_madd_epi16` then
//     multiplies a broadcast A pair against 8 columns' (k, k+1) values and
//     pair-sums them — and because the pads align, every pair-sum stays
//     inside one arm segment.
//
// The microkernel accumulates a segment's pair-sums in int32 lanes (each
// lane is one output column), spills to the double accumulator only at arm
// boundaries — the BPD emission points — and widens to int64 lanes for the
// overflow-unsafe flat-segment mode, chosen by the same magnitude-scan
// predicate as the scalar kernel (gemm_s16_int32_safe). Every product is an
// exact integer and segments are reduced in the scalar kernel's order, so
// the packed path is bit-exact with gemm_s16_segmented and with the scalar
// reference backend; a portable scalar-on-packed kernel backs the same API
// on non-AVX2 hardware (and under LIGHTATOR_DISABLE_SIMD / the
// simd::set_simd_enabled(false) test hook).
//
// Weights are packed once per compiled layer (see core::Engine::compile /
// QuantizedTensor::prepack) and shared by every consumer of the
// CompiledModel; the activation-side panel is packed per forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/simd.hpp"

namespace lightator::tensor {

/// Columns per PackedB strip: 16 int32 accumulator lanes = 2 AVX2 registers.
inline constexpr std::size_t kPackedCols = 16;

/// Left operand, row-major with arm segments padded to even length.
/// Rows are `kp` int16 wide; pair 2p / 2p+1 of every row belongs to one
/// segment by construction. A panel either owns its storage (`data`, the
/// pack_*_s16 functions) or borrows caller storage (`ext`, the *_into
/// variants used by the arena-backed hot path); base() is the live pointer.
struct PackedA {
  std::vector<std::int16_t> data;
  const std::int16_t* ext = nullptr;
  std::size_t m = 0;        // rows
  std::size_t k = 0;        // logical reduction depth
  std::size_t kp = 0;       // padded depth (even per segment)
  std::size_t seg = 0;      // effective segment length (arm length)
  std::int32_t max_abs = 0; // magnitude scan result, for the width predicate

  const std::int16_t* base() const { return ext != nullptr ? ext : data.data(); }
};

/// Right operand in strip-major k-pair-interleaved layout. Strip s holds
/// columns [s*16, s*16+16) (zero-padded past n); k-pair p of strip s is 32
/// int16 at data[(s * kp/2 + p) * 32]: [b(2p, j), b(2p+1, j)] for each of
/// the 16 columns j, with the same per-segment even padding as PackedA.
struct PackedB {
  std::vector<std::int16_t> data;
  const std::int16_t* ext = nullptr;
  std::size_t k = 0;
  std::size_t n = 0;        // logical columns
  std::size_t kp = 0;
  std::size_t seg = 0;
  std::int32_t max_abs = 0;

  const std::int16_t* base() const { return ext != nullptr ? ext : data.data(); }
};

/// Effective segment length shared by the scalar and packed kernels:
/// 0 or >= k collapses to one flat segment of length k.
inline std::size_t effective_segment(std::size_t segment, std::size_t k) {
  return (segment == 0 || segment > k) ? k : segment;
}

/// Packed depth of a [k]-deep reduction at `segment`: every arm segment
/// rounded up to an even number of terms.
std::size_t packed_depth(std::size_t k, std::size_t segment);

/// Element counts of the packed panels, for sizing *_into storage: PackedA
/// is m x kp row-major; PackedB is ceil(n/16) strips of kp/2 k-pairs of 32
/// int16 each. Both are what the arena planner charges per conv/fc step.
std::size_t packed_a_elems(std::size_t m, std::size_t k, std::size_t segment);
std::size_t packed_b_elems(std::size_t k, std::size_t n, std::size_t segment);

/// Packs A[m x k] (row stride `lda`) for `segment`-length arms.
PackedA pack_a_s16(const std::int16_t* a, std::size_t m, std::size_t k,
                   std::size_t lda, std::size_t segment);

/// Packs B[k x n] (row stride `ldb`) into strip-major panels.
PackedB pack_b_s16(const std::int16_t* b, std::size_t k, std::size_t n,
                   std::size_t ldb, std::size_t segment);

/// As pack_a_s16 / pack_b_s16, but writing into caller storage of at least
/// packed_{a,b}_elems int16 (the returned panel borrows it via `ext`). The
/// panels are identical to the owning variants; used by the arena-backed
/// path so steady-state forwards never allocate.
PackedA pack_a_s16_into(const std::int16_t* a, std::size_t m, std::size_t k,
                        std::size_t lda, std::size_t segment,
                        std::int16_t* storage);
PackedB pack_b_s16_into(const std::int16_t* b, std::size_t k, std::size_t n,
                        std::size_t ldb, std::size_t segment,
                        std::int16_t* storage);

/// Packs Wᵀ from a row-major W[n x k] (row stride `ldw`): panel column j is
/// W row j. The fc-layer weight panel — packed once per programmed layer.
PackedB pack_b_s16_transposed(const std::int16_t* w, std::size_t k,
                              std::size_t n, std::size_t ldw,
                              std::size_t segment);

/// C rows [row_begin, row_end) (row-major doubles, stride `ldc`, overwritten)
/// = A x B with segment-blocked integer accumulation, bit-exact with
/// gemm_s16_segmented over the same logical operands. The row range lets
/// callers shard the batch dimension (fc: one row per batch item) without
/// re-packing. `config` selects the microkernel tier and B-panel strip
/// blocking (see KernelConfig in tensor/simd.hpp); a requested tier the host
/// lacks resolves down the ladder, and every config produces bit-identical
/// output — the config only moves time, never results. Throws
/// std::invalid_argument on mismatched panels.
void gemm_s16_packed(const PackedA& a, const PackedB& b, double* c,
                     std::size_t ldc, std::size_t row_begin,
                     std::size_t row_end, const KernelConfig& config);

/// Auto dispatch (cpuid-best tier, unblocked) over a row range.
inline void gemm_s16_packed(const PackedA& a, const PackedB& b, double* c,
                            std::size_t ldc, std::size_t row_begin,
                            std::size_t row_end) {
  gemm_s16_packed(a, b, c, ldc, row_begin, row_end, KernelConfig{});
}

/// Convenience: all rows.
inline void gemm_s16_packed(const PackedA& a, const PackedB& b, double* c,
                            std::size_t ldc,
                            const KernelConfig& config = KernelConfig{}) {
  gemm_s16_packed(a, b, c, ldc, 0, a.m, config);
}

/// Pre-packed panels of one programmed (quantized) weight tensor, cached on
/// QuantizedTensor::prepack so everything sharing a CompiledModel also
/// shares the packed panels. Conv weights pack as the GEMM's A operand;
/// fc weights pack as the Wᵀ B panel.
struct PackedWeights {
  std::size_t seg = 0;   // arm length the panels were packed for
  bool has_a = false;
  bool has_b = false;
  PackedA a;             // conv: [out_channels x kdim]
  PackedB bt;            // fc: Wᵀ [d x out_features]
};

}  // namespace lightator::tensor
