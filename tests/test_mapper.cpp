// Tests of the paper's §4 hardware-mapping methodology.
#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {
namespace {

nn::LayerDesc conv_layer(std::size_t in_c, std::size_t out_c, std::size_t k,
                         std::size_t in_dim, std::size_t stride = 1,
                         std::size_t pad = 0) {
  nn::LayerDesc l;
  l.kind = nn::LayerKind::kConv;
  l.name = "conv";
  l.in_h = in_dim;
  l.in_w = in_dim;
  l.conv = tensor::ConvSpec{in_c, out_c, k, stride, pad};
  return l;
}

nn::LayerDesc fc_layer(std::size_t in, std::size_t out) {
  nn::LayerDesc l;
  l.kind = nn::LayerKind::kLinear;
  l.name = "fc";
  l.fc_in = in;
  l.fc_out = out;
  return l;
}

Mapper make_mapper() { return Mapper(ArchConfig::defaults()); }

// --------------------------------------------------- paper Fig. 6 rules

TEST(Mapper, Kernel3x3UsesOneArmPerSlice) {
  const auto m = make_mapper().map_layer(conv_layer(1, 1, 3, 8));
  EXPECT_EQ(m.arms_per_output, 1u);
  EXPECT_EQ(m.idle_mrs_per_output, 0u);
  EXPECT_EQ(m.summation_stages, 0u);  // BPD result goes straight out
}

TEST(Mapper, Kernel3x3SixStridesPerBank) {
  // 6 single-slice filters fill exactly one bank: 6 parallel strides.
  const auto m = make_mapper().map_layer(conv_layer(1, 6, 3, 8));
  EXPECT_EQ(m.arms_active, 6u);
  EXPECT_EQ(m.banks_active, 1u);
  EXPECT_EQ(m.adc_samples_per_cycle, 6u);  // 6 strides per cycle (Fig. 6a)
}

TEST(Mapper, Kernel5x5ThreeArmsTwoIdle) {
  const auto m = make_mapper().map_layer(conv_layer(1, 1, 5, 10));
  EXPECT_EQ(m.arms_per_output, 3u);   // 25 MACs in 3 arms
  EXPECT_EQ(m.idle_mrs_per_output, 2u);  // 27 - 25 (Fig. 6b)
  EXPECT_EQ(m.summation_stages, 1u);
}

TEST(Mapper, Kernel5x5TwoStridesPerBank) {
  const auto m = make_mapper().map_layer(conv_layer(1, 2, 5, 10));
  EXPECT_EQ(m.arms_active, 6u);
  EXPECT_EQ(m.banks_active, 1u);
  EXPECT_EQ(m.adc_samples_per_cycle, 2u);  // 2 strides per bank (Fig. 6b)
}

TEST(Mapper, Kernel7x7WholeBankFiveIdle) {
  const auto m = make_mapper().map_layer(conv_layer(1, 1, 7, 14));
  EXPECT_EQ(m.arms_per_output, 6u);      // 49 MACs in 6 arms = whole bank
  EXPECT_EQ(m.idle_mrs_per_output, 5u);  // 54 - 49 (Fig. 6c)
  EXPECT_EQ(m.summation_stages, 2u);
  EXPECT_EQ(m.adc_samples_per_cycle, 1u);  // 1 stride per bank
  EXPECT_FALSE(m.cross_bank_accumulation);
}

TEST(Mapper, Kernel11x11SpansBanks) {
  // AlexNet L1: 121 MACs/slice -> 14 arms -> cross-bank accumulation.
  const auto m = make_mapper().map_layer(conv_layer(1, 1, 11, 22));
  EXPECT_EQ(m.arms_per_output, 14u);
  EXPECT_EQ(m.idle_mrs_per_output, 5u);  // 126 - 121
  EXPECT_TRUE(m.cross_bank_accumulation);
}

TEST(Mapper, Kernel1x1PacksChannels) {
  const auto m = make_mapper().map_layer(conv_layer(27, 4, 1, 8));
  EXPECT_EQ(m.arms_per_output, 3u);  // ceil(27/9)
  EXPECT_EQ(m.idle_mrs_per_output, 0u);
}

TEST(Mapper, MultiChannelConvUsesOneSlicePerChannel) {
  const auto m = make_mapper().map_layer(conv_layer(64, 1, 3, 8, 1, 1));
  EXPECT_EQ(m.arms_per_output, 64u);
  EXPECT_TRUE(m.cross_bank_accumulation);
}

// --------------------------------------------------- rounds & capacity

TEST(Mapper, SmallLayerSingleRound) {
  const auto m = make_mapper().map_layer(conv_layer(3, 64, 3, 32, 1, 1));
  EXPECT_EQ(m.total_arm_groups, 192u);  // 64 filters x 3 slices
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_EQ(m.arms_active, 192u);
  EXPECT_EQ(m.cycles_per_round, 32u * 32u);
}

TEST(Mapper, LargeLayerMultipleRounds) {
  const auto m = make_mapper().map_layer(conv_layer(256, 256, 3, 8, 1, 1));
  EXPECT_EQ(m.total_arm_groups, 65536u);
  EXPECT_EQ(m.rounds, (65536u + 575u) / 576u);
  EXPECT_EQ(m.arms_active, 576u);      // fabric saturated
  EXPECT_EQ(m.mrs_active, 5184u);      // all MRs busy, zero idle at K=3
  EXPECT_EQ(m.idle_mrs, 0u);
}

TEST(Mapper, FcSegmentation) {
  const auto m = make_mapper().map_layer(fc_layer(400, 120));
  EXPECT_EQ(m.arms_per_output, 45u);       // ceil(400/9)
  EXPECT_EQ(m.idle_mrs_per_output, 5u);    // 405 - 400
  EXPECT_EQ(m.total_arm_groups, 45u * 120u);
  EXPECT_EQ(m.cycles_per_round, 1u);       // whole input broadcast at once
  EXPECT_EQ(m.weight_writes, 400u * 120u);
}

TEST(Mapper, FcSmallFitsOneRound) {
  const auto m = make_mapper().map_layer(fc_layer(84, 10));
  EXPECT_EQ(m.arms_per_output, 10u);
  EXPECT_EQ(m.rounds, 1u);
}

TEST(Mapper, UtilizationPerfectFor3x3) {
  const auto m = make_mapper().map_layer(conv_layer(8, 8, 3, 16, 1, 1));
  EXPECT_DOUBLE_EQ(m.mr_utilization(), 1.0);
}

TEST(Mapper, UtilizationDegradedFor5x5) {
  const auto m = make_mapper().map_layer(conv_layer(8, 8, 5, 16));
  EXPECT_NEAR(m.mr_utilization(), 25.0 / 27.0, 1e-9);
}

// --------------------------------------------------- pooling / CA banks

TEST(Mapper, PoolingUsesCaBanksNoDac) {
  nn::LayerDesc pool;
  pool.kind = nn::LayerKind::kAvgPool;
  pool.name = "avgpool";
  pool.in_h = 28;
  pool.in_w = 28;
  pool.pool_kernel = 2;
  pool.pool_stride = 2;
  pool.pool_channels = 6;
  const auto m = make_mapper().map_layer(pool);
  EXPECT_TRUE(m.uses_ca_banks);
  EXPECT_FALSE(m.weighted);
  EXPECT_EQ(m.weight_writes, 0u);
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_EQ(m.outputs, 6u * 14 * 14);
}

TEST(Mapper, CaWindowMapping) {
  const Mapper mapper = make_mapper();
  // Fused CA: 2x2 pool + grayscale = 12-MAC window.
  const auto m = mapper.map_ca_window(12, 16 * 16, "ca", nn::LayerKind::kAvgPool);
  EXPECT_EQ(m.arms_per_output, 2u);       // ceil(12/9)
  EXPECT_EQ(m.idle_mrs_per_output, 6u);   // 18 - 12
  EXPECT_EQ(m.outputs, 256u);
  EXPECT_GE(m.adc_samples_per_cycle, 1u);
}

TEST(Mapper, NonComputeLayersMapEmpty) {
  nn::LayerDesc act;
  act.kind = nn::LayerKind::kActivation;
  const auto m = make_mapper().map_layer(act);
  EXPECT_EQ(m.rounds, 0u);
  EXPECT_EQ(m.arms_active, 0u);
}

TEST(Mapper, MapModelCoversComputeLayers) {
  const auto mappings = make_mapper().map_model(nn::lenet_desc());
  EXPECT_EQ(mappings.size(), 7u);
  EXPECT_TRUE(mappings[1].uses_ca_banks);   // L2 pool
  EXPECT_TRUE(mappings[3].uses_ca_banks);   // L4 pool
  EXPECT_TRUE(mappings[4].weighted);        // L5 fc
}

// --------------------------------------------------- property sweeps

class MapperKernelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapperKernelSweep, InvariantsHoldForAllKernels) {
  const std::size_t k = GetParam();
  const auto m = make_mapper().map_layer(
      conv_layer(4, 8, k, std::max<std::size_t>(k, 16)));
  const auto& g = ArchConfig::defaults().geometry;
  // Arm accounting: active MRs + idle MRs = occupied arm capacity.
  EXPECT_EQ(m.mrs_active + m.idle_mrs, m.arms_active * g.mrs_per_arm);
  // Idle fraction bounded by (9-1)/9 per arm.
  EXPECT_LT(m.idle_mrs, m.arms_active * g.mrs_per_arm);
  // Every output's reduction covers all its MACs.
  EXPECT_GE(m.arms_per_output * g.mrs_per_arm, m.macs_per_output);
  // Rounds cover all groups.
  EXPECT_GE(m.rounds * g.arms(), m.total_arm_groups);
  EXPECT_LE(m.arms_active, g.arms());
  EXPECT_LE(m.banks_active, g.banks());
}

INSTANTIATE_TEST_SUITE_P(Kernels, MapperKernelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 9u, 11u));

class MapperChannelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapperChannelSweep, GroupsScaleWithChannels) {
  const std::size_t c = GetParam();
  const auto m = make_mapper().map_layer(conv_layer(c, 16, 3, 16, 1, 1));
  EXPECT_EQ(m.total_arm_groups, 16u * c);
  EXPECT_EQ(m.macs_per_output, 9u * c);
}

INSTANTIATE_TEST_SUITE_P(Channels, MapperChannelSweep,
                         ::testing::Values(1u, 3u, 16u, 64u, 256u));

}  // namespace
}  // namespace lightator::core
