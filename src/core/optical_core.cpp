#include "core/optical_core.hpp"

#include <cmath>
#include <stdexcept>

#include "optics/microring.hpp"

namespace lightator::core {

namespace {

const ExecutionContext& default_context() {
  static const ExecutionContext ctx;  // backend "gemm", global pool
  return ctx;
}

}  // namespace

OpticalCore::OpticalCore(ArchConfig config)
    : config_(config), dmva_(config) {}

double OpticalCore::arm_dot(std::span<const int> codes,
                            std::span<const int> levels,
                            int weight_bits) const {
  if (codes.size() != levels.size()) {
    throw std::invalid_argument("codes/levels size mismatch");
  }
  if (codes.size() > config_.geometry.mrs_per_arm) {
    throw std::invalid_argument("segment exceeds arm capacity");
  }
  const int act_levels = config_.vcsel.levels;
  const int wmax = (1 << (weight_bits - 1)) - 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] < 0 || codes[i] > act_levels) {
      throw std::out_of_range("activation code out of range");
    }
    if (levels[i] < -wmax || levels[i] > wmax) {
      throw std::out_of_range("weight level out of range");
    }
    acc += static_cast<double>(codes[i]) * static_cast<double>(levels[i]);
  }
  return acc / (static_cast<double>(act_levels) * static_cast<double>(wmax));
}

double OpticalCore::arm_dot_physical(std::span<const double> weights,
                                     std::span<const int> codes,
                                     int weight_bits,
                                     util::Rng* noise_rng) const {
  if (weights.size() != codes.size()) {
    throw std::invalid_argument("weights/codes size mismatch");
  }
  optics::ArmParams params;
  params.num_cells = config_.geometry.mrs_per_arm;
  params.weight_bits = weight_bits;
  params.activation_levels = config_.vcsel.levels;
  params.ring = config_.ring;
  params.vcsel = config_.vcsel;
  params.detector = config_.detector;
  optics::MrArm arm(params);
  // Pad the segment with zero weights / dark channels.
  std::vector<double> w(params.num_cells, 0.0);
  std::vector<int> c(params.num_cells, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    w[i] = weights[i];
    c[i] = codes[i];
  }
  arm.set_weights(w);
  return noise_rng == nullptr ? arm.compute(c) : arm.compute_noisy(c, *noise_rng);
}

double OpticalCore::reduce(std::span<const int> codes,
                           std::span<const int> levels,
                           int weight_bits) const {
  if (codes.size() != levels.size()) {
    throw std::invalid_argument("codes/levels size mismatch");
  }
  const std::size_t seg = config_.geometry.mrs_per_arm;
  double acc = 0.0;
  for (std::size_t begin = 0; begin < codes.size(); begin += seg) {
    const std::size_t len = std::min(seg, codes.size() - begin);
    acc += arm_dot(codes.subspan(begin, len), levels.subspan(begin, len),
                   weight_bits);
  }
  return acc;
}

const ComputeBackend& OpticalCore::backend(const std::string& name) const {
  std::lock_guard<std::mutex> lock(backends_mutex_);
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    it = backends_
             .emplace(name, BackendRegistry::instance().create(name, config_))
             .first;
  }
  return *it->second;
}

tensor::Tensor OpticalCore::conv2d(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const tensor::ConvSpec& spec) const {
  return conv2d(x, w, bias, spec, default_context());
}

tensor::Tensor OpticalCore::conv2d(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const tensor::ConvSpec& spec,
                                   const ExecutionContext& ctx) const {
  return backend(ctx.backend).conv2d(x, w, bias, spec, ctx);
}

tensor::Tensor OpticalCore::linear(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias) const {
  return linear(x, w, bias, default_context());
}

tensor::Tensor OpticalCore::linear(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const ExecutionContext& ctx) const {
  return backend(ctx.backend).linear(x, w, bias, ctx);
}

double OpticalCore::tuning_power_for_levels(std::span<const int> levels,
                                            int weight_bits) const {
  const int wmax = (1 << (weight_bits - 1)) - 1;
  optics::MicroRing ring(config_.ring, 1550.0 * units::kNm);
  double total = 0.0;
  for (int level : levels) {
    ring.set_weight(std::fabs(static_cast<double>(level)) / wmax);
    total += ring.tuning_power();
  }
  return total;
}

}  // namespace lightator::core
