// Mixed-precision design-space sweep: power / throughput / efficiency of
// every [W:A] configuration (uniform and Lightator-MX) across the model zoo,
// plus the automated per-layer PrecisionSearch — analytic, and measured
// through the shared ExperimentRunner context. This is the knob the paper's
// §5 observation (4) describes: "trade-offs between power consumption and
// accuracy that can be readily adjusted".
//
//   ./examples/mixed_precision_sweep
#include <cstdio>

#include "core/experiment.hpp"
#include "core/precision_search.hpp"
#include "nn/model_desc.hpp"
#include "nn/models.hpp"
#include "util/table.hpp"
#include "workloads/synth_mnist.hpp"

using namespace lightator;

int main() {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  core::ExperimentRunner runner;
  const std::vector<nn::PrecisionSchedule> schedules = {
      nn::PrecisionSchedule::uniform(4), nn::PrecisionSchedule::uniform(3),
      nn::PrecisionSchedule::uniform(2), nn::PrecisionSchedule::mixed(3),
      nn::PrecisionSchedule::mixed(2)};

  const std::vector<nn::ModelDesc> models = {
      nn::lenet_desc(), nn::vgg9_desc(), nn::alexnet_desc()};

  for (const auto& model : models) {
    std::printf("=== %s (%.1f MMACs, %.1f M weights) ===\n",
                model.name.c_str(), model.total_macs() / 1e6,
                model.total_weights() / 1e6);
    const auto reports = runner.sweep(
        schedules, [&](const nn::PrecisionSchedule& s,
                       core::ExecutionContext&) { return sys.analyze(model, s); });
    util::TablePrinter table({"config", "max power", "latency",
                              "batched KFPS", "KFPS/W", "energy/frame"});
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      const auto& r = reports[i];
      table.add_row({schedules[i].label(), util::format_power(r.max_power),
                     util::format_time(r.latency),
                     util::format_fixed(r.fps_batched / 1e3, 1),
                     util::format_fixed(r.kfps_per_watt, 1),
                     util::format_sig(r.energy_per_frame, 3) + " J"});
    }
    std::printf("%s\n", table.to_text().c_str());
  }

  // Beyond the paper's hand-picked points: the greedy per-layer search.
  // Analytic mode needs no model; measured mode binds a trained LeNet and a
  // validation set, and every candidate runs through the runner's "gemm"
  // context with the pool sharding the validation batches.
  std::printf("=== automated per-layer precision search (VGG9, power budget "
              "= 60%% of [4:4]) ===\n");
  {
    const nn::ModelDesc vgg9 = nn::vgg9_desc();
    const core::PrecisionSearch search(sys, vgg9);
    core::PrecisionSearchOptions opts;
    opts.power_budget =
        sys.analyze(vgg9, nn::PrecisionSchedule::uniform(4)).max_power * 0.6;
    opts.max_accuracy_drop = 0.05;
    const auto assignment = search.search(opts, runner.context());
    std::printf("  analytic: %s  ->  %.2f W (est. drop %.3f)\n",
                assignment.label().c_str(), assignment.max_power,
                assignment.estimated_drop);
  }
  {
    const nn::ModelDesc lenet = nn::lenet_desc();
    util::Rng rng(7);
    nn::Network net = nn::build_lenet(rng);
    workloads::SynthMnistOptions mo;
    mo.samples = 320;
    nn::Dataset data = workloads::make_synth_mnist(mo);
    nn::TrainParams tp;
    tp.epochs = 2;
    tp.grad_shards = 4;
    runner.fit(net, data, tp);

    core::PrecisionSearch search(sys, lenet);
    search.bind_validation(net, data, /*act_bits=*/4, /*batch_size=*/64,
                           /*max_samples=*/128);
    core::PrecisionSearchOptions opts;
    opts.power_budget =
        sys.analyze(lenet, nn::PrecisionSchedule::uniform(4)).max_power * 0.6;
    opts.max_accuracy_drop = 0.05;
    const auto assignment = search.search(opts, runner.context());
    std::printf("  measured (LeNet, OC-evaluated on %zu threads): %s  ->  "
                "%.2f W (measured drop %.3f)\n",
                runner.pool().size(), assignment.label().c_str(),
                assignment.max_power, assignment.estimated_drop);
  }

  std::printf("\nreading the tables: weight-bit reduction cuts DAC power "
              "(the dominant share)\nalmost linearly in (2^W - 1); "
              "Lightator-MX recovers first-layer fidelity at a\nsmall power "
              "premium over the uniform low-precision configs, and the "
              "search\nautomates the choice per layer.\n");
  return 0;
}
