// Deterministic, fast PRNG (xoshiro256**) plus the handful of distributions
// the simulator needs. Every stochastic component takes an explicit Rng so
// experiments are reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace lightator::util {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to fill the state from one 64-bit seed.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Poisson by inversion for small lambda, normal approximation otherwise.
  /// Used for photon shot-noise counts.
  std::uint64_t poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      const double l = std::exp(-lambda);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double x = normal(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace lightator::util
