#!/usr/bin/env python3
"""Validate a chrome://tracing JSON file produced by the lightator
TraceRecorder (serve_throughput --trace, trace_dump).

Checks, in order:

  * the file parses and has a non-empty "traceEvents" array;
  * every event carries the Trace Event Format required keys (name, cat,
    ph, ts, pid, tid) with sane types, and complete events ('X') carry a
    non-negative dur;
  * per tid, the 'X' events form a proper span stack: sorted by
    (ts asc, dur desc), every event either nests fully inside the open
    span or starts after it ends — a partial overlap means torn
    begin/end bookkeeping in the recorder. Async 'b'/'e' pairs (queue
    residency, which legitimately crosses threads) are exempt from the
    stack check but must balance per id: every 'b' has exactly one 'e'
    with e.ts >= b.ts.

With --min-requests N the trace must contain at least N distinct request
ids on async "queue" begin events — the CI gate that the serve smoke run
actually traced its load. With --expect-serve the serve-layer span names
(submit, batch_dispatch, respond) and the core compiled_run span must all
be present. With --expect-sched the scheduler's load-shedding and deadline
events must be present and attributable: at least one "shed" and one
"deadline_exceeded" instant ('X') event, each carrying args.request_id,
and every deadline_exceeded id must also appear among the async "queue"
begin ids (an expired request was admitted, so its queue residency span
must exist and — via the balance check above — be properly closed).

Usage: validate_trace.py trace.json [--min-requests N] [--expect-serve]
                                    [--expect-sched]
Exit status: 0 ok, 1 validation failure, 2 usage error.
"""

import json
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
SERVE_SPANS = ("submit", "batch_dispatch", "respond", "compiled_run")


def fail(msg):
    print(f"FAIL  {msg}")
    return False


def check_required_keys(events):
    ok = True
    for i, e in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in e:
                ok = fail(f"event {i}: missing required key {key!r}: {e}")
                break
        else:
            if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
                ok = fail(f"event {i}: bad ts {e['ts']!r}")
            if e["ph"] == "X" and e.get("dur", -1) < 0:
                ok = fail(f"event {i}: 'X' event with missing/negative dur")
            if e["ph"] in ("b", "e") and "id" not in e:
                ok = fail(f"event {i}: async {e['ph']!r} event without id")
    return ok


def check_nesting(events):
    """Per-tid monotonic nesting of complete events: after sorting by
    (ts asc, dur desc) — the containment order chrome://tracing itself uses
    to rebuild the stack — every event must either start after the open
    span ends (pop) or end within it (push). Anything else is a partial
    overlap the viewer would render as a corrupt stack."""
    ok = True
    by_tid = {}
    for e in events:
        if e["ph"] == "X":
            by_tid.setdefault(e["tid"], []).append(e)
    for tid, spans in sorted(by_tid.items()):
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for e in spans:
            while stack and e["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack and e["ts"] + e["dur"] > stack[-1]["ts"] + stack[-1]["dur"]:
                top = stack[-1]
                ok = fail(f"tid {tid}: span {e['name']!r} "
                          f"[{e['ts']}, {e['ts'] + e['dur']}] partially "
                          f"overlaps {top['name']!r} "
                          f"[{top['ts']}, {top['ts'] + top['dur']}]")
                continue
            stack.append(e)
        depth = max_stack_depth(spans)
        print(f"ok    tid {tid}: {len(spans)} spans, max nesting depth {depth}")
    return ok


def max_stack_depth(sorted_spans):
    depth = 0
    stack = []
    for e in sorted_spans:
        while stack and e["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
            stack.pop()
        stack.append(e)
        depth = max(depth, len(stack))
    return depth


def check_async_pairs(events):
    """Every async 'b' must close with exactly one matching-(name, id) 'e'
    at ts >= the begin's ts."""
    ok = True
    begins = {}
    ends = {}
    for e in events:
        if e["ph"] == "b":
            begins.setdefault((e["name"], e["id"]), []).append(e)
        elif e["ph"] == "e":
            ends.setdefault((e["name"], e["id"]), []).append(e)
    for key, bs in sorted(begins.items()):
        es = ends.get(key, [])
        if len(bs) != len(es):
            ok = fail(f"async {key}: {len(bs)} begins vs {len(es)} ends")
            continue
        if min(e["ts"] for e in es) < min(b["ts"] for b in bs):
            ok = fail(f"async {key}: end precedes begin")
    for key in sorted(set(ends) - set(begins)):
        ok = fail(f"async {key}: end without begin")
    if begins:
        print(f"ok    {len(begins)} async span pairs balanced")
    return ok


def check_sched_events(events):
    """--expect-sched: the scheduler's shed / deadline_exceeded events are
    present and attributed. Sheds happen at submit (never admitted, so no
    queue span); expiries happen to ADMITTED requests, so each expired id
    must own a queue residency span."""
    ok = True
    sheds = [e for e in events if e["ph"] == "X" and e["name"] == "shed"]
    expiries = [e for e in events
                if e["ph"] == "X" and e["name"] == "deadline_exceeded"]
    queue_ids = {e["id"] for e in events
                 if e["ph"] == "b" and e["name"] == "queue"}
    if not sheds:
        ok = fail("no 'shed' events (--expect-sched)")
    if not expiries:
        ok = fail("no 'deadline_exceeded' events (--expect-sched)")
    for e in sheds + expiries:
        if "request_id" not in e.get("args", {}):
            ok = fail(f"sched event {e['name']!r} without args.request_id: "
                      f"{e}")
    for e in expiries:
        rid = e.get("args", {}).get("request_id")
        if rid is not None and rid not in queue_ids:
            ok = fail(f"deadline_exceeded request_id {rid} has no matching "
                      f"async 'queue' span (expired requests are admitted "
                      f"requests)")
    if ok and sheds and expiries:
        print(f"ok    sched events: {len(sheds)} shed, {len(expiries)} "
              f"deadline_exceeded, all attributed to request ids")
    return ok


def main(argv):
    path = None
    min_requests = 0
    expect_serve = False
    expect_sched = False
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--min-requests":
            i += 1
            min_requests = int(argv[i])
        elif a.startswith("--min-requests="):
            min_requests = int(a.split("=", 1)[1])
        elif a == "--expect-serve":
            expect_serve = True
        elif a == "--expect-sched":
            expect_sched = True
        elif path is None:
            path = a
        else:
            print(__doc__.strip())
            return 2
        i += 1
    if path is None:
        print(__doc__.strip())
        return 2

    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not events:
        print(f"FAIL  {path}: no traceEvents")
        return 1

    ok = check_required_keys(events)
    ok = check_nesting(events) and ok
    ok = check_async_pairs(events) and ok

    if min_requests:
        request_ids = {e["id"] for e in events
                       if e["ph"] == "b" and e["name"] == "queue"}
        status = "ok  " if len(request_ids) >= min_requests else "FAIL"
        ok = ok and status == "ok  "
        print(f"{status}  {len(request_ids)} distinct traced request ids "
              f"(need >= {min_requests})")
    if expect_serve:
        names = {e["name"] for e in events}
        missing = [n for n in SERVE_SPANS if n not in names]
        if missing:
            ok = fail(f"expected serve spans missing: {missing}")
        else:
            print(f"ok    serve spans present: {', '.join(SERVE_SPANS)}")
    if expect_sched:
        ok = check_sched_events(events) and ok

    dropped = trace.get("otherData", {}).get("dropped_events", 0)
    if dropped:
        print(f"note  recorder dropped {dropped} events (ring wrapped)")
    if not ok:
        print(f"\ntrace validation FAILED: {path}")
        return 1
    print(f"\ntrace ok: {path} ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
