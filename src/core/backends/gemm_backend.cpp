#include "core/backends/gemm_backend.hpp"

#include <vector>

#include "tensor/gemm_s16.hpp"

namespace lightator::core {

tensor::Tensor GemmBackend::conv2d(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const tensor::ConvSpec& spec,
                                   const ExecutionContext& ctx) const {
  validate_oc_conv_inputs(x, w, spec);
  const std::size_t batch = x.shape[0], c_in = x.shape[1], h = x.shape[2],
                    w_in = x.shape[3];
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w_in);
  const std::size_t npix = oh * ow;
  const std::size_t kdim = spec.weights_per_filter();
  tensor::Tensor y({batch, spec.out_channels, oh, ow});
  const std::size_t seg = config_.geometry.mrs_per_arm;
  ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
    const double scale = oc_output_scale_for_item(x, w, n);
    std::vector<std::int16_t> cols(kdim * npix);
    std::vector<double> acc(spec.out_channels * npix);
    tensor::im2col_s16(x.levels.data() + n * c_in * h * w_in, h, w_in, spec,
                       cols.data());
    tensor::gemm_s16_segmented(spec.out_channels, npix, kdim, w.levels.data(),
                               kdim, cols.data(), npix, seg, acc.data(), npix);
    float* y_n = y.data() + n * spec.out_channels * npix;
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      const double* a_row = acc.data() + oc * npix;
      float* y_row = y_n + oc * npix;
      if (bias.empty()) {
        for (std::size_t j = 0; j < npix; ++j) {
          y_row[j] = static_cast<float>(a_row[j] * scale);
        }
      } else {
        const float b = bias[oc];
        for (std::size_t j = 0; j < npix; ++j) {
          float out = static_cast<float>(a_row[j] * scale);
          out += b;
          y_row[j] = out;
        }
      }
    }
  });
  return y;
}

tensor::Tensor GemmBackend::linear(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const ExecutionContext& ctx) const {
  validate_oc_linear_inputs(x, w);
  const std::size_t batch = x.shape[0], d = x.shape[1], out_f = w.shape[0];
  tensor::Tensor y({batch, out_f});
  const std::size_t seg = config_.geometry.mrs_per_arm;
  ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
    const double scale = oc_output_scale_for_item(x, w, n);
    const std::int16_t* row = x.levels.data() + n * d;
    for (std::size_t o = 0; o < out_f; ++o) {
      const double acc =
          tensor::dot_s16_segmented(row, w.levels.data() + o * d, d, seg);
      float v = static_cast<float>(acc * scale);
      if (!bias.empty()) v += bias[o];
      y.at(n, o) = v;
    }
  });
  return y;
}

}  // namespace lightator::core
