// InferenceRouter: multi-model serving with per-model queues, per-model
// telemetry, and zero-drop hot-swap.
//
// The single-model InferenceServer stays exactly what it was — one compiled
// artifact, N replicas, a geometry-bucketed micro-batcher. The router
// composes several of them behind one submit(name, frame) front door:
//
//   InferenceRouter router;
//   router.deploy("lenet", "v1", engine.compile(net), {.replicas = 2});
//   router.deploy_artifact("vgg", "v1", "vgg_v1.blob", system);
//   auto ticket = router.submit("lenet", frame);
//   ...
//   router.swap("lenet", "v2", engine.compile(net_v2));  // zero drops
//
// Every route owns a full InferenceServer — its own BatchQueue, replicas,
// ServerStats, and a "serve.<model>" metric namespace — so tenants are
// isolated: one model's burst fills one model's queue, and per-model
// dashboards come straight off the process MetricsRegistry. Models are also
// recorded in the router's ModelRegistry under name@version, so the active
// and previous versions stay addressable.
//
// Hot-swap contract (swap / swap_artifact): the new version's server is
// fully constructed FIRST (replicas running, prepack shared), then the route
// pointer flips atomically, then the old server drains. Request outcomes
// under a concurrent swap:
//   * accepted before the flip → completes against v1 (drain, not drop:
//     InferenceServer::shutdown closes the queue and pop_batch hands
//     workers every queued request before they exit);
//   * submitted after the flip → runs against v2;
//   * zero requests are dropped by the swap itself — the only rejections
//     are ordinary queue-full backpressure, same as steady state.
// The flip is guarded by a shared_mutex: submits hold it shared across
// lookup + enqueue, the flip takes it exclusive, so no submit can land in a
// queue that has already begun draining. Swaps on the same router serialize
// behind a swap mutex; the expensive part (building v2) happens outside
// every lock.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace lightator::serve {

class InferenceRouter {
 public:
  InferenceRouter() = default;
  ~InferenceRouter();

  InferenceRouter(const InferenceRouter&) = delete;
  InferenceRouter& operator=(const InferenceRouter&) = delete;

  /// Starts serving `model` as route `name`, registered as name@version.
  /// ServerOptions::metric_prefix is overridden to "serve.<name>" (the
  /// router owns per-model namespacing). Throws std::invalid_argument when
  /// the route already exists (use swap for that).
  void deploy(const std::string& name, const std::string& version,
              core::CompiledModel model, ServerOptions options = {});

  /// deploy() from an on-disk artifact (core::load_artifact — validated,
  /// repacked-on-load if needed). The cold-start path a fleet node takes.
  void deploy_artifact(const std::string& name, const std::string& version,
                       const std::string& path,
                       const core::LightatorSystem& system,
                       ServerOptions options = {});

  /// Hot-swaps route `name` to `model` (registered as name@version): build
  /// v2's server, atomically flip the route, drain v1. Zero in-flight drops
  /// (see the file comment for the exact contract). Keeps the route's
  /// current ServerOptions unless `options` is provided. Throws
  /// std::out_of_range for an unknown route.
  void swap(const std::string& name, const std::string& version,
            core::CompiledModel model);
  void swap(const std::string& name, const std::string& version,
            core::CompiledModel model, ServerOptions options);
  void swap_artifact(const std::string& name, const std::string& version,
                     const std::string& path,
                     const core::LightatorSystem& system);

  /// Routes one frame to `name`'s server. Same contract as
  /// InferenceServer::submit (never blocks; kRejected = that model's queue
  /// is full, kShed = that model's admission control dropped it). Throws
  /// std::out_of_range for an unknown route. The SubmitOptions overloads
  /// carry the request's priority class + deadline into that model's
  /// scheduler — per-model SLO policy composes per-route via
  /// ServerOptions::sched at deploy/swap time.
  SubmitTicket submit(const std::string& name, tensor::Tensor input);
  SubmitTicket submit(const std::string& name, tensor::Tensor input,
                      std::uint64_t request_id);
  SubmitTicket submit(const std::string& name, tensor::Tensor input,
                      sched::SubmitOptions opts);
  SubmitTicket submit(const std::string& name, tensor::Tensor input,
                      std::uint64_t request_id, sched::SubmitOptions opts);

  /// Synchronous convenience: submit + wait (throws on reject/closed).
  InferResult infer(const std::string& name, tensor::Tensor input);

  /// Stops serving `name`: flips the route out, drains its queue, joins its
  /// replicas. The registry keeps the model. Throws std::out_of_range.
  void undeploy(const std::string& name);

  /// Drains and joins every route. Idempotent; the destructor calls it.
  void shutdown();

  /// Per-model serving stats / active version / compiled artifact.
  ServerStats stats(const std::string& name) const;
  std::string active_version(const std::string& name) const;
  core::CompiledModel active_model(const std::string& name) const;
  std::size_t queue_depth(const std::string& name) const;

  /// Route names, sorted (map order).
  std::vector<std::string> models() const;
  std::size_t size() const;

  /// The name@version store behind the routes (old versions stay
  /// addressable after a swap; unload is the caller's policy). The router
  /// pins the version each live route serves — registry().pin refcounts —
  /// so a byte budget (ModelRegistry::set_byte_budget) can only evict
  /// undeployed versions; swap/undeploy release the old version's pin.
  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

 private:
  struct Route {
    std::shared_ptr<InferenceServer> server;
    std::string version;
    ServerOptions options;  // as deployed (metric_prefix already routed)
  };

  /// Route lookup under the shared lock; throws std::out_of_range with the
  /// deployed names listed.
  std::shared_ptr<Route> route(const std::string& name) const;

  mutable std::shared_mutex route_mutex_;
  std::map<std::string, std::shared_ptr<Route>> routes_;
  /// Serializes swap/deploy/undeploy against each other (never held while
  /// building or draining a server — only around the pointer flip plus
  /// bookkeeping).
  std::mutex admin_mutex_;
  ModelRegistry registry_;
};

}  // namespace lightator::serve
