#include "tensor/gemm_s16.hpp"

#include <algorithm>
#include <vector>

#include <cstdlib>
#include <limits>

namespace lightator::tensor {

std::int32_t max_abs_s16(const std::int16_t* v, std::size_t count,
                         std::size_t stride) {
  std::int32_t m = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int32_t a = std::abs(static_cast<std::int32_t>(v[i * stride]));
    if (a > m) m = a;
  }
  return m;
}

bool gemm_s16_int32_safe(std::int32_t max_a, std::int32_t max_b,
                         std::size_t seg) {
  const std::int64_t worst = static_cast<std::int64_t>(max_a) * max_b;
  if (worst == 0) return true;
  return static_cast<std::int64_t>(seg) <=
         std::numeric_limits<std::int32_t>::max() / worst;
}

namespace {

/// n-block width for huge feature-map panels. Blocking keeps the int
/// accumulator strip (kNBlock * 4/8 B) and the output row slice
/// (kNBlock * 8 B) L1/L2-resident across a row's segment sweeps; for a
/// 256x256 feature map (n = 65536) the unblocked strip + output row alone
/// is ~0.8 MiB and cycles through cache once per segment row. Blocking only
/// engages when the panel is wide enough for at least two full blocks —
/// below that the strip already fits in L2 and the extra loop level only
/// costs. The measured effect scales inversely with L2 size: a consistent
/// few percent on a 2 MiB-L2 server core, more where the strip exceeds L2
/// outright (backend_compare's hires case tracks it).
constexpr std::size_t kNBlock = 8192;

template <typename Acc>
void gemm_s16_segmented_impl(std::size_t m, std::size_t n, std::size_t k,
                             const std::int16_t* a, std::size_t lda,
                             const std::int16_t* b, std::size_t ldb,
                             std::size_t seg, double* c, std::size_t ldc) {
  const std::size_t nblock = n <= 2 * kNBlock ? n : kNBlock;
  std::vector<Acc> acc(nblock);
  for (std::size_t i = 0; i < m; ++i) {
    double* c_row = c + i * ldc;
    std::fill(c_row, c_row + n, 0.0);
    const std::int16_t* a_row = a + i * lda;
    // Per-(i, j) accumulation order is unchanged by the j-blocking: segments
    // in order, terms within a segment in order — bit-exact with the
    // unblocked loop and with the scalar reference backend.
    for (std::size_t j0 = 0; j0 < n; j0 += nblock) {
      const std::size_t jn = std::min(nblock, n - j0);
      for (std::size_t k0 = 0; k0 < k; k0 += seg) {
        const std::size_t k1 = std::min(k0 + seg, k);
        std::fill(acc.begin(), acc.begin() + jn, Acc{0});
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const Acc a_ik = a_row[kk];
          if (a_ik == 0) continue;  // quantized weights are sparse at low bits
          const std::int16_t* b_row = b + kk * ldb + j0;
          for (std::size_t j = 0; j < jn; ++j) {
            acc[j] += a_ik * static_cast<Acc>(b_row[j]);
          }
        }
        // Arm boundary: the BPD emits these partial sums.
        double* c_blk = c_row + j0;
        for (std::size_t j = 0; j < jn; ++j) {
          c_blk[j] += static_cast<double>(acc[j]);
        }
      }
    }
  }
}

}  // namespace

void gemm_s16_segmented(std::size_t m, std::size_t n, std::size_t k,
                        const std::int16_t* a, std::size_t lda,
                        const std::int16_t* b, std::size_t ldb,
                        std::size_t segment, double* c, std::size_t ldc) {
  const std::size_t seg = (segment == 0 || segment > k) ? k : segment;
  // Cheap O(mk + kn) magnitude scan picks the accumulator width; the int32
  // fast path vectorizes better and covers every quantized workload.
  std::int32_t max_a = 0, max_b = 0;
  for (std::size_t i = 0; i < m; ++i) {
    max_a = std::max(max_a, max_abs_s16(a + i * lda, k));
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    max_b = std::max(max_b, max_abs_s16(b + kk * ldb, n));
  }
  if (gemm_s16_int32_safe(max_a, max_b, seg)) {
    gemm_s16_segmented_impl<std::int32_t>(m, n, k, a, lda, b, ldb, seg, c,
                                          ldc);
  } else {
    gemm_s16_segmented_impl<std::int64_t>(m, n, k, a, lda, b, ldb, seg, c,
                                          ldc);
  }
}

double dot_s16_segmented(const std::int16_t* a, const std::int16_t* b,
                         std::size_t k, std::size_t segment) {
  const std::size_t seg = (segment == 0 || segment > k) ? k : segment;
  const bool narrow =
      gemm_s16_int32_safe(max_abs_s16(a, k), max_abs_s16(b, k), seg);
  double total = 0.0;
  for (std::size_t k0 = 0; k0 < k; k0 += seg) {
    const std::size_t k1 = std::min(k0 + seg, k);
    if (narrow) {
      std::int32_t acc = 0;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        acc += static_cast<std::int32_t>(a[kk]) *
               static_cast<std::int32_t>(b[kk]);
      }
      total += static_cast<double>(acc);
    } else {
      std::int64_t acc = 0;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        acc += static_cast<std::int64_t>(a[kk]) *
               static_cast<std::int64_t>(b[kk]);
      }
      total += static_cast<double>(acc);
    }
  }
  return total;
}

void im2col_s16(const std::int16_t* x, std::size_t h, std::size_t w,
                const ConvSpec& spec, std::int16_t* cols) {
  const std::size_t c_in = spec.in_channels;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t k = spec.kernel;
  std::size_t row = 0;
  for (std::size_t c = 0; c < c_in; ++c) {
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx, ++row) {
        std::int16_t* out = cols + row * (oh * ow);
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long iy = static_cast<long>(oy * spec.stride + ky) -
                          static_cast<long>(spec.pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long ix = static_cast<long>(ox * spec.stride + kx) -
                            static_cast<long>(spec.pad);
            const bool in_bounds = iy >= 0 && ix >= 0 &&
                                   iy < static_cast<long>(h) &&
                                   ix < static_cast<long>(w);
            out[oy * ow + ox] =
                in_bounds ? x[(c * h + static_cast<std::size_t>(iy)) * w +
                              static_cast<std::size_t>(ix)]
                          : std::int16_t{0};
          }
        }
      }
    }
  }
}

}  // namespace lightator::tensor
