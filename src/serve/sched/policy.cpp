#include "serve/sched/policy.hpp"

namespace lightator::serve::sched {

const char* class_name(RequestClass klass) {
  switch (klass) {
    case RequestClass::kBestEffort:
      return "best_effort";
    case RequestClass::kStandard:
      return "standard";
    case RequestClass::kCritical:
      return "critical";
  }
  return "unknown";
}

const SchedClock& system_clock() {
  static const SchedClock clock;
  return clock;
}

}  // namespace lightator::serve::sched
