// Runtime SIMD capability detection and kernel-tier dispatch for the packed
// int16 GEMM kernels (tensor/gemm_s16_packed.hpp).
//
// The library is compiled for the baseline ISA; the SIMD kernels are built
// with per-function target attributes and selected at runtime via cpuid, so
// one binary runs everywhere and the scalar segment-blocked loop remains the
// portable fallback. Kernels form a ladder of tiers:
//
//   scalar < avx2 < avx512 < vnni
//
// where avx512 needs F+BW+DQ+VL and vnni additionally AVX512-VNNI
// (`vpdpwssd`). Dispatch resolves a *requested* tier (usually kAuto, or a
// compile-time choice recorded in a KernelPlan) down the ladder to the
// highest tier the host supports — a plan tuned on a VNNI box degrades
// gracefully on an AVX2-only one instead of crashing.
//
// Overrides, strongest first:
//   * `set_simd_enabled(false)` forces the scalar path outright — the hook
//     the bit-exactness fuzz tests and backend_compare scalar timings use.
//   * `set_forced_tier(t)` / the LIGHTATOR_FORCE_KERNEL environment variable
//     (scalar|avx2|avx512|vnni) caps dispatch at tier `t` — the CI matrix
//     leg runs the suite once per tier the runner supports.
//   * Building with -DLIGHTATOR_DISABLE_SIMD=ON compiles every SIMD kernel
//     out (the CI scalar-fallback config).
#pragma once

#include <cstddef>
#include <vector>

// One compile-time gate for the SIMD kernel translation units: x86-64 with a
// compiler that supports per-function target attributes, unless the build
// opted out via -DLIGHTATOR_DISABLE_SIMD=ON. The AVX-512/VNNI kernels share
// the gate — any toolchain new enough for target("avx2") attributes here
// (gcc >= 8, clang >= 7) also accepts the avx512vnni target.
#if !defined(LIGHTATOR_DISABLE_SIMD) && \
    (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define LIGHTATOR_HAVE_AVX2_KERNELS 1
#define LIGHTATOR_HAVE_AVX512_KERNELS 1
#endif

namespace lightator::tensor::simd {

/// The microkernel ladder, ordered: a tier's value compares greater than
/// every tier it strictly outranks. kAuto means "highest available".
enum class KernelTier : int {
  kAuto = -1,
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kVnni = 3,
};

/// True when the SIMD kernels were compiled in (x86-64 build without
/// LIGHTATOR_DISABLE_SIMD).
bool compiled_with_simd();

/// Per-tier availability: compiled in, cpuid reports the ISA, and no runtime
/// override disabled SIMD. avx512_enabled() requires F+BW+DQ+VL;
/// vnni_enabled() additionally AVX512-VNNI. (A forced tier does NOT affect
/// these — they answer "could this tier run here".)
bool avx2_enabled();
bool avx512_enabled();
bool vnni_enabled();

/// Runtime override for tests/benches: `false` forces the scalar fallback
/// even on SIMD hardware; `true` restores cpuid-based dispatch.
void set_simd_enabled(bool enabled);

/// Caps dispatch at `tier` (kAuto clears the override and restores full
/// cpuid dispatch). Overrides the LIGHTATOR_FORCE_KERNEL environment
/// variable, which is read once per process; set_simd_enabled(false) still
/// wins. The test-suite hook behind the CI kernel-tier matrix.
void set_forced_tier(KernelTier tier);

/// Resolves a requested tier to the one that will actually run: applies the
/// overrides above, then walks down the ladder from min(requested, forced)
/// to the highest tier the host supports. kAuto requests the top of the
/// ladder. Never resolves *up*: an explicit kAvx2 request on a VNNI host
/// runs the AVX2 kernel.
KernelTier resolve_tier(KernelTier requested);

/// Tiers that can currently run, ascending (always includes kScalar).
std::vector<KernelTier> available_tiers();

/// "scalar" / "avx2" / "avx512" / "vnni" (kAuto names as "auto").
const char* tier_name(KernelTier tier);

/// Inverse of tier_name for env/CLI parsing; returns kAuto for "auto" or
/// any unrecognized spelling.
KernelTier parse_tier(const char* name);

/// What auto dispatch currently resolves to: tier_name(resolve_tier(kAuto)).
const char* active_kernel();

/// True when auto dispatch resolves to any SIMD tier — the predicate for
/// packing prepacked panels and taking the packed path at all.
bool simd_active();

}  // namespace lightator::tensor::simd

namespace lightator::tensor {

/// One GEMM dispatch decision: which microkernel tier to run and how to
/// block the B panel. `nc_strips > 0` processes the panel in blocks of that
/// many 16-column strips with the row loop inside each block, keeping a
/// DRAM-sized panel's working set cache-resident across rows; 0 walks all
/// strips per row (the right shape when the whole panel fits in L2). Every
/// (row, strip) output is computed exactly once either way, so blocking
/// never changes results. The default-constructed config is plain auto
/// dispatch — what every call site used before compile-time autotuning.
struct KernelConfig {
  simd::KernelTier tier = simd::KernelTier::kAuto;
  std::size_t nc_strips = 0;

  bool operator==(const KernelConfig&) const = default;
};

}  // namespace lightator::tensor
