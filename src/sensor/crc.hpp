// Comparator-based pixel Reading Circuit (CRC) — the paper's ADC
// replacement (Fig. 4(a)).
//
// Fifteen clocked comparators compare the pixel photovoltage V_PD against
// references evenly spanning the pixel swing; the outputs form a 15-bit
// thermometer code whose population count is the 4-bit pixel value. The
// thermometer code directly gates the VCSEL driver's transistors — no binary
// encode/decode, no DAC, no ADC.
#pragma once

#include <vector>

#include "sensor/photodiode.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lightator::sensor {

struct CrcParams {
  int num_comparators = 15;                    // 4-bit thermometer
  double comparator_offset_sigma = 0.0;        // V, random offset per decision
  double comparator_energy = 12.0 * units::kFJ;  // per comparator decision
  double static_power = 0.0;                   // clocked, no static draw
};

class Crc {
 public:
  /// References span (min_voltage, max_voltage) of the photodiode evenly:
  /// ref_i = min + (i+1) * swing / (num_comparators + 1).
  Crc(CrcParams params, const Photodiode& diode);

  /// Thermometer readout of a photovoltage. With offset noise the code can
  /// bubble; the hardware's monotone comparator chain cannot, so we model the
  /// offset on the *threshold* (still yields a monotone code).
  std::vector<bool> read_thermometer(double v_pd, util::Rng* rng = nullptr) const;

  /// Population count of the thermometer readout: the 4-bit code (0..15).
  int read_code(double v_pd, util::Rng* rng = nullptr) const;

  /// Energy of one full conversion (all comparators fire once).
  double conversion_energy() const;

  int num_comparators() const { return params_.num_comparators; }
  double reference(int i) const;
  const CrcParams& params() const { return params_; }

 private:
  CrcParams params_;
  double v_min_;
  double v_max_;
};

}  // namespace lightator::sensor
