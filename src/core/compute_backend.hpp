// Pluggable OC compute backends: one datapath contract, three engines.
//
// Every quantized conv/fc MAC of the optical core flows through a
// ComputeBackend:
//   * "reference" — the scalar arm-segmented loop, kept as the correctness
//                   oracle (bit-for-bit the original seed semantics);
//   * "gemm"      — im2col + packed int16 GEMM (tensor/gemm_s16_packed.hpp,
//                   runtime-dispatched AVX2 kernels with the segment-blocked
//                   scalar loop of tensor/gemm_s16.hpp as fallback),
//                   bit-exact with "reference" and 30-40x faster;
//   * "physical"  — the noisy MrArm device-model path with per-item seeded
//                   noise streams (batch index by default, explicit ids via
//                   ExecutionContext::noise_stream_ids), deterministic
//                   regardless of thread count and — under ids — of batch
//                   composition.
// Backends are looked up by name through BackendRegistry (the op-registry
// idiom), so downstream code — LightatorSystem, benches, tests — selects a
// datapath with a string in the ExecutionContext and new engines can be
// registered without touching the core.
//
// All backends shard work over the batch dimension on a util::ThreadPool;
// quantization scales are computed over the full batch *before* dispatch, so
// results are independent of the thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/faults.hpp"
#include "tensor/activations.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"
#include "tensor/simd.hpp"
#include "util/thread_pool.hpp"

namespace lightator::core {

class ScratchArena;  // core/compiler/arena.hpp

/// Per-layer execution record accumulated by run_network_on_oc when
/// ExecutionContext::collect_stats is set: the modeled architecture numbers
/// next to the simulator's own wall time. One entry per weighted layer;
/// repeated invocations (e.g. evaluate_on_oc batches) accumulate into the
/// same entry, so wall_seconds / frames is the measured per-frame cost to
/// compare against the per-frame modeled numbers.
struct LayerExecStats {
  std::size_t layer_index = 0;    // weighted-layer index within the network
  std::string name;
  int weight_bits = 0;            // precision the modeled numbers assume
  std::size_t macs = 0;           // MACs per frame
  std::size_t frames = 0;         // frames accumulated into wall_seconds
  double wall_seconds = 0.0;      // simulator wall time, all frames
  double modeled_latency = 0.0;   // TimingModel single-frame latency (s)
  double modeled_energy = 0.0;    // PowerModel per-frame energy (J)
  std::string backend;            // backend that executed the layer
  std::string kernel;             // resolved microkernel tier ("" = scalar path)
};

/// Everything a datapath invocation needs beyond the tensors: which backend,
/// the noise/fault configuration, the thread pool, and where to accumulate
/// per-layer stats. Passed by reference through LightatorSystem and
/// OpticalCore down to the backend kernels.
struct ExecutionContext {
  std::string backend = "gemm";
  /// Physical backend: BPD noise seed; 0 runs the noiseless analog path.
  std::uint64_t noise_seed = 0;
  FaultSpec faults;
  /// Pool for batch-parallel dispatch; nullptr uses ThreadPool::global().
  util::ThreadPool* pool = nullptr;

  bool collect_stats = false;
  std::vector<LayerExecStats> stats;

  /// Quantize activations with one scale per batch item instead of one scale
  /// over the whole batch. Every item's result then equals its batch-of-1
  /// result bit-for-bit regardless of what it was batched with — the
  /// invariant the serving layer's dynamic batcher relies on. Off by default:
  /// the offline experiment paths keep the original per-batch scheme.
  bool per_item_act_scale = false;

  // The pre-split `const OcWeightCache* weight_cache` field lived here;
  // the compile/execute split removed it — a CompiledModel owns the
  // programmed weights (cache entries were bit-identical to compiled
  // weights, so results never depended on it).

  ExecutionContext();
  ~ExecutionContext();
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  util::ThreadPool& thread_pool() const {
    return pool != nullptr ? *pool : util::ThreadPool::global();
  }

  /// The context's reusable scratch arena (created on first use). A memory-
  /// planned CompiledModel::run stages every intermediate here, so a context
  /// that is reused across forwards — a serving replica, a bench loop —
  /// reaches a high-water mark once and then executes with zero heap
  /// allocations per forward.
  ScratchArena& arena() const;

  /// Per-batch-item noise stream ids for the "physical" backend. Empty (the
  /// default) seeds item n from its batch index — the offline convention.
  /// When set (size must equal the batch), item n instead draws from
  /// mix_seed(noise_seed, stream, noise_stream_ids[n]): the serving layer
  /// threads each request's id here (and run_network_on_oc restarts the
  /// stream counter per forward), so a request's noise is a pure function
  /// of (noise_seed, request id) — bit-identical regardless of batch
  /// composition, batch size, or which replica ran it.
  std::vector<std::uint64_t> noise_stream_ids;

  /// Noise stream id of batch item `n` under the scheme above.
  std::uint64_t noise_id_for_item(std::size_t n) const {
    return noise_stream_ids.empty() ? static_cast<std::uint64_t>(n)
                                    : noise_stream_ids[n];
  }

  /// Distinct noise stream per backend invocation, so successive layers draw
  /// independent noise even though each batch item reseeds from (seed, item).
  std::uint64_t next_noise_stream() const {
    return noise_stream_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Restarts the per-invocation stream counter. run_network_on_oc calls
  /// this at the top of a forward when noise_stream_ids are present, making
  /// the stream drawn by weighted layer L the same ordinal in every forward
  /// — the other half of the batch-composition-invariance contract (the
  /// offline id-less scheme keeps the monotonic counter, so successive
  /// evaluation batches still draw fresh noise).
  void reset_noise_streams() { noise_stream_.store(0, std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::uint64_t> noise_stream_{0};
  mutable std::unique_ptr<ScratchArena> arena_;
};

/// Pooling applied by a fused epilogue after activation.
enum class PoolKind { kNone, kMax, kAvg };

/// What a fused conv/fc step applies to the GEMM output while it is still
/// cache-resident: the scale+bias requantization (always), then optionally
/// the activation (with its QAT fake-quant) and a pooling stage. Built by
/// the compiler's stage-fusion pass; an all-default epilogue reproduces the
/// plain conv2d/linear contract. The float operation order is exactly the
/// staged pipeline's (scale, bias, act, fake-quant, pool), so fused results
/// are bit-identical to unfused ones.
struct FusedEpilogue {
  bool has_act = false;
  tensor::ActKind act = tensor::ActKind::kIdentity;
  /// Output fake-quant of the fused activation: engaged when bits > 0 and
  /// scale > 0 (the QAT-calibrated activation convention).
  int act_qat_bits = 0;
  double act_scale = 0.0;
  PoolKind pool = PoolKind::kNone;
  std::size_t pool_kernel = 0;
  std::size_t pool_stride = 0;

  bool quantizes() const { return act_qat_bits > 0 && act_scale > 0.0; }
  bool any() const { return has_act || pool != PoolKind::kNone; }
};

/// Caller-provided scratch for one fused step: `slots` independent regions
/// of `bytes / slots` each (one per batch shard). Null base means "no arena"
/// — backends fall back to a local allocation, preserving the standalone
/// conv2d/linear contract. `kernel` is the compiled plan's frozen GEMM
/// dispatch decision for this step (kernel-autotune pass); the default is
/// plain runtime auto dispatch and every config is bit-exact.
struct StepScratch {
  std::byte* base = nullptr;
  std::size_t bytes = 0;
  std::size_t slots = 1;
  tensor::KernelConfig kernel;
};

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  virtual std::string name() const = 0;

  /// Quantized conv2d: x unsigned act codes [N,C,H,W], w signed levels
  /// [OC,C,K,K]. Returns real-valued outputs with scales applied and float
  /// bias added — the contract of the original OpticalCore::conv2d.
  virtual tensor::Tensor conv2d(const tensor::QuantizedTensor& x,
                                const tensor::QuantizedTensor& w,
                                const tensor::Tensor& bias,
                                const tensor::ConvSpec& spec,
                                const ExecutionContext& ctx) const = 0;

  /// Quantized fully-connected layer: x [N,D], w [OUT,D]. Reduction is
  /// arm-segmented exactly like conv2d (mrs_per_arm partial-sum boundaries).
  virtual tensor::Tensor linear(const tensor::QuantizedTensor& x,
                                const tensor::QuantizedTensor& w,
                                const tensor::Tensor& bias,
                                const ExecutionContext& ctx) const = 0;

  // ---- fused steps (compiler pass pipeline) -------------------------------
  //
  // conv2d/linear with a fused epilogue and caller-provided scratch, writing
  // into `out` (capacity-reusing resize — allocation-free once warm). The
  // base-class implementations compose the plain virtuals with a staged
  // epilogue, so every backend — including the noisy physical one, whose
  // noise-stream draws per invocation must not change — is fusion-correct by
  // construction; backends with a real fused datapath (gemm) override.

  virtual void conv2d_fused(const tensor::QuantizedTensor& x,
                            const tensor::QuantizedTensor& w,
                            const tensor::Tensor& bias,
                            const tensor::ConvSpec& spec,
                            const FusedEpilogue& epilogue,
                            const ExecutionContext& ctx,
                            const StepScratch& scratch,
                            tensor::Tensor& out) const;

  virtual void linear_fused(const tensor::QuantizedTensor& x,
                            const tensor::QuantizedTensor& w,
                            const tensor::Tensor& bias,
                            const FusedEpilogue& epilogue,
                            const ExecutionContext& ctx,
                            const StepScratch& scratch,
                            tensor::Tensor& out) const;

  // Scratch requirements of the fused steps for the static memory planner:
  // total bytes for `slots` parallel batch shards (conv) or a `batch`-row
  // panel (fc). Zero (the default) means the backend keeps its own storage
  // and the arena charges nothing for the step.

  virtual std::size_t conv2d_scratch_bytes(const tensor::ConvSpec& /*spec*/,
                                           std::size_t /*in_h*/,
                                           std::size_t /*in_w*/,
                                           const FusedEpilogue& /*epilogue*/,
                                           std::size_t /*batch*/,
                                           std::size_t /*slots*/) const {
    return 0;
  }

  virtual std::size_t linear_scratch_bytes(std::size_t /*in_features*/,
                                           std::size_t /*out_features*/,
                                           std::size_t /*batch*/,
                                           std::size_t /*slots*/) const {
    return 0;
  }
};

using BackendFactory =
    std::function<std::unique_ptr<ComputeBackend>(const ArchConfig&)>;

/// Name -> factory registry. The three built-in backends are registered on
/// first access; additional engines may be registered at runtime (last
/// registration wins, so a builtin can be shadowed for experiments).
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  void register_factory(const std::string& name, BackendFactory factory);

  /// Instantiates `name` for `config`. Throws std::invalid_argument for an
  /// unknown name (message lists the registered ones).
  std::unique_ptr<ComputeBackend> create(const std::string& name,
                                         const ArchConfig& config) const;

  std::vector<std::string> names() const;

 private:
  BackendRegistry();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- deterministic seed derivation ----------------------------------------

/// Stateless (seed, stream, item) -> derived seed mix (SplitMix64-style), so
/// per-item RNG streams are a pure function of the configuration and never of
/// thread scheduling. Never returns 0 for a non-zero `seed` (0 means
/// "noiseless" throughout the simulator). Shared by the physical backend's
/// per-batch-item noise, ExperimentRunner::sweep per-item seeds, and the
/// multi-frame capture pipeline's per-frame sensor noise.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t item);

// ---- per-layer stats accumulation -----------------------------------------

/// Accumulates `s` into `into`: an existing entry with the same
/// (layer_index, name, weight_bits) key gains s's wall time and frame count
/// (the modeled per-frame numbers are batch-invariant); otherwise `s` is
/// appended. Used by run_network_on_oc and by ExperimentRunner when merging
/// per-item sweep stats in index order.
void accumulate_layer_stats(std::vector<LayerExecStats>& into,
                            LayerExecStats s);

/// Merges every entry of `from` into `into` via accumulate_layer_stats.
void merge_layer_stats(std::vector<LayerExecStats>& into,
                       const std::vector<LayerExecStats>& from);

// ---- shared input validation (one contract for every backend) -------------

/// Throws unless x/w are a valid unsigned-act / signed-weight conv pair for
/// `spec`.
void validate_oc_conv_inputs(const tensor::QuantizedTensor& x,
                             const tensor::QuantizedTensor& w,
                             const tensor::ConvSpec& spec);

/// Throws unless x/w are a valid unsigned-act / signed-weight fc pair.
void validate_oc_linear_inputs(const tensor::QuantizedTensor& x,
                               const tensor::QuantizedTensor& w);

/// Output scaling shared by all backends: real value of one integer MAC
/// count, i.e. x.scale * w.scale / (x.max_level() * w.max_level()).
double oc_output_scale(const tensor::QuantizedTensor& x,
                       const tensor::QuantizedTensor& w);

/// Per-batch-item variant: honors x.item_scales when present (identical to
/// oc_output_scale otherwise, including the floating-point evaluation order,
/// so a per-item batch reproduces each item's batch-of-1 scaling exactly).
double oc_output_scale_for_item(const tensor::QuantizedTensor& x,
                                const tensor::QuantizedTensor& w,
                                std::size_t item);

}  // namespace lightator::core
