// Tensor-level quantization used for QAT and quantized (mapped) inference.
//
// Weights: symmetric signed, per-tensor scale = max |w| (this is exactly what
// the MR weight cells realize). Activations: unsigned, per-tensor scale,
// 4-bit everywhere (the VCSEL/CRC path). fake_quant_* are the QAT forward
// transforms; quantize_* produce the integer level maps the hardware mapper
// consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace lightator::tensor {

struct PackedWeights;  // tensor/gemm_s16_packed.hpp

/// Pre-programmed arm-segment weights for the "physical" backend: every
/// weight row (conv filter / fc output) split into arm-length segments,
/// normalized to [-1, 1] (levels / max_level) and zero-padded to `seg`, laid
/// out row-major as [rows][segments_per_row][seg]. Built once at
/// core::Engine::compile time so the device-model datapath programs each arm
/// straight from this buffer instead of re-normalizing the int16 levels on
/// every call. Purely a re-layout: using it never changes results.
struct ArmProgram {
  std::size_t seg = 0;               // arm length (mrs_per_arm)
  std::size_t rows = 0;              // conv out_channels / fc out_features
  std::size_t row_length = 0;        // un-padded weights per row (kdim)
  std::size_t segments_per_row = 0;  // ceil(row_length / seg)
  std::vector<double> weights;       // rows * segments_per_row * seg

  const double* segment(std::size_t row, std::size_t s) const {
    return weights.data() + (row * segments_per_row + s) * seg;
  }
};

/// Builds the program for signed weight `levels` ([rows][row_length],
/// max_level the largest representable level).
ArmProgram build_arm_program(const std::int16_t* levels, std::size_t rows,
                             std::size_t row_length, int max_level,
                             std::size_t seg);

struct QuantizedTensor {
  std::vector<std::int16_t> levels;  // signed levels or unsigned codes
  Shape shape;
  double scale = 1.0;   // real value of the largest level
  int bits = 4;
  bool is_signed = true;  // signed levels (weights) vs unsigned codes (acts)
  /// Per-batch-item scales (size == shape[0]); when non-empty each item n of
  /// a batched activation tensor was quantized with its own scale, so item
  /// n's codes mean exactly what they would in a standalone batch-of-1
  /// tensor with scale == item_scales[n]. The OC compute backends honor
  /// this, which is what lets the serving layer coalesce independently
  /// quantized requests into one batched forward without changing any
  /// request's numerics. Empty (the default) keeps the per-tensor scheme.
  std::vector<double> item_scales;

  /// Pre-packed SIMD panels of this (weight) tensor for the packed int16
  /// GEMM, built once per programmed layer (core::Engine::compile) and
  /// shared read-only by every consumer of the CompiledModel. Null for
  /// tensors quantized on the fly — the gemm backend then packs per call.
  /// Copies of the tensor share the panels; mutating `levels` after packing
  /// is a caller bug (programmed weights are immutable by contract).
  std::shared_ptr<const PackedWeights> prepack;

  /// Pre-programmed arm segments for the "physical" backend (see ArmProgram
  /// above); built by core::Engine::compile for physically-executed models,
  /// null otherwise — the backend then normalizes per call. The same
  /// immutability contract as `prepack` applies.
  std::shared_ptr<const ArmProgram> arm_program;

  int max_level() const {
    if (!is_signed) return (1 << bits) - 1;
    return bits == 1 ? 1 : (1 << (bits - 1)) - 1;  // 1-bit: {-1, +1}
  }

  /// Scale of batch item `n`: item_scales[n] when per-item, else `scale`.
  double scale_for_item(std::size_t n) const {
    return item_scales.empty() ? scale : item_scales[n];
  }
};

/// In-place symmetric fake-quant with per-tensor scale = max|x| (or the given
/// scale if positive). Returns the scale used.
double fake_quant_symmetric(Tensor& x, int bits, double scale = -1.0);

/// In-place unsigned fake-quant on [0, scale]; scale defaults to max(x).
double fake_quant_unsigned(Tensor& x, int bits, double scale = -1.0);

/// Integer weight levels in [-(2^(b-1)-1), +(2^(b-1)-1)].
QuantizedTensor quantize_symmetric(const Tensor& x, int bits,
                                   double scale = -1.0);

/// Integer activation codes in [0, 2^b - 1].
QuantizedTensor quantize_unsigned(const Tensor& x, int bits,
                                  double scale = -1.0);

/// Per-batch-item unsigned quantization: item n (slice along dim 0) is
/// quantized with its own scale = max over that slice (1.0 for an all-zero
/// slice, matching the OC activation path's convention), recorded in
/// item_scales. Each item's codes are bit-identical to quantizing it alone,
/// which makes batched results independent of batch composition.
QuantizedTensor quantize_unsigned_per_item(const Tensor& x, int bits);

/// Gather variants: quantize `frames` (same-geometry [1, ...] tensors, each
/// one logical batch item) straight into a batched QuantizedTensor without
/// materializing the stacked float tensor — the serving layer's zero-copy
/// request path. Bit-identical to stacking the frames and calling the
/// corresponding function above: the per-batch variant applies the OC
/// activation convention scale = max over all frames (1.0 when all dark),
/// the per-item variant quantizes each frame with its own scale.
QuantizedTensor quantize_unsigned_gather(
    const std::vector<const Tensor*>& frames, int bits);
QuantizedTensor quantize_unsigned_per_item_gather(
    const std::vector<const Tensor*>& frames, int bits);

/// _into variants of the unsigned activation quantizers: produce the same
/// result as the functions above but write into `out`, reusing its storage
/// (capacity-preserving — the compiled executor's arena path calls these
/// every forward with zero steady-state allocation). `out` is fully reset:
/// shape/scale/bits/flags are overwritten and prepack/arm_program cleared.
void quantize_unsigned_into(const Tensor& x, int bits, double scale,
                            QuantizedTensor& out);
void quantize_unsigned_per_item_into(const Tensor& x, int bits,
                                     QuantizedTensor& out);
void quantize_unsigned_gather_into(const std::vector<const Tensor*>& frames,
                                   int bits, QuantizedTensor& out);
void quantize_unsigned_per_item_gather_into(
    const std::vector<const Tensor*>& frames, int bits, QuantizedTensor& out);

/// Reconstructs the real-valued tensor from levels.
Tensor dequantize(const QuantizedTensor& q);

}  // namespace lightator::tensor
