// Microbenchmarks of the photonic device models (regression guards; not a
// paper artifact).
#include <benchmark/benchmark.h>

#include "optics/arm.hpp"
#include "optics/microring.hpp"
#include "optics/weight_cell.hpp"
#include "util/rng.hpp"

namespace {

using namespace lightator;
using namespace lightator::optics;

void BM_MicroRingTransmission(benchmark::State& state) {
  const MicroRing ring(MicroRingParams{}, 1550e-9);
  double lambda = 1550e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.through_transmission(lambda));
    lambda += 1e-15;
  }
}
BENCHMARK(BM_MicroRingTransmission);

void BM_MicroRingSetWeight(benchmark::State& state) {
  MicroRing ring(MicroRingParams{}, 1550e-9);
  double w = 0.0;
  for (auto _ : state) {
    ring.set_weight(w);
    benchmark::DoNotOptimize(ring.detuning());
    w += 0.001;
    if (w > 1.0) w = 0.0;
  }
}
BENCHMARK(BM_MicroRingSetWeight);

void BM_WeightCellProgram(benchmark::State& state) {
  WeightCell cell(MicroRingParams{}, 1550e-9, 4);
  double w = -1.0;
  for (auto _ : state) {
    cell.set_weight(w);
    benchmark::DoNotOptimize(cell.tuning_power());
    w += 0.002;
    if (w > 1.0) w = -1.0;
  }
}
BENCHMARK(BM_WeightCellProgram);

void BM_ArmPhysicalDotProduct(benchmark::State& state) {
  util::Rng rng(1);
  MrArm arm{ArmParams{}};
  std::vector<double> w(9);
  std::vector<int> codes(9);
  for (std::size_t i = 0; i < 9; ++i) {
    w[i] = rng.uniform(-1.0, 1.0);
    codes[i] = static_cast<int>(rng.uniform_index(16));
  }
  arm.set_weights(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arm.compute(codes));
  }
}
BENCHMARK(BM_ArmPhysicalDotProduct);

void BM_ArmNoisyDotProduct(benchmark::State& state) {
  util::Rng rng(2);
  MrArm arm{ArmParams{}};
  std::vector<double> w(9, 0.5);
  std::vector<int> codes(9, 10);
  arm.set_weights(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arm.compute_noisy(codes, rng));
  }
}
BENCHMARK(BM_ArmNoisyDotProduct);

}  // namespace
