#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace lightator::util {

namespace {

std::size_t resolve_size(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LIGHTATOR_THREADS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Set while a thread is executing pool work: nested parallel_for calls from
// inside a work item run inline instead of deadlocking on the job slot.
thread_local bool t_in_pool_work = false;

}  // namespace

struct ThreadPool::Impl {
  // Serializes external parallel_for callers: the pool runs one job at a
  // time, and a second caller must wait for the first job to fully drain
  // before installing its own (its thread still contributes work then).
  std::mutex submit_mutex;
  std::mutex mutex;
  std::condition_variable wake;     // workers wait for a job / shutdown
  std::condition_variable done;     // parallel_for waits for completion
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t end = 0;
  std::atomic<std::size_t> cursor{0};
  std::size_t active = 0;           // workers still draining the cursor
  std::uint64_t generation = 0;     // bumped per job so workers run it once
  bool stop = false;
  std::exception_ptr error;
  std::vector<std::thread> workers;

  void drain(const std::function<void(std::size_t)>& f, std::size_t job_end) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_end) break;
      try {
        t_in_pool_work = true;
        f(i);
        t_in_pool_work = false;
      } catch (...) {
        t_in_pool_work = false;
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job;
      std::size_t job_end;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        job = fn;
        job_end = end;
        // The caller may have fully drained the job and cleared `fn` before
        // this worker ever woke; there is nothing left to do then.
        if (job == nullptr) continue;
        ++active;
      }
      drain(*job, job_end);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--active == 0) done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : size_(resolve_size(num_threads)) {
  if (size_ <= 1) return;  // inline execution, no machinery needed
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& t : impl_->workers) t.join();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  if (!impl_ || end - begin == 1 || t_in_pool_work) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Shift the range to start at `begin` via a wrapper so the cursor can be a
  // plain counter from 0.
  const std::size_t count = end - begin;
  const std::function<void(std::size_t)> shifted =
      [&](std::size_t i) { fn(begin + i); };
  const std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->fn = &shifted;
    impl_->end = count;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->wake.notify_all();
  impl_->drain(shifted, count);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done.wait(lock, [&] { return impl_->active == 0; });
    impl_->fn = nullptr;
    if (impl_->error) {
      auto err = impl_->error;
      impl_->error = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

namespace {
std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  (pool != nullptr ? *pool : ThreadPool::global()).parallel_for(begin, end, fn);
}

}  // namespace lightator::util
