#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "workloads/image_io.hpp"
#include "workloads/scenes.hpp"
#include "workloads/synth_cifar.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::workloads {
namespace {

TEST(SynthMnist, ShapesAndLabels) {
  SynthMnistOptions opts;
  opts.samples = 50;
  const nn::Dataset data = make_synth_mnist(opts);
  EXPECT_EQ(data.size(), 50u);
  EXPECT_EQ(data.num_classes, 10u);
  EXPECT_EQ(data.images.dim(1), 1u);
  EXPECT_EQ(data.images.dim(2), 28u);
  std::set<std::size_t> labels(data.labels.begin(), data.labels.end());
  EXPECT_EQ(labels.size(), 10u);
}

TEST(SynthMnist, PixelsInRange) {
  SynthMnistOptions opts;
  opts.samples = 20;
  const nn::Dataset data = make_synth_mnist(opts);
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    EXPECT_GE(data.images[i], 0.0f);
    EXPECT_LE(data.images[i], 1.0f);
  }
}

TEST(SynthMnist, Deterministic) {
  SynthMnistOptions opts;
  opts.samples = 10;
  const nn::Dataset a = make_synth_mnist(opts);
  const nn::Dataset b = make_synth_mnist(opts);
  EXPECT_TRUE(a.images.allclose(b.images, 0.0f));
}

TEST(SynthMnist, DigitsVisuallyDistinct) {
  // Mean per-class images must differ pairwise: strokes occupy different
  // pixels for different digits.
  SynthMnistOptions opts;
  opts.samples = 200;
  opts.noise_stddev = 0.0;
  const nn::Dataset data = make_synth_mnist(opts);
  std::vector<std::vector<double>> mean(10, std::vector<double>(28 * 28, 0.0));
  std::vector<int> count(10, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto label = data.labels[i];
    ++count[label];
    for (std::size_t p = 0; p < 28 * 28; ++p) {
      mean[label][p] += data.images[i * 28 * 28 + p];
    }
  }
  for (int d = 0; d < 10; ++d) {
    for (auto& v : mean[d]) v /= count[d];
  }
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      double diff = 0.0;
      for (std::size_t p = 0; p < 28 * 28; ++p) {
        diff += std::abs(mean[a][p] - mean[b][p]);
      }
      EXPECT_GT(diff, 5.0) << "digits " << a << " vs " << b;
    }
  }
}

TEST(SynthMnist, RenderDigitRejectsBadInput) {
  util::Rng rng(1);
  SynthMnistOptions opts;
  float buf[28 * 28];
  EXPECT_THROW(render_digit(10, rng, opts, buf), std::out_of_range);
  EXPECT_THROW(render_digit(-1, rng, opts, buf), std::out_of_range);
}

TEST(SynthCifar, ShapesAndClasses) {
  SynthCifarOptions opts;
  opts.samples = 60;
  opts.num_classes = 10;
  const nn::Dataset data = make_synth_cifar(opts);
  EXPECT_EQ(data.images.dim(1), 3u);
  EXPECT_EQ(data.images.dim(2), 32u);
  std::set<std::size_t> labels(data.labels.begin(), data.labels.end());
  EXPECT_EQ(labels.size(), 10u);
}

TEST(SynthCifar, SupportsHundredClasses) {
  SynthCifarOptions opts;
  opts.samples = 200;
  opts.num_classes = 100;
  const nn::Dataset data = make_synth_cifar(opts);
  std::set<std::size_t> labels(data.labels.begin(), data.labels.end());
  EXPECT_EQ(labels.size(), 100u);
}

TEST(SynthCifar, ClassSignaturesDiffer) {
  util::Rng rng(3);
  std::vector<float> a(3 * 32 * 32), b(3 * 32 * 32);
  render_cifar_sample(0, 10, rng, 0.0, a.data());
  render_cifar_sample(1, 10, rng, 0.0, b.data());
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 50.0);
}

TEST(SynthCifar, PixelsInRange) {
  SynthCifarOptions opts;
  opts.samples = 20;
  const nn::Dataset data = make_synth_cifar(opts);
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    EXPECT_GE(data.images[i], 0.0f);
    EXPECT_LE(data.images[i], 1.0f);
  }
}

TEST(Scenes, GradientScene) {
  const auto img = make_gradient_scene(64, 64);
  EXPECT_EQ(img.channels(), 3u);
  // Gradient: right side brighter in red than left.
  EXPECT_GT(img.at(32, 60, 0), img.at(32, 3, 0));
}

TEST(Scenes, CheckerSceneAlternates) {
  const auto img = make_checker_scene(64, 64, 8);
  EXPECT_NE(img.at(0, 0, 0), img.at(0, 8, 0));
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), img.at(0, 16, 0));
}

TEST(Scenes, BlobSceneInRange) {
  util::Rng rng(5);
  const auto img = make_blob_scene(64, 64, rng);
  for (float v : img.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ImageIo, PpmRoundTrip) {
  util::Rng rng(7);
  const auto img = make_blob_scene(16, 24, rng);
  const std::string path = ::testing::TempDir() + "/roundtrip.ppm";
  write_pnm(img, path);
  const auto back = read_pnm(path);
  ASSERT_EQ(back.height(), 16u);
  ASSERT_EQ(back.width(), 24u);
  ASSERT_EQ(back.channels(), 3u);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 24; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(back.at(y, x, c), img.at(y, x, c), 1.0f / 255.0f + 1e-5f);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ImageIo, PgmRoundTrip) {
  util::Rng rng(8);
  auto rgb = make_blob_scene(8, 8, rng);
  const auto gray = rgb.to_grayscale();
  const std::string path = ::testing::TempDir() + "/roundtrip.pgm";
  write_pnm(gray, path);
  const auto back = read_pnm(path);
  ASSERT_EQ(back.channels(), 1u);
  EXPECT_NEAR(back.at(4, 4), gray.at(4, 4), 1.0f / 255.0f + 1e-5f);
  std::remove(path.c_str());
}

TEST(ImageIo, ReadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.ppm";
  {
    std::ofstream out(path);
    out << "not a pnm";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
  EXPECT_THROW(read_pnm("/nonexistent/file.ppm"), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lightator::workloads
