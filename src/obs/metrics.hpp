// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The observability half of src/obs/ that answers "how much / how fast"
// questions (the other half, obs/trace.hpp, answers "where did the time
// go"). Every subsystem — the serving layer's request counters and latency
// sketches, Engine::compile's pass timings and autotune race results, the
// per-layer execution stats bridge (obs/report.hpp) — reports through one
// surface, so a single snapshot_json() call captures the whole process
// state for dashboards, CI artifacts, and the autoscaler signals ROADMAP
// item 4 needs.
//
// Concurrency model:
//   * Counter / Gauge are single relaxed atomics — hot-path increments are
//     wait-free and allocation-free;
//   * Histogram observations land in one of a fixed set of shards (picked
//     by thread-id hash), each a mutex + util::StreamingQuantiles sketch, so
//     concurrent observers contend only when hashed onto the same shard.
//     snapshot() merges the shards in index order; while total observations
//     stay within the sketch capacity the merged quantiles are exact, hence
//     deterministic regardless of which thread recorded which value (the
//     registry merge determinism the tests assert);
//   * metric handles returned by counter()/gauge()/histogram() are stable
//     for the registry's lifetime — reset() zeroes values but never
//     invalidates a cached handle, which is what lets the serving layer
//     resolve its handles once at construction and increment lock-free.
//
// snapshot_json() emits a versioned object:
//   { "version": 1, "counters": {...}, "gauges": {...},
//     "histograms": {name: {count,min,max,mean,p50,p90,p95,p99}},
//     "attrs": {name: {key: value, ...}} }
// `attrs` carries static annotations (backend name, kernel tier, units)
// attached via annotate().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/streaming_quantiles.hpp"

namespace lightator::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Relaxed CAS accumulate (gauges are low-rate; counters cover hot paths).
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  explicit Histogram(std::size_t sketch_capacity = 512);

  /// Records one observation into the calling thread's shard.
  void observe(double value);

  /// Shards merged in index order — deterministic, and exact while the
  /// total observation count fits the sketch capacity.
  util::StreamingQuantiles snapshot() const;

  std::uint64_t count() const;
  void reset();

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::mutex mutex;
    util::StreamingQuantiles sketch;
    explicit Shard(std::size_t capacity) : sketch(capacity) {}
  };
  Shard& local_shard();

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Sanitizes one dotted-metric-name component: letters, digits, '_', and
/// '-' pass through; every other byte — the '@' of a name@version ref,
/// spaces, dots that would split the component — becomes '_'. An empty
/// input returns "_". The serving router namespaces per-model telemetry as
/// "serve.<sanitize_metric_component(model)>.…".
std::string sanitize_metric_component(const std::string& s);

class MetricsRegistry {
 public:
  /// The process-wide registry every built-in subsystem reports to.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference is stable for the
  /// registry's lifetime (reset() zeroes values, never destroys metrics),
  /// so callers cache it once and update lock-free thereafter.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::size_t sketch_capacity = 512);

  /// Attaches a static key=value annotation to `name` (backend, kernel
  /// tier, units); emitted under "attrs" in the snapshot. Last write wins.
  void annotate(const std::string& name, const std::string& key,
                const std::string& value);

  /// Versioned JSON snapshot of every registered metric (see file comment).
  std::string snapshot_json(const std::string& indent = "  ") const;

  /// Zeroes every value and drops annotations; handles stay valid. Tests
  /// bracket with this so process-wide accumulation never leaks across
  /// cases.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::map<std::string, std::string>> attrs_;
};

}  // namespace lightator::obs
