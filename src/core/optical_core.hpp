// Optical Core: the MR-based MVM engine.
//
// Tensor-level execution (conv2d / linear) is delegated to a pluggable
// ComputeBackend (see core/compute_backend.hpp):
//   * "reference" — scalar arm-segmented loop, the correctness oracle;
//   * "gemm"      — im2col + segment-blocked int16 GEMM, bit-exact with the
//                   reference and the default engine;
//   * "physical"  — full device models (VCSEL L-I, Lorentzian rings with
//                   crosstalk, lossy rails, BPD) with optional seeded noise.
// All backends shard the batch dimension over a thread pool. The scalar
// arm-level entry points (arm_dot / arm_dot_physical / reduce) remain here
// as the single-segment primitives the property tests and calibration use.
// A property-test suite asserts the functional and physical paths agree
// within the analog error budget (tests/test_optical_core.cpp), and a
// backend-equivalence suite asserts reference/gemm bit-exactness
// (tests/test_backends.cpp).
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/arch_config.hpp"
#include "core/compute_backend.hpp"
#include "core/dmva.hpp"
#include "optics/arm.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"

namespace lightator::core {

class OpticalCore {
 public:
  explicit OpticalCore(ArchConfig config);

  const ArchConfig& config() const { return config_; }

  /// Functional dot product of one arm-segment: activation codes (0..15) x
  /// signed weight levels. Returns the real-valued partial sum
  /// (codes/15 . levels/max_level), exact in double.
  double arm_dot(std::span<const int> codes, std::span<const int> levels,
                 int weight_bits) const;

  /// Physical dot product of one arm-segment (device models end to end).
  /// `weights` in [-1,1] are quantized to `weight_bits` inside the arm.
  double arm_dot_physical(std::span<const double> weights,
                          std::span<const int> codes, int weight_bits,
                          util::Rng* noise_rng = nullptr) const;

  /// Full reduction of `macs` >= 1 terms: splits into 9-MR segments, reduces
  /// segments through the (ideal) summation tree. Functional path.
  double reduce(std::span<const int> codes, std::span<const int> levels,
                int weight_bits) const;

  /// Quantized conv2d through the OC: x codes are unsigned `act` codes, w
  /// levels signed. Returns real-valued outputs (scale_x * scale_w applied).
  /// Bias (float) added if non-empty. Runs on `ctx`'s backend; the
  /// ctx-less overload uses the default ("gemm") functional engine.
  tensor::Tensor conv2d(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const tensor::ConvSpec& spec) const;
  tensor::Tensor conv2d(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const tensor::ConvSpec& spec,
                        const ExecutionContext& ctx) const;

  /// Quantized fully-connected layer through the OC. The reduction is
  /// arm-segmented exactly like conv2d (mrs_per_arm partial-sum boundaries).
  tensor::Tensor linear(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias) const;
  tensor::Tensor linear(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const ExecutionContext& ctx) const;

  /// The backend instance for `name` ("reference" / "gemm" / "physical" or
  /// anything registered), instantiated for this core's config and cached.
  const ComputeBackend& backend(const std::string& name) const;

  /// Total heater power if `levels` (signed) were programmed (TUN audit).
  double tuning_power_for_levels(std::span<const int> levels,
                                 int weight_bits) const;

 private:
  ArchConfig config_;
  Dmva dmva_;
  mutable std::mutex backends_mutex_;
  mutable std::unordered_map<std::string, std::unique_ptr<ComputeBackend>>
      backends_;
};

}  // namespace lightator::core
