#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace lightator::serve {

using Clock = std::chrono::steady_clock;

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

/// The server's slice of the process metrics registry: every handle resolved
/// once at construction, so the request path updates metrics with lock-free
/// atomic increments and sharded sketch inserts — ServerStats is mirrored
/// here so dashboards read one surface (obs::MetricsRegistry::global()
/// .snapshot_json()) for serve, compile, and kernel telemetry alike.
struct InferenceServer::Telemetry {
  explicit Telemetry(const std::string& prefix)
      : registry(obs::MetricsRegistry::global()),
        submitted(registry.counter(prefix + ".submitted")),
        rejected(registry.counter(prefix + ".rejected")),
        completed(registry.counter(prefix + ".completed")),
        failed(registry.counter(prefix + ".failed")),
        batches(registry.counter(prefix + ".batches")),
        expired(registry.counter(prefix + ".sched.expired")),
        scale_ups(registry.counter(prefix + ".sched.scale_ups")),
        scale_downs(registry.counter(prefix + ".sched.scale_downs")),
        queue_depth(registry.gauge(prefix + ".queue_depth")),
        replicas(registry.gauge(prefix + ".replicas")),
        latency_ms(registry.histogram(prefix + ".latency_ms")),
        queue_ms(registry.histogram(prefix + ".queue_ms")),
        batch_size(registry.histogram(prefix + ".batch_size")) {
    for (std::size_t c = 0; c < sched::kNumClasses; ++c) {
      shed[c] = &registry.counter(
          prefix + ".shed." +
          sched::class_name(static_cast<sched::RequestClass>(c)));
    }
  }

  obs::MetricsRegistry& registry;
  obs::Counter& submitted;
  obs::Counter& rejected;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& batches;
  obs::Counter& expired;
  obs::Counter& scale_ups;
  obs::Counter& scale_downs;
  obs::Gauge& queue_depth;
  obs::Gauge& replicas;
  obs::Histogram& latency_ms;
  obs::Histogram& queue_ms;
  obs::Histogram& batch_size;
  std::array<obs::Counter*, sched::kNumClasses> shed{};
};

/// One serving replica: a private pool and an ExecutionContext wired for
/// per-item quantization. The CompiledModel itself is immutable and shared —
/// a replica carries no network state of its own, which is what lets N
/// replicas serve one artifact with no per-replica clone or weight cache.
struct InferenceServer::Replica {
  Replica(std::size_t index_, const ServerOptions& options)
      : pool(std::max<std::size_t>(options.threads_per_replica, 1)),
        index(index_) {
    ctx.noise_seed = options.noise_seed;
    ctx.pool = &pool;
    ctx.per_item_act_scale = true;
    ctx.collect_stats = options.collect_layer_stats;
  }

  util::ThreadPool pool;
  core::ExecutionContext ctx;
  std::size_t index;
  /// Reusable gather list for the batched forward — capacity persists across
  /// batches so the steady-state dispatch is allocation-free, like the
  /// context's scratch arena the forward itself runs out of.
  std::vector<const tensor::Tensor*> frames;
};

namespace {

core::CompileOptions server_compile_options(const ServerOptions& options,
                                            nn::PrecisionSchedule schedule) {
  core::CompileOptions co;
  co.backend = options.backend;
  co.schedule = std::move(schedule);
  return co;
}

/// The queue's dispatch policy: the BatchPolicy half (max_batch / base
/// window) plus the per-class overrides from SchedOptions.
sched::SchedPolicy queue_policy(const ServerOptions& options) {
  sched::SchedPolicy sp;
  sp.max_batch = options.batch.max_batch;
  sp.base_max_wait_us = options.batch.max_wait_us;
  sp.classes = options.sched.classes;
  return sp;
}

/// Warm-pool size: room for the autoscaler's ceiling when it is enabled.
std::size_t warm_pool_size(const ServerOptions& options) {
  std::size_t n = std::max<std::size_t>(options.replicas, 1);
  if (options.sched.autoscale.enabled) {
    const auto& as = options.sched.autoscale;
    n = std::max(n, as.max_replicas);
    n = std::max(n, std::max<std::size_t>(as.min_replicas, 1));
  }
  return n;
}

}  // namespace

InferenceServer::InferenceServer(const core::LightatorSystem& system,
                                 const nn::Network& model,
                                 nn::PrecisionSchedule schedule,
                                 ServerOptions options)
    : options_(options),
      compiled_(system.compile(
          model, server_compile_options(options, std::move(schedule)))),
      admission_(options_.sched.admission, options_.queue_capacity),
      queue_(options_.queue_capacity, queue_policy(options_),
             options_.sched.clock) {
  start_replicas();
}

InferenceServer::InferenceServer(core::CompiledModel compiled,
                                 ServerOptions options)
    : options_(std::move(options)),
      compiled_(std::move(compiled)),
      admission_(options_.sched.admission, options_.queue_capacity),
      queue_(options_.queue_capacity, queue_policy(options_),
             options_.sched.clock) {
  if (!compiled_.valid()) {
    throw std::invalid_argument(
        "InferenceServer: compiled model handle is invalid");
  }
  options_.backend = compiled_.backend();  // the artifact fixed the backend
  start_replicas();
}

void InferenceServer::start_replicas() {
  telemetry_ = std::make_unique<Telemetry>(options_.metric_prefix.empty()
                                               ? std::string("serve")
                                               : options_.metric_prefix);
  const std::size_t n = warm_pool_size(options_);
  std::size_t active = std::max<std::size_t>(options_.replicas, 1);
  if (options_.sched.autoscale.enabled) {
    autoscaler_ = std::make_unique<sched::ReplicaAutoscaler>(
        options_.sched.autoscale, active);
    active = autoscaler_->current();
  }
  active_replicas_.store(std::min(active, n), std::memory_order_release);
  telemetry_->replicas.set(static_cast<double>(active_replicas_.load()));
  replicas_.reserve(n);
  workers_.reserve(n);
  // The WHOLE pool is built warm up front — contexts, thread pools, scratch
  // arenas. Scaling later only moves active_replicas_; it never constructs
  // anything, which is what keeps scale-up off the allocator entirely.
  for (std::size_t i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<Replica>(i, options_));
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(*replicas_[i]); });
  }
  if (autoscaler_) {
    control_ = std::thread([this] { control_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  stopping_.store(true, std::memory_order_release);
  scale_cv_.notify_all();
  queue_.close();
  // Serialize racing shutdown() callers (including the destructor): exactly
  // one of them joins the workers.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (joined_) return;
  joined_ = true;
  if (control_.joinable()) control_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void InferenceServer::set_active_replicas(std::size_t n) {
  n = std::clamp<std::size_t>(n, 1, replicas_.size());
  std::size_t prev;
  {
    std::lock_guard<std::mutex> lock(scale_mutex_);
    prev = active_replicas_.load(std::memory_order_relaxed);
    if (n == prev) return;
    active_replicas_.store(n, std::memory_order_release);
  }
  scale_cv_.notify_all();
  telemetry_->replicas.set(static_cast<double>(n));
  if (n > prev) {
    telemetry_->scale_ups.add(1);
  } else {
    telemetry_->scale_downs.add(1);
  }
}

void InferenceServer::control_loop() {
  const auto& as = options_.sched.autoscale;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          std::max(as.interval_ms, 1.0)));
  std::unique_lock<std::mutex> lock(scale_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    scale_cv_.wait_for(lock, interval);
    if (stopping_.load(std::memory_order_acquire)) break;
    lock.unlock();
    const double signal =
        estimator_.window_queue_ms_quantile_and_reset(as.percentile);
    set_active_replicas(autoscaler_->decide(signal));
    lock.lock();
  }
}

SubmitTicket InferenceServer::submit(tensor::Tensor input) {
  return submit(std::move(input),
                next_request_id_.fetch_add(1, std::memory_order_relaxed),
                sched::SubmitOptions{});
}

SubmitTicket InferenceServer::submit(tensor::Tensor input,
                                     std::uint64_t request_id) {
  return submit(std::move(input), request_id, sched::SubmitOptions{});
}

SubmitTicket InferenceServer::submit(tensor::Tensor input,
                                     sched::SubmitOptions opts) {
  return submit(std::move(input),
                next_request_id_.fetch_add(1, std::memory_order_relaxed),
                opts);
}

SubmitTicket InferenceServer::submit(tensor::Tensor input,
                                     std::uint64_t request_id,
                                     sched::SubmitOptions opts) {
  LIGHTATOR_TRACE_SPAN_REQ("submit", "serve", request_id);
  if (input.rank() == 3) {
    input.reshape({1, input.dim(0), input.dim(1), input.dim(2)});
  }
  if (input.rank() != 4 || input.dim(0) != 1) {
    throw std::invalid_argument(
        "InferenceServer::submit expects one frame, [C,H,W] or [1,C,H,W]");
  }
  const std::size_t klass_idx = sched::class_index(opts.klass);
  PendingRequest req;
  req.key = GeometryKey{input.dim(1), input.dim(2), input.dim(3)};
  req.input = std::move(input);
  req.request_id = request_id;
  req.klass = opts.klass;
  // All scheduling time stamps read the QUEUE's clock, so deadlines,
  // expiry, and coalescing windows live on one timeline — the injectable
  // one in tests.
  req.enqueued = queue_.clock().now();
  const double deadline_ms =
      opts.deadline_ms > 0.0
          ? opts.deadline_ms
          : queue_policy(options_).default_deadline_ms(opts.klass);
  if (deadline_ms > 0.0) {
    req.deadline =
        req.enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }

  // Count the submission (and pin first_submit_) before the request becomes
  // visible to workers, so stats() can never observe a completion that
  // precedes its own submission (completed > submitted, negative wall time).
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
    ++stats_.by_class[klass_idx].submitted;
    if (!any_submit_) {
      any_submit_ = true;
      first_submit_ = req.enqueued;
    }
  }
  telemetry_->submitted.add(1);

  SubmitTicket ticket;
  // Per-class admission: shed BEFORE the queue sees the request. Decided
  // from the current depth and the expected-completion estimate — under
  // overload this is what turns best-effort away while critical still
  // rides, and what fail-fasts a deadline that cannot be met anyway.
  if (!admission_.admit(opts.klass, deadline_ms, queue_.depth(), estimator_,
                        active_replicas())) {
    ticket.status = SubmitStatus::kShed;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
      ++stats_.by_class[klass_idx].shed;
    }
    telemetry_->shed[klass_idx]->add(1);
#if !defined(LIGHTATOR_DISABLE_TRACING)
    {
      obs::TraceRecorder& rec = obs::TraceRecorder::global();
      if (rec.enabled()) {
        rec.record("shed", "serve", rec.now_us(), 0, request_id, "class",
                   sched::class_name(opts.klass));
      }
    }
#endif
    return ticket;
  }

  ticket.result = req.promise.get_future();
  ticket.status = queue_.push(std::move(req));
  telemetry_->queue_depth.set(static_cast<double>(queue_.depth()));
  if (ticket.status != SubmitStatus::kAccepted) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (ticket.status == SubmitStatus::kRejected) {
      ++stats_.rejected;
      ++stats_.by_class[klass_idx].rejected;
    }
  }
  if (ticket.status == SubmitStatus::kRejected) telemetry_->rejected.add(1);
  if (ticket.status != SubmitStatus::kAccepted) {
    ticket.result = std::future<InferResult>();  // promise is gone
  }
  return ticket;
}

InferResult InferenceServer::infer(tensor::Tensor input) {
  SubmitTicket ticket = submit(std::move(input));
  if (ticket.status == SubmitStatus::kRejected) {
    throw std::runtime_error("InferenceServer: queue full (backpressure)");
  }
  if (ticket.status == SubmitStatus::kShed) {
    throw std::runtime_error("InferenceServer: request shed (overload)");
  }
  if (ticket.status == SubmitStatus::kClosed) {
    throw std::runtime_error("InferenceServer: server is shut down");
  }
  return ticket.result.get();
}

void InferenceServer::complete_expired(std::vector<PendingRequest>& expired) {
  const Clock::time_point now = queue_.clock().now();
#if !defined(LIGHTATOR_DISABLE_TRACING)
  {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    if (rec.enabled()) {
      const std::int64_t now_us = rec.to_us(now);
      for (const PendingRequest& req : expired) {
        // Balance the request's async queue residency span, then mark the
        // typed outcome — both attributed to the request id so a trace
        // query can follow a shed/expired request end to end.
        const std::int64_t enq_us = rec.to_us(req.enqueued);
        rec.record_async("queue", "serve", enq_us, now_us - enq_us,
                         req.request_id);
        rec.record("deadline_exceeded", "serve", now_us, 0, req.request_id,
                   "class", sched::class_name(req.klass));
      }
    }
  }
#endif
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const PendingRequest& req : expired) {
      ++stats_.expired;
      ++stats_.by_class[sched::class_index(req.klass)].expired;
    }
    if (now > last_complete_) last_complete_ = now;
  }
  telemetry_->expired.add(expired.size());
  for (PendingRequest& req : expired) {
    InferResult result;
    result.status = InferStatus::kDeadlineExceeded;
    result.request_id = req.request_id;
    result.klass = req.klass;
    result.batch_size = 0;
    result.queue_seconds = seconds_between(req.enqueued, now);
    result.total_seconds = result.queue_seconds;
    req.promise.set_value(std::move(result));
  }
}

void InferenceServer::worker_loop(Replica& replica) {
  // Folds the replica context's per-batch layer stats into the server
  // accumulator (the context is cleared so the next batch starts fresh).
  const auto fold_layer_stats = [&] {
    if (!options_.collect_layer_stats) return;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    core::merge_layer_stats(layer_stats_, replica.ctx.stats);
    replica.ctx.stats.clear();
  };
  for (;;) {
    // Autoscaler parking: a replica beyond the active count sleeps here
    // until scaled back in (or shutdown). Scale-down is lazy — a worker
    // already blocked in pop_batch finishes at most one more lease before
    // it parks — which trades a bounded overshoot for a lock-free dispatch
    // path.
    {
      std::unique_lock<std::mutex> lock(scale_mutex_);
      scale_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               replica.index <
                   active_replicas_.load(std::memory_order_acquire);
      });
    }
    if (stopping_.load(std::memory_order_acquire) &&
        replica.index >= active_replicas_.load(std::memory_order_acquire)) {
      // Shutdown while parked: the active replicas drain the queue.
      return;
    }
    BatchLease lease = queue_.pop_batch();
    if (!lease.expired.empty()) complete_expired(lease.expired);
    if (lease.done()) return;  // closed and drained
    if (lease.batch.empty()) continue;
    std::vector<PendingRequest>& batch = lease.batch;
    const Clock::time_point dispatched = queue_.clock().now();
    bool recorded = false;
    try {
      // Run the batched forward straight off the queued frames (the gather
      // path — frames were moved into the queue at submit and are never
      // copied again), threading each request's id as its noise stream id
      // so "physical" noise is batch-composition invariant.
      replica.frames.resize(batch.size());
      replica.ctx.noise_stream_ids.resize(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        replica.frames[i] = &batch[i].input;
        replica.ctx.noise_stream_ids[i] = batch[i].request_id;
      }
      core::BatchOutput out = compiled_.run(replica.frames, replica.ctx);
      const Clock::time_point finished = queue_.clock().now();

#if !defined(LIGHTATOR_DISABLE_TRACING)
      // The request-path spans: per-request queue residency (async —
      // enqueued on the submitter thread, dispatched here) and the batch
      // dispatch window that contains the compiled_run span recorded
      // inside run(). Explicit timestamps, so recorded post-hoc with no
      // work on the timed path beyond the two Clock::now() reads the
      // stats already take.
      {
        obs::TraceRecorder& rec = obs::TraceRecorder::global();
        if (rec.enabled()) {
          const std::int64_t disp_us = rec.to_us(dispatched);
          const std::int64_t fin_us = rec.to_us(finished);
          for (const PendingRequest& req : batch) {
            const std::int64_t enq_us = rec.to_us(req.enqueued);
            rec.record_async("queue", "serve", enq_us, disp_us - enq_us,
                             req.request_id);
          }
          rec.record("batch_dispatch", "serve", disp_us, fin_us - disp_us);
        }
      }
#endif

      // Record before completing the futures: a client that has seen every
      // result must also see it reflected in stats().
      record_batch(batch, dispatched, finished, /*failed=*/false);
      recorded = true;
      fold_layer_stats();
      // Zero-copy response path: every request shares the ref-counted batch
      // logits and reads its own row view. The logits tensor is freed when
      // the last request of the batch drops its result.
      {
        LIGHTATOR_TRACE_SPAN("respond", "serve");
        for (std::size_t i = 0; i < batch.size(); ++i) {
          InferResult result;
          result.batch = out;
          result.row = i;
          result.request_id = batch[i].request_id;
          result.replica = replica.index;
          result.batch_size = batch.size();
          result.klass = batch[i].klass;
          result.queue_seconds = seconds_between(batch[i].enqueued, dispatched);
          result.total_seconds = seconds_between(batch[i].enqueued, finished);
          batch[i].promise.set_value(std::move(result));
        }
      }
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      if (!recorded) {
        record_batch(batch, dispatched, queue_.clock().now(),
                     /*failed=*/true);
      }
      fold_layer_stats();
      for (PendingRequest& req : batch) {
        try {
          req.promise.set_exception(error);
        } catch (const std::future_error&) {
          // promise already satisfied — only possible for the partial batch
          // that threw mid-completion; nothing to do.
        }
      }
    }
  }
}

void InferenceServer::record_batch(const std::vector<PendingRequest>& batch,
                                   Clock::time_point dispatched,
                                   Clock::time_point finished, bool failed) {
  double queue_ms_sum = 0.0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    ++stats_.batch_size_hist[batch.size()];
    stats_.busy_seconds += seconds_between(dispatched, finished);
    if (failed) {
      stats_.failed += batch.size();
    } else {
      stats_.completed += batch.size();
      for (const PendingRequest& req : batch) {
        const double queue_s = seconds_between(req.enqueued, dispatched);
        const double total_s = seconds_between(req.enqueued, finished);
        queue_ms_sum += queue_s * 1e3;
        stats_.queue_seconds.add(queue_s);
        stats_.latency_seconds.add(total_s);
        ClassStats& cs = stats_.by_class[sched::class_index(req.klass)];
        ++cs.completed;
        cs.latency_seconds.add(total_s);
        if (req.has_deadline()) {
          // A request that dispatched in time can still finish late (the
          // batch itself takes time); both outcomes land in the hit-rate.
          if (finished <= req.deadline) {
            ++cs.deadline_met;
          } else {
            ++cs.deadline_missed;
          }
        }
      }
    }
    // Monotonic: workers race into this lock, and a batch that finished
    // EARLIER can acquire it AFTER a later-finishing one — writing
    // unconditionally would move the wall-clock endpoint backwards and
    // stats() snapshots taken in between would see throughput_rps go UP
    // then DOWN on an identical request count.
    if (finished > last_complete_) last_complete_ = finished;
  }

  // Mirror onto the process registry (outside the lock — handles are
  // atomics/sharded sketches, and nothing below reads guarded state).
  telemetry_->batches.add(1);
  telemetry_->batch_size.observe(static_cast<double>(batch.size()));
  if (failed) {
    telemetry_->failed.add(batch.size());
  } else {
    telemetry_->completed.add(batch.size());
    for (const PendingRequest& req : batch) {
      telemetry_->queue_ms.observe(seconds_between(req.enqueued, dispatched) *
                                   1e3);
      telemetry_->latency_ms.observe(seconds_between(req.enqueued, finished) *
                                     1e3);
    }
    // Feed the admission/autoscaler estimator: mean queue wait of this
    // batch and its per-request service time.
    const double n = static_cast<double>(batch.size());
    estimator_.observe_batch(queue_ms_sum / n,
                             seconds_between(dispatched, finished) * 1e3 / n);
  }
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServerStats snapshot = stats_;
  snapshot.wall_seconds =
      any_submit_ &&
              (stats_.completed > 0 || stats_.failed > 0 || stats_.expired > 0)
          ? seconds_between(first_submit_, last_complete_)
          : 0.0;
  return snapshot;
}

std::vector<core::LayerExecStats> InferenceServer::layer_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return layer_stats_;
}

}  // namespace lightator::serve
