// GemmBackend: im2col + blocked int16 GEMM datapath.
//
// The fast functional engine: each batch item's receptive fields are
// unfolded once into an int16 column matrix (tensor::im2col_s16) and the
// whole layer reduces as one integer GEMM whose K dimension is blocked on
// mrs_per_arm segment boundaries (tensor::gemm_s16_segmented). Partial sums
// are therefore emitted at exactly the same BPD points, in the same order,
// with the same integer arithmetic as ReferenceBackend — the outputs are
// bit-for-bit identical (asserted by tests/test_backends.cpp) while the
// inner loops stream contiguous rows instead of recomputing window indices
// per MAC. Batch items are sharded across the thread pool.
#pragma once

#include "core/compute_backend.hpp"

namespace lightator::core {

class GemmBackend final : public ComputeBackend {
 public:
  explicit GemmBackend(ArchConfig config) : config_(config) {}

  std::string name() const override { return "gemm"; }

  tensor::Tensor conv2d(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const tensor::ConvSpec& spec,
                        const ExecutionContext& ctx) const override;

  tensor::Tensor linear(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const ExecutionContext& ctx) const override;

 private:
  ArchConfig config_;
};

}  // namespace lightator::core
