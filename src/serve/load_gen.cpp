#include "serve/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <numbers>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace lightator::serve {

namespace {

/// Salt for the class-pick Rng: keeps the input-index stream byte-identical
/// whether or not a class mix is configured.
constexpr std::uint64_t kClassStreamSalt = 0xC1A5500DD15C0DEull;

/// Picks one mix entry by normalized share. `classes` must be non-empty.
const ClassMix& pick_class(util::Rng& rng, const std::vector<ClassMix>& mix) {
  double total = 0.0;
  for (const ClassMix& c : mix) total += std::max(c.share, 0.0);
  if (total <= 0.0) return mix.front();
  double u = rng.uniform() * total;
  for (const ClassMix& c : mix) {
    u -= std::max(c.share, 0.0);
    if (u < 0.0) return c;
  }
  return mix.back();
}

/// Instantaneous rate multiplier for the shaped open-loop streams.
double rate_multiplier(const OpenLoopOptions& o, double t) {
  switch (o.shape) {
    case TrafficShape::kBurst: {
      if (o.burst_period_seconds <= 0.0) return 1.0;
      const double phase = std::fmod(t, o.burst_period_seconds);
      return phase < o.burst_duty * o.burst_period_seconds ? o.burst_factor
                                                           : 1.0;
    }
    case TrafficShape::kDiurnal: {
      if (o.diurnal_period_seconds <= 0.0) return 1.0;
      const double m =
          1.0 + o.diurnal_amplitude *
                    std::sin(2.0 * std::numbers::pi * t /
                             o.diurnal_period_seconds);
      return std::max(m, 0.05);  // never a zero rate (infinite gap)
    }
    default:
      return 1.0;
  }
}

}  // namespace

LoadGenReport run_closed_loop(InferenceServer& server,
                              const std::vector<tensor::Tensor>& inputs,
                              const LoadGenOptions& options) {
  if (inputs.empty()) {
    throw std::invalid_argument("run_closed_loop: no inputs");
  }
  const std::size_t n = options.requests;
  const std::size_t window =
      std::max<std::size_t>(options.concurrency, 1);

  LoadGenReport report;
  report.input_index.resize(n);
  report.outputs.resize(n);
  report.batch_sizes.resize(n, 0);
  // The whole request sequence is fixed up front: a pure function of the
  // seed, independent of completion timing. Class picks come from a second,
  // salted Rng so an empty mix reproduces the pre-scheduler stream exactly.
  util::Rng rng(options.seed);
  for (std::size_t i = 0; i < n; ++i) {
    report.input_index[i] = rng.uniform_index(inputs.size());
  }
  std::vector<sched::SubmitOptions> submit_opts;
  if (!options.classes.empty()) {
    util::Rng class_rng(options.seed ^ kClassStreamSalt);
    submit_opts.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const ClassMix& mix = pick_class(class_rng, options.classes);
      submit_opts[i] = sched::SubmitOptions{mix.klass, mix.deadline_ms};
    }
  }

  std::deque<std::pair<std::size_t, std::future<InferResult>>> outstanding;
  auto reap_oldest = [&] {
    auto [index, future] = std::move(outstanding.front());
    outstanding.pop_front();
    InferResult result = future.get();  // rethrows a failed request
    if (!result.ok()) {
      ++report.expired;  // deadline passed in queue; no output to keep
      return;
    }
    // Materialize the zero-copy row view: the report retains every output
    // long after its batch's ref-counted logits would otherwise be released.
    report.outputs[index] = result.output_tensor();
    report.batch_sizes[index] = result.batch_size;
  };

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    for (;;) {
      // Request index doubles as the request id, so physical-backend noise
      // is a pure function of (noise_seed, i) — reproducible across runs,
      // replica counts, and batching policies.
      SubmitTicket ticket =
          submit_opts.empty()
              ? server.submit(inputs[report.input_index[i]], i)
              : server.submit(inputs[report.input_index[i]], i,
                              submit_opts[i]);
      if (ticket.status == SubmitStatus::kAccepted) {
        outstanding.emplace_back(i, std::move(ticket.result));
        break;
      }
      if (ticket.status == SubmitStatus::kClosed) {
        throw std::runtime_error("run_closed_loop: server shut down mid-load");
      }
      if (ticket.status == SubmitStatus::kShed) {
        // A policy drop, not backpressure: retrying would just re-trip the
        // same admission rule, so the closed loop records it and moves on.
        ++report.shed;
        break;
      }
      ++report.reject_retries;
      // Backpressure: free an in-flight slot before retrying.
      if (!outstanding.empty()) {
        reap_oldest();
      } else {
        std::this_thread::yield();
      }
    }
    if (outstanding.size() >= window) reap_oldest();
  }
  while (!outstanding.empty()) reap_oldest();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  report.requests_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(n) / report.wall_seconds
          : 0.0;
  return report;
}

std::vector<Arrival> make_arrival_schedule(const OpenLoopOptions& options,
                                           std::size_t num_inputs) {
  if (num_inputs == 0) {
    throw std::invalid_argument("make_arrival_schedule: no inputs");
  }
  if (options.rate_rps <= 0.0) {
    throw std::invalid_argument("make_arrival_schedule: rate_rps must be > 0");
  }
  std::vector<Arrival> schedule(options.requests);
  util::Rng rng(options.seed);
  util::Rng class_rng(options.seed ^ kClassStreamSalt);
  double t = 0.0;
  for (std::size_t i = 0; i < options.requests; ++i) {
    const double rate = options.rate_rps * rate_multiplier(options, t);
    double dt;
    if (options.shape == TrafficShape::kConstant) {
      dt = 1.0 / rate;
    } else {
      // Exponential interarrival at the instantaneous rate. Evaluating the
      // multiplier at the current arrival time (rather than thinning a
      // homogeneous process) keeps the schedule a simple forward recurrence
      // — close enough to non-homogeneous Poisson for a bench, and exactly
      // reproducible.
      double u = rng.uniform();
      while (u <= 1e-300) u = rng.uniform();
      dt = -std::log(u) / rate;
    }
    t += dt;
    schedule[i].at_seconds = t;
    schedule[i].input_index = rng.uniform_index(num_inputs);
    if (!options.classes.empty()) {
      const ClassMix& mix = pick_class(class_rng, options.classes);
      schedule[i].klass = mix.klass;
      schedule[i].deadline_ms = mix.deadline_ms;
    }
  }
  return schedule;
}

OpenLoopReport run_open_loop(InferenceServer& server,
                             const std::vector<tensor::Tensor>& inputs,
                             const OpenLoopOptions& options) {
  OpenLoopReport report;
  report.schedule = make_arrival_schedule(options, inputs.size());
  const std::size_t n = report.schedule.size();
  report.outcomes.assign(n, RequestOutcome::kRejected);
  report.outputs.resize(n);
  report.latency_seconds.assign(n, -1.0);
  report.deadline_met.assign(n, false);
  report.offered = n;

  std::vector<std::pair<std::size_t, std::future<InferResult>>> inflight;
  inflight.reserve(n);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const Arrival& a = report.schedule[i];
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(a.at_seconds)));
    SubmitTicket ticket =
        server.submit(inputs[a.input_index], i,
                      sched::SubmitOptions{a.klass, a.deadline_ms});
    switch (ticket.status) {
      case SubmitStatus::kAccepted:
        inflight.emplace_back(i, std::move(ticket.result));
        break;
      case SubmitStatus::kShed:
        report.outcomes[i] = RequestOutcome::kShed;
        ++report.shed;
        break;
      case SubmitStatus::kRejected:
        report.outcomes[i] = RequestOutcome::kRejected;
        ++report.rejected;
        break;
      case SubmitStatus::kClosed:
        throw std::runtime_error("run_open_loop: server shut down mid-load");
    }
  }
  for (auto& [i, future] : inflight) {
    InferResult result = future.get();
    report.latency_seconds[i] = result.total_seconds;
    if (!result.ok()) {
      report.outcomes[i] = RequestOutcome::kExpired;
      ++report.expired;
      continue;
    }
    report.outcomes[i] = RequestOutcome::kCompleted;
    ++report.completed;
    report.outputs[i] = result.output_tensor();
    const double deadline_ms = report.schedule[i].deadline_ms;
    report.deadline_met[i] =
        deadline_ms <= 0.0 || result.total_seconds * 1e3 <= deadline_ms;
  }
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  return report;
}

}  // namespace lightator::serve
