// Global-shutter RGGB pixel array with CRC readout — the ADC-less imager.
//
// capture() exposes every photodiode simultaneously (global shutter) to the
// Bayer-mosaiced scene, then read_codes() runs the per-column CRC bank to
// produce the 4-bit code map that feeds the DMVA. Energy accounting for the
// exposure + readout of one frame is reported for the power model.
#pragma once

#include <cstdint>
#include <vector>

#include "sensor/bayer.hpp"
#include "sensor/crc.hpp"
#include "sensor/image.hpp"
#include "sensor/photodiode.hpp"
#include "util/rng.hpp"

namespace lightator::sensor {

struct PixelArrayParams {
  std::size_t rows = 256;
  std::size_t cols = 256;
  PhotodiodeParams diode;
  CrcParams crc;
  double pixel_static_power = 5e-9;   // W per pixel (bias, follower)
  double exposure_time = 100e-6;      // global-shutter integration time
};

/// A frame of 4-bit pixel codes (row-major), the DMVA's first-layer input.
struct CodeFrame {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint8_t> codes;  // each 0..15

  std::uint8_t at(std::size_t y, std::size_t x) const {
    return codes.at(y * cols + x);
  }
};

class PixelArray {
 public:
  explicit PixelArray(PixelArrayParams params);

  /// Global-shutter capture of an RGB scene (must match the array size).
  /// Stores the per-pixel photovoltages. Pass an Rng to include photon and
  /// read noise.
  void capture(const Image& scene, util::Rng* rng = nullptr);

  /// CRC readout of the captured frame into 4-bit codes. Pass an Rng to
  /// include comparator offset noise.
  CodeFrame read_codes(util::Rng* rng = nullptr) const;

  /// Photovoltage of one captured pixel (for tests and waveform dumps).
  double voltage(std::size_t y, std::size_t x) const;

  /// Energy of one full-frame CRC readout (J).
  double readout_energy_per_frame() const;

  /// Static power of the array (W).
  double static_power() const;

  const PixelArrayParams& params() const { return params_; }
  const Crc& crc() const { return crc_; }

 private:
  PixelArrayParams params_;
  Photodiode diode_;
  Crc crc_;
  std::vector<double> voltages_;  // row-major, set by capture()
};

}  // namespace lightator::sensor
