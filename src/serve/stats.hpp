// ServerStats: the serving layer's observability surface.
//
// Counters (admitted / completed / rejected / failed), the batch-size
// histogram the dynamic batcher produced, and streaming latency sketches
// (queue wait and end-to-end, p50/p95/p99 via util::StreamingQuantiles — the
// server never stores per-request records). A snapshot is cheap to copy; the
// serve_throughput bench serializes one to JSON and the examples print the
// text report.
//
// The server also mirrors these counters and sketches into the process-wide
// obs::MetricsRegistry (serve.submitted, serve.completed, serve.batches,
// serve.queue_depth, serve.latency_ms, ...) so one registry snapshot covers
// the serving layer alongside compile and kernel telemetry; ServerStats
// stays the exact per-server view, the registry the process-wide one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "util/streaming_quantiles.hpp"

namespace lightator::serve {

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  // admission control turned the request away
  std::uint64_t failed = 0;    // forward threw; the future carries the error
  std::uint64_t batches = 0;

  /// batch size -> number of batches dispatched at that size.
  std::map<std::size_t, std::uint64_t> batch_size_hist;

  util::StreamingQuantiles queue_seconds;    // admission -> batch dispatch
  util::StreamingQuantiles latency_seconds;  // admission -> result ready

  double busy_seconds = 0.0;  // summed batch execution wall time, all replicas
  double wall_seconds = 0.0;  // first admission -> most recent completion

  double mean_batch_size() const;
  /// completed / wall_seconds (0 before any completion).
  double throughput_rps() const;

  /// Multi-line human report (the examples' "serving report").
  std::string to_text() const;
  /// JSON object with throughput, latency quantiles (ms), and the batch
  /// histogram — the serve_throughput bench embeds this verbatim.
  std::string to_json(const std::string& indent = "  ") const;
};

}  // namespace lightator::serve
