// Compile/execute split suite: the CompiledModel artifact contract.
//
// Covers the tentpole guarantees of the compile-then-execute API:
//   * compiled forwards are bit-identical to the pre-split per-call entry
//     points (the deprecation-shim equivalence gate) for every backend,
//     precision form, batch shape, and fault configuration;
//   * the artifact is reusable — repeated runs, shared across contexts —
//     without drift;
//   * prepacked state (SIMD panels, physical arm programs) is a pure
//     re-layout: prepack on/off never changes a bit;
//   * BatchOutput row views alias the batched logits (zero-copy) and keep
//     them alive by ref-count;
//   * compile-time validation (unknown backend, invalid handles, bad
//     batches) fails loudly.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/experiment.hpp"
#include "nn/models.hpp"
#include "nn/qat.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::core {
namespace {

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

nn::Dataset make_tiny_dataset(std::size_t samples, std::size_t classes,
                              std::uint64_t seed) {
  nn::Dataset data;
  data.num_classes = classes;
  data.images = tensor::Tensor({samples, 1, 4, 4});
  util::Rng rng(seed);
  data.images.fill_uniform(rng, 0.0f, 1.0f);
  data.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) data.labels[i] = i % classes;
  return data;
}

TEST(CompiledModel, MetadataAndProgrammedWeights) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(11);
  nn::Network net = nn::build_lenet(rng);
  CompileOptions co;
  co.schedule = nn::PrecisionSchedule::mixed(3);  // L1 [4:4], rest [3:4]
  const CompiledModel compiled = sys.compile(net, co);

  EXPECT_TRUE(compiled.valid());
  EXPECT_EQ(compiled.backend(), "gemm");
  EXPECT_EQ(compiled.num_weighted_layers(), 5u);
  EXPECT_EQ(compiled.weight_bits(0), 4);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(compiled.weight_bits(i), 3);
  EXPECT_EQ(compiled.act_bits(0), 4);
  // Programmed weights are exactly the per-call quantization.
  const auto& conv1 = dynamic_cast<const nn::Conv2d&>(net.layer(0));
  const auto expected = tensor::quantize_symmetric(conv1.weight(), 4);
  ASSERT_EQ(compiled.weights(0).levels, expected.levels);
  EXPECT_EQ(compiled.weights(0).scale, expected.scale);

  EXPECT_THROW(compiled.weights(99), std::out_of_range);
  EXPECT_THROW(sys.compile(net, [] {
                 CompileOptions bad;
                 bad.backend = "no_such_backend";
                 return bad;
               }()),
               std::invalid_argument);
  CompiledModel invalid;
  EXPECT_FALSE(invalid.valid());
  ExecutionContext ctx;
  tensor::Tensor x({1, 1, 28, 28});
  EXPECT_THROW(invalid.run(x, ctx), std::logic_error);
}

TEST(CompiledModel, DeprecationShimsBitIdenticalToCompiledRuns) {
  // The old per-call entry points are shims over compile()+run(); both
  // spellings must agree bit-for-bit on every backend — the migration
  // contract that lets downstream code move over incrementally.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(12);
  nn::Network net = nn::build_lenet(rng);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  tensor::Tensor x({3, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);

  for (const std::string backend : {"reference", "gemm", "physical"}) {
    CompileOptions co;
    co.backend = backend;
    co.schedule = schedule;
    const CompiledModel compiled = sys.compile(net, co);
    ExecutionContext new_ctx;
    new_ctx.noise_seed = backend == "physical" ? 77 : 0;
    const auto modern = compiled.run(x, new_ctx).take();

    ExecutionContext old_ctx;
    old_ctx.backend = backend;
    old_ctx.noise_seed = new_ctx.noise_seed;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const auto legacy = sys.run_network_on_oc(net, x, schedule, old_ctx);
#pragma GCC diagnostic pop
    expect_bit_exact(legacy, modern, "shim_" + backend);
  }
}

TEST(CompiledModel, ShimEquivalenceForBitsVectorAndEvaluate) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(13);
  nn::Network net = nn::build_mlp(rng, 16, 10, 4);
  const auto data = make_tiny_dataset(20, 4, 31);
  const std::vector<int> bits = {4, 2};

  CompileOptions co;
  co.weight_bits = bits;
  co.act_bits = 4;
  const CompiledModel compiled = sys.compile(net, co);
  ExecutionContext ctx;
  const double modern = compiled.evaluate(data, ctx, /*batch=*/8);

  ExecutionContext old_ctx;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const double legacy =
      sys.evaluate_on_oc(net, data, bits, /*act_bits=*/4, old_ctx, 8);
#pragma GCC diagnostic pop
  EXPECT_EQ(legacy, modern);
}

TEST(CompiledModel, FaultedForwardMatchesShimAndLeavesArtifactIntact) {
  // Faults mutate a private per-forward copy of the programmed weights; the
  // artifact itself must stay pristine (a following clean run is unchanged)
  // and match the historical faulted path exactly.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(14);
  nn::Network net = nn::build_mlp(rng, 16, 8, 3);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  tensor::Tensor x({2, 1, 4, 4});
  x.fill_uniform(rng, 0.0f, 1.0f);
  FaultSpec faults;
  faults.stuck_cell_rate = 0.2;
  faults.dead_channel_rate = 0.1;
  faults.seed = 5;

  CompileOptions co;
  co.schedule = schedule;
  const CompiledModel compiled = sys.compile(net, co);
  ExecutionContext clean_ctx;
  const auto clean_before = compiled.run(x, clean_ctx).take();

  ExecutionContext fault_ctx;
  fault_ctx.faults = faults;
  const auto faulted = compiled.run(x, fault_ctx).take();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto legacy = sys.run_network_on_oc(net, x, schedule, faults);
#pragma GCC diagnostic pop
  expect_bit_exact(legacy, faulted, "faulted_shim");

  const auto clean_after = compiled.run(x, clean_ctx).take();
  expect_bit_exact(clean_before, clean_after, "artifact_pristine");
}

TEST(CompiledModel, PrepackIsAPureRelayoutOnEveryBackend) {
  // SIMD panels ("gemm") and arm programs ("physical") are built at compile
  // time purely for speed: disabling prepack must not change one bit — the
  // noisy physical path included (same RNG draw order after the
  // one-programming-per-segment hoist).
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(15);
  nn::Network net("tiny");
  net.add<nn::Conv2d>(tensor::ConvSpec{1, 3, 3, 1, 1}, rng);
  net.add<nn::Activation>(tensor::ActKind::kReLU);
  net.add<nn::Flatten>();
  net.add<nn::Linear>(3 * 6 * 6, 5, rng);
  tensor::Tensor x({2, 1, 6, 6});
  x.fill_uniform(rng, 0.0f, 1.0f);

  for (const std::string backend : {"gemm", "physical"}) {
    for (const std::uint64_t noise : {0ull, 99ull}) {
      if (backend == "gemm" && noise != 0) continue;
      CompileOptions packed_co, plain_co;
      packed_co.backend = plain_co.backend = backend;
      plain_co.prepack = false;
      const CompiledModel packed = sys.compile(net, packed_co);
      const CompiledModel plain = sys.compile(net, plain_co);
      if (backend == "physical") {
        EXPECT_NE(packed.weights(0).arm_program, nullptr);
        EXPECT_EQ(plain.weights(0).arm_program, nullptr);
      }
      ExecutionContext packed_ctx, plain_ctx;
      packed_ctx.noise_seed = plain_ctx.noise_seed = noise;
      expect_bit_exact(packed.run(x, packed_ctx).take(),
                       plain.run(x, plain_ctx).take(),
                       backend + "_noise" + std::to_string(noise));
    }
  }
}

TEST(CompiledModel, RepeatedRunsOnOneArtifactAreStable) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(16);
  nn::Network net = nn::build_lenet(rng);
  CompileOptions co;
  co.schedule = nn::PrecisionSchedule::uniform(4);
  const CompiledModel compiled = sys.compile(net, co);
  tensor::Tensor x({2, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  ExecutionContext ctx;
  const auto first = compiled.run(x, ctx).take();
  for (int r = 0; r < 3; ++r) {
    expect_bit_exact(first, compiled.run(x, ctx).take(),
                     "repeat" + std::to_string(r));
  }
  // A handle copy shares the artifact (no re-programming) and agrees.
  const CompiledModel copy = compiled;
  expect_bit_exact(first, copy.run(x, ctx).take(), "handle_copy");
  EXPECT_EQ(&copy.weights(0), &compiled.weights(0));  // shared, not cloned
}

TEST(CompiledModel, GatherRunMatchesStackedRun) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(17);
  nn::Network net = nn::build_lenet(rng);
  CompileOptions co;
  co.schedule = nn::PrecisionSchedule::uniform(4);
  const CompiledModel compiled = sys.compile(net, co);

  std::vector<tensor::Tensor> frames;
  tensor::Tensor stacked({3, 1, 28, 28});
  stacked.fill_uniform(rng, 0.0f, 1.0f);
  for (std::size_t i = 0; i < 3; ++i) {
    tensor::Tensor f({1, 1, 28, 28});
    std::copy(stacked.data() + i * 28 * 28, stacked.data() + (i + 1) * 28 * 28,
              f.data());
    frames.push_back(std::move(f));
  }
  std::vector<const tensor::Tensor*> ptrs = {&frames[0], &frames[1],
                                             &frames[2]};
  ExecutionContext ctx;
  const auto dense = compiled.run(stacked, ctx).take();
  const auto gathered = compiled.run(ptrs, ctx).take();
  expect_bit_exact(dense, gathered, "gather_vs_stacked");

  // Bad gather batches fail loudly.
  std::vector<const tensor::Tensor*> empty;
  EXPECT_THROW(compiled.run(empty, ctx), std::invalid_argument);
  tensor::Tensor wrong({1, 1, 14, 14});
  std::vector<const tensor::Tensor*> mismatched = {&frames[0], &wrong};
  EXPECT_THROW(compiled.run(mismatched, ctx), std::invalid_argument);
}

TEST(BatchOutput, RowViewsAliasLogitsAndRefCountKeepsThemAlive) {
  tensor::Tensor logits({2, 3});
  for (std::size_t i = 0; i < 6; ++i) logits[i] = static_cast<float>(i);

  BatchOutput out(std::move(logits));
  EXPECT_EQ(out.items(), 2u);
  EXPECT_EQ(out.row_size(), 3u);
  EXPECT_EQ(out.row_shape(), (tensor::Shape{1, 3}));
  // Views alias the storage — zero-copy by construction.
  EXPECT_EQ(out.row(0).data(), out.logits().data());
  EXPECT_EQ(out.row(1).data(), out.logits().data() + 3);
  EXPECT_EQ(out.row(1)[2], 5.0f);
  EXPECT_THROW(out.row(2), std::out_of_range);

  const tensor::Tensor copy = out.row_tensor(1);
  EXPECT_EQ(copy.dim(0), 1u);
  EXPECT_EQ(copy[0], 3.0f);

  // Handles share by ref-count: the view stays valid after the original
  // handle goes away — the serving response-path contract.
  BatchOutput shared = out;
  const std::span<const float> view = shared.row(0);
  out = BatchOutput();  // drop the first handle
  EXPECT_EQ(view[1], 1.0f);
  // take() on the sole remaining handle moves the tensor out.
  const tensor::Tensor taken = shared.take();
  EXPECT_EQ(taken.size(), 6u);
  EXPECT_TRUE(shared.empty());
}

TEST(CompiledModel, EvaluateMatchesShimOnQatNetwork) {
  // QAT networks carry frozen activation scales; the compiled plan snapshots
  // them, so compiled evaluation matches the per-call shim on a fine-tuned
  // model too (the quickstart/table1 path).
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(18);
  workloads::SynthMnistOptions mo;
  mo.samples = 60;
  nn::Dataset data = workloads::make_synth_mnist(mo);
  nn::Network net = nn::build_lenet(rng);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  nn::enable_qat(net, schedule);
  nn::calibrate_activations(net, data, /*num_batches=*/2, /*batch_size=*/16);

  CompileOptions co;
  co.schedule = schedule;
  ExecutionContext ctx;
  const double modern = sys.compile(net, co).evaluate(data, ctx, 16);
  ExecutionContext old_ctx;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const double legacy = sys.evaluate_on_oc(net, data, schedule, old_ctx, 16);
#pragma GCC diagnostic pop
  EXPECT_EQ(legacy, modern);
}

}  // namespace
}  // namespace lightator::core
