#include "accel/photonic_baselines.hpp"

namespace lightator::accel {

// Component-inventory constants: each block below reconstructs a published
// design at the operating point Table 1 reports, under the same area
// constraint (~20-60 mm^2). Power splits follow each paper's own breakdown
// narrative (e.g. "LightBulb's excessive ADCs increased the power
// consumption", "[ROBIN's] excessive number of MRs and subsequent DACs").

PhotonicAccelerator lightbulb() {
  PhotonicAccelerator a;
  a.name = "LightBulb";
  a.precision = "[1:1]";
  a.process_nm = 32;
  a.mac_units = 16384;    // dense binary XNOR sites
  a.symbol_rate = 50e9;   // photonic XNOR at photodetection limit
  a.utilization = 0.75;
  a.adc_array_power = 57.0;  // flash-ADC popcount arrays dominate
  a.dac_array_power = 2.0;
  a.tuning_power = 1.5;
  a.laser_power = 5.0;
  a.digital_power = 2.8;
  return a;
}

PhotonicAccelerator holylight() {
  PhotonicAccelerator a;
  a.name = "HolyLight";
  a.precision = "[4:4]";
  a.process_nm = 32;
  a.mac_units = 5184;    // MR array comparable to one Lightator OC
  a.symbol_rate = 10e9;
  a.utilization = 0.66;
  a.adc_array_power = 0.0;   // MR adders/shifters replace ADCs
  a.dac_array_power = 40.0;  // MRs tuned for weights AND activations
  a.tuning_power = 20.0;
  a.laser_power = 4.0;
  a.digital_power = 2.9;
  return a;
}

PhotonicAccelerator hqnna() {
  PhotonicAccelerator a;
  a.name = "HQNNA";
  a.precision = "[mixed]";
  a.process_nm = 45;
  a.mac_units = 8192;
  a.symbol_rate = 25e9;
  a.utilization = 0.785;
  a.adc_array_power = 12.0;  // persistent inter-layer ADC/DAC conversion
  a.dac_array_power = 10.0;
  a.tuning_power = 4.0;
  a.laser_power = 2.5;
  a.digital_power = 1.5;
  return a;
}

PhotonicAccelerator robin() {
  PhotonicAccelerator a;
  a.name = "Robin";
  a.precision = "[1:4]";
  a.process_nm = 45;
  a.mac_units = 16384;
  a.symbol_rate = 50e9;
  a.utilization = 0.93;
  a.adc_array_power = 20.0;
  a.dac_array_power = 68.0;  // per-MR tuning DACs (the paper's critique)
  a.tuning_power = 10.0;
  a.laser_power = 5.0;
  a.digital_power = 3.0;
  return a;
}

PhotonicAccelerator crosslight_low() {
  PhotonicAccelerator a;
  a.name = "CrossLight-L";
  a.precision = "[4:4]";
  a.process_nm = 0;  // not reported
  a.mac_units = 5184;
  a.symbol_rate = 30e9;
  a.utilization = 0.9;
  a.adc_array_power = 20.0;
  a.dac_array_power = 45.0;  // activation + weight MR tuning
  a.tuning_power = 12.0;
  a.laser_power = 4.0;
  a.digital_power = 3.0;
  return a;
}

PhotonicAccelerator crosslight_high() {
  PhotonicAccelerator a;
  a.name = "CrossLight-H";
  a.precision = "[4:4]";
  a.process_nm = 0;
  a.mac_units = 65536;  // multi-tile high-throughput configuration
  a.symbol_rate = 50e9;
  a.utilization = 0.97;
  a.adc_array_power = 120.0;
  a.dac_array_power = 200.0;
  a.tuning_power = 50.0;
  a.laser_power = 12.0;
  a.digital_power = 8.0;
  return a;
}

std::vector<PhotonicAccelerator> all_photonic_baselines() {
  return {lightbulb(), holylight(), hqnna(), robin(), crosslight_low(),
          crosslight_high()};
}

double GpuBaseline::fps(std::size_t macs_per_frame) const {
  if (macs_per_frame == 0) return 0.0;
  return peak_macs_per_s * utilization / static_cast<double>(macs_per_frame);
}

}  // namespace lightator::accel
