#include "optics/vcsel.hpp"

#include <stdexcept>

namespace lightator::optics {

Vcsel::Vcsel(VcselParams params, double wavelength)
    : params_(params), wavelength_(wavelength) {
  if (params_.levels < 1) throw std::invalid_argument("VCSEL needs >=1 level");
  if (params_.step_current <= 0 || params_.slope_efficiency <= 0) {
    throw std::invalid_argument("VCSEL L-I parameters must be positive");
  }
  if (wavelength <= 0) throw std::invalid_argument("wavelength must be positive");
}

void Vcsel::drive_thermometer(const std::vector<bool>& code) {
  if (code.size() != static_cast<std::size_t>(params_.levels)) {
    throw std::invalid_argument("thermometer code width mismatch");
  }
  code_ = util::thermometer_decode(code);
}

void Vcsel::drive_code(int code) {
  if (code < 0 || code > params_.levels) {
    throw std::out_of_range("VCSEL drive code out of range");
  }
  code_ = code;
}

double Vcsel::optical_power() const {
  // Bias holds the device at threshold; each enabled branch adds step
  // current entirely above threshold.
  const double above = static_cast<double>(code_) * params_.step_current;
  return params_.slope_efficiency * above;
}

double Vcsel::max_optical_power() const {
  return params_.slope_efficiency * static_cast<double>(params_.levels) *
         params_.step_current;
}

double Vcsel::electrical_power() const {
  const double current = params_.threshold_current +
                         static_cast<double>(code_) * params_.step_current;
  return params_.supply_voltage * current;
}

double Vcsel::driver_symbol_energy() const {
  return params_.driver_energy_per_symbol * static_cast<double>(params_.levels);
}

}  // namespace lightator::optics
