// Architecture-level model descriptors.
//
// The hardware mapper, power model, and timing model consume layer *shapes*,
// not weights. ModelDesc describes a network structurally, so timing-only
// workloads (VGG16, AlexNet in Fig. 10) don't need hundreds of MB of weights,
// and trainable Networks can be described via desc_from_network().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/ops.hpp"

namespace lightator::nn {

struct LayerDesc {
  LayerKind kind = LayerKind::kConv;
  std::string name;

  // Input spatial geometry (conv/pool layers).
  std::size_t in_h = 0, in_w = 0;

  // kConv
  tensor::ConvSpec conv;

  // kMaxPool / kAvgPool
  std::size_t pool_kernel = 0, pool_stride = 0, pool_channels = 0;

  // kLinear
  std::size_t fc_in = 0, fc_out = 0;

  // kActivation
  ActKind act = ActKind::kReLU;

  /// Multiply-accumulate count of one inference through this layer.
  std::size_t macs() const;

  /// Trainable weight element count (0 for pool/act/flatten).
  std::size_t weight_count() const;

  /// Number of output scalars this layer produces.
  std::size_t output_count() const;

  /// True for layers that occupy OC MVM banks (conv/fc) — pooling runs on
  /// pre-set CA banks, activations in the electronic block.
  bool is_weighted() const {
    return kind == LayerKind::kConv || kind == LayerKind::kLinear;
  }
  bool is_pool() const {
    return kind == LayerKind::kMaxPool || kind == LayerKind::kAvgPool;
  }
};

struct ModelDesc {
  std::string name;
  std::size_t in_channels = 1, in_h = 0, in_w = 0;
  std::vector<LayerDesc> layers;

  std::size_t total_macs() const;
  std::size_t total_weights() const;

  /// Only the compute layers (conv/pool/fc) — the "L1..Ln" the paper's power
  /// breakdown figures enumerate (activations/flatten are folded into them).
  std::vector<const LayerDesc*> compute_layers() const;
};

/// LeNet-5 on 28x28x1 (paper's MNIST model): L1 conv5x5x6, L2 avgpool, L3
/// conv5x5x16, L4 avgpool, L5..L7 fc — the seven Li of Fig. 8.
ModelDesc lenet_desc(std::size_t num_classes = 10);

/// VGG9 on 32x32x3 (paper's CIFAR model): 6 conv + 3 maxpool + 3 fc = the 12
/// Li of Fig. 9. `width_mult` scales channel counts (1.0 = full).
/// `in_channels` = 1 models the CA-grayscaled front end of Fig. 9.
ModelDesc vgg9_desc(std::size_t num_classes = 10, double width_mult = 1.0,
                    std::size_t in_h = 32, std::size_t in_w = 32,
                    std::size_t in_channels = 3);

/// VGG16 on 224x224x3 (Fig. 10 workload).
ModelDesc vgg16_desc(std::size_t num_classes = 1000);

/// VGG13 on 224x224x3 — the paper substitutes it for VGG16 on YodaNN
/// (Fig. 10 note) to match YodaNN's supported filter sizes.
ModelDesc vgg13_desc(std::size_t num_classes = 1000);

/// AlexNet on 227x227x3 (Fig. 10 workload).
ModelDesc alexnet_desc(std::size_t num_classes = 1000);

/// Structural description of an existing network given its input geometry.
ModelDesc desc_from_network(const Network& net, std::size_t in_channels,
                            std::size_t in_h, std::size_t in_w);

}  // namespace lightator::nn
