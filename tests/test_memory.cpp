#include <gtest/gtest.h>

#include "core/memory_model.hpp"

namespace lightator::core {
namespace {

TEST(SramModel, EnergyGrowsWithCapacity) {
  const SramModel small(1024);
  const SramModel big(2 * 1024 * 1024);
  EXPECT_GT(big.read_energy_per_bit(), small.read_energy_per_bit());
  EXPECT_GT(big.access_latency(), small.access_latency());
}

TEST(SramModel, ValuesInCactiClassRange) {
  const SramModel mem(256 * 1024);  // 256 KiB buffer
  // 45 nm CACTI-class: 0.02-0.3 pJ/bit, sub-5-ns access.
  EXPECT_GT(mem.read_energy_per_bit(), 0.01e-12);
  EXPECT_LT(mem.read_energy_per_bit(), 0.5e-12);
  EXPECT_LT(mem.access_latency(), 5e-9);
}

TEST(SramModel, WritesCostMoreThanReads) {
  const SramModel mem(64 * 1024);
  EXPECT_GT(mem.write_energy_per_bit(), mem.read_energy_per_bit());
}

TEST(SramModel, LeakageProportionalToCapacity) {
  const SramModel a(64 * 1024), b(128 * 1024);
  EXPECT_NEAR(b.leakage_power() / a.leakage_power(), 2.0, 1e-9);
}

TEST(SramModel, BurstEnergyScalesWithBits) {
  const SramModel mem(64 * 1024);
  EXPECT_NEAR(mem.read_energy(128), 128 * mem.read_energy_per_bit(), 1e-20);
}

TEST(SramModel, RejectsNonPositiveCapacity) {
  EXPECT_THROW(SramModel(0.0), std::invalid_argument);
  EXPECT_THROW(SramModel(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace lightator::core
