// Scheduling policy vocabulary for SLO-driven serving.
//
// Requests carry a priority class and an optional deadline. The BatchQueue
// orders dispatch by (class, earliest deadline, arrival) instead of pure
// FIFO, the admission controller sheds lower classes first under overload,
// and the autoscaler sizes the replica set off queue-wait percentiles. This
// header owns the shared vocabulary: RequestClass, per-class policy knobs,
// the SubmitOptions callers attach to a request, and the SchedClock hook
// that makes every scheduling decision a pure function of (arrival order,
// clock) — tests inject a ManualClock and replay scenarios deterministically.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace lightator::serve::sched {

/// Priority classes, lowest to highest. The numeric order is load-shedding
/// order: under overload best-effort is shed first, critical last.
enum class RequestClass : std::uint8_t {
  kBestEffort = 0,
  kStandard = 1,
  kCritical = 2,
};

inline constexpr std::size_t kNumClasses = 3;

/// Stable lowercase name ("best_effort", "standard", "critical") — used for
/// metric names (serve.shed.<class>) and JSON keys.
const char* class_name(RequestClass klass);

inline std::size_t class_index(RequestClass klass) {
  return static_cast<std::size_t>(klass);
}

/// Virtual time source for the scheduler. Every deadline comparison and
/// coalescing-window decision in BatchQueue reads this clock, so a test can
/// install a ManualClock and step time explicitly: expiry and EDF ordering
/// become a pure function of (pushed requests, clock value) with no real
/// sleeps. Production uses the steady_clock-backed default.
class SchedClock {
 public:
  virtual ~SchedClock() = default;
  virtual std::chrono::steady_clock::time_point now() const {
    return std::chrono::steady_clock::now();
  }
};

/// The process-wide default (steady_clock) instance.
const SchedClock& system_clock();

/// Test clock: time only moves when the test says so. Thread-safe.
class ManualClock : public SchedClock {
 public:
  ManualClock() : ns_(0) {}
  std::chrono::steady_clock::time_point now() const override {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(ns_.load(std::memory_order_acquire)));
  }
  void advance_us(std::int64_t us) {
    ns_.fetch_add(us * 1000, std::memory_order_acq_rel);
  }
  void set_us(std::int64_t us) {
    ns_.store(us * 1000, std::memory_order_release);
  }

 private:
  std::atomic<std::int64_t> ns_;
};

/// Per-class scheduling knobs. A class inherits the queue-wide defaults for
/// any field left at its sentinel.
struct ClassPolicy {
  /// Coalescing window for a head-of-line request of this class; < 0
  /// inherits SchedPolicy::base_max_wait_us. Critical traffic typically runs
  /// a shorter window than best-effort: it trades batch size for latency.
  double max_wait_us = -1.0;
  /// Deadline attached to requests of this class that submit without an
  /// explicit one, in milliseconds after admission. 0 = no deadline (the
  /// request can never expire).
  double default_deadline_ms = 0.0;
};

/// Queue-level scheduling policy: the dynamic-batcher knobs (max_batch /
/// base coalescing window — the former BatchPolicy) plus per-class
/// overrides. Dispatch order is (class desc, deadline asc, arrival asc);
/// with no classes and no deadlines this degenerates to exactly the old
/// FIFO bucket behavior.
struct SchedPolicy {
  /// Dispatch a geometry bucket as soon as it holds this many requests.
  std::size_t max_batch = 16;
  /// Default coalescing window (µs) when the head request's class has no
  /// override. 0 = never coalesce-wait.
  double base_max_wait_us = 200.0;
  std::array<ClassPolicy, kNumClasses> classes{};

  double max_wait_us(RequestClass klass) const {
    const double w = classes[class_index(klass)].max_wait_us;
    return w < 0.0 ? base_max_wait_us : w;
  }
  double default_deadline_ms(RequestClass klass) const {
    return classes[class_index(klass)].default_deadline_ms;
  }
};

/// Per-request scheduling options attached at submit().
struct SubmitOptions {
  RequestClass klass = RequestClass::kStandard;
  /// Deadline in milliseconds after admission; 0 inherits the class default
  /// (which itself defaults to "no deadline"). A request still queued when
  /// its deadline passes is completed with InferStatus::kDeadlineExceeded
  /// instead of occupying a batch slot.
  double deadline_ms = 0.0;
};

}  // namespace lightator::serve::sched
