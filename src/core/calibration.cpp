#include "core/calibration.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::core {

const CalibrationEntry& CalibrationTable::entry_for_level(int level) const {
  for (const auto& e : entries) {
    if (e.level == level) return e;
  }
  throw std::out_of_range("no calibration entry for level");
}

double CalibrationTable::max_error() const {
  double m = 0.0;
  for (const auto& e : entries) m = std::max(m, e.error);
  return m;
}

double CalibrationTable::rms_error() const {
  if (entries.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& e : entries) acc += e.error * e.error;
  return std::sqrt(acc / static_cast<double>(entries.size()));
}

double CalibrationTable::mean_heater_power() const {
  if (entries.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& e : entries) acc += e.heater_power;
  return acc / static_cast<double>(entries.size());
}

double Calibrator::measure_weight(int dac_code, int dac_bits) const {
  const int max_code = (1 << dac_bits) - 1;
  if (dac_code < 0 || dac_code > max_code) {
    throw std::out_of_range("DAC code out of range");
  }
  optics::MicroRing ring(config_.ring, 1550.0 * units::kNm);
  const double detuning = config_.ring.max_detuning *
                          static_cast<double>(dac_code) /
                          static_cast<double>(max_code);
  ring.set_detuning(detuning);
  return ring.realized_weight();
}

CalibrationTable Calibrator::calibrate(int weight_bits, int dac_bits) const {
  if (weight_bits < 1 || weight_bits > 8) {
    throw std::invalid_argument("weight bits must be in [1,8]");
  }
  if (dac_bits < 2 || dac_bits > 16) {
    throw std::invalid_argument("DAC bits must be in [2,16]");
  }
  CalibrationTable table;
  table.weight_bits = weight_bits;
  table.dac_bits = dac_bits;
  const int m = weight_bits == 1 ? 1 : (1 << (weight_bits - 1)) - 1;
  const int max_code = (1 << dac_bits) - 1;

  // Measure the whole transfer curve once (monotone in code).
  std::vector<double> curve(static_cast<std::size_t>(max_code) + 1);
  for (int code = 0; code <= max_code; ++code) {
    curve[static_cast<std::size_t>(code)] = measure_weight(code, dac_bits);
  }

  optics::MicroRing probe(config_.ring, 1550.0 * units::kNm);
  for (int level = -m; level <= m; ++level) {
    CalibrationEntry e;
    e.level = level;
    e.target_weight = static_cast<double>(std::abs(level)) / m;
    // Binary search would work (monotone), linear scan is clearer and this
    // runs once at bring-up.
    int best = 0;
    double best_err = 1e9;
    for (int code = 0; code <= max_code; ++code) {
      const double err = std::fabs(curve[static_cast<std::size_t>(code)] -
                                   e.target_weight);
      if (err < best_err) {
        best_err = err;
        best = code;
      }
    }
    e.dac_code = best;
    e.realized_weight = curve[static_cast<std::size_t>(best)];
    e.error = best_err;
    probe.set_detuning(config_.ring.max_detuning * best /
                       static_cast<double>(max_code));
    e.heater_power = probe.tuning_power();
    table.entries.push_back(e);
  }
  return table;
}

double Calibrator::drift_rms_error(const CalibrationTable& table,
                                   double drift) const {
  // Each level: program both rings of the differential pair at their
  // calibrated detunings, then shift BOTH resonances by `drift` (a common
  // thermal excursion) and re-measure the differential weight at the
  // (unshifted) signal wavelength.
  const double lambda = 1550.0 * units::kNm;
  const int max_code = (1 << table.dac_bits) - 1;
  double acc = 0.0;
  for (const auto& e : table.entries) {
    optics::MicroRing active(config_.ring, lambda);
    optics::MicroRing parked(config_.ring, lambda);
    const double detuning =
        config_.ring.max_detuning * e.dac_code / static_cast<double>(max_code);
    // Clamp to the phase-shifter range when drift pushes past it.
    auto clamped = [&](double d) {
      return std::min(std::max(d, -config_.ring.max_detuning),
                      config_.ring.max_detuning);
    };
    active.set_detuning(clamped(detuning + drift));
    parked.set_detuning(clamped(drift));
    const double norm = (1.0 - config_.ring.extinction) *
                        config_.ring.weight_headroom;
    const double differential = (active.through_transmission(lambda) -
                                 parked.through_transmission(lambda)) /
                                norm;
    const double target =
        (e.level >= 0 ? 1.0 : -1.0) * e.target_weight;
    const double realized = (e.level >= 0 ? 1.0 : -1.0) * differential;
    acc += (realized - target) * (realized - target);
  }
  return std::sqrt(acc / static_cast<double>(table.entries.size()));
}

}  // namespace lightator::core
