#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/quantize.hpp"

namespace lightator::nn {

namespace {

/// Kaiming-style fan-in initialization for ReLU networks.
float kaiming_stddev(std::size_t fan_in) {
  return std::sqrt(2.0f / static_cast<float>(fan_in));
}

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(ConvSpec spec, util::Rng& rng)
    : spec_(spec),
      weight_({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      bias_({spec.out_channels}),
      dweight_(weight_.shape()),
      dbias_(bias_.shape()) {
  weight_.fill_normal(rng, kaiming_stddev(spec.weights_per_filter()));
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(spec_.kernel) + "x" +
         std::to_string(spec_.kernel) + "_" + std::to_string(spec_.in_channels) +
         "->" + std::to_string(spec_.out_channels);
}

Tensor Conv2d::effective_weight() const {
  if (weight_qat_bits_ == 0) return weight_;
  Tensor w = weight_;
  tensor::fake_quant_symmetric(w, weight_qat_bits_);
  return w;
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  return tensor::conv2d_forward(x, effective_weight(), bias_, spec_);
}

Tensor Conv2d::backward(const Tensor& dy) {
  if (cached_input_.empty()) {
    throw std::logic_error("conv backward without cached forward");
  }
  Tensor dx;
  // Straight-through: gradients computed at the effective (quantized)
  // weights are applied to the fp32 master weights by the optimizer.
  tensor::conv2d_backward(cached_input_, effective_weight(), spec_, dy, &dx,
                          &dweight_, &dbias_);
  return dx;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      dweight_(weight_.shape()),
      dbias_(bias_.shape()) {
  weight_.fill_normal(rng, kaiming_stddev(in_features));
}

std::string Linear::name() const {
  return "fc_" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_);
}

Tensor Linear::effective_weight() const {
  if (weight_qat_bits_ == 0) return weight_;
  Tensor w = weight_;
  tensor::fake_quant_symmetric(w, weight_qat_bits_);
  return w;
}

Tensor Linear::forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  return tensor::linear_forward(x, effective_weight(), bias_);
}

Tensor Linear::backward(const Tensor& dy) {
  if (cached_input_.empty()) {
    throw std::logic_error("linear backward without cached forward");
  }
  Tensor dx;
  tensor::linear_backward(cached_input_, effective_weight(), dy, &dx,
                          &dweight_, &dbias_);
  return dx;
}

// ---------------------------------------------------------------- Pools

MaxPool::MaxPool(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {}

std::string MaxPool::name() const {
  return "maxpool" + std::to_string(kernel_) + "x" + std::to_string(kernel_);
}

Tensor MaxPool::forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  return tensor::maxpool_forward(x, kernel_, stride_, &argmax_);
}

Tensor MaxPool::backward(const Tensor& dy) {
  if (cached_input_.empty()) {
    throw std::logic_error("maxpool backward without cached forward");
  }
  return tensor::maxpool_backward(dy, cached_input_, kernel_, stride_, argmax_);
}

AvgPool::AvgPool(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {}

std::string AvgPool::name() const {
  return "avgpool" + std::to_string(kernel_) + "x" + std::to_string(kernel_);
}

Tensor AvgPool::forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  return tensor::avgpool_forward(x, kernel_, stride_);
}

Tensor AvgPool::backward(const Tensor& dy) {
  if (cached_input_.empty()) {
    throw std::logic_error("avgpool backward without cached forward");
  }
  return tensor::avgpool_backward(dy, cached_input_, kernel_, stride_);
}

// ---------------------------------------------------------------- Activation

Activation::Activation(ActKind act) : act_(act) {}

std::string Activation::name() const { return tensor::act_name(act_); }

Tensor Activation::forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  Tensor y = tensor::act_forward(x, act_);
  if (act_qat_bits_ > 0) {
    if (training) {
      // Running max: the hardware's per-layer activation scale.
      const double batch_max = y.max_abs();
      act_scale_ = std::max(act_scale_, batch_max);
    }
    if (act_scale_ > 0.0) {
      tensor::fake_quant_unsigned(y, act_qat_bits_, act_scale_);
    }
  }
  return y;
}

Tensor Activation::backward(const Tensor& dy) {
  if (cached_input_.empty()) {
    throw std::logic_error("activation backward without cached forward");
  }
  // Fake-quant backward is straight-through (identity inside range).
  return tensor::act_backward(dy, cached_input_, act_);
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool training) {
  if (training) cached_shape_ = x.shape();
  else cached_shape_ = x.shape();
  return tensor::flatten(x);
}

Tensor Flatten::backward(const Tensor& dy) {
  Tensor dx = dy;
  dx.reshape(cached_shape_);
  return dx;
}

}  // namespace lightator::nn
