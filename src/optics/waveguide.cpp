#include "optics/waveguide.hpp"

#include <stdexcept>

namespace lightator::optics {

Waveguide::Waveguide(WaveguideParams params, double length_m, int num_couplers)
    : params_(params), length_m_(length_m), num_couplers_(num_couplers) {
  if (length_m < 0 || num_couplers < 0) {
    throw std::invalid_argument("waveguide length/couplers must be non-negative");
  }
}

double Waveguide::total_loss_db() const {
  const double cm = length_m_ * 100.0;
  return params_.laser_to_chip_loss_db +
         params_.propagation_loss_db_per_cm * cm +
         params_.coupler_loss_db * static_cast<double>(num_couplers_);
}

double Waveguide::transmission() const {
  return units::db_loss_to_linear(total_loss_db());
}

void Waveguide::propagate(OpticalSignal& signal) const {
  signal.attenuate_all(transmission());
}

}  // namespace lightator::optics
