#include "tensor/quantize.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/quant.hpp"

namespace lightator::tensor {

double fake_quant_symmetric(Tensor& x, int bits, double scale) {
  if (scale <= 0.0) scale = x.max_abs();
  if (scale == 0.0) return 0.0;
  const util::SymmetricQuantizer q{bits, scale};
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(q.fake_quant(x[i]));
  }
  return scale;
}

double fake_quant_unsigned(Tensor& x, int bits, double scale) {
  if (scale <= 0.0) {
    float m = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, x[i]);
    scale = m;
  }
  if (scale == 0.0) return 0.0;
  const util::UnsignedQuantizer q{bits, scale};
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(q.fake_quant(x[i]));
  }
  return scale;
}

QuantizedTensor quantize_symmetric(const Tensor& x, int bits, double scale) {
  if (scale <= 0.0) scale = x.max_abs();
  QuantizedTensor out;
  out.shape = x.shape();
  out.scale = scale;
  out.bits = bits;
  out.is_signed = true;
  out.levels.resize(x.size());
  if (scale == 0.0) return out;
  const util::SymmetricQuantizer q{bits, scale};
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.levels[i] = static_cast<std::int16_t>(q.quantize(x[i]));
  }
  return out;
}

namespace {

/// Resets the reusable fields of a codes tensor without releasing storage;
/// every *_into quantizer starts here so a recycled QuantizedTensor behaves
/// exactly like a default-constructed one.
void reset_codes(QuantizedTensor& out, int bits) {
  out.scale = 1.0;
  out.bits = bits;
  out.is_signed = false;
  out.item_scales.clear();
  out.prepack.reset();
  out.arm_program.reset();
}

/// Validates the gather batch (same-geometry [1, ...] frames) and returns
/// the shared frame shape. Allocation-free on success.
const Shape& validate_gather_frames(const std::vector<const Tensor*>& frames) {
  if (frames.empty()) {
    throw std::invalid_argument("quantize gather: empty batch");
  }
  for (const Tensor* frame : frames) {
    if (frame == nullptr) {
      throw std::invalid_argument("quantize gather: null frame");
    }
  }
  const Shape& first = frames[0]->shape();
  if (first.empty() || first[0] != 1) {
    throw std::invalid_argument("quantize gather: frames must be [1, ...]");
  }
  for (const Tensor* frame : frames) {
    if (frame->shape() != first) {
      throw std::invalid_argument(
          "quantize gather: frames have mismatched geometries");
    }
  }
  return first;
}

}  // namespace

void quantize_unsigned_into(const Tensor& x, int bits, double scale,
                            QuantizedTensor& out) {
  if (scale <= 0.0) {
    float m = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, x[i]);
    scale = m;
  }
  reset_codes(out, bits);
  out.shape.assign(x.shape().begin(), x.shape().end());
  out.scale = scale;
  out.levels.resize(x.size());
  if (scale == 0.0) {
    std::fill(out.levels.begin(), out.levels.end(), std::int16_t{0});
    return;
  }
  const util::UnsignedQuantizer q{bits, scale};
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.levels[i] = static_cast<std::int16_t>(q.quantize(x[i]));
  }
}

QuantizedTensor quantize_unsigned(const Tensor& x, int bits, double scale) {
  QuantizedTensor out;
  quantize_unsigned_into(x, bits, scale, out);
  return out;
}

void quantize_unsigned_per_item_into(const Tensor& x, int bits,
                                     QuantizedTensor& out) {
  if (x.rank() == 0 || x.dim(0) == 0) {
    throw std::invalid_argument("quantize_unsigned_per_item: empty batch");
  }
  const std::size_t batch = x.dim(0);
  const std::size_t per_item = x.size() / batch;
  reset_codes(out, bits);
  out.shape.assign(x.shape().begin(), x.shape().end());
  out.levels.resize(x.size());
  out.item_scales.resize(batch);
  double max_scale = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    const float* slice = x.data() + n * per_item;
    float m = 0.0f;
    for (std::size_t i = 0; i < per_item; ++i) m = std::max(m, slice[i]);
    // All-dark frames keep scale 1.0 — the convention of the OC activation
    // path, so a standalone quantize of the same item agrees bit-for-bit.
    const double scale = m > 0.0f ? static_cast<double>(m) : 1.0;
    out.item_scales[n] = scale;
    max_scale = std::max(max_scale, scale);
    const util::UnsignedQuantizer q{bits, scale};
    std::int16_t* levels = out.levels.data() + n * per_item;
    for (std::size_t i = 0; i < per_item; ++i) {
      levels[i] = static_cast<std::int16_t>(q.quantize(slice[i]));
    }
  }
  // The per-tensor scale stays meaningful for range checks / diagnostics.
  out.scale = max_scale;
}

QuantizedTensor quantize_unsigned_per_item(const Tensor& x, int bits) {
  QuantizedTensor out;
  quantize_unsigned_per_item_into(x, bits, out);
  return out;
}

void quantize_unsigned_gather_into(const std::vector<const Tensor*>& frames,
                                   int bits, QuantizedTensor& out) {
  const Shape& first = validate_gather_frames(frames);
  reset_codes(out, bits);
  out.shape.assign(first.begin(), first.end());
  out.shape[0] = frames.size();
  const std::size_t per_item = frames[0]->size();
  out.levels.resize(frames.size() * per_item);
  // Scale = max over the whole logical batch (the OC activation-path
  // convention: 1.0 when all frames are dark) — max is order-independent,
  // so this matches the scan over the stacked tensor bit-for-bit.
  float m = 0.0f;
  for (const Tensor* frame : frames) {
    for (std::size_t i = 0; i < per_item; ++i) {
      m = std::max(m, (*frame)[i]);
    }
  }
  out.scale = m > 0.0f ? static_cast<double>(m) : 1.0;
  const util::UnsignedQuantizer q{bits, out.scale};
  for (std::size_t n = 0; n < frames.size(); ++n) {
    const float* src = frames[n]->data();
    std::int16_t* levels = out.levels.data() + n * per_item;
    for (std::size_t i = 0; i < per_item; ++i) {
      levels[i] = static_cast<std::int16_t>(q.quantize(src[i]));
    }
  }
}

QuantizedTensor quantize_unsigned_gather(
    const std::vector<const Tensor*>& frames, int bits) {
  QuantizedTensor out;
  quantize_unsigned_gather_into(frames, bits, out);
  return out;
}

void quantize_unsigned_per_item_gather_into(
    const std::vector<const Tensor*>& frames, int bits, QuantizedTensor& out) {
  const Shape& first = validate_gather_frames(frames);
  reset_codes(out, bits);
  out.shape.assign(first.begin(), first.end());
  out.shape[0] = frames.size();
  const std::size_t per_item = frames[0]->size();
  out.levels.resize(frames.size() * per_item);
  out.item_scales.resize(frames.size());
  double max_scale = 0.0;
  for (std::size_t n = 0; n < frames.size(); ++n) {
    const float* slice = frames[n]->data();
    float m = 0.0f;
    for (std::size_t i = 0; i < per_item; ++i) m = std::max(m, slice[i]);
    const double scale = m > 0.0f ? static_cast<double>(m) : 1.0;
    out.item_scales[n] = scale;
    max_scale = std::max(max_scale, scale);
    const util::UnsignedQuantizer q{bits, scale};
    std::int16_t* levels = out.levels.data() + n * per_item;
    for (std::size_t i = 0; i < per_item; ++i) {
      levels[i] = static_cast<std::int16_t>(q.quantize(slice[i]));
    }
  }
  out.scale = max_scale;
}

QuantizedTensor quantize_unsigned_per_item_gather(
    const std::vector<const Tensor*>& frames, int bits) {
  QuantizedTensor out;
  quantize_unsigned_per_item_gather_into(frames, bits, out);
  return out;
}

ArmProgram build_arm_program(const std::int16_t* levels, std::size_t rows,
                             std::size_t row_length, int max_level,
                             std::size_t seg) {
  if (seg == 0 || rows == 0 || row_length == 0) {
    throw std::invalid_argument("build_arm_program: empty geometry");
  }
  ArmProgram prog;
  prog.seg = seg;
  prog.rows = rows;
  prog.row_length = row_length;
  prog.segments_per_row = (row_length + seg - 1) / seg;
  prog.weights.assign(rows * prog.segments_per_row * seg, 0.0);
  // Exactly the per-call normalization the physical backend would do:
  // level / max_level, trailing cells of a partial segment left at 0.0
  // (zero weights / dark channels).
  const double wmax = static_cast<double>(max_level);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int16_t* row = levels + r * row_length;
    double* dst = prog.weights.data() + r * prog.segments_per_row * seg;
    // Segments are contiguous row chunks, so the padded layout coincides
    // with the flat row for all but the zero tail of the last segment.
    for (std::size_t k = 0; k < row_length; ++k) {
      dst[k] = static_cast<double>(row[k]) / wmax;
    }
  }
  return prog;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor out(q.shape);
  if (out.size() != q.levels.size()) {
    throw std::invalid_argument("quantized tensor shape/levels mismatch");
  }
  // Both schemes share value = scale * level / max_level.
  const double max_level = static_cast<double>(q.max_level());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(q.scale * q.levels[i] / max_level);
  }
  return out;
}

}  // namespace lightator::tensor
