// Quickstart: train a LeNet on the synthetic MNIST stand-in, fine-tune with
// QAT at [4:4], run inference through the Lightator optical core, and print
// the architecture report (power / latency / throughput).
//
//   ./examples/quickstart [samples=600] [epochs=2]
#include <cstdio>

#include "core/controller.hpp"
#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "nn/qat.hpp"
#include "nn/trainer.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workloads/synth_mnist.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const auto samples = static_cast<std::size_t>(cfg.get_int("samples", 600));
  const auto epochs = static_cast<std::size_t>(cfg.get_int("epochs", 2));

  std::printf("1) generating %zu synthetic MNIST digits...\n", samples);
  workloads::SynthMnistOptions opts;
  opts.samples = samples;
  nn::Dataset data = workloads::make_synth_mnist(opts);

  std::printf("2) training LeNet for %zu epochs (float)...\n", epochs);
  util::Rng rng(1);
  nn::Network net = nn::build_lenet(rng);
  nn::TrainParams tp;
  tp.epochs = epochs;
  tp.batch_size = 30;
  nn::Trainer trainer(tp);
  const auto stats = trainer.fit(net, data);
  std::printf("   float train accuracy: %.1f%%\n", 100.0 * stats.accuracy);

  std::printf("3) quantization-aware fine-tune at [4:4]...\n");
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  nn::fine_tune(net, data, schedule, /*epochs=*/1);

  std::printf("4) inference through the Lightator optical core...\n");
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  // Compile once (weights quantized onto the MRs, SIMD panels packed),
  // then every forward reuses the artifact.
  core::CompileOptions co;
  co.backend = "gemm";
  co.schedule = schedule;
  const core::CompiledModel compiled = sys.compile(net, co);
  core::ExecutionContext ctx;
  const double acc = compiled.evaluate(data, ctx, 50, 300);
  std::printf("   OC-mapped accuracy: %.1f%% (4-bit weights on MRs, 4-bit\n"
              "   activations on VCSEL intensities, BPD accumulation)\n",
              100.0 * acc);

  std::printf("5) architecture report for LeNet at %s:\n",
              schedule.label().c_str());
  const auto report = sys.analyze(nn::lenet_desc(), schedule);
  util::TablePrinter table({"layer", "arms", "MRs", "rounds", "power", "latency"});
  for (const auto& l : report.layers) {
    table.add_row({l.name, std::to_string(l.mapping.arms_active),
                   std::to_string(l.mapping.mrs_active),
                   std::to_string(l.mapping.rounds),
                   util::format_power(l.power.average.total()),
                   util::format_time(l.timing.latency)});
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("\nframe latency %s | batched throughput %.1f KFPS | "
              "max power %s | %.1f KFPS/W\n",
              util::format_time(report.latency).c_str(),
              report.fps_batched / 1e3,
              util::format_power(report.max_power).c_str(),
              report.kfps_per_watt);

  std::printf("\n6) controller timeline (single frame):\n");
  const core::Controller ctrl(sys.config());
  const core::Mapper mapper(sys.config());
  const auto timeline =
      ctrl.schedule_frame(mapper.map_model(nn::lenet_desc()));
  std::printf("%s", timeline.render_timeline(64).c_str());
  std::printf("optical duty cycle: %.1f%% (single frame; batching raises it)\n",
              100.0 * timeline.optical_duty());
  return 0;
}
