#include "core/backends/reference_backend.hpp"

namespace lightator::core {

tensor::Tensor ReferenceBackend::conv2d(const tensor::QuantizedTensor& x,
                                        const tensor::QuantizedTensor& w,
                                        const tensor::Tensor& bias,
                                        const tensor::ConvSpec& spec,
                                        const ExecutionContext& ctx) const {
  validate_oc_conv_inputs(x, w, spec);
  const std::size_t batch = x.shape[0], c_in = x.shape[1], h = x.shape[2],
                    w_in = x.shape[3];
  const std::size_t k = spec.kernel;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w_in);
  tensor::Tensor y({batch, spec.out_channels, oh, ow});
  const std::size_t seg = config_.geometry.mrs_per_arm;
  ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
    const double scale = oc_output_scale_for_item(x, w, n);
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      const std::int16_t* filter = w.levels.data() + oc * c_in * k * k;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          // Gather the window codes; out-of-bounds (padding) reads are dark
          // channels (code 0).
          double acc = 0.0;
          long seg_acc = 0;
          std::size_t in_seg = 0;
          for (std::size_t c = 0; c < c_in; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const long iy = static_cast<long>(oy * spec.stride + ky) -
                                static_cast<long>(spec.pad);
                const long ix = static_cast<long>(ox * spec.stride + kx) -
                                static_cast<long>(spec.pad);
                int code = 0;
                if (iy >= 0 && ix >= 0 && iy < static_cast<long>(h) &&
                    ix < static_cast<long>(w_in)) {
                  code = x.levels[((n * c_in + c) * h +
                                   static_cast<std::size_t>(iy)) *
                                      w_in +
                                  static_cast<std::size_t>(ix)];
                }
                const int level = filter[(c * k + ky) * k + kx];
                seg_acc += static_cast<long>(code) * level;
                if (++in_seg == seg) {
                  // Arm boundary: the BPD emits this partial sum.
                  acc += static_cast<double>(seg_acc);
                  seg_acc = 0;
                  in_seg = 0;
                }
              }
            }
          }
          acc += static_cast<double>(seg_acc);
          float out = static_cast<float>(acc * scale);
          if (!bias.empty()) out += bias[oc];
          y.at(n, oc, oy, ox) = out;
        }
      }
    }
  });
  return y;
}

tensor::Tensor ReferenceBackend::linear(const tensor::QuantizedTensor& x,
                                        const tensor::QuantizedTensor& w,
                                        const tensor::Tensor& bias,
                                        const ExecutionContext& ctx) const {
  validate_oc_linear_inputs(x, w);
  const std::size_t batch = x.shape[0], d = x.shape[1], out_f = w.shape[0];
  tensor::Tensor y({batch, out_f});
  const std::size_t seg = config_.geometry.mrs_per_arm;
  ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
    const double scale = oc_output_scale_for_item(x, w, n);
    const std::int16_t* row = x.levels.data() + n * d;
    for (std::size_t o = 0; o < out_f; ++o) {
      const std::int16_t* filter = w.levels.data() + o * d;
      double acc = 0.0;
      long seg_acc = 0;
      std::size_t in_seg = 0;
      for (std::size_t i = 0; i < d; ++i) {
        seg_acc += static_cast<long>(row[i]) * filter[i];
        if (++in_seg == seg) {
          // Arm boundary: the BPD emits this partial sum.
          acc += static_cast<double>(seg_acc);
          seg_acc = 0;
          in_seg = 0;
        }
      }
      acc += static_cast<double>(seg_acc);
      float v = static_cast<float>(acc * scale);
      if (!bias.empty()) v += bias[o];
      y.at(n, o) = v;
    }
  });
  return y;
}

}  // namespace lightator::core
