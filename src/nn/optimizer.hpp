// SGD with momentum and optional weight decay — everything the from-scratch
// training and QAT fine-tuning passes need.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace lightator::nn {

struct SgdParams {
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  /// Global-norm gradient clipping (0 disables). Keeps deep nets (VGG9)
  /// from diverging into dead-ReLU territory at aggressive learning rates.
  double max_grad_norm = 5.0;
};

class Sgd {
 public:
  explicit Sgd(SgdParams params) : params_(params) {}

  /// Applies one update step: params[i] -= lr * (momentum-filtered grads[i]).
  /// Gradients are consumed (zeroed) by the step.
  void step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads);

  void set_learning_rate(double lr) { params_.learning_rate = lr; }
  double learning_rate() const { return params_.learning_rate; }

 private:
  SgdParams params_;
  std::vector<tensor::Tensor> velocity_;  // lazily sized to match params
};

}  // namespace lightator::nn
