// Output transmitter and the multi-node IoT path of Fig. 2 (steps 4-5).
//
// Lightator's pitch is that compressing + processing at the sensor slashes
// what must be radioed to the next node / cloud. This module models the
// radio with a standard energy-per-bit + rate abstraction (BLE / 802.15.4 /
// WiFi class presets) and answers the system question the intro poses:
// energy & latency to ship (a) raw 8-bit pixels, (b) CRC 4-bit codes,
// (c) CA-compressed frames, or (d) final inference labels.
#pragma once

#include <cstddef>
#include <string>

#include "util/units.hpp"

namespace lightator::core {

struct RadioParams {
  std::string name = "ble";
  double energy_per_bit = 50e-9;    // J/bit (TX, incl. overhead)
  double data_rate = 1e6;           // bit/s
  double wakeup_energy = 5e-6;      // J per transmission burst
};

/// Presets: low-power Bluetooth LE, 802.15.4 (Zigbee-class), 802.11n WiFi.
RadioParams ble_radio();
RadioParams zigbee_radio();
RadioParams wifi_radio();

struct TransmissionCost {
  std::size_t bits = 0;
  double energy = 0.0;  // J
  double airtime = 0.0; // s
};

class Transmitter {
 public:
  explicit Transmitter(RadioParams params) : params_(params) {}

  const RadioParams& params() const { return params_; }

  TransmissionCost cost_for_bits(std::size_t bits) const;

  /// A frame of `pixels` samples at `bits_per_pixel`.
  TransmissionCost cost_for_frame(std::size_t pixels,
                                  std::size_t bits_per_pixel) const;

  /// A classification result (label index + confidence byte).
  TransmissionCost cost_for_label(std::size_t num_classes) const;

 private:
  RadioParams params_;
};

/// The Fig. 2 payload options for one 256x256 frame, in decreasing size:
/// raw 8-bit RGB pixels -> ADC-less 4-bit Bayer codes -> CA-compressed
/// grayscale (factor p pooling) -> a class label.
struct EdgePayloads {
  TransmissionCost raw_rgb8;
  TransmissionCost crc_codes4;
  TransmissionCost ca_compressed4;
  TransmissionCost label;
};

EdgePayloads edge_payloads(const Transmitter& tx, std::size_t rows,
                           std::size_t cols, std::size_t pool_factor,
                           std::size_t num_classes = 10);

}  // namespace lightator::core
