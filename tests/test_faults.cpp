#include <gtest/gtest.h>

#include "core/faults.hpp"
#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::core {
namespace {

tensor::QuantizedTensor weights_of(std::size_t n, util::Rng& rng) {
  tensor::Tensor t({n});
  t.fill_normal(rng, 1.0f);
  return tensor::quantize_symmetric(t, 4);
}

tensor::QuantizedTensor acts_of(std::size_t n, util::Rng& rng) {
  tensor::Tensor t({n});
  t.fill_uniform(rng, 0.0f, 1.0f);
  return tensor::quantize_unsigned(t, 4);
}

TEST(Faults, ZeroRateIsNoOp) {
  util::Rng rng(1);
  auto w = weights_of(100, rng);
  const auto before = w.levels;
  FaultSpec spec;
  EXPECT_EQ(apply_weight_faults(w, spec, rng), 0u);
  EXPECT_EQ(w.levels, before);
}

TEST(Faults, HitCountTracksRate) {
  util::Rng rng(2);
  auto w = weights_of(20000, rng);
  FaultSpec spec;
  spec.stuck_cell_rate = 0.1;
  const auto hits = apply_weight_faults(w, spec, rng);
  EXPECT_NEAR(static_cast<double>(hits), 2000.0, 200.0);
}

TEST(Faults, StuckLevelsStayInRange) {
  util::Rng rng(3);
  auto w = weights_of(5000, rng);
  FaultSpec spec;
  spec.stuck_cell_rate = 0.5;
  apply_weight_faults(w, spec, rng);
  for (auto l : w.levels) {
    EXPECT_GE(l, -7);
    EXPECT_LE(l, 7);
  }
}

TEST(Faults, DeadChannelsGoDark) {
  util::Rng rng(4);
  auto a = acts_of(5000, rng);
  FaultSpec spec;
  spec.dead_channel_rate = 1.0;  // kill everything
  apply_activation_faults(a, spec, rng);
  for (auto code : a.levels) EXPECT_EQ(code, 0);
}

TEST(Faults, SchemeMixupsRejected) {
  util::Rng rng(5);
  auto w = weights_of(10, rng);
  auto a = acts_of(10, rng);
  FaultSpec spec;
  spec.stuck_cell_rate = 0.1;
  spec.dead_channel_rate = 0.1;
  EXPECT_THROW(apply_weight_faults(a, spec, rng), std::invalid_argument);
  EXPECT_THROW(apply_activation_faults(w, spec, rng), std::invalid_argument);
}

TEST(Faults, AccuracyDegradesGracefullyWithFaultRate) {
  // End-to-end: a trained LeNet through the OC with increasing defect rates.
  util::Rng rng(6);
  workloads::SynthMnistOptions opts;
  opts.samples = 400;
  nn::Dataset data = workloads::make_synth_mnist(opts);
  nn::Network net = nn::build_lenet(rng);
  nn::TrainParams tp;
  tp.epochs = 2;
  tp.batch_size = 25;
  nn::Trainer(tp).fit(net, data);

  const LightatorSystem sys(ArchConfig::defaults());
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  // One compiled artifact for all fault severities: faults live in the
  // ExecutionContext and are applied to private weight copies per forward.
  CompileOptions co;
  co.schedule = schedule;
  const CompiledModel compiled = sys.compile(net, co);
  auto faulted_accuracy = [&](const FaultSpec& faults) {
    ExecutionContext ctx;
    ctx.faults = faults;
    return compiled.evaluate(data, ctx, 50, 200);
  };
  const double acc_clean = faulted_accuracy(FaultSpec{});
  FaultSpec mild;
  mild.stuck_cell_rate = 0.002;
  const double acc_mild = faulted_accuracy(mild);
  FaultSpec severe;
  severe.stuck_cell_rate = 0.3;
  severe.dead_channel_rate = 0.3;
  const double acc_severe = faulted_accuracy(severe);
  // Mild defects barely matter; severe defects wreck the model.
  EXPECT_GT(acc_clean, 0.6);
  EXPECT_GT(acc_mild, acc_clean - 0.15);
  EXPECT_LT(acc_severe, acc_clean - 0.2);
}

TEST(Faults, ReproducibleWithSeed) {
  util::Rng rng_a(7), rng_b(7);
  auto wa = weights_of(1000, rng_a);
  util::Rng rng_a2(99), rng_b2(99);
  auto wb = wa;
  FaultSpec spec;
  spec.stuck_cell_rate = 0.2;
  apply_weight_faults(wa, spec, rng_a2);
  apply_weight_faults(wb, spec, rng_b2);
  EXPECT_EQ(wa.levels, wb.levels);
}

}  // namespace
}  // namespace lightator::core
