// Optical Core: the MR-based MVM engine.
//
// Two execution paths over the same arm/bank microarchitecture:
//   * functional — integer-exact quantized MACs (activation codes x weight
//     levels), segmented into 9-MR arms with partial-sum reduction exactly
//     as the mapper prescribes. This is what the system-level accuracy and
//     bench runs use.
//   * physical   — routes a segment through the full device models (VCSEL
//     L-I, Lorentzian rings with crosstalk, lossy rails, BPD), used to
//     validate the functional path and to study analog non-idealities.
// A property-test suite asserts the two agree within the analog error
// budget (tests/test_optical_core.cpp).
#pragma once

#include <span>
#include <vector>

#include "core/arch_config.hpp"
#include "core/dmva.hpp"
#include "optics/arm.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"

namespace lightator::core {

class OpticalCore {
 public:
  explicit OpticalCore(ArchConfig config);

  const ArchConfig& config() const { return config_; }

  /// Functional dot product of one arm-segment: activation codes (0..15) x
  /// signed weight levels. Returns the real-valued partial sum
  /// (codes/15 . levels/max_level), exact in double.
  double arm_dot(std::span<const int> codes, std::span<const int> levels,
                 int weight_bits) const;

  /// Physical dot product of one arm-segment (device models end to end).
  /// `weights` in [-1,1] are quantized to `weight_bits` inside the arm.
  double arm_dot_physical(std::span<const double> weights,
                          std::span<const int> codes, int weight_bits,
                          util::Rng* noise_rng = nullptr) const;

  /// Full reduction of `macs` >= 1 terms: splits into 9-MR segments, reduces
  /// segments through the (ideal) summation tree. Functional path.
  double reduce(std::span<const int> codes, std::span<const int> levels,
                int weight_bits) const;

  /// Quantized conv2d through the OC (functional): x codes are unsigned
  /// `act` codes, w levels signed. Returns real-valued outputs
  /// (scale_x * scale_w applied). Bias (float) added if non-empty.
  tensor::Tensor conv2d(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const tensor::ConvSpec& spec) const;

  /// Quantized fully-connected layer through the OC (functional).
  tensor::Tensor linear(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias) const;

  /// Total heater power if `levels` (signed) were programmed (TUN audit).
  double tuning_power_for_levels(std::span<const int> levels,
                                 int weight_bits) const;

 private:
  ArchConfig config_;
  Dmva dmva_;
};

}  // namespace lightator::core
