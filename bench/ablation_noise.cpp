// Ablation: analog non-idealities on the physical optical path.
//
// Sweeps the device-level error sources the functional simulation abstracts
// away and quantifies their effect on a 9-MAC arm dot product:
//   (a) BPD noise vs. received optical power (the SNR argument for mA-class
//       drive currents at the device level vs uA-class at the edge);
//   (b) Lorentzian-tail crosstalk vs. WDM channel spacing;
//   (c) weight-quantization + finite-detuning error vs. weight bits;
//   (d) comparator offset in the CRC vs. pixel-code error;
//   (e) fault Monte-Carlo on the physical backend: end-to-end accuracy under
//       sampled stuck weight cells, dark VCSELs, and ring drift, with BPD
//       noise, run as an ExperimentRunner campaign on a shared pool —
//       trials execute in parallel and the numbers are thread-count
//       invariant.
//
// Runtime knobs (key=value): mc.skip=1, mc.trials, mc.samples, mc.train,
// mc.backend=gemm (functional fault-only MC), threads=N.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "optics/arm.hpp"
#include "sensor/crc.hpp"
#include "util/rng.hpp"
#include "workloads/synth_mnist.hpp"

using namespace lightator;

namespace {

double rms_arm_error(optics::ArmParams params, bool noisy, util::Rng& rng,
                     int trials = 60) {
  const optics::MrArm arm_probe(params);
  double sum_sq = 0.0;
  int count = 0;
  optics::MrArm arm(params);
  for (int t = 0; t < trials; ++t) {
    std::vector<double> w(params.num_cells);
    std::vector<int> codes(params.num_cells);
    for (std::size_t i = 0; i < params.num_cells; ++i) {
      w[i] = rng.uniform(-1.0, 1.0);
      codes[i] = static_cast<int>(rng.uniform_index(16));
    }
    arm.set_weights(w);
    const double ideal = arm.ideal(codes);
    const double got = noisy ? arm.compute_noisy(codes, rng) : arm.compute(codes);
    sum_sq += (got - ideal) * (got - ideal);
    ++count;
  }
  return std::sqrt(sum_sq / count);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = bench::parse_args(argc, argv);
  util::Rng rng(99);

  bench::print_header("Ablation - analog non-idealities (physical path)",
                      "device-level error budget behind the functional model");

  // ---- (a) optical power vs BPD-noise-limited error -------------------
  {
    util::TablePrinter t({"VCSEL step current", "peak optical power",
                          "RMS error (noisy)", "RMS error (noiseless)"});
    for (const double step_ua : {0.5, 4.0, 20.0, 100.0}) {
      optics::ArmParams p;
      p.vcsel.threshold_current = 5.0 * step_ua * 1e-6;
      p.vcsel.step_current = step_ua * 1e-6;
      optics::Vcsel probe(p.vcsel, 1550e-9);
      t.add_row({util::format_fixed(step_ua, 1) + " uA",
                 util::format_power(probe.max_optical_power()),
                 util::format_sig(rms_arm_error(p, true, rng), 3),
                 util::format_sig(rms_arm_error(p, false, rng), 3)});
    }
    std::printf("(a) received-power / SNR trade (9-MAC arm, full 50 GHz "
                "bandwidth noise):\n%s\n",
                t.to_text().c_str());
  }

  // ---- (b) channel spacing vs crosstalk --------------------------------
  {
    util::TablePrinter t({"FWHM/spacing config", "RMS error"});
    for (const auto& [fwhm_nm, label] : std::vector<std::pair<double, const char*>>{
             {0.05, "FWHM 0.05 nm (high Q)"},
             {0.1, "FWHM 0.10 nm (default)"},
             {0.2, "FWHM 0.20 nm"},
             {0.4, "FWHM 0.40 nm (low Q)"}}) {
      optics::ArmParams p;
      p.ring.fwhm = fwhm_nm * 1e-9;
      p.ring.max_detuning = 5.0 * fwhm_nm * 1e-9;
      t.add_row({label, util::format_sig(rms_arm_error(p, false, rng), 3)});
    }
    std::printf("(b) Lorentzian-tail crosstalk at 1.6 nm channel pitch "
                "(wider resonances bleed\n    into neighbors):\n%s\n",
                t.to_text().c_str());
  }

  // ---- (c) weight precision vs quantization error ----------------------
  {
    util::TablePrinter t({"weight bits", "RMS error vs fp weights"});
    for (const int bits : {1, 2, 3, 4, 6, 8}) {
      optics::ArmParams p;
      p.weight_bits = bits;
      // Compare the physical output against the *unquantized* dot product.
      optics::MrArm arm(p);
      double sum_sq = 0.0;
      const int trials = 60;
      for (int tr = 0; tr < trials; ++tr) {
        std::vector<double> w(9);
        std::vector<int> codes(9);
        double exact = 0.0;
        for (std::size_t i = 0; i < 9; ++i) {
          w[i] = rng.uniform(-1.0, 1.0);
          codes[i] = static_cast<int>(rng.uniform_index(16));
          exact += w[i] * codes[i] / 15.0;
        }
        arm.set_weights(w);
        const double got = arm.compute(codes);
        sum_sq += (got - exact) * (got - exact);
      }
      t.add_row({std::to_string(bits),
                 util::format_sig(std::sqrt(sum_sq / trials), 3)});
    }
    std::printf("(c) weight-precision error on the analog path (the [W:4] "
                "axis of Table 1):\n%s\n",
                t.to_text().c_str());
  }

  // ---- (d) CRC comparator offset ---------------------------------------
  {
    util::TablePrinter t({"offset sigma (mV)", "mean |code error| (LSB)"});
    const sensor::Photodiode diode{sensor::PhotodiodeParams{}};
    for (const double sigma_mv : {0.0, 5.0, 15.0, 40.0}) {
      sensor::CrcParams cp;
      cp.comparator_offset_sigma = sigma_mv * 1e-3;
      const sensor::Crc crc(cp, diode);
      double err = 0.0;
      const int trials = 4000;
      for (int i = 0; i < trials; ++i) {
        const double b = rng.uniform();
        const int ideal = crc.read_code(diode.expose(b));
        const int got = crc.read_code(diode.expose(b), &rng);
        err += std::abs(got - ideal);
      }
      t.add_row({util::format_fixed(sigma_mv, 1),
                 util::format_fixed(err / trials, 3)});
    }
    std::printf("(d) CRC comparator offset vs pixel-code error (15 refs "
                "across a 1 V swing -> 1 LSB\n    = 62.5 mV):\n%s\n",
                t.to_text().c_str());
  }

  // ---- (e) fault Monte-Carlo through the physical backend --------------
  if (!cfg.get_bool("mc.skip", false)) {
    const auto trials = static_cast<std::size_t>(cfg.get_int("mc.trials", 6));
    const auto samples =
        static_cast<std::size_t>(cfg.get_int("mc.samples", 16));
    const auto train_samples =
        static_cast<std::size_t>(cfg.get_int("mc.train", 300));
    const std::string backend = cfg.get_string("mc.backend", "physical");

    core::ExperimentOptions eo;
    eo.backend = backend;
    eo.threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
    eo.noise_seed = backend == "physical" ? 2024 : 0;  // BPD noise per trial
    core::ExperimentRunner runner(eo);

    // A briefly-trained LeNet on synthetic MNIST: enough signal that fault
    // damage is visible as an accuracy delta, cheap enough for a bench.
    workloads::SynthMnistOptions mo;
    mo.samples = train_samples + samples;
    nn::Dataset full = workloads::make_synth_mnist(mo);
    nn::Dataset train, test;
    train.num_classes = test.num_classes = 10;
    train.images = full.batch_images(0, train_samples);
    train.labels = full.batch_labels(0, train_samples);
    test.images = full.batch_images(train_samples, samples);
    test.labels = full.batch_labels(train_samples, samples);
    util::Rng wrng(7);
    nn::Network net = nn::build_lenet(wrng);
    nn::TrainParams tp;
    tp.epochs = 2;
    tp.grad_shards = 4;
    runner.fit(net, train, tp);

    const auto schedule = nn::PrecisionSchedule::uniform(4);
    const core::LightatorSystem sys(core::ArchConfig::defaults());
    core::ExecutionContext clean_ctx;
    core::CompileOptions clean_co;
    clean_co.schedule = schedule;
    const double clean = sys.compile(net, clean_co).evaluate(test, clean_ctx);

    struct Severity {
      const char* label;
      core::FaultSpec faults;
    };
    const std::vector<Severity> rows = {
        {"no faults (noise only)", {}},
        {"stuck cells 1%", {0.01, 0.0, 0.0, 1}},
        {"dark VCSELs 2%", {0.0, 0.02, 0.0, 1}},
        {"ring drift sigma 5%", {0.0, 0.0, 0.05, 1}},
        {"combined 1%/2%/5%", {0.01, 0.02, 0.05, 1}},
    };

    util::TablePrinter t({"fault severity", "mean acc", "stddev", "p10",
                          "p90"});
    for (const auto& row : rows) {
      core::MonteCarloOptions mco;
      mco.trials = trials;
      mco.faults = row.faults;
      mco.base_seed = 11;
      mco.max_samples = samples;
      const auto result = runner.monte_carlo(sys, net, test, schedule, mco);
      t.add_row({row.label, util::format_fixed(100.0 * result.mean, 1) + "%",
                 util::format_fixed(100.0 * result.stddev, 1),
                 util::format_fixed(100.0 * result.quantile(0.1), 1),
                 util::format_fixed(100.0 * result.quantile(0.9), 1)});
    }
    std::printf("(e) fault Monte-Carlo, %zu trials x %zu frames on the "
                "'%s' backend (%zu threads);\n    functional-path clean "
                "accuracy %.1f%%:\n%s",
                trials, samples, backend.c_str(), runner.pool().size(),
                100.0 * clean, t.to_text().c_str());
  }
  return 0;
}
