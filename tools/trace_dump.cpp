// trace_dump: capture a chrome://tracing trace of a short serving session.
//
// Compiles LeNet, starts an InferenceServer, arms the global TraceRecorder,
// drives a seeded closed-loop load through it, and writes the Trace Event
// Format JSON — the minimal path to a loadable trace without the full
// serve_throughput bench. Open the output in chrome://tracing or
// ui.perfetto.dev; spans nest submit → queue (async track) →
// batch_dispatch → compiled_run → per-step conv/linear.
//
// Usage: trace_dump [out.json] [requests=N] [replicas=N]
// (key=value overrides follow the bench convention; a bare first argument
// is the output path, default trace.json)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/load_gen.hpp"
#include "serve/server.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  std::string out_path = "trace.json";
  // A bare (non key=value) first argument is the output path; everything
  // else parses as key=value overrides.
  std::vector<char*> cfg_args;
  cfg_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (i == 1 && std::strchr(argv[i], '=') == nullptr) {
      out_path = argv[i];
    } else {
      cfg_args.push_back(argv[i]);
    }
  }
  const util::Config cfg = util::Config::from_args(
      static_cast<int>(cfg_args.size()), cfg_args.data());
  const std::size_t requests =
      static_cast<std::size_t>(cfg.get_int("requests", 256));
  const std::size_t replicas =
      static_cast<std::size_t>(cfg.get_int("replicas", 2));

  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(21);
  nn::Network net = nn::build_lenet(rng);

  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 8; ++i) {
    tensor::Tensor x({1, 1, 28, 28});
    x.fill_uniform(rng, 0.0f, 1.0f);
    inputs.push_back(std::move(x));
  }

  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.start();  // before the server: the compile pipeline traces too

  serve::ServerOptions so;
  so.replicas = replicas;
  serve::InferenceServer server(sys, net,
                                nn::PrecisionSchedule::uniform(4), so);
  serve::LoadGenOptions lg;
  lg.requests = requests;
  const serve::LoadGenReport load = serve::run_closed_loop(server, inputs, lg);
  server.shutdown();
  rec.stop();

  const std::size_t events = rec.write_chrome_json(out_path);
  std::printf("wrote %s: %zu events (%llu dropped), %u threads, "
              "%zu requests at %.1f req/s\n",
              out_path.c_str(), events,
              static_cast<unsigned long long>(rec.dropped()),
              rec.thread_count(), load.outputs.size(),
              load.requests_per_second);
  std::printf("metrics snapshot:\n%s\n",
              obs::MetricsRegistry::global().snapshot_json().c_str());
  return 0;
}
