#include <gtest/gtest.h>

#include "core/dmva.hpp"

namespace lightator::core {
namespace {

Dmva make_dmva() { return Dmva(ArchConfig::defaults()); }

TEST(Dmva, FrameCodesPassThrough) {
  const Dmva dmva = make_dmva();
  sensor::CodeFrame frame;
  frame.rows = 1;
  frame.cols = 4;
  frame.codes = {0, 7, 15, 3};
  const auto codes = dmva.codes_from_frame(frame);
  ASSERT_EQ(codes.size(), 4u);
  EXPECT_EQ(codes[1], 7);
  EXPECT_EQ(codes[2], 15);
}

TEST(Dmva, FrameCodeOutOfRangeThrows) {
  const Dmva dmva = make_dmva();
  sensor::CodeFrame frame;
  frame.rows = 1;
  frame.cols = 1;
  frame.codes = {16};
  EXPECT_THROW(dmva.codes_from_frame(frame), std::out_of_range);
}

TEST(Dmva, ActivationCodesScaledAndClamped) {
  const Dmva dmva = make_dmva();
  const auto codes = dmva.codes_from_activations({0.0f, 1.0f, 2.0f, 0.5f, -1.0f},
                                                 /*scale=*/2.0);
  ASSERT_EQ(codes.size(), 5u);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 8);   // 0.5 of scale -> round(0.5*15)
  EXPECT_EQ(codes[2], 15);  // full scale
  EXPECT_EQ(codes[3], 4);   // 0.25 of scale -> round(3.75)
  EXPECT_EQ(codes[4], 0);   // negative clamped
}

TEST(Dmva, RejectsNonPositiveScale) {
  const Dmva dmva = make_dmva();
  EXPECT_THROW(dmva.codes_from_activations({0.5f}, 0.0), std::invalid_argument);
}

TEST(Dmva, OpticalPowerLinearInCode) {
  const Dmva dmva = make_dmva();
  EXPECT_DOUBLE_EQ(dmva.optical_power(0), 0.0);
  EXPECT_NEAR(dmva.optical_power(15), dmva.max_optical_power(), 1e-18);
  EXPECT_NEAR(dmva.optical_power(5), dmva.max_optical_power() / 3.0, 1e-12);
}

TEST(Dmva, SourceSelection) {
  Dmva dmva = make_dmva();
  EXPECT_EQ(dmva.source(), DmvaSource::kPixelArray);
  dmva.select(DmvaSource::kLayerBuffer);
  EXPECT_EQ(dmva.source(), DmvaSource::kLayerBuffer);
}

TEST(Dmva, SymbolEnergyPositiveAndTiny) {
  const Dmva dmva = make_dmva();
  EXPECT_GT(dmva.symbol_energy(), 0.0);
  EXPECT_LT(dmva.symbol_energy(), 1e-11);  // femtojoule-class per symbol
}

}  // namespace
}  // namespace lightator::core
