// Structured reports bridging the core's execution records onto the
// telemetry plane.
//
// Two jobs, both off the hot path:
//   * kernel_plan_json — the kernel-autotune tuning report (per-geometry
//     candidates, best-of-reps timings, winner, hysteresis margin) as a
//     JSON array. bench/backend_compare and `kernel_probe --json` print it;
//     it is the artifact section the serialized-CompiledModel work (ROADMAP
//     item 1) will embed so production never re-tunes.
//   * record_layer_stats — folds a finished run's LayerExecStats vector
//     (compute ms, frames, backend name, kernel tier) into a
//     MetricsRegistry as per-layer gauges/counters with backend/kernel
//     attrs, plus per-tier frame counters. Called explicitly by drivers
//     after a stats-collecting run — never from CompiledModel::run, whose
//     steady state must not touch registry name strings.
#pragma once

#include <string>
#include <vector>

#include "core/compiler/plan.hpp"
#include "core/compute_backend.hpp"
#include "obs/metrics.hpp"

namespace lightator::obs {

/// JSON array, one object per tuned geometry:
///   [{"geometry": {"m","n","k","seg","wide"},
///     "choice": {"tier","nc_strips"}, "measured": bool,
///     "hysteresis_margin": 0.05,
///     "candidates": [{"tier","nc_strips","best_us"}, ...]}, ...]
std::string kernel_plan_json(const core::KernelPlan& plan,
                             const std::string& indent = "  ");

/// Registers per-layer execution stats on `registry`:
///   layer.<index>.<name>.compute_ms (gauge, total wall ms)
///   layer.<index>.<name>.frames     (counter)
///   layer.<index>.<name>.macs_per_frame (gauge)
/// each annotated with backend / kernel / weight_bits attrs, plus
/// kernel.<tier>.frames counters aggregated across layers.
void record_layer_stats(MetricsRegistry& registry,
                        const std::vector<core::LayerExecStats>& stats);

}  // namespace lightator::obs
