#include "sensor/image.hpp"

#include <algorithm>
#include <stdexcept>

namespace lightator::sensor {

Image::Image(std::size_t height, std::size_t width, std::size_t channels,
             float fill)
    : height_(height), width_(width), channels_(channels),
      data_(height * width * channels, fill) {
  if (height == 0 || width == 0 || (channels != 1 && channels != 3)) {
    throw std::invalid_argument("image must be non-empty with 1 or 3 channels");
  }
}

std::size_t Image::index(std::size_t y, std::size_t x, std::size_t c) const {
  if (y >= height_ || x >= width_ || c >= channels_) {
    throw std::out_of_range("image index out of range");
  }
  return (y * width_ + x) * channels_ + c;
}

float& Image::at(std::size_t y, std::size_t x, std::size_t c) {
  return data_[index(y, x, c)];
}

float Image::at(std::size_t y, std::size_t x, std::size_t c) const {
  return data_[index(y, x, c)];
}

void Image::clamp() {
  for (auto& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

float Image::mean() const {
  if (data_.empty()) return 0.0f;
  double sum = 0.0;
  for (float v : data_) sum += v;
  return static_cast<float>(sum / static_cast<double>(data_.size()));
}

Image Image::to_grayscale() const {
  if (channels_ == 1) return *this;
  Image out(height_, width_, 1);
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      out.at(y, x) = kGrayR * at(y, x, 0) + kGrayG * at(y, x, 1) +
                     kGrayB * at(y, x, 2);
    }
  }
  return out;
}

Image Image::average_pool(std::size_t factor) const {
  if (factor == 0 || height_ % factor != 0 || width_ % factor != 0) {
    throw std::invalid_argument("pooling factor must divide image dims");
  }
  Image out(height_ / factor, width_ / factor, channels_);
  const float norm = 1.0f / static_cast<float>(factor * factor);
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < out.width(); ++x) {
      for (std::size_t c = 0; c < channels_; ++c) {
        float acc = 0.0f;
        for (std::size_t dy = 0; dy < factor; ++dy) {
          for (std::size_t dx = 0; dx < factor; ++dx) {
            acc += at(y * factor + dy, x * factor + dx, c);
          }
        }
        out.at(y, x, c) = acc * norm;
      }
    }
  }
  return out;
}

}  // namespace lightator::sensor
