// Prints the microkernel tiers this host can run, one name per line in
// ladder order (scalar first). CI's tier-matrix leg iterates the output:
//
//   for t in $(./build/kernel_probe); do
//     LIGHTATOR_FORCE_KERNEL=$t ctest ...
//   done
//
// so the suite runs once per tier the runner's ISA actually has, and tiers
// the hardware lacks are skipped instead of failing. With `-active` it
// prints only the tier auto dispatch resolves to (the ladder top).
#include <cstdio>
#include <cstring>

#include "tensor/simd.hpp"

int main(int argc, char** argv) {
  using namespace lightator::tensor::simd;
  if (argc > 1 && std::strcmp(argv[1], "-active") == 0) {
    std::printf("%s\n", active_kernel());
    return 0;
  }
  for (const KernelTier tier : available_tiers()) {
    std::printf("%s\n", tier_name(tier));
  }
  return 0;
}
