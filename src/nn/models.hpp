// Trainable model zoo matching the paper's workloads.
//
// LeNet (MNIST) and VGG9 (CIFAR10/100) are trained from scratch in the
// benches; VGG9 takes a width multiplier so the accuracy experiments can use
// a CPU-feasible slim variant (power/timing always use the full-width
// ModelDesc — see DESIGN.md §3).
#pragma once

#include "nn/network.hpp"
#include "util/rng.hpp"

namespace lightator::nn {

/// LeNet-5 (28x28x1 input): conv5x5x6(pad2) -> avgpool2 -> conv5x5x16 ->
/// avgpool2 -> fc120 -> fc84 -> fc{classes}.
Network build_lenet(util::Rng& rng, std::size_t num_classes = 10);

/// VGG9 (32x32x3 input): [64,64,M,128,128,M,256,256,M] + fc512 fc512
/// fc{classes}, channels scaled by width_mult.
Network build_vgg9(util::Rng& rng, std::size_t num_classes = 10,
                   double width_mult = 1.0);

/// A tiny MLP for unit tests and the quickstart example.
Network build_mlp(util::Rng& rng, std::size_t in_features,
                  std::size_t hidden, std::size_t num_classes);

}  // namespace lightator::nn
