// Single-threaded blocked SGEMM: C = alpha * op(A) * op(B) + beta * C.
//
// Row-major matrices with explicit leading dimensions. This is the compute
// kernel under conv2d (im2col) and the fully-connected layers, for both the
// forward and backward passes.
#pragma once

#include <cstddef>

namespace lightator::tensor {

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

}  // namespace lightator::tensor
