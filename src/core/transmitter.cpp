#include "core/transmitter.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::core {

RadioParams ble_radio() {
  return {"ble", 50e-9, 1e6, 5e-6};
}

RadioParams zigbee_radio() {
  return {"zigbee", 120e-9, 250e3, 8e-6};
}

RadioParams wifi_radio() {
  // Higher rate, higher per-burst cost; competitive only for big payloads.
  return {"wifi", 12e-9, 72e6, 250e-6};
}

TransmissionCost Transmitter::cost_for_bits(std::size_t bits) const {
  if (params_.energy_per_bit < 0 || params_.data_rate <= 0) {
    throw std::logic_error("radio parameters invalid");
  }
  TransmissionCost c;
  c.bits = bits;
  c.energy = params_.wakeup_energy +
             params_.energy_per_bit * static_cast<double>(bits);
  c.airtime = static_cast<double>(bits) / params_.data_rate;
  return c;
}

TransmissionCost Transmitter::cost_for_frame(std::size_t pixels,
                                             std::size_t bits_per_pixel) const {
  return cost_for_bits(pixels * bits_per_pixel);
}

TransmissionCost Transmitter::cost_for_label(std::size_t num_classes) const {
  // ceil(log2(classes)) label bits + an 8-bit confidence.
  std::size_t label_bits = 1;
  while ((std::size_t{1} << label_bits) < num_classes) ++label_bits;
  return cost_for_bits(label_bits + 8);
}

EdgePayloads edge_payloads(const Transmitter& tx, std::size_t rows,
                           std::size_t cols, std::size_t pool_factor,
                           std::size_t num_classes) {
  if (pool_factor == 0 || rows % pool_factor != 0 || cols % pool_factor != 0) {
    throw std::invalid_argument("pool factor must divide the frame");
  }
  EdgePayloads p;
  p.raw_rgb8 = tx.cost_for_frame(rows * cols * 3, 8);
  p.crc_codes4 = tx.cost_for_frame(rows * cols, 4);  // Bayer: 1 sample/site
  p.ca_compressed4 =
      tx.cost_for_frame((rows / pool_factor) * (cols / pool_factor), 4);
  p.label = tx.cost_for_label(num_classes);
  return p;
}

}  // namespace lightator::core
