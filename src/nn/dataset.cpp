#include "nn/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace lightator::nn {

tensor::Tensor Dataset::batch_images(std::size_t begin,
                                     std::size_t count) const {
  if (begin + count > size()) throw std::out_of_range("batch out of range");
  const std::size_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  const std::size_t stride = c * h * w;
  tensor::Tensor out({count, c, h, w});
  std::copy(images.data() + begin * stride,
            images.data() + (begin + count) * stride, out.data());
  return out;
}

std::vector<std::size_t> Dataset::batch_labels(std::size_t begin,
                                               std::size_t count) const {
  if (begin + count > size()) throw std::out_of_range("batch out of range");
  return {labels.begin() + static_cast<long>(begin),
          labels.begin() + static_cast<long>(begin + count)};
}

void Dataset::shuffle(util::Rng& rng) {
  const std::size_t n = size();
  if (n == 0) return;
  const std::size_t stride = images.dim(1) * images.dim(2) * images.dim(3);
  std::vector<float> tmp(stride);
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_index(i + 1);
    if (i == j) continue;
    std::swap(labels[i], labels[j]);
    float* a = images.data() + i * stride;
    float* b = images.data() + j * stride;
    std::copy(a, a + stride, tmp.data());
    std::copy(b, b + stride, a);
    std::copy(tmp.data(), tmp.data() + stride, b);
  }
}

}  // namespace lightator::nn
