// Shared helpers for the figure/table bench harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "core/lightator.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace lightator::bench {

/// Parses key=value overrides; prints the active config to stderr.
inline util::Config parse_args(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const std::string dump = cfg.dump();
  if (!dump.empty()) std::fprintf(stderr, "overrides:\n%s", dump.c_str());
  return cfg;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// One row of a per-layer component-power table (streaming-phase power,
/// which is what the paper's Fig. 8/9 bars show).
inline std::vector<std::string> power_row(const core::LayerReport& l) {
  const auto& p = l.power.streaming;
  return {l.name,
          l.weight_bits > 0 ? std::to_string(l.weight_bits) : "-",
          util::format_sig(p.adc, 3),
          util::format_sig(p.dac, 3),
          util::format_sig(p.dmva, 3),
          util::format_sig(p.tun, 3),
          util::format_sig(p.bpd, 3),
          util::format_sig(p.misc, 3),
          util::format_sig(p.total(), 4)};
}

inline std::vector<std::string> power_table_header() {
  return {"layer", "Wbits", "ADCs(W)", "DACs(W)", "DMVA(W)",
          "TUN(W)", "BPD(W)", "Misc(W)", "Total(W)"};
}

}  // namespace lightator::bench
