// Artifact suite: the serialized-CompiledModel contract. Round trips must be
// bit-identical (gemm/reference exact, physical seeded-noise-identical,
// across batch shapes and thread counts); hostile blobs — truncation,
// flipped payload bytes, future versions, wrong arm geometry — must be
// rejected with the right typed ArtifactErrorKind, never half-loaded; and a
// blob whose packed panels were tuned for another host's kernel tier must
// repack on load and still produce bit-exact outputs (tier resolution stays
// downward-only).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/artifact/artifact.hpp"
#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lightator::core {
namespace {

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

nn::Network make_lenet(std::uint64_t seed = 21) {
  util::Rng rng(seed);
  return nn::build_lenet(rng);
}

tensor::Tensor make_frames(std::size_t batch, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  tensor::Tensor x({batch, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  return x;
}

/// Temp blob path unique per test (tests run in one process; the gtest name
/// keeps parallel ctest shards from colliding on a shared build dir).
std::string temp_blob_path() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string("artifact_") + info->test_suite_name() + "_" +
         info->name() + ".blob";
}

/// Restores the forced-tier dispatch hook on scope exit — tier-forcing tests
/// must not leak state into later tests (or inherit CI's env-forced tier).
struct ForcedTierGuard {
  ~ForcedTierGuard() {
    tensor::simd::set_forced_tier(tensor::simd::KernelTier::kAuto);
  }
};

TEST(ArtifactRoundTrip, GemmBitExactAcrossBatchAndThreads) {
  const LightatorSystem sys(ArchConfig::defaults());
  const nn::Network net = make_lenet();
  const CompiledModel compiled = sys.compile(net, {});

  const std::vector<std::uint8_t> blob = serialize_artifact(compiled);
  ArtifactLoadStats stats;
  const CompiledModel loaded = deserialize_artifact(blob, sys, &stats);
  EXPECT_EQ(stats.blob_bytes, blob.size());
  EXPECT_EQ(loaded.backend(), compiled.backend());
  EXPECT_EQ(loaded.num_layers(), compiled.num_layers());
  EXPECT_EQ(loaded.num_weighted_layers(), compiled.num_weighted_layers());

  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
    const tensor::Tensor x = make_frames(batch);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      util::ThreadPool pool(threads);
      ExecutionContext ctx;
      ctx.pool = &pool;
      tensor::Tensor a = compiled.run(x, ctx).take();
      tensor::Tensor b = loaded.run(x, ctx).take();
      expect_bit_exact(a, b,
                       "batch " + std::to_string(batch) + " threads " +
                           std::to_string(threads));
    }
  }
}

TEST(ArtifactRoundTrip, ReferenceBackendBitExact) {
  const LightatorSystem sys(ArchConfig::defaults());
  CompileOptions co;
  co.backend = "reference";
  const CompiledModel compiled = sys.compile(make_lenet(), co);
  const CompiledModel loaded =
      deserialize_artifact(serialize_artifact(compiled), sys);
  const tensor::Tensor x = make_frames(2);
  ExecutionContext ctx;
  expect_bit_exact(compiled.run(x, ctx).take(), loaded.run(x, ctx).take(),
                   "reference");
}

TEST(ArtifactRoundTrip, PhysicalSeededNoiseIdentical) {
  const LightatorSystem sys(ArchConfig::defaults());
  CompileOptions co;
  co.backend = "physical";
  const CompiledModel compiled = sys.compile(make_lenet(), co);

  ArtifactLoadStats stats;
  const CompiledModel loaded =
      deserialize_artifact(serialize_artifact(compiled), sys, &stats);
  // The physical backend's arm programs ride in the blob — no rebuild.
  EXPECT_FALSE(stats.rebuilt_arm_programs);

  const tensor::Tensor x = make_frames(2);
  ExecutionContext ctx_a, ctx_b;
  ctx_a.backend = "physical";
  ctx_a.noise_seed = 77;
  ctx_b.backend = "physical";
  ctx_b.noise_seed = 77;
  expect_bit_exact(compiled.run(x, ctx_a).take(), loaded.run(x, ctx_b).take(),
                   "physical seeded");
}

TEST(ArtifactRoundTrip, SaveLoadFile) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  const std::string path = temp_blob_path();
  save_artifact(compiled, path);

  ArtifactLoadStats stats;
  const CompiledModel loaded = load_artifact(path, sys, &stats);
  EXPECT_GT(stats.blob_bytes, 0u);
  const tensor::Tensor x = make_frames(3);
  ExecutionContext ctx;
  expect_bit_exact(compiled.run(x, ctx).take(), loaded.run(x, ctx).take(),
                   "file round trip");

  // Engine/model conveniences route through the same save/load pair.
  const std::string path2 = temp_blob_path() + "2";
  compiled.save(path2);
  Engine engine(sys);
  const CompiledModel loaded2 = engine.load(path2);
  expect_bit_exact(loaded.run(x, ctx).take(), loaded2.run(x, ctx).take(),
                   "convenience round trip");
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(ArtifactInspect, ReportsHeaderAndSections) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  const std::vector<std::uint8_t> blob = serialize_artifact(compiled);
  const ArtifactInfo info = inspect_artifact_blob(blob);

  EXPECT_EQ(info.version, kArtifactVersion);
  EXPECT_EQ(info.total_bytes, blob.size());
  EXPECT_EQ(info.backend, "gemm");
  EXPECT_EQ(info.mrs_per_arm, ArchConfig::defaults().geometry.mrs_per_arm);
  EXPECT_EQ(info.num_weighted, compiled.num_weighted_layers());
  EXPECT_FALSE(info.applied_passes.empty());
  ASSERT_EQ(info.sections.size(), 5u);
  std::uint64_t payload = 0;
  for (const auto& s : info.sections) {
    EXPECT_NE(s.name, "unknown");
    payload += s.bytes;
  }
  EXPECT_LT(payload, info.total_bytes);  // header + table are extra
  if (tensor::simd::simd_active()) {
    EXPECT_TRUE(info.panels_present);
    EXPECT_EQ(info.simd_fingerprint, tensor::simd::active_kernel());
  }
}

TEST(ArtifactHostile, TruncatedBlobRejected) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  std::vector<std::uint8_t> blob = serialize_artifact(compiled);

  // Below the fixed header: unconditionally corrupt.
  std::vector<std::uint8_t> tiny(blob.begin(), blob.begin() + 16);
  try {
    deserialize_artifact(tiny, sys);
    FAIL() << "16-byte blob deserialized";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kCorrupt);
  }

  // Valid header, missing tail: the header's total_bytes exposes it.
  std::vector<std::uint8_t> cut(blob.begin(), blob.end() - 100);
  try {
    deserialize_artifact(cut, sys);
    FAIL() << "truncated blob deserialized";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kCorrupt);
  }
}

TEST(ArtifactHostile, TruncatedFileRejected) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  const std::vector<std::uint8_t> blob = serialize_artifact(compiled);
  const std::string path = temp_blob_path();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(blob.data(), 1, blob.size() / 2, f);
    std::fclose(f);
  }
  try {
    load_artifact(path, sys);
    FAIL() << "half-written file loaded";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kCorrupt);
  }
  std::remove(path.c_str());
}

TEST(ArtifactHostile, FlippedPayloadByteFailsHash) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  std::vector<std::uint8_t> blob = serialize_artifact(compiled);
  // Flip one byte deep in the payload (past header + section table).
  blob[blob.size() / 2] ^= 0x40;
  try {
    deserialize_artifact(blob, sys);
    FAIL() << "bit-flipped blob deserialized";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kHashMismatch);
    EXPECT_STREQ(artifact_error_kind_name(e.kind()), "hash_mismatch");
  }
}

TEST(ArtifactHostile, FutureVersionRejected) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  std::vector<std::uint8_t> blob = serialize_artifact(compiled);
  blob[8] = static_cast<std::uint8_t>(kArtifactVersion + 1);  // version LSB
  try {
    deserialize_artifact(blob, sys);
    FAIL() << "future-version blob deserialized";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kVersionSkew);
  }
}

TEST(ArtifactHostile, ArmGeometryMismatchRejected) {
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  const std::vector<std::uint8_t> blob = serialize_artifact(compiled);

  ArchConfig other = ArchConfig::defaults();
  other.geometry.mrs_per_arm += 2;  // a different accelerator generation
  const LightatorSystem other_sys(other);
  try {
    deserialize_artifact(blob, other_sys);
    FAIL() << "blob for another arm geometry deserialized";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kArchMismatch);
  }
}

TEST(ArtifactRepack, ScalarBlobRepacksOnSimdHost) {
  if (!tensor::simd::simd_active()) {
    GTEST_SKIP() << "host has no SIMD tiers — repack direction untestable";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  ForcedTierGuard guard;

  // Compile as a scalar host would: no SIMD → no packed panels in the blob.
  tensor::simd::set_forced_tier(tensor::simd::KernelTier::kScalar);
  const CompiledModel scalar_compiled = sys.compile(make_lenet(), {});
  const std::vector<std::uint8_t> blob = serialize_artifact(scalar_compiled);
  EXPECT_FALSE(inspect_artifact_blob(blob).panels_present);

  // Load on "this" (SIMD) host: the loader must pack fresh panels and the
  // outputs must match a native compile bit-for-bit.
  tensor::simd::set_forced_tier(tensor::simd::KernelTier::kAuto);
  ArtifactLoadStats stats;
  const CompiledModel loaded = deserialize_artifact(blob, sys, &stats);
  EXPECT_TRUE(stats.packed_fresh);
  EXPECT_FALSE(stats.repacked_panels);

  const CompiledModel native = sys.compile(make_lenet(), {});
  const tensor::Tensor x = make_frames(4);
  ExecutionContext ctx;
  expect_bit_exact(native.run(x, ctx).take(), loaded.run(x, ctx).take(),
                   "scalar blob on simd host");
}

TEST(ArtifactRepack, ForeignFingerprintRepacksAndStaysExact) {
  using tensor::simd::KernelTier;
  const auto tiers = tensor::simd::available_tiers();
  if (tiers.size() < 2) {
    GTEST_SKIP() << "host has a single kernel tier — no foreign fingerprint";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  ForcedTierGuard guard;

  // Compile pinned to a lower tier than the host's best: the blob's panels
  // carry that tier's fingerprint.
  const KernelTier lower = tiers[tiers.size() - 2] == KernelTier::kScalar &&
                                   tiers.size() >= 3
                               ? tiers[tiers.size() - 3]
                               : tiers[tiers.size() - 2];
  if (lower == KernelTier::kScalar) {
    GTEST_SKIP() << "no non-scalar lower tier to fingerprint against";
  }
  tensor::simd::set_forced_tier(lower);
  const CompiledModel lower_compiled = sys.compile(make_lenet(), {});
  const std::vector<std::uint8_t> blob = serialize_artifact(lower_compiled);
  const ArtifactInfo info = inspect_artifact_blob(blob);
  ASSERT_TRUE(info.panels_present);
  EXPECT_EQ(info.simd_fingerprint, tensor::simd::tier_name(lower));

  // Load with the host running its best tier: fingerprints differ, so the
  // loader repacks rather than trusting foreign panel layout.
  tensor::simd::set_forced_tier(KernelTier::kAuto);
  ArtifactLoadStats stats;
  const CompiledModel loaded = deserialize_artifact(blob, sys, &stats);
  EXPECT_TRUE(stats.repacked_panels);

  const CompiledModel native = sys.compile(make_lenet(), {});
  const tensor::Tensor x = make_frames(4);
  ExecutionContext ctx;
  expect_bit_exact(native.run(x, ctx).take(), loaded.run(x, ctx).take(),
                   "foreign-fingerprint blob");
}

TEST(ArtifactRepack, TunedPlanResolvesDownwardOnLesserHost) {
  using tensor::simd::KernelTier;
  const LightatorSystem sys(ArchConfig::defaults());
  ForcedTierGuard guard;

  // A plan autotuned on a VNNI-class build box: pin the choice via
  // force_kernel so the test is deterministic even on non-VNNI hosts (the
  // KernelConfig in each step records the tier; dispatch resolves it).
  CompileOptions co;
  co.force_kernel = KernelTier::kVnni;
  const CompiledModel tuned = sys.compile(make_lenet(), co);
  const std::vector<std::uint8_t> blob = serialize_artifact(tuned);

  // Serve it on a host that can only run scalar: resolve_tier must take
  // every step's recorded kVnni choice DOWN to scalar, never up, and the
  // outputs must still be bit-exact with a native scalar compile.
  tensor::simd::set_forced_tier(KernelTier::kScalar);
  ArtifactLoadStats stats;
  const CompiledModel loaded = deserialize_artifact(blob, sys, &stats);
  const CompiledModel native = sys.compile(make_lenet(), {});
  const tensor::Tensor x = make_frames(2);
  ExecutionContext ctx;
  expect_bit_exact(native.run(x, ctx).take(), loaded.run(x, ctx).take(),
                   "vnni-tuned plan on scalar host");
}

TEST(ArtifactMetrics, LoadAccountsSeparatelyFromCompile) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.reset();
  const LightatorSystem sys(ArchConfig::defaults());
  const CompiledModel compiled = sys.compile(make_lenet(), {});
  const std::vector<std::uint8_t> blob = serialize_artifact(compiled);

  const std::uint64_t compiles = reg.counter("compile.count").value();
  const std::uint64_t compile_obs = reg.histogram("compile.ms").count();
  EXPECT_GE(compiles, 1u);

  (void)deserialize_artifact(blob, sys);
  EXPECT_EQ(reg.counter("compile.load_count").value(), 1u);
  EXPECT_EQ(reg.histogram("compile.load_ms").count(), 1u);
  // Cold-start accounting stays split: loading must not book compile time.
  EXPECT_EQ(reg.counter("compile.count").value(), compiles);
  EXPECT_EQ(reg.histogram("compile.ms").count(), compile_obs);
}

}  // namespace
}  // namespace lightator::core
