// Numerical gradient checks: every backward pass is verified against central
// finite differences. These guard the from-scratch training engine that the
// accuracy experiments depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/activations.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace lightator::tensor {
namespace {

/// Central-difference gradient of scalar_fn wrt x, compared element-wise
/// against analytic_grad.
void check_gradient(Tensor& x, const std::function<double()>& scalar_fn,
                    const Tensor& analytic_grad, float eps = 1e-3f,
                    float tol = 2e-2f) {
  ASSERT_EQ(x.size(), analytic_grad.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + eps;
    const double up = scalar_fn();
    x[i] = saved - eps;
    const double down = scalar_fn();
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic_grad[i], numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << "element " << i;
  }
}

/// Weighted sum of all elements — a scalar "loss" with known gradient w.
double weighted_sum(const Tensor& y, const Tensor& coeff) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc += static_cast<double>(y[i]) * coeff[i];
  }
  return acc;
}

TEST(Gradient, Conv2dInput) {
  util::Rng rng(1);
  const ConvSpec spec{2, 3, 3, 1, 1};
  Tensor x({1, 2, 5, 5}), w({3, 2, 3, 3}), b({3});
  x.fill_normal(rng, 1.0f);
  w.fill_normal(rng, 0.5f);
  b.fill_normal(rng, 0.5f);
  Tensor coeff(conv2d_forward(x, w, b, spec).shape());
  coeff.fill_normal(rng, 1.0f);
  Tensor dx;
  conv2d_backward(x, w, spec, coeff, &dx, nullptr, nullptr);
  check_gradient(
      x, [&] { return weighted_sum(conv2d_forward(x, w, b, spec), coeff); },
      dx);
}

TEST(Gradient, Conv2dWeightAndBias) {
  util::Rng rng(2);
  const ConvSpec spec{2, 2, 3, 2, 1};
  Tensor x({2, 2, 6, 6}), w({2, 2, 3, 3}), b({2});
  x.fill_normal(rng, 1.0f);
  w.fill_normal(rng, 0.5f);
  b.fill_normal(rng, 0.5f);
  Tensor coeff(conv2d_forward(x, w, b, spec).shape());
  coeff.fill_normal(rng, 1.0f);
  Tensor dw, db;
  conv2d_backward(x, w, spec, coeff, nullptr, &dw, &db);
  check_gradient(
      w, [&] { return weighted_sum(conv2d_forward(x, w, b, spec), coeff); },
      dw);
  check_gradient(
      b, [&] { return weighted_sum(conv2d_forward(x, w, b, spec), coeff); },
      db);
}

TEST(Gradient, Linear) {
  util::Rng rng(3);
  Tensor x({3, 7}), w({4, 7}), b({4});
  x.fill_normal(rng, 1.0f);
  w.fill_normal(rng, 0.5f);
  b.fill_normal(rng, 0.5f);
  Tensor coeff({3, 4});
  coeff.fill_normal(rng, 1.0f);
  Tensor dx, dw, db;
  linear_backward(x, w, coeff, &dx, &dw, &db);
  check_gradient(
      x, [&] { return weighted_sum(linear_forward(x, w, b), coeff); }, dx);
  check_gradient(
      w, [&] { return weighted_sum(linear_forward(x, w, b), coeff); }, dw);
  check_gradient(
      b, [&] { return weighted_sum(linear_forward(x, w, b), coeff); }, db);
}

TEST(Gradient, MaxPool) {
  util::Rng rng(4);
  Tensor x({1, 2, 4, 4});
  x.fill_normal(rng, 1.0f);
  std::vector<std::size_t> argmax;
  Tensor y = maxpool_forward(x, 2, 2, &argmax);
  Tensor coeff(y.shape());
  coeff.fill_normal(rng, 1.0f);
  const Tensor dx = maxpool_backward(coeff, x, 2, 2, argmax);
  check_gradient(
      x,
      [&] {
        std::vector<std::size_t> am;
        return weighted_sum(maxpool_forward(x, 2, 2, &am), coeff);
      },
      dx, 1e-4f);
}

TEST(Gradient, AvgPool) {
  util::Rng rng(5);
  Tensor x({2, 1, 4, 4});
  x.fill_normal(rng, 1.0f);
  Tensor y = avgpool_forward(x, 2, 2);
  Tensor coeff(y.shape());
  coeff.fill_normal(rng, 1.0f);
  const Tensor dx = avgpool_backward(coeff, x, 2, 2);
  check_gradient(
      x, [&] { return weighted_sum(avgpool_forward(x, 2, 2), coeff); }, dx);
}

TEST(Gradient, ReLU) {
  util::Rng rng(6);
  Tensor x({20});
  x.fill_normal(rng, 1.0f);
  // Keep points away from the kink where finite differences are invalid.
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.1f;
  }
  Tensor coeff({20});
  coeff.fill_normal(rng, 1.0f);
  const Tensor dx = act_backward(coeff, x, ActKind::kReLU);
  check_gradient(
      x, [&] { return weighted_sum(act_forward(x, ActKind::kReLU), coeff); },
      dx, 1e-4f);
}

TEST(Gradient, Tanh) {
  util::Rng rng(7);
  Tensor x({20});
  x.fill_normal(rng, 1.0f);
  Tensor coeff({20});
  coeff.fill_normal(rng, 1.0f);
  const Tensor dx = act_backward(coeff, x, ActKind::kTanh);
  check_gradient(
      x, [&] { return weighted_sum(act_forward(x, ActKind::kTanh), coeff); },
      dx);
}

TEST(Gradient, SoftmaxCrossEntropy) {
  util::Rng rng(8);
  Tensor logits({4, 6});
  logits.fill_normal(rng, 2.0f);
  const std::vector<std::size_t> labels = {1, 0, 5, 3};
  Tensor dlogits;
  softmax_cross_entropy(logits, labels, &dlogits);
  check_gradient(
      logits,
      [&] { return softmax_cross_entropy(logits, labels, nullptr); }, dlogits,
      1e-3f, 1e-2f);
}

TEST(Gradient, SignStraightThroughIsClipped) {
  // Not a numeric check (sign has zero derivative a.e.): assert the STE
  // window — gradient passes inside |x|<=1, blocked outside.
  Tensor x({3});
  x[0] = 0.5f;
  x[1] = -0.5f;
  x[2] = 2.0f;
  Tensor dy({3});
  dy.fill(1.0f);
  const Tensor dx = act_backward(dy, x, ActKind::kSign);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

}  // namespace
}  // namespace lightator::tensor
