// Per-layer weight-precision search: the generalization of Lightator-MX.
//
// The paper hand-picks two mixed-precision points (L1 at [4:4], the rest at
// [3:4] or [2:4]). This module automates the choice: starting from uniform
// max_bits, it greedily lowers the precision of whichever layer buys the
// most power for the least estimated accuracy damage, until a power budget
// is met or an accuracy-drop allowance is exhausted.
//
// Accuracy damage can be estimated two ways:
//   * analytic   — layer-wise quantization-noise proxy (weight MSE scaled by
//     the layer's share of MACs), cheap, no model needed;
//   * measured   — every candidate assignment compiled once
//     (LightatorSystem::compile at the candidate's bit vector) and evaluated
//     through CompiledModel::evaluate on a bound validation set (the default
//     when search is given an ExecutionContext: candidates run on the
//     context's backend — "gemm" — with its pool sharding the validation
//     batches, so measured search is multicore-fast and thread-count
//     invariant), or a user-supplied evaluator callback.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/lightator.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {

struct PrecisionSearchOptions {
  int max_bits = 4;
  int min_bits = 2;
  /// Stop lowering once peak streaming power is at or below this (W);
  /// <= 0 disables the power target (lower as far as accuracy allows).
  double power_budget = 0.0;
  /// Allowance on the accuracy proxy / measured accuracy drop (absolute).
  double max_accuracy_drop = 0.03;
  /// Measured search only: evaluate up to this many top-scoring single-step
  /// candidates per greedy iteration — scored with the pre-step (hence
  /// possibly stale within the batch) power numbers — and commit whichever
  /// measures best. 1 = classic greedy; analytic search ignores this.
  /// Candidate compiles share the base artifact's autotuned kernel plan
  /// (CompileOptions::pinned_kernel_plan), so widening the batch costs
  /// validation time only, never re-tuning time.
  std::size_t candidate_batch = 1;
};

struct PrecisionAssignment {
  std::vector<int> weight_bits;  // per weighted layer, in model order
  double max_power = 0.0;        // W at this assignment
  double estimated_drop = 0.0;   // proxy or measured accuracy drop
  std::string label() const;     // "[4,3,3,...,2:4]"
};

class PrecisionSearch {
 public:
  /// `evaluate` (optional): maps a per-layer bit assignment to accuracy in
  /// [0,1]. When absent, the analytic proxy (or, with a bound validation
  /// set and an ExecutionContext, measured evaluation) drives the search.
  using Evaluator = std::function<double(const std::vector<int>&)>;

  PrecisionSearch(const LightatorSystem& system, const nn::ModelDesc& model)
      : system_(system), model_(model) {}

  /// Binds a trained network + validation set: search(options, ctx) with no
  /// explicit evaluator then compiles each candidate bit assignment once and
  /// measures it through CompiledModel::evaluate. The network must outlive
  /// the search (candidates compile from its weights).
  void bind_validation(nn::Network& net, const nn::Dataset& data,
                       int act_bits = 4, std::size_t batch_size = 64,
                       std::size_t max_samples = 0);

  /// Analytic sensitivity of lowering weighted layer `i` from `bits` to
  /// `bits-1`: quantization-noise increase weighted by the layer's MAC
  /// share. Higher = more damaging.
  double layer_sensitivity(std::size_t weighted_index, int bits) const;

  /// Greedy search on a default ("gemm", global pool) context. Analytic
  /// unless `evaluate` is supplied.
  PrecisionAssignment search(const PrecisionSearchOptions& options,
                             const Evaluator& evaluate = nullptr) const;

  /// Greedy search through an explicit ExecutionContext. Evaluator priority:
  /// `evaluate` if supplied, else measured evaluation on the bound
  /// validation set (pooled evaluate_on_oc through `ctx`), else analytic.
  PrecisionAssignment search(const PrecisionSearchOptions& options,
                             ExecutionContext& ctx,
                             const Evaluator& evaluate = nullptr) const;

  /// The weighted (conv/fc) layers of the model, in order.
  std::vector<const nn::LayerDesc*> weighted_layers() const;

 private:
  PrecisionAssignment search_impl(const PrecisionSearchOptions& options,
                                  const Evaluator& evaluate) const;

  const LightatorSystem& system_;
  const nn::ModelDesc& model_;

  // Bound validation set for the measured-evaluator default (optional).
  nn::Network* eval_net_ = nullptr;
  const nn::Dataset* eval_data_ = nullptr;
  int eval_act_bits_ = 4;
  std::size_t eval_batch_size_ = 64;
  std::size_t eval_max_samples_ = 0;
};

}  // namespace lightator::core
