// ModelRegistry: the name@version → CompiledModel store behind the router.
//
// A registry entry is an immutable, thread-shareable CompiledModel under a
// two-part key: a model name ("lenet") and a version tag ("v1", "2024-08",
// any string without '@'). References are written "name@version", or bare
// "name" for the most recently added version of that name — the rolling-
// release convention the router's hot-swap path leans on. Entries come from
// either an in-process Engine::compile (add) or the on-disk artifact format
// (load → core::load_artifact), which is what makes a registry process-
// restart-cheap: a fleet node loads blobs instead of recompiling.
//
// Thread-safe: every method takes the registry mutex; the returned
// CompiledModel handles are shared-immutable, so holding one outside the
// lock is always safe (unload drops the registry's reference, never the
// model — routes serving it keep it alive).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "core/compiled_model.hpp"

namespace lightator::core {
class LightatorSystem;
}

namespace lightator::serve {

class ModelRegistry {
 public:
  /// Registers `model` under name@version. Throws std::invalid_argument on
  /// an empty name, a '@' in either part, an invalid model handle, or a
  /// duplicate name@version (versions are immutable once registered —
  /// publish a new version instead).
  void add(const std::string& name, const std::string& version,
           core::CompiledModel model);

  /// Loads the artifact at `path` (core::load_artifact — full magic/
  /// version/hash validation, repack-on-load) for `system` and registers it
  /// under name@version. Returns the loaded model. Throws core::ArtifactError
  /// on any blob problem, std::invalid_argument on key problems.
  core::CompiledModel load(const std::string& name, const std::string& version,
                           const std::string& path,
                           const core::LightatorSystem& system);

  /// Resolves "name@version" exactly, or bare "name" to the most recently
  /// added version of that name. Throws std::out_of_range for an unknown
  /// ref (the message lists what is registered).
  core::CompiledModel get(const std::string& ref) const;

  /// Version tag get(name) would resolve to. Throws like get().
  std::string resolve_version(const std::string& name) const;

  bool contains(const std::string& ref) const;

  /// Drops the registry's reference (models still held by a route stay
  /// alive). Bare names unload the most recent version only. Throws
  /// std::out_of_range for an unknown ref.
  void unload(const std::string& ref);

  /// "name@version" keys in registration order.
  std::vector<std::string> list() const;

  std::size_t size() const;

 private:
  struct Entry {
    std::string name, version;
    core::CompiledModel model;
  };

  /// Index of `ref` in entries_, or npos. Bare names match the LAST entry
  /// with that name (latest registration wins). Caller holds mutex_.
  std::size_t find_locked(const std::string& ref) const;
  [[noreturn]] void throw_unknown_locked(const std::string& ref) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // registration order
};

}  // namespace lightator::serve
