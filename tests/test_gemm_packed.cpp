// Packed SIMD GEMM suite: bit-exactness of the AVX2 kernels against the
// scalar segmented kernel across every shape family the conv/fc layers
// emit, the segment edge cases (flat, oversized, unit, odd-tail), the
// int64-widening overflow path, zero-width panels, pack-format invariants,
// and a randomized SIMD-vs-scalar fuzz.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "tensor/gemm_s16.hpp"
#include "tensor/gemm_s16_packed.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace lightator::tensor {
namespace {

struct GemmCase {
  std::size_t m, n, k, segment;
};

std::vector<std::int16_t> random_levels(util::Rng& rng, std::size_t count,
                                        int lo, int hi) {
  std::vector<std::int16_t> v(count);
  for (auto& x : v) {
    x = static_cast<std::int16_t>(
        lo + static_cast<int>(rng.uniform_index(hi - lo + 1)));
  }
  return v;
}

std::vector<double> run_scalar(const GemmCase& c,
                               const std::vector<std::int16_t>& a,
                               const std::vector<std::int16_t>& b) {
  std::vector<double> out(c.m * c.n, -1.0);
  gemm_s16_segmented(c.m, c.n, c.k, a.data(), c.k, b.data(), c.n, c.segment,
                     out.data(), c.n);
  return out;
}

std::vector<double> run_packed(const GemmCase& c,
                               const std::vector<std::int16_t>& a,
                               const std::vector<std::int16_t>& b) {
  const PackedA pa = pack_a_s16(a.data(), c.m, c.k, c.k, c.segment);
  const PackedB pb = pack_b_s16(b.data(), c.k, c.n, c.n, c.segment);
  std::vector<double> out(c.m * c.n, -1.0);
  gemm_s16_packed(pa, pb, out.data(), c.n);
  return out;
}

void expect_same(const std::vector<double>& want,
                 const std::vector<double>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << label << " diverges at flat index " << i;
  }
}

/// Packed-vs-scalar check on quantized-range operands (unsigned 4-bit codes
/// x signed 4-bit levels — what conv/fc layers actually emit).
void check_case(const GemmCase& c, std::uint64_t seed, const char* label) {
  util::Rng rng(seed);
  const auto a = random_levels(rng, c.m * c.k, -7, 7);
  const auto b = random_levels(rng, c.k * c.n, 0, 15);
  expect_same(run_scalar(c, a, b), run_packed(c, a, b), label);
}

TEST(GemmPacked, BorrowedStoragePackingMatchesOwningAndSupportsRowRanges) {
  // The arena path packs into caller storage (pack_*_into) and dispatches
  // contiguous row ranges per shard; both must reproduce the owning
  // whole-matrix call exactly — including on dirty, reused storage.
  util::Rng rng(20260807);
  for (const GemmCase c : {GemmCase{5, 33, 27, 9}, GemmCase{8, 50, 150, 16},
                           GemmCase{3, 17, 25, 0}}) {
    const auto a = random_levels(rng, c.m * c.k, -7, 7);
    const auto b = random_levels(rng, c.k * c.n, 0, 15);
    const auto want = run_packed(c, a, b);

    std::vector<std::int16_t> a_store(packed_a_elems(c.m, c.k, c.segment),
                                      std::int16_t{-1});  // dirty
    std::vector<std::int16_t> b_store(packed_b_elems(c.k, c.n, c.segment),
                                      std::int16_t{-1});
    const PackedA pa =
        pack_a_s16_into(a.data(), c.m, c.k, c.k, c.segment, a_store.data());
    const PackedB pb =
        pack_b_s16_into(b.data(), c.k, c.n, c.n, c.segment, b_store.data());
    EXPECT_EQ(pa.base(), a_store.data());
    EXPECT_EQ(pb.base(), b_store.data());

    std::vector<double> got(c.m * c.n, -1.0);
    gemm_s16_packed(pa, pb, got.data(), c.n);
    expect_same(want, got, "into_full");

    // Row ranges covering [0, m) in uneven chunks — the fc sharding shape.
    std::fill(got.begin(), got.end(), -1.0);
    const std::size_t mid = c.m / 3 + 1;
    gemm_s16_packed(pa, pb, got.data(), c.n, 0, mid);
    gemm_s16_packed(pa, pb, got.data(), c.n, mid, c.m);
    expect_same(want, got, "into_row_ranges");
  }
}

TEST(GemmPacked, PackedDepthPadsOddSegmentsToEven) {
  EXPECT_EQ(packed_depth(27, 9), 30u);   // 3 segments of 9 -> 10
  EXPECT_EQ(packed_depth(20, 9), 22u);   // 9 -> 10, 9 -> 10, 2 -> 2
  EXPECT_EQ(packed_depth(16, 8), 16u);   // even segments stay tight
  EXPECT_EQ(packed_depth(7, 0), 8u);     // flat segment of 7 -> 8
  EXPECT_EQ(packed_depth(7, 100), 8u);   // oversized segment == flat
  EXPECT_EQ(packed_depth(6, 1), 12u);    // unit segments all pad
  EXPECT_EQ(packed_depth(0, 9), 0u);
}

TEST(GemmPacked, MatchesScalarOnConvShapes) {
  // (out_channels, OH*OW, C*K*K) triples from LeNet/VGG9-scale layers, at
  // the default 9-MR arm.
  const GemmCase cases[] = {
      {6, 576, 25, 9},     // lenet L1
      {16, 64, 150, 9},    // lenet L2
      {64, 1024, 27, 9},   // vgg9 L1
      {128, 256, 1152, 9}, // vgg9 L4
      {32, 100, 288, 9},
  };
  std::uint64_t seed = 1;
  for (const auto& c : cases) {
    check_case(c, seed++, "conv_shape");
  }
}

TEST(GemmPacked, SegmentEdgeCases) {
  std::uint64_t seed = 100;
  // segment == 0 (flat), segment >= k (flat), unit segments, odd segment
  // with odd tail, segment == k exactly, k == 1.
  const GemmCase cases[] = {
      {3, 17, 40, 0},   {3, 17, 40, 64},  {3, 17, 40, 40}, {3, 17, 40, 1},
      {3, 17, 41, 9},   {2, 5, 1, 9},     {1, 1, 1, 1},    {4, 33, 13, 5},
      {2, 16, 10, 3},   {5, 15, 9, 2},
  };
  for (const auto& c : cases) {
    check_case(c, seed++, "segment_edge");
  }
}

TEST(GemmPacked, ZeroWidthPanels) {
  // n == 0 and m == 0 are legal no-ops; k == 0 zeroes C.
  const GemmCase zero_n{3, 0, 12, 9};
  const auto a = std::vector<std::int16_t>(3 * 12, 2);
  expect_same(run_scalar(zero_n, a, {}), run_packed(zero_n, a, {}), "n0");

  const GemmCase zero_m{0, 5, 12, 9};
  const auto b = std::vector<std::int16_t>(12 * 5, 3);
  expect_same(run_scalar(zero_m, {}, b), run_packed(zero_m, {}, b), "m0");

  const GemmCase zero_k{2, 5, 0, 9};
  auto got = run_packed(zero_k, {}, std::vector<std::int16_t>{});
  for (double v : got) EXPECT_EQ(v, 0.0) << "k0 must zero C";
}

TEST(GemmPacked, Int64FallbackTriggersAndStaysExact) {
  // Full-range int16 values over a deep flat segment: the magnitude scan
  // must reject int32 accumulation (32767^2 * 512 >> 2^31) and the widened
  // kernel must still match the scalar int64 path bit-for-bit.
  const GemmCase c{2, 19, 512, 0};
  util::Rng rng(7);
  auto a = random_levels(rng, c.m * c.k, -32767, 32767);
  auto b = random_levels(rng, c.k * c.n, -32767, 32767);
  ASSERT_FALSE(gemm_s16_int32_safe(max_abs_s16(a.data(), a.size()),
                                   max_abs_s16(b.data(), b.size()), c.k));
  expect_same(run_scalar(c, a, b), run_packed(c, a, b), "int64_flat");

  // Borderline: magnitudes that fit int32 for arm-length segments but not
  // for the flat mode — both kernels must flip paths at the same point.
  const GemmCase armed{2, 19, 512, 9};
  expect_same(run_scalar(armed, a, b), run_packed(armed, a, b), "int64_armed");
}

TEST(GemmPacked, TransposedPackMatchesExplicitTranspose) {
  const std::size_t k = 23, n = 21, seg = 9;
  util::Rng rng(11);
  const auto w = random_levels(rng, n * k, -7, 7);  // row-major [n x k]
  std::vector<std::int16_t> wt(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) wt[kk * n + j] = w[j * k + kk];
  }
  const PackedB direct = pack_b_s16(wt.data(), k, n, n, seg);
  const PackedB gathered = pack_b_s16_transposed(w.data(), k, n, k, seg);
  EXPECT_EQ(direct.kp, gathered.kp);
  EXPECT_EQ(direct.max_abs, gathered.max_abs);
  ASSERT_EQ(direct.data.size(), gathered.data.size());
  for (std::size_t i = 0; i < direct.data.size(); ++i) {
    ASSERT_EQ(direct.data[i], gathered.data[i]) << "panel byte " << i;
  }
}

TEST(GemmPacked, RowRangeShardsCompose) {
  // Sharding the row range (how the fc layer parallelizes the batch) must
  // reproduce the all-rows result exactly.
  const GemmCase c{7, 29, 50, 9};
  util::Rng rng(13);
  const auto a = random_levels(rng, c.m * c.k, 0, 15);
  const auto b = random_levels(rng, c.k * c.n, -7, 7);
  const PackedA pa = pack_a_s16(a.data(), c.m, c.k, c.k, c.segment);
  const PackedB pb = pack_b_s16(b.data(), c.k, c.n, c.n, c.segment);
  std::vector<double> full(c.m * c.n);
  gemm_s16_packed(pa, pb, full.data(), c.n);
  std::vector<double> sharded(c.m * c.n, -1.0);
  for (std::size_t i = 0; i < c.m; ++i) {
    gemm_s16_packed(pa, pb, sharded.data(), c.n, i, i + 1);
  }
  expect_same(full, sharded, "row_shards");

  EXPECT_THROW(gemm_s16_packed(pa, pb, full.data(), c.n, 5, c.m + 1),
               std::invalid_argument);
  const PackedB other = pack_b_s16(b.data(), c.k, c.n, c.n, 5);
  EXPECT_THROW(gemm_s16_packed(pa, other, full.data(), c.n),
               std::invalid_argument);
}

TEST(GemmPacked, StridedSourceRowsPack) {
  // lda > k / ldb > n: panels cut out of larger buffers.
  const std::size_t m = 3, k = 10, n = 7, lda = 16, ldb = 12, seg = 4;
  util::Rng rng(17);
  const auto abuf = random_levels(rng, m * lda, -7, 7);
  const auto bbuf = random_levels(rng, k * ldb, 0, 15);
  std::vector<std::int16_t> a(m * k), b(k * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) a[i * k + kk] = abuf[i * lda + kk];
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t j = 0; j < n; ++j) b[kk * n + j] = bbuf[kk * ldb + j];
  }
  const PackedA pa = pack_a_s16(abuf.data(), m, k, lda, seg);
  const PackedB pb = pack_b_s16(bbuf.data(), k, n, ldb, seg);
  std::vector<double> got(m * n);
  gemm_s16_packed(pa, pb, got.data(), n);
  expect_same(run_scalar({m, n, k, seg}, a, b), got, "strided_pack");
}

TEST(GemmPacked, SimdAndScalarKernelsBitExact) {
  if (!simd::avx2_enabled()) {
    GTEST_SKIP() << "AVX2 kernels not active on this host/build";
  }
  const GemmCase cases[] = {
      {16, 33, 150, 9}, {8, 16, 40, 0}, {3, 7, 9, 4}, {64, 100, 27, 9},
  };
  std::uint64_t seed = 200;
  for (const auto& c : cases) {
    util::Rng rng(seed++);
    const auto a = random_levels(rng, c.m * c.k, -7, 7);
    const auto b = random_levels(rng, c.k * c.n, 0, 15);
    const auto with_simd = run_packed(c, a, b);
    simd::set_simd_enabled(false);
    const auto scalar = run_packed(c, a, b);
    simd::set_simd_enabled(true);
    expect_same(scalar, with_simd, "simd_vs_scalar");
  }
}

TEST(GemmPacked, RandomizedFuzzAgainstScalarKernel) {
  // Random shapes across the families conv/fc layers emit, random segment
  // lengths, codes/levels in quantized ranges with occasional full-range
  // magnitudes to exercise the int64 path.
  util::Rng rng(20260730);
  for (int iter = 0; iter < 60; ++iter) {
    GemmCase c;
    c.m = 1 + rng.uniform_index(20);
    c.n = 1 + rng.uniform_index(70);
    c.k = 1 + rng.uniform_index(120);
    c.segment = rng.uniform_index(3) == 0 ? 0 : 1 + rng.uniform_index(16);
    const bool wide = rng.uniform_index(8) == 0;
    const int wmax = wide ? 32767 : 7;
    const int amax = wide ? 32767 : 15;
    const auto a = random_levels(rng, c.m * c.k, -wmax, wmax);
    const auto b = random_levels(rng, c.k * c.n, wide ? -amax : 0, amax);
    expect_same(run_scalar(c, a, b), run_packed(c, a, b), "fuzz");
    if (simd::avx2_enabled()) {
      simd::set_simd_enabled(false);
      const auto scalar_kernel = run_packed(c, a, b);
      simd::set_simd_enabled(true);
      expect_same(scalar_kernel, run_packed(c, a, b), "fuzz_simd_toggle");
    }
  }
}

std::vector<double> run_packed_cfg(const GemmCase& c,
                                   const std::vector<std::int16_t>& a,
                                   const std::vector<std::int16_t>& b,
                                   const KernelConfig& cfg) {
  const PackedA pa = pack_a_s16(a.data(), c.m, c.k, c.k, c.segment);
  const PackedB pb = pack_b_s16(b.data(), c.k, c.n, c.n, c.segment);
  std::vector<double> out(c.m * c.n, -1.0);
  gemm_s16_packed(pa, pb, out.data(), c.n, cfg);
  return out;
}

TEST(GemmKernelLadder, EveryTierAndBlockingBitExactWithScalarKernel) {
  // The whole ladder — every tier the host can run, at several strip
  // blockings including degenerate ones — against the scalar segmented
  // kernel, over the segment edge cases, a ragged final strip, and the
  // int64-widening magnitudes. One bit of divergence anywhere fails.
  const GemmCase cases[] = {
      {6, 576, 25, 9},   // lenet L1 (36 strips: blocking engages)
      {3, 17, 40, 0},    // flat segment, ragged 2-strip panel
      {3, 17, 41, 9},    // odd segment tail
      {4, 16, 10, 1},    // unit segments, exactly one strip
      {2, 19, 512, 0},   // deep flat reduction (int64 path at full range)
      {1, 1, 1, 1},
  };
  std::uint64_t seed = 500;
  for (const auto& c : cases) {
    util::Rng rng(seed++);
    const bool deep = c.k >= 512;
    const auto a = random_levels(rng, c.m * c.k, deep ? -32767 : -7,
                                 deep ? 32767 : 7);
    const auto b = random_levels(rng, c.k * c.n, deep ? -32767 : 0,
                                 deep ? 32767 : 15);
    const auto want = run_scalar(c, a, b);
    for (const simd::KernelTier tier : simd::available_tiers()) {
      for (const std::size_t nc : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{3}}) {
        const KernelConfig cfg{tier, nc};
        expect_same(want, run_packed_cfg(c, a, b, cfg),
                    (std::string("tier=") + simd::tier_name(tier) +
                     " nc=" + std::to_string(nc))
                        .c_str());
      }
    }
  }
}

/// The CI tier-matrix leg reruns the suite under LIGHTATOR_FORCE_KERNEL;
/// tests that assert *un-forced* resolution mechanics skip there (the
/// override legitimately changes what a request resolves to).
bool env_tier_forced() {
  const char* v = std::getenv("LIGHTATOR_FORCE_KERNEL");
  return v != nullptr && *v != '\0';
}

TEST(GemmKernelLadder, RequestedTierResolvesDownNeverUp) {
  if (env_tier_forced()) {
    GTEST_SKIP() << "LIGHTATOR_FORCE_KERNEL overrides requested-tier "
                    "resolution";
  }
  // Asking for a tier the host lacks must silently run the best available
  // one below it — never crash, never change results. Requesting scalar on
  // a SIMD host must actually run scalar (resolve never climbs).
  const GemmCase c{5, 33, 27, 9};
  util::Rng rng(42);
  const auto a = random_levels(rng, c.m * c.k, -7, 7);
  const auto b = random_levels(rng, c.k * c.n, 0, 15);
  const auto want = run_scalar(c, a, b);
  // kVnni is the top request; legal everywhere, including scalar-only builds.
  expect_same(want, run_packed_cfg(c, a, b, {simd::KernelTier::kVnni, 0}),
              "request_top");
  EXPECT_EQ(simd::resolve_tier(simd::KernelTier::kScalar),
            simd::KernelTier::kScalar);
  expect_same(want, run_packed_cfg(c, a, b, {simd::KernelTier::kScalar, 0}),
              "request_scalar");
}

TEST(GemmKernelLadder, ForcedTierHookCapsDispatch) {
  if (env_tier_forced()) {
    GTEST_SKIP() << "releasing the hook would fall back to the env "
                    "override, not auto dispatch";
  }
  // The set_forced_tier test hook (the in-process face of
  // LIGHTATOR_FORCE_KERNEL) pins resolution for every request.
  for (const simd::KernelTier tier : simd::available_tiers()) {
    simd::set_forced_tier(tier);
    EXPECT_EQ(simd::resolve_tier(simd::KernelTier::kAuto), tier);
    EXPECT_EQ(simd::resolve_tier(simd::KernelTier::kVnni), tier);
    EXPECT_EQ(simd::resolve_tier(simd::KernelTier::kScalar), tier);
  }
  simd::set_forced_tier(simd::KernelTier::kAuto);  // release the hook
  EXPECT_EQ(simd::resolve_tier(simd::KernelTier::kScalar),
            simd::KernelTier::kScalar);
}

TEST(GemmKernelLadder, TierNamesRoundTrip) {
  for (const simd::KernelTier tier :
       {simd::KernelTier::kScalar, simd::KernelTier::kAvx2,
        simd::KernelTier::kAvx512, simd::KernelTier::kVnni,
        simd::KernelTier::kAuto}) {
    EXPECT_EQ(simd::parse_tier(simd::tier_name(tier)), tier);
  }
  EXPECT_EQ(simd::parse_tier("bogus"), simd::KernelTier::kAuto);
  EXPECT_EQ(simd::parse_tier(nullptr), simd::KernelTier::kAuto);
  // The ladder listing always starts at scalar and is ordered upward.
  const auto tiers = simd::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::KernelTier::kScalar);
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
}

TEST(GemmKernelLadder, RandomizedFuzzPerTier) {
  // The SIMD-vs-scalar fuzz, widened over the full ladder: random shapes,
  // random segment lengths, random strip blockings, occasional full-range
  // magnitudes for the int64 path — every available tier must agree with
  // the scalar kernel bit-for-bit.
  const auto tiers = simd::available_tiers();
  util::Rng rng(20260807);
  for (int iter = 0; iter < 40; ++iter) {
    GemmCase c;
    c.m = 1 + rng.uniform_index(16);
    c.n = 1 + rng.uniform_index(80);
    c.k = 1 + rng.uniform_index(160);
    c.segment = rng.uniform_index(3) == 0 ? 0 : 1 + rng.uniform_index(16);
    const bool wide = rng.uniform_index(8) == 0;
    const int wmax = wide ? 32767 : 7;
    const int amax = wide ? 32767 : 15;
    const auto a = random_levels(rng, c.m * c.k, -wmax, wmax);
    const auto b = random_levels(rng, c.k * c.n, wide ? -amax : 0, amax);
    const auto want = run_scalar(c, a, b);
    for (const simd::KernelTier tier : tiers) {
      const KernelConfig cfg{tier, rng.uniform_index(4)};
      expect_same(want, run_packed_cfg(c, a, b, cfg), "fuzz_tier");
    }
  }
}

}  // namespace
}  // namespace lightator::tensor
