// Integration tests: the full LightatorSystem — analyze() reports, the
// OC-routed inference path vs. the DNN substrate, the end-to-end Fig. 2
// acquisition pipeline, and the headline relative claims.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "workloads/scenes.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::core {
namespace {

LightatorSystem make_system() {
  return LightatorSystem(ArchConfig::defaults());
}

TEST(System, AnalyzeLenetProducesSevenLayerReports) {
  const LightatorSystem sys = make_system();
  const auto report =
      sys.analyze(nn::lenet_desc(), nn::PrecisionSchedule::uniform(4));
  EXPECT_EQ(report.layers.size(), 7u);
  EXPECT_EQ(report.precision, "[4:4]");
  EXPECT_GT(report.max_power, 0.0);
  EXPECT_GT(report.fps_batched, 0.0);
  EXPECT_GT(report.latency, 0.0);
}

TEST(System, Vgg9PowerLadderMatchesPaperWithin25Percent) {
  // Table 1: Lightator [4:4] 5.28 W, [3:4] 2.71 W, [2:4] 1.46 W.
  const LightatorSystem sys = make_system();
  const auto model = nn::vgg9_desc();
  const double p4 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(4)).max_power;
  const double p3 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(3)).max_power;
  const double p2 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(2)).max_power;
  EXPECT_NEAR(p4, 5.28, 5.28 * 0.25);
  EXPECT_NEAR(p3, 2.71, 2.71 * 0.25);
  EXPECT_NEAR(p2, 1.46, 1.46 * 0.30);
}

TEST(System, MixedPrecisionPowerBetweenUniforms) {
  const LightatorSystem sys = make_system();
  const auto model = nn::vgg9_desc();
  const double p4 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(4)).max_power;
  const double p3 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(3)).max_power;
  const double pmx =
      sys.analyze(model, nn::PrecisionSchedule::mixed(3)).max_power;
  // MX keeps L1 at 4 bits; max power cannot exceed [4:4] nor drop below [3:4].
  EXPECT_LE(pmx, p4 + 1e-9);
  EXPECT_GE(pmx, p3 - 1e-9);
}

TEST(System, KfpsPerWattImprovesWithLowerPrecision) {
  const LightatorSystem sys = make_system();
  const auto model = nn::vgg9_desc();
  const double k4 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(4)).kfps_per_watt;
  const double k3 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(3)).kfps_per_watt;
  const double k2 =
      sys.analyze(model, nn::PrecisionSchedule::uniform(2)).kfps_per_watt;
  EXPECT_GT(k3, k4);
  EXPECT_GT(k2, k3);
  // Paper: 61.61 / 117.65 / 188.24 KFPS/W — shape plus rough magnitude.
  EXPECT_GT(k4, 20.0);
  EXPECT_LT(k4, 250.0);
}

TEST(System, CaFrontEndReducesFirstLayerPower) {
  // Fig. 9: CA pre-compression (fused grayscale + 2x2 pool) cuts first-layer
  // power substantially (paper: 42.2%). Assert a 25-75% reduction including
  // the CA's own draw.
  const LightatorSystem sys = make_system();
  const auto schedule = nn::PrecisionSchedule::uniform(3);
  const auto plain = sys.analyze(nn::vgg9_desc(10, 1.0, 32, 32), schedule);
  AnalyzeOptions opts;
  opts.ca_frontend = CaOptions{2, true, 4};  // Eq. 1 fused gray + pool
  opts.ca_in_h = 32;
  opts.ca_in_w = 32;
  const auto compressed =
      sys.analyze(nn::vgg9_desc(10, 1.0, 16, 16, 1), schedule, opts);
  const double l1_plain = plain.layers[0].power.average.total();
  // compressed.layers[0] is the CA itself; L1 follows it.
  const double l1_compressed = compressed.layers[1].power.average.total() +
                               compressed.layers[0].power.average.total();
  const double reduction = 1.0 - l1_compressed / l1_plain;
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.75);
}

TEST(System, PoolLayersDrawOrdersOfMagnitudeLess) {
  const LightatorSystem sys = make_system();
  const auto report =
      sys.analyze(nn::lenet_desc(), nn::PrecisionSchedule::uniform(4));
  const double conv1 = report.layers[0].power.average.total();
  const double pool1 = report.layers[1].power.average.total();
  EXPECT_LT(pool1 * 10.0, conv1);
}

TEST(System, DacShareDominatesWeightedLayers) {
  const LightatorSystem sys = make_system();
  const auto report =
      sys.analyze(nn::vgg9_desc(), nn::PrecisionSchedule::uniform(3));
  // L8 (index 7): the saturating conv layer of Fig. 9's pie.
  const auto& l8 = report.layers[7];
  EXPECT_EQ(l8.mapping.kind, nn::LayerKind::kConv);
  EXPECT_GT(l8.power.streaming.dac / l8.power.streaming.total(), 0.8);
}

TEST(System, OcInferenceMatchesQatNetworkClosely) {
  // The OC functional path and the fake-quant network must agree on nearly
  // all predictions (they share quantization grids; only per-batch vs
  // calibrated activation scales differ).
  util::Rng rng(1);
  workloads::SynthMnistOptions opts;
  opts.samples = 300;
  nn::Dataset data = workloads::make_synth_mnist(opts);
  nn::Network net = nn::build_lenet(rng);
  nn::TrainParams tp;
  tp.epochs = 2;
  tp.batch_size = 25;
  nn::Trainer trainer(tp);
  trainer.fit(net, data);

  const LightatorSystem sys = make_system();
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  CompileOptions co;
  co.schedule = schedule;
  ExecutionContext ctx;
  const double acc_oc = sys.compile(net, co).evaluate(data, ctx, 50, 200);
  nn::enable_qat(net, schedule);
  nn::calibrate_activations(net, data);
  const double acc_qat = nn::Trainer::evaluate(net, data);
  EXPECT_NEAR(acc_oc, acc_qat, 0.12);
}

TEST(System, QuantizedAccuracyDegradesGracefully) {
  // The paper's accuracy ordering: [4:4] >= [3:4] >= [2:4] (within noise).
  util::Rng rng(2);
  workloads::SynthMnistOptions opts;
  opts.samples = 600;
  nn::Dataset data = workloads::make_synth_mnist(opts);
  nn::Network net = nn::build_lenet(rng);
  nn::TrainParams tp;
  tp.epochs = 3;
  tp.batch_size = 30;
  nn::Trainer(tp).fit(net, data);
  const LightatorSystem sys = make_system();
  ExecutionContext ctx;
  CompileOptions co4, co2;
  co4.schedule = nn::PrecisionSchedule::uniform(4);
  co2.schedule = nn::PrecisionSchedule::uniform(2);
  const double a4 = sys.compile(net, co4).evaluate(data, ctx, 50, 300);
  const double a2 = sys.compile(net, co2).evaluate(data, ctx, 50, 300);
  EXPECT_GE(a4 + 0.05, a2);  // lower precision never meaningfully better
  EXPECT_GT(a4, 0.5);        // the trained model actually works via the OC
}

TEST(System, AcquirePipelineShapes) {
  const LightatorSystem sys = make_system();
  const auto scene = workloads::make_gradient_scene(64, 64);
  const auto plain = sys.acquire(scene);
  EXPECT_EQ(plain.dim(1), 3u);
  EXPECT_EQ(plain.dim(2), 64u);
  const auto compressed = sys.acquire(scene, CaOptions{2, true, 4});
  EXPECT_EQ(compressed.dim(1), 1u);
  EXPECT_EQ(compressed.dim(2), 32u);
}

TEST(System, AcquireValuesTrackSceneBrightness) {
  const LightatorSystem sys = make_system();
  sensor::Image bright(16, 16, 3, 0.9f);
  sensor::Image dark(16, 16, 3, 0.1f);
  const auto tb = sys.acquire(bright);
  const auto td = sys.acquire(dark);
  EXPECT_GT(tb.sum(), td.sum());
  for (std::size_t i = 0; i < tb.size(); ++i) {
    EXPECT_GE(tb[i], 0.0f);
    EXPECT_LE(tb[i], 1.0f);
  }
}

TEST(System, LatencyRatiosVsElectronicInPaperDirection) {
  // Fig. 10 headline: Lightator is ~9-20x faster than the electronic
  // baselines on AlexNet. Assert direction and a generous band.
  const LightatorSystem sys = make_system();
  const auto report =
      sys.analyze(nn::alexnet_desc(), nn::PrecisionSchedule::uniform(4));
  EXPECT_GT(report.latency, 0.0);
  EXPECT_LT(report.latency, 20e-3);  // milliseconds-class
}

TEST(System, ReportFindLayer) {
  const LightatorSystem sys = make_system();
  const auto report =
      sys.analyze(nn::lenet_desc(), nn::PrecisionSchedule::uniform(4));
  EXPECT_NE(report.find_layer(report.layers[0].name), nullptr);
  EXPECT_EQ(report.find_layer("nonexistent"), nullptr);
}

TEST(System, EnergyConsistentWithPowerAndTime) {
  const LightatorSystem sys = make_system();
  const auto report =
      sys.analyze(nn::vgg9_desc(), nn::PrecisionSchedule::uniform(4));
  for (const auto& l : report.layers) {
    if (l.timing.latency == 0.0) continue;
    const double implied_power = l.power.energy / l.timing.latency;
    EXPECT_NEAR(implied_power, l.power.average.total(),
                l.power.average.total() * 0.05 + 1e-9)
        << l.name;
  }
}

}  // namespace
}  // namespace lightator::core
