#include "core/compressive_acquisitor.hpp"

#include <stdexcept>

#include "util/quant.hpp"

namespace lightator::core {

CompressiveAcquisitor::CompressiveAcquisitor(CaOptions options,
                                             const ArchConfig& config)
    : options_(options), config_(config) {
  if (options_.pool_factor == 0) {
    throw std::invalid_argument("CA pool factor must be >= 1");
  }
  if (options_.pool_factor == 1 && !options_.to_grayscale) {
    throw std::invalid_argument("CA with p=1 and no grayscale is a no-op");
  }
  mapped_ = mapped_weights();
}

std::size_t CompressiveAcquisitor::window_size() const {
  const std::size_t p2 = options_.pool_factor * options_.pool_factor;
  return options_.to_grayscale ? 3 * p2 : p2;
}

std::vector<double> CompressiveAcquisitor::ideal_weights() const {
  const std::size_t p2 = options_.pool_factor * options_.pool_factor;
  const double pool = 1.0 / static_cast<double>(p2);
  std::vector<double> w;
  w.reserve(window_size());
  for (std::size_t i = 0; i < p2; ++i) {
    if (options_.to_grayscale) {
      w.push_back(pool * sensor::kGrayR);
      w.push_back(pool * sensor::kGrayG);
      w.push_back(pool * sensor::kGrayB);
    } else {
      w.push_back(pool);
    }
  }
  return w;
}

std::vector<double> CompressiveAcquisitor::mapped_weights() const {
  // The CA coefficients share one scale so their ratios survive
  // quantization; scale = the largest coefficient.
  auto w = ideal_weights();
  double scale = 0.0;
  for (double v : w) scale = std::max(scale, v);
  if (scale <= 0.0) return w;
  const util::SymmetricQuantizer q{options_.weight_bits, scale};
  for (double& v : w) v = q.fake_quant(v);
  return w;
}

sensor::Image CompressiveAcquisitor::apply(const sensor::Image& rgb) const {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("CA expects an RGB input image");
  }
  const std::size_t p = options_.pool_factor;
  if (rgb.height() % p != 0 || rgb.width() % p != 0) {
    throw std::invalid_argument("CA pool factor must divide image dims");
  }
  const std::size_t oh = rgb.height() / p, ow = rgb.width() / p;
  const std::size_t out_c = options_.to_grayscale ? 1 : 3;
  sensor::Image out(oh, ow, out_c);
  for (std::size_t y = 0; y < oh; ++y) {
    for (std::size_t x = 0; x < ow; ++x) {
      if (options_.to_grayscale) {
        double acc = 0.0;
        std::size_t wi = 0;
        for (std::size_t dy = 0; dy < p; ++dy) {
          for (std::size_t dx = 0; dx < p; ++dx) {
            for (std::size_t c = 0; c < 3; ++c, ++wi) {
              acc += mapped_[wi] * rgb.at(y * p + dy, x * p + dx, c);
            }
          }
        }
        out.at(y, x) = static_cast<float>(acc);
      } else {
        for (std::size_t c = 0; c < 3; ++c) {
          double acc = 0.0;
          std::size_t wi = 0;
          for (std::size_t dy = 0; dy < p; ++dy) {
            for (std::size_t dx = 0; dx < p; ++dx, ++wi) {
              acc += mapped_[wi] * rgb.at(y * p + dy, x * p + dx, c);
            }
          }
          out.at(y, x, c) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

LayerMapping CompressiveAcquisitor::mapping(std::size_t in_h,
                                            std::size_t in_w) const {
  const std::size_t p = options_.pool_factor;
  if (in_h % p != 0 || in_w % p != 0) {
    throw std::invalid_argument("CA pool factor must divide input dims");
  }
  const std::size_t outputs =
      (options_.to_grayscale ? 1 : 3) * (in_h / p) * (in_w / p);
  const Mapper mapper(config_);
  return mapper.map_ca_window(window_size(), outputs, "compressive_acquisitor",
                              nn::LayerKind::kAvgPool);
}

}  // namespace lightator::core
