// SLO-scheduler suite: EDF + class-priority dispatch vs the FIFO baseline,
// typed deadline expiry (never occupying a batch slot), per-class shed order
// under synthetic overload, autoscaler hysteresis (no flapping under an
// oscillating signal — replayed on an injected tick sequence), registry
// eviction/refcounting, open-loop schedule determinism, and the serving
// determinism contract with the scheduler live: every ADMITTED request's
// output stays bit-identical to the serial batch-of-1 baseline across
// scheduling policies, replica counts, and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "serve/batch_queue.hpp"
#include "serve/load_gen.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/sched/sched.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace lightator::serve {
namespace {

using sched::ManualClock;
using sched::RequestClass;

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

std::vector<tensor::Tensor> make_inputs(std::size_t count, std::uint64_t seed) {
  std::vector<tensor::Tensor> inputs;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    tensor::Tensor x({1, 1, 28, 28});
    x.fill_uniform(rng, 0.0f, 1.0f);
    inputs.push_back(std::move(x));
  }
  return inputs;
}

/// Serial batch-of-1 baseline for the closed loop's seeded input stream.
std::vector<tensor::Tensor> serial_baseline(
    const core::LightatorSystem& sys, const nn::Network& net,
    const std::vector<tensor::Tensor>& inputs, const LoadGenOptions& lg) {
  util::Rng pick(lg.seed);
  const core::CompiledModel compiled = sys.compile(net, {});
  core::ExecutionContext ctx;
  util::ThreadPool pool(1);
  ctx.pool = &pool;
  std::vector<tensor::Tensor> out(lg.requests);
  for (std::size_t i = 0; i < lg.requests; ++i) {
    const auto& x = inputs[pick.uniform_index(inputs.size())];
    out[i] = compiled.run(x, ctx).take();
  }
  return out;
}

PendingRequest make_request(RequestClass klass, double deadline_ms,
                            const ManualClock& clock, std::uint64_t id,
                            std::size_t h = 4) {
  PendingRequest req;
  req.input = tensor::Tensor({1, 1, h, h}, static_cast<float>(id));
  req.key = GeometryKey{1, h, h};
  req.request_id = id;
  req.klass = klass;
  req.enqueued = clock.now();
  if (deadline_ms > 0.0) {
    req.deadline =
        clock.now() + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              deadline_ms));
  }
  return req;
}

// ---------------------------------------------------------------- queue ---

TEST(SchedQueue, ClassPriorityOrdersDispatch) {
  ManualClock clock;
  sched::SchedPolicy policy;
  policy.max_batch = 1;           // one request per lease: exposes rank order
  policy.base_max_wait_us = 0.0;  // never coalesce-wait
  BatchQueue queue(32, policy, &clock);
  ASSERT_EQ(queue.push(make_request(RequestClass::kBestEffort, 0, clock, 0)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 0, clock, 1)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kCritical, 0, clock, 2)),
            SubmitStatus::kAccepted);

  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 2u);  // critical
  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 1u);  // standard
  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 0u);  // best-effort
}

TEST(SchedQueue, EarliestDeadlineFirstWithinClass) {
  ManualClock clock;
  sched::SchedPolicy policy;
  policy.max_batch = 1;
  policy.base_max_wait_us = 0.0;
  BatchQueue queue(32, policy, &clock);
  // Same class, deadlines out of arrival order; a deadline-free straggler.
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 30, clock, 0)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 10, clock, 1)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 20, clock, 2)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 0, clock, 3)),
            SubmitStatus::kAccepted);

  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 1u);  // 10ms
  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 2u);  // 20ms
  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 0u);  // 30ms
  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 3u);  // no deadline
}

TEST(SchedQueue, DegeneratesToFifoWhenUnconfigured) {
  // All-standard, deadline-free: dispatch must be pure arrival order — the
  // scheduler is invisible to pre-sched callers.
  ManualClock clock;
  sched::SchedPolicy policy;
  policy.max_batch = 1;
  policy.base_max_wait_us = 0.0;
  BatchQueue queue(32, policy, &clock);
  for (std::uint64_t id = 0; id < 5; ++id) {
    ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 0, clock, id)),
              SubmitStatus::kAccepted);
  }
  for (std::uint64_t id = 0; id < 5; ++id) {
    EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, id);
  }
}

TEST(SchedQueue, ExpiredRequestsNeverOccupyBatchSlots) {
  ManualClock clock;
  sched::SchedPolicy policy;
  policy.max_batch = 8;
  policy.base_max_wait_us = 0.0;
  BatchQueue queue(32, policy, &clock);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 5, clock, 0)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 0, clock, 1)),
            SubmitStatus::kAccepted);
  clock.advance_us(10'000);  // past request 0's 5ms deadline

  // The first lease surfaces the expired request alone — it must not ride
  // in (or delay) a batch.
  BatchLease lease = queue.pop_batch();
  ASSERT_EQ(lease.expired.size(), 1u);
  EXPECT_EQ(lease.expired[0].request_id, 0u);
  EXPECT_TRUE(lease.batch.empty());

  lease = queue.pop_batch();
  ASSERT_EQ(lease.batch.size(), 1u);
  EXPECT_EQ(lease.batch[0].request_id, 1u);
  EXPECT_TRUE(lease.expired.empty());
}

TEST(SchedQueue, CoalescingWindowIsPerClass) {
  // Critical runs a zero window (dispatch immediately); standard inherits a
  // long base window. A lone critical head must dispatch without the clock
  // moving; a lone standard head must NOT dispatch until the window passes.
  ManualClock clock;
  sched::SchedPolicy policy;
  policy.max_batch = 8;
  policy.base_max_wait_us = 50'000.0;  // 50ms base window
  policy.classes[sched::class_index(RequestClass::kCritical)].max_wait_us =
      0.0;
  BatchQueue queue(32, policy, &clock);

  ASSERT_EQ(queue.push(make_request(RequestClass::kCritical, 0, clock, 7)),
            SubmitStatus::kAccepted);
  // Dispatches with time frozen: the critical window is zero.
  EXPECT_EQ(queue.pop_batch().batch.at(0).request_id, 7u);

  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 0, clock, 8)),
            SubmitStatus::kAccepted);
  ASSERT_EQ(queue.push(make_request(RequestClass::kStandard, 0, clock, 9)),
            SubmitStatus::kAccepted);
  clock.advance_us(60'000);  // both now past the standard window
  BatchLease lease = queue.pop_batch();
  ASSERT_EQ(lease.batch.size(), 2u);  // coalesced while the window ran
}

// ------------------------------------------------------------ admission ---

TEST(Admission, ShedsStrictlyInClassOrder) {
  sched::AdmissionOptions opts;
  opts.shed_depth = {0.25, 0.5, 1.0};
  sched::AdmissionController ctrl(opts, /*queue_capacity=*/16);
  sched::LoadEstimator cold;

  // Depth limits: best-effort 4, standard 8, critical disabled.
  auto admit = [&](RequestClass k, std::size_t depth) {
    return ctrl.admit(k, /*deadline_ms=*/0.0, depth, cold,
                      /*active_replicas=*/1);
  };
  EXPECT_TRUE(admit(RequestClass::kBestEffort, 3));
  EXPECT_FALSE(admit(RequestClass::kBestEffort, 4));
  EXPECT_TRUE(admit(RequestClass::kStandard, 7));
  EXPECT_FALSE(admit(RequestClass::kStandard, 8));
  EXPECT_TRUE(admit(RequestClass::kCritical, 15));  // only queue-full stops it

  // At every depth, an admitted class implies every higher class admits too.
  for (std::size_t depth = 0; depth < 16; ++depth) {
    if (admit(RequestClass::kBestEffort, depth)) {
      EXPECT_TRUE(admit(RequestClass::kStandard, depth)) << depth;
    }
    if (admit(RequestClass::kStandard, depth)) {
      EXPECT_TRUE(admit(RequestClass::kCritical, depth)) << depth;
    }
  }
}

TEST(Admission, InertDefaultsNeverShedOnDepth) {
  sched::AdmissionController ctrl(sched::AdmissionOptions{},
                                  /*queue_capacity=*/8);
  sched::LoadEstimator cold;
  for (std::size_t depth = 0; depth < 8; ++depth) {
    EXPECT_TRUE(ctrl.admit(RequestClass::kBestEffort, 0.0, depth, cold, 1));
  }
  // A cold estimator must never shed a deadline request on a guess.
  EXPECT_TRUE(ctrl.admit(RequestClass::kStandard, 0.001, 7, cold, 1));
}

TEST(Admission, DeadlineGateFailsFastWhenCompletionCannotMakeIt) {
  sched::AdmissionController ctrl(sched::AdmissionOptions{},
                                  /*queue_capacity=*/64);
  sched::LoadEstimator est;
  est.observe_batch(/*queue_ms=*/5.0, /*service_ms_per_request=*/2.0);

  // depth 10, 1 replica: expected = (10/1 + 1) * 2 = 22ms.
  EXPECT_FALSE(ctrl.admit(RequestClass::kStandard, /*deadline_ms=*/10.0, 10,
                          est, 1));
  EXPECT_TRUE(ctrl.admit(RequestClass::kStandard, /*deadline_ms=*/30.0, 10,
                         est, 1));
  // More active replicas drain faster: (10/4 + 1) * 2 = 7ms < 10ms.
  EXPECT_TRUE(ctrl.admit(RequestClass::kStandard, /*deadline_ms=*/10.0, 10,
                         est, 4));
  // No deadline = the gate never applies.
  EXPECT_TRUE(ctrl.admit(RequestClass::kBestEffort, 0.0, 10, est, 1));
}

// ----------------------------------------------------------- autoscaler ---

TEST(Autoscaler, OscillatingSignalNeverFlaps) {
  sched::AutoscalerOptions opts;
  opts.enabled = true;
  opts.min_replicas = 1;
  opts.max_replicas = 4;
  opts.scale_up_queue_ms = 5.0;
  opts.scale_down_queue_ms = 0.5;
  opts.up_ticks = 2;
  opts.down_ticks = 3;
  sched::ReplicaAutoscaler scaler(opts, /*initial=*/2);

  // Alternating above/below the band: every tick resets the other streak,
  // so neither ever reaches its threshold.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(scaler.decide(i % 2 == 0 ? 8.0 : 0.1), 2u) << "tick " << i;
  }
  EXPECT_EQ(scaler.scale_ups(), 0u);
  EXPECT_EQ(scaler.scale_downs(), 0u);

  // Signal inside the dead band also resets a building streak.
  scaler.decide(8.0);   // above x1
  scaler.decide(2.0);   // dead band: streak gone
  EXPECT_EQ(scaler.decide(8.0), 2u);  // above x1 again — still no scale
}

TEST(Autoscaler, SustainedLoadScalesWithHysteresisAndBounds) {
  sched::AutoscalerOptions opts;
  opts.enabled = true;
  opts.min_replicas = 1;
  opts.max_replicas = 3;
  opts.scale_up_queue_ms = 5.0;
  opts.scale_down_queue_ms = 0.5;
  opts.up_ticks = 2;
  opts.down_ticks = 3;
  sched::ReplicaAutoscaler scaler(opts, /*initial=*/1);

  EXPECT_EQ(scaler.decide(9.0), 1u);  // above x1
  EXPECT_EQ(scaler.decide(9.0), 2u);  // above x2 -> up
  EXPECT_EQ(scaler.decide(9.0), 2u);  // streak reset on action
  EXPECT_EQ(scaler.decide(9.0), 3u);  // up again
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scaler.decide(9.0), 3u);  // clamped at max
  }
  EXPECT_EQ(scaler.scale_ups(), 2u);

  EXPECT_EQ(scaler.decide(0.0), 3u);  // below x1
  EXPECT_EQ(scaler.decide(0.0), 3u);  // below x2
  EXPECT_EQ(scaler.decide(0.0), 2u);  // below x3 -> down
  EXPECT_EQ(scaler.decide(0.0), 2u);
  EXPECT_EQ(scaler.decide(0.0), 2u);
  EXPECT_EQ(scaler.decide(0.0), 1u);  // down again
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scaler.decide(0.0), 1u);  // clamped at min
  }
  EXPECT_EQ(scaler.scale_downs(), 2u);
}

// --------------------------------------------------------------- server ---

TEST(SchedServer, ExpiredRequestCompletesWithTypedStatus) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(31);
  const nn::Network net = nn::build_lenet(rng);
  ManualClock clock;
  ServerOptions so;
  so.replicas = 1;
  so.sched.clock = &clock;
  InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4), so);

  tensor::Tensor x({1, 1, 28, 28}, 0.5f);
  SubmitTicket ticket =
      server.submit(x, 42, sched::SubmitOptions{RequestClass::kStandard,
                                                /*deadline_ms=*/5.0});
  ASSERT_EQ(ticket.status, SubmitStatus::kAccepted);
  clock.advance_us(10'000);  // deadline passes while queued

  InferResult result = ticket.result.get();
  EXPECT_EQ(result.status, InferStatus::kDeadlineExceeded);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.request_id, 42u);
  EXPECT_EQ(result.batch_size, 0u);  // never occupied a batch slot

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.by_class[sched::class_index(RequestClass::kStandard)]
                .expired,
            1u);
  server.shutdown();
}

TEST(SchedServer, RequestServedWhenDeadlineHolds) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(31);
  const nn::Network net = nn::build_lenet(rng);
  ManualClock clock;
  ServerOptions so;
  so.replicas = 1;
  so.batch.max_wait_us = 0.0;  // dispatch immediately, no window to step
  so.sched.clock = &clock;
  InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4), so);

  tensor::Tensor x({1, 1, 28, 28}, 0.5f);
  SubmitTicket ticket = server.submit(
      x, 7, sched::SubmitOptions{RequestClass::kCritical,
                                 /*deadline_ms=*/1000.0});
  ASSERT_EQ(ticket.status, SubmitStatus::kAccepted);
  InferResult result = ticket.result.get();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.batch_size, 1u);

  const ServerStats stats = server.stats();
  const auto& crit =
      stats.by_class[sched::class_index(RequestClass::kCritical)];
  EXPECT_EQ(crit.deadline_met, 1u);
  EXPECT_EQ(crit.deadline_missed, 0u);
  EXPECT_DOUBLE_EQ(crit.deadline_hit_rate(), 1.0);
  server.shutdown();
}

TEST(SchedServer, ShedSurfacesAsTypedSubmitStatus) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(31);
  const nn::Network net = nn::build_lenet(rng);
  ManualClock clock;  // frozen: queued requests never dispatch, depth holds
  ServerOptions so;
  so.replicas = 1;
  so.queue_capacity = 8;
  so.sched.clock = &clock;
  so.sched.admission.shed_depth = {0.25, 0.5, 1.0};  // BE limit 2, STD 4
  InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4), so);

  tensor::Tensor x({1, 1, 28, 28}, 0.5f);
  auto submit_as = [&](RequestClass k) {
    return server
        .submit(x, sched::SubmitOptions{k, /*deadline_ms=*/0.0})
        .status;
  };
  // Fill to depth 2 with best-effort, then the class limits bite in order.
  EXPECT_EQ(submit_as(RequestClass::kBestEffort), SubmitStatus::kAccepted);
  EXPECT_EQ(submit_as(RequestClass::kBestEffort), SubmitStatus::kAccepted);
  EXPECT_EQ(submit_as(RequestClass::kBestEffort), SubmitStatus::kShed);
  EXPECT_EQ(submit_as(RequestClass::kStandard), SubmitStatus::kAccepted);
  EXPECT_EQ(submit_as(RequestClass::kStandard), SubmitStatus::kAccepted);
  EXPECT_EQ(submit_as(RequestClass::kStandard), SubmitStatus::kShed);
  EXPECT_EQ(submit_as(RequestClass::kCritical), SubmitStatus::kAccepted);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(
      stats.by_class[sched::class_index(RequestClass::kBestEffort)].shed, 1u);
  EXPECT_EQ(stats.by_class[sched::class_index(RequestClass::kStandard)].shed,
            1u);
  EXPECT_EQ(stats.by_class[sched::class_index(RequestClass::kCritical)].shed,
            0u);
  // Unfreeze the queue so shutdown can drain the admitted requests.
  clock.advance_us(1'000'000);
  server.shutdown();
}

TEST(SchedServer, SetActiveReplicasMovesWithinWarmPool) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(31);
  const nn::Network net = nn::build_lenet(rng);
  ServerOptions so;
  so.replicas = 3;
  InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4), so);
  EXPECT_EQ(server.replica_count(), 3u);
  EXPECT_EQ(server.active_replicas(), 3u);

  server.set_active_replicas(1);
  EXPECT_EQ(server.active_replicas(), 1u);
  // Still serving on the reduced set.
  tensor::Tensor x({1, 1, 28, 28}, 0.25f);
  EXPECT_TRUE(server.infer(x).ok());

  server.set_active_replicas(99);  // clamped to the warm pool
  EXPECT_EQ(server.active_replicas(), 3u);
  EXPECT_TRUE(server.infer(x).ok());
  server.shutdown();
}

// ----------------------------------------------------- determinism (SLO) ---

TEST(SchedServer, AdmittedOutputsBitExactAcrossPoliciesAndReplicas) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(61);
  const nn::Network net = nn::build_lenet(rng);
  const auto inputs = make_inputs(6, 17);
  LoadGenOptions lg;
  lg.requests = 24;
  lg.concurrency = 8;
  lg.seed = 5;
  // Mixed classes, no deadlines: EDF + priority reorder dispatch, but every
  // request is admitted and must still match the serial baseline bit-for-bit.
  lg.classes = {{RequestClass::kBestEffort, 0.3, 0.0},
                {RequestClass::kStandard, 0.5, 0.0},
                {RequestClass::kCritical, 0.2, 0.0}};
  const auto expected = serial_baseline(sys, net, inputs, lg);

  struct Config {
    std::size_t replicas, threads;
    double wait_us;
  };
  for (const Config& cfg :
       {Config{1, 1, 0.0}, Config{2, 2, 200.0}, Config{4, 1, 1000.0}}) {
    ServerOptions so;
    so.replicas = cfg.replicas;
    so.threads_per_replica = cfg.threads;
    so.batch.max_wait_us = cfg.wait_us;
    // Per-class windows differ too — scheduling must never leak into math.
    so.sched.classes[sched::class_index(RequestClass::kCritical)]
        .max_wait_us = 0.0;
    InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4), so);
    const LoadGenReport report = run_closed_loop(server, inputs, lg);
    server.shutdown();
    EXPECT_EQ(report.shed, 0u);
    EXPECT_EQ(report.expired, 0u);
    for (std::size_t i = 0; i < lg.requests; ++i) {
      expect_bit_exact(report.outputs[i], expected[i],
                       "request " + std::to_string(i) + " @replicas=" +
                           std::to_string(cfg.replicas));
    }
  }
}

TEST(SchedServer, AdmittedOutputsBitExactWithAutoscalerLive) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(61);
  const nn::Network net = nn::build_lenet(rng);
  const auto inputs = make_inputs(6, 17);
  LoadGenOptions lg;
  lg.requests = 32;
  lg.concurrency = 16;
  lg.seed = 9;
  const auto expected = serial_baseline(sys, net, inputs, lg);

  ServerOptions so;
  so.replicas = 1;
  so.sched.autoscale.enabled = true;
  so.sched.autoscale.min_replicas = 1;
  so.sched.autoscale.max_replicas = 4;
  so.sched.autoscale.interval_ms = 1.0;  // many scale decisions mid-load
  so.sched.autoscale.scale_up_queue_ms = 0.01;
  so.sched.autoscale.up_ticks = 1;
  InferenceServer server(sys, net, nn::PrecisionSchedule::uniform(4), so);
  EXPECT_EQ(server.replica_count(), 4u);  // warm pool at the ceiling
  const LoadGenReport report = run_closed_loop(server, inputs, lg);
  server.shutdown();
  for (std::size_t i = 0; i < lg.requests; ++i) {
    expect_bit_exact(report.outputs[i], expected[i],
                     "autoscaled request " + std::to_string(i));
  }
}

// ------------------------------------------------------------- open loop ---

TEST(OpenLoop, ScheduleIsAPureFunctionOfOptions) {
  OpenLoopOptions opts;
  opts.requests = 200;
  opts.rate_rps = 5000.0;
  opts.seed = 11;
  opts.shape = TrafficShape::kPoisson;
  opts.classes = {{RequestClass::kBestEffort, 0.5, 0.0},
                  {RequestClass::kCritical, 0.5, 20.0}};
  const auto a = make_arrival_schedule(opts, 6);
  const auto b = make_arrival_schedule(opts, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_seconds, b[i].at_seconds) << i;
    EXPECT_EQ(a[i].input_index, b[i].input_index) << i;
    EXPECT_EQ(a[i].klass, b[i].klass) << i;
    EXPECT_EQ(a[i].deadline_ms, b[i].deadline_ms) << i;
  }
  // Arrival times strictly increase; the mean rate lands near the target.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].at_seconds, a[i - 1].at_seconds);
  }
  const double measured_rate =
      static_cast<double>(a.size()) / a.back().at_seconds;
  EXPECT_GT(measured_rate, opts.rate_rps * 0.7);
  EXPECT_LT(measured_rate, opts.rate_rps * 1.4);

  // A different seed is a different schedule.
  opts.seed = 12;
  const auto c = make_arrival_schedule(opts, 6);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].at_seconds != c[i].at_seconds;
  }
  EXPECT_TRUE(any_diff);
}

TEST(OpenLoop, BurstShapePacksArrivalsIntoBurstWindows) {
  OpenLoopOptions opts;
  opts.requests = 2000;
  opts.rate_rps = 10000.0;
  opts.seed = 3;
  opts.shape = TrafficShape::kBurst;
  opts.burst_factor = 8.0;
  opts.burst_period_seconds = 0.05;
  opts.burst_duty = 0.25;
  const auto schedule = make_arrival_schedule(opts, 4);
  std::size_t in_burst = 0;
  for (const Arrival& a : schedule) {
    const double phase = std::fmod(a.at_seconds, opts.burst_period_seconds);
    if (phase < opts.burst_duty * opts.burst_period_seconds) ++in_burst;
  }
  // 25% of the time carries burst_factor x the rate: arrivals concentrate
  // there (2/3 < expected 8/(8*0.25+0.75) * 0.25 ≈ 0.727 share).
  EXPECT_GT(static_cast<double>(in_burst) /
                static_cast<double>(schedule.size()),
            0.5);
}

TEST(OpenLoop, ClassSharesAreHonored) {
  OpenLoopOptions opts;
  opts.requests = 4000;
  opts.rate_rps = 1000.0;
  opts.seed = 21;
  opts.classes = {{RequestClass::kBestEffort, 0.25, 0.0},
                  {RequestClass::kStandard, 0.5, 0.0},
                  {RequestClass::kCritical, 0.25, 10.0}};
  const auto schedule = make_arrival_schedule(opts, 4);
  std::array<std::size_t, sched::kNumClasses> counts{};
  for (const Arrival& a : schedule) ++counts[sched::class_index(a.klass)];
  const double n = static_cast<double>(schedule.size());
  EXPECT_NEAR(counts[0] / n, 0.25, 0.05);
  EXPECT_NEAR(counts[1] / n, 0.5, 0.05);
  EXPECT_NEAR(counts[2] / n, 0.25, 0.05);
  // Deadlines ride the class mix.
  for (const Arrival& a : schedule) {
    if (a.klass == RequestClass::kCritical) {
      EXPECT_EQ(a.deadline_ms, 10.0);
    } else {
      EXPECT_EQ(a.deadline_ms, 0.0);
    }
  }
}

// -------------------------------------------------------------- registry ---

core::CompiledModel compile_lenet(const core::LightatorSystem& sys,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  const nn::Network net = nn::build_lenet(rng);
  return sys.compile(net, {});
}

TEST(RegistryEviction, ByteBudgetEvictsLruUnpinnedOnly) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  ModelRegistry registry;
  core::CompiledModel m1 = compile_lenet(sys, 1);
  const std::size_t model_bytes = m1.resident_bytes();
  ASSERT_GT(model_bytes, 0u);

  registry.add("m", "v1", std::move(m1));
  registry.add("m", "v2", compile_lenet(sys, 2));
  EXPECT_EQ(registry.resident_bytes(), 2 * model_bytes);

  // Budget for two models; v1 is the LRU... but pinned, so v2 must go when
  // v3 arrives.
  registry.set_byte_budget(2 * model_bytes);
  registry.pin("m@v1");
  registry.add("m", "v3", compile_lenet(sys, 3));
  EXPECT_TRUE(registry.contains("m@v1"));   // pinned: survives despite LRU
  EXPECT_FALSE(registry.contains("m@v2"));  // evicted
  EXPECT_TRUE(registry.contains("m@v3"));   // the newcomer is never a victim
  EXPECT_EQ(registry.evictions(), 1u);
  EXPECT_EQ(registry.resident_bytes(), 2 * model_bytes);

  // get() refreshes recency: touch v1... it's pinned anyway; unpin it, touch
  // v3, then v1 is the LRU unpinned entry and a shrunk budget evicts it.
  registry.unpin("m@v1");
  (void)registry.get("m@v3");
  registry.set_byte_budget(model_bytes);
  EXPECT_FALSE(registry.contains("m@v1"));
  EXPECT_TRUE(registry.contains("m@v3"));
  EXPECT_EQ(registry.evictions(), 2u);
}

TEST(RegistryEviction, PinBlocksUnloadAndUnpinRestoresIt) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  ModelRegistry registry;
  registry.add("m", "v1", compile_lenet(sys, 1));
  registry.pin("m@v1");
  EXPECT_EQ(registry.pin_count("m@v1"), 1u);
  EXPECT_THROW(registry.unload("m@v1"), std::logic_error);
  registry.unpin("m@v1");
  EXPECT_EQ(registry.pin_count("m@v1"), 0u);
  EXPECT_THROW(registry.unpin("m@v1"), std::logic_error);  // not pinned
  registry.unload("m@v1");
  EXPECT_FALSE(registry.contains("m@v1"));
  EXPECT_THROW(registry.pin("nope"), std::out_of_range);
}

TEST(RegistryEviction, RouterPinsLiveRoutesAcrossSwapAndUndeploy) {
  const core::LightatorSystem sys(core::ArchConfig::defaults());
  InferenceRouter router;
  ServerOptions so;
  so.replicas = 1;
  router.deploy("m", "v1", compile_lenet(sys, 1), so);
  EXPECT_EQ(router.registry().pin_count("m@v1"), 1u);

  // The deployed version survives any budget; only undeployed versions are
  // evictable.
  const std::size_t model_bytes = router.registry().resident_bytes();
  router.registry().set_byte_budget(model_bytes);
  EXPECT_TRUE(router.registry().contains("m@v1"));

  router.swap("m", "v2", compile_lenet(sys, 2));
  EXPECT_EQ(router.registry().pin_count("m@v2"), 1u);
  // v1 lost its pin; with the one-model budget the swap evicted it.
  EXPECT_FALSE(router.registry().contains("m@v1"));

  router.undeploy("m");
  // Undeploy unpins but does NOT unload: v2 stays addressable.
  EXPECT_TRUE(router.registry().contains("m@v2"));
  EXPECT_EQ(router.registry().pin_count("m@v2"), 0u);
}

}  // namespace
}  // namespace lightator::serve
