#include "serve/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/artifact/artifact.hpp"

namespace lightator::serve {

namespace {

/// Splits "name@version" at the first '@'; a bare name leaves version empty.
std::pair<std::string, std::string> split_ref(const std::string& ref) {
  const std::size_t at = ref.find('@');
  if (at == std::string::npos) return {ref, ""};
  return {ref.substr(0, at), ref.substr(at + 1)};
}

}  // namespace

void ModelRegistry::add(const std::string& name, const std::string& version,
                        core::CompiledModel model) {
  if (name.empty() || version.empty()) {
    throw std::invalid_argument(
        "ModelRegistry::add: name and version must be non-empty");
  }
  if (name.find('@') != std::string::npos ||
      version.find('@') != std::string::npos) {
    throw std::invalid_argument(
        "ModelRegistry::add: '@' separates name from version and cannot "
        "appear in either");
  }
  if (!model.valid()) {
    throw std::invalid_argument(
        "ModelRegistry::add: invalid CompiledModel handle");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.name == name && e.version == version) {
      throw std::invalid_argument("ModelRegistry::add: " + name + "@" +
                                  version +
                                  " is already registered (versions are "
                                  "immutable — publish a new version)");
    }
  }
  entries_.push_back({name, version, std::move(model)});
}

core::CompiledModel ModelRegistry::load(const std::string& name,
                                        const std::string& version,
                                        const std::string& path,
                                        const core::LightatorSystem& system) {
  core::CompiledModel model = core::load_artifact(path, system);
  add(name, version, model);
  return model;
}

std::size_t ModelRegistry::find_locked(const std::string& ref) const {
  const auto [name, version] = split_ref(ref);
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].name != name) continue;
    if (version.empty() || entries_[i].version == version) return i;
  }
  return static_cast<std::size_t>(-1);
}

void ModelRegistry::throw_unknown_locked(const std::string& ref) const {
  std::ostringstream msg;
  msg << "ModelRegistry: unknown model ref \"" << ref << "\" (registered:";
  if (entries_.empty()) {
    msg << " none";
  } else {
    for (const Entry& e : entries_) msg << " " << e.name << "@" << e.version;
  }
  msg << ")";
  throw std::out_of_range(msg.str());
}

core::CompiledModel ModelRegistry::get(const std::string& ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t i = find_locked(ref);
  if (i == static_cast<std::size_t>(-1)) throw_unknown_locked(ref);
  return entries_[i].model;
}

std::string ModelRegistry::resolve_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t i = find_locked(name);
  if (i == static_cast<std::size_t>(-1)) throw_unknown_locked(name);
  return entries_[i].version;
}

bool ModelRegistry::contains(const std::string& ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(ref) != static_cast<std::size_t>(-1);
}

void ModelRegistry::unload(const std::string& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t i = find_locked(ref);
  if (i == static_cast<std::size_t>(-1)) throw_unknown_locked(ref);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
}

std::vector<std::string> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name + "@" + e.version);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace lightator::serve
