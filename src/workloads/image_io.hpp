// Binary PPM (P6) / PGM (P5) image I/O so examples can dump frames that any
// image viewer opens. 8-bit depth; values clamped from the [0,1] float range.
#pragma once

#include <string>

#include "sensor/image.hpp"

namespace lightator::workloads {

/// Writes a 3-channel image as P6 or a 1-channel image as P5. Throws on I/O
/// failure or unsupported channel count.
void write_pnm(const sensor::Image& image, const std::string& path);

/// Reads a P5/P6 file back into a float image in [0, 1].
sensor::Image read_pnm(const std::string& path);

}  // namespace lightator::workloads
