// Photodetectors: single-ended PD and the balanced pair (BPD) that closes
// each OC arm, plus the physical noise sources (shot, thermal/TIA, RIN).
//
// The BPD subtracts the positive- and negative-rail photocurrents, which both
// performs the signed accumulation of the differential weight cells and
// cancels their common-mode extinction floor. A transimpedance stage converts
// the net current to a voltage for the output ADC.
#pragma once

#include "optics/optical_signal.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lightator::optics {

struct PhotodetectorParams {
  double responsivity = 1.0;                  // A/W
  double dark_current = 10e-9;                // A
  double bandwidth = 50 * units::kGHz;        // detection bandwidth
  double tia_feedback_ohms = 5e3;             // TIA feedback resistor
  double static_power = 0.8 * units::kMW;     // PD bias + TIA per arm
  double rin_db_per_hz = -140.0;              // laser relative intensity noise
};

class BalancedPhotodetector {
 public:
  explicit BalancedPhotodetector(PhotodetectorParams params);

  /// Net photocurrent (A): R * (sum P_pos - sum P_neg), noiseless.
  double net_current(const OpticalSignal& positive_rail,
                     const OpticalSignal& negative_rail) const;

  /// Net photocurrent with physical noise sampled from `rng`:
  /// shot noise on the *total* detected power of each diode, thermal noise of
  /// the TIA, and RIN proportional to received power.
  double net_current_noisy(const OpticalSignal& positive_rail,
                           const OpticalSignal& negative_rail,
                           util::Rng& rng) const;

  /// RMS input-referred noise current (A) for a given total detected power.
  /// Exposed so tests can verify the sampled noise statistics.
  double noise_sigma(double total_detected_power) const;

  /// TIA output voltage for a given net current.
  double tia_output(double net_current) const {
    return net_current * params_.tia_feedback_ohms;
  }

  double static_power() const { return params_.static_power; }
  const PhotodetectorParams& params() const { return params_; }

 private:
  PhotodetectorParams params_;
};

}  // namespace lightator::optics
