// Physical constants and unit-conversion helpers.
//
// All simulator-internal quantities are SI doubles (seconds, watts, meters,
// amps). These named constants make intent explicit at construction sites,
// e.g. `fwhm = 0.4 * units::kNm`.
#pragma once

namespace lightator::units {

// Lengths (meters).
inline constexpr double kNm = 1e-9;
inline constexpr double kUm = 1e-6;
inline constexpr double kMm = 1e-3;

// Times (seconds).
inline constexpr double kNs = 1e-9;
inline constexpr double kUs = 1e-6;
inline constexpr double kMs = 1e-3;
inline constexpr double kPs = 1e-12;

// Frequencies (hertz).
inline constexpr double kKHz = 1e3;
inline constexpr double kMHz = 1e6;
inline constexpr double kGHz = 1e9;

// Powers (watts).
inline constexpr double kNW = 1e-9;
inline constexpr double kUW = 1e-6;
inline constexpr double kMW = 1e-3;

// Currents (amps).
inline constexpr double kUA = 1e-6;
inline constexpr double kMA = 1e-3;

// Energies (joules).
inline constexpr double kPJ = 1e-12;
inline constexpr double kFJ = 1e-15;
inline constexpr double kNJ = 1e-9;

// Physics.
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kBoltzmann = 1.380649e-23;          // J/K
inline constexpr double kPlanck = 6.62607015e-34;           // J s
inline constexpr double kSpeedOfLight = 2.99792458e8;       // m/s
inline constexpr double kRoomTemperature = 300.0;           // K

/// Converts decibels of loss to a linear transmission factor (<= 1).
inline constexpr double db_loss_to_linear(double db) {
  // 10^(-db/10) without <cmath> so it stays constexpr-friendly in C++20:
  // callers use it with runtime values; for those we fall back to a small
  // series-free implementation via __builtin_pow at runtime.
  return __builtin_pow(10.0, -db / 10.0);
}

/// Photon energy (J) at vacuum wavelength `lambda_m` (meters).
inline constexpr double photon_energy(double lambda_m) {
  return kPlanck * kSpeedOfLight / lambda_m;
}

}  // namespace lightator::units
