// Versioned on-disk CompiledModel artifacts: save once, load ~free forever.
//
// Engine::compile is deliberately expensive — weight quantization, SIMD
// panel packing, arm-program builds, and the kernel-autotune races all
// happen there so that CompiledModel::run never pays them. But the product
// died with the process: every server restart and every experiment re-paid
// the whole pipeline. This module freezes a CompiledModel into a
// self-describing binary blob (the compile → blob → deployer/executor shape
// of production accelerator toolchains) and reconstitutes it bit-exactly:
//
//   save_artifact(model, "lenet_v1.blob");
//   CompiledModel m = load_artifact("lenet_v1.blob", system);
//   // m.run(...) == model.run(...) bit-for-bit (gemm exact; physical
//   // seeded-noise-identical — every double round-trips by bit pattern).
//
// Blob layout (little-endian):
//
//   +--------------------------------------------------------------+
//   | magic "LTARTFC1" | version u32 | total_bytes u64             |
//   | content_hash u64 (FNV-1a over everything below this header)  |
//   | mrs_per_arm u64 (arm-geometry fingerprint) | section_count   |
//   +--------------------------------------------------------------+
//   | section table: {id u32, offset u64, bytes u64} x count       |
//   +--------------------------------------------------------------+
//   | plan         — backend name, every compiled step (geometry,  |
//   |                bias, fused epilogue, frozen kernel config),  |
//   |                applied passes, the unoptimized-geometry      |
//   |                snapshot memory_report baselines against      |
//   | weights      — per weighted step: quantized levels + scale   |
//   | panels       — packed SIMD panels + the SIMD kernel          |
//   |                fingerprint they were packed under            |
//   | arm_programs — the physical backend's programmed arms        |
//   | kernel_plan  — the autotune tuning report (KernelPlan), so   |
//   |                production loads the tuned choices and never  |
//   |                re-races                                      |
//   +--------------------------------------------------------------+
//
// Validation is layered and typed (ArtifactError::kind): bad magic or a
// truncated/overlong file is kCorrupt, a version newer than this build is
// kVersionSkew, any flipped payload byte is kHashMismatch (the hash guards
// everything after the fixed header, so a corrupted version field reports as
// version skew, not as a hash failure), and an arm-geometry (mrs_per_arm)
// mismatch with the loading system is kArchMismatch — segment boundaries
// change numerics, so such a blob is unusable rather than repackable.
//
// The SIMD fingerprint is advisory, not fatal: panels packed under a
// different kernel tier than the loading host resolves (cpuid mismatch, a
// forced tier, a scalar build) are dropped and re-packed from the levels via
// program_step_weights — the repack-on-load path — which rebuilds exactly
// what a fresh compile here would have built, so outputs stay bit-exact.
// Frozen KernelConfig tiers the host lacks resolve DOWN the ladder at run
// (tensor/simd.hpp), never up, so a VNNI-tuned plan serves on any host.
//
// The loader reports through the metrics plane as compile.load_count /
// compile.load_ms — deliberately separate from compile.count / compile.ms,
// so cold-start dashboards can tell a ~free artifact load from a full
// compile (backend_compare's artifact_reuse section gates the ratio).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/compiled_model.hpp"
#include "core/compiler/plan.hpp"

namespace lightator::core {

/// Current blob format version. Bump on any layout change; readers reject
/// newer versions (kVersionSkew) instead of misparsing them.
inline constexpr std::uint32_t kArtifactVersion = 1;

enum class ArtifactErrorKind {
  kIo,            // file missing, unreadable, or unwritable
  kCorrupt,       // bad magic, truncation, or an out-of-bounds section table
  kVersionSkew,   // written by a newer format version than this build reads
  kHashMismatch,  // payload does not hash to the header's content hash
  kArchMismatch,  // arm geometry (mrs_per_arm) differs from the target system
  kFormat,        // structurally valid but unusable (unknown backend, counts)
};

/// "io" / "corrupt" / "version_skew" / "hash_mismatch" / "arch_mismatch" /
/// "format" — stable strings for CLI output and test assertions.
const char* artifact_error_kind_name(ArtifactErrorKind kind);

/// Every artifact failure throws this; kind() says which contract broke.
class ArtifactError : public std::runtime_error {
 public:
  ArtifactError(ArtifactErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  ArtifactErrorKind kind() const { return kind_; }

 private:
  ArtifactErrorKind kind_;
};

/// How the loader reconstituted a blob — the repack-on-load marker,
/// surfaced for tests and the model_artifact CLI.
struct ArtifactLoadStats {
  /// Blob carried panels but their SIMD fingerprint did not match this
  /// host's resolved kernel tier; panels were re-packed from the levels.
  bool repacked_panels = false;
  /// Blob carried no panels (saved on a scalar host / SIMD-off build) but
  /// this host runs SIMD; panels were packed fresh.
  bool packed_fresh = false;
  /// Physical-backend blob without serialized arm programs; rebuilt.
  bool rebuilt_arm_programs = false;
  std::uint64_t blob_bytes = 0;
};

struct ArtifactSectionInfo {
  std::string name;
  std::uint64_t bytes = 0;
};

/// Parsed header + plan summary. inspect needs no LightatorSystem — it
/// validates magic/version/size/hash and reads the metadata sections, but
/// never resolves a backend or touches weight payloads beyond hashing.
struct ArtifactInfo {
  std::uint32_t version = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t mrs_per_arm = 0;
  std::string backend;
  /// Kernel tier name the panels were packed under ("" when the blob
  /// carries no panels).
  std::string simd_fingerprint;
  std::size_t num_steps = 0;
  std::size_t num_weighted = 0;
  bool panels_present = false;
  bool arm_programs_present = false;
  std::vector<std::string> applied_passes;
  /// The serialized tuning report (obs::kernel_plan_json renders it).
  KernelPlan kernel_plan;
  std::vector<ArtifactSectionInfo> sections;
};

/// Serializes `model` into a blob / writes it to `path`. The model handle
/// must be valid (std::logic_error otherwise, like every CompiledModel
/// accessor); save_artifact throws ArtifactError(kIo) on write failure.
std::vector<std::uint8_t> serialize_artifact(const CompiledModel& model);
void save_artifact(const CompiledModel& model, const std::string& path);

/// Validates and reconstitutes a blob into a CompiledModel executing against
/// `system` (which must outlive the model). Bit-exact round trip: gemm
/// outputs identical, physical outputs seeded-noise-identical. `stats`, when
/// non-null, reports whether the repack-on-load path ran. Records
/// compile.load_count / compile.load_ms on the global MetricsRegistry.
CompiledModel deserialize_artifact(const std::vector<std::uint8_t>& blob,
                                   const LightatorSystem& system,
                                   ArtifactLoadStats* stats = nullptr);
CompiledModel load_artifact(const std::string& path,
                            const LightatorSystem& system,
                            ArtifactLoadStats* stats = nullptr);

/// Header/section summary after full validation (magic, version, size,
/// content hash) — the CLI's `inspect` and `verify` entry point.
ArtifactInfo inspect_artifact_blob(const std::vector<std::uint8_t>& blob);
ArtifactInfo inspect_artifact(const std::string& path);

}  // namespace lightator::core
