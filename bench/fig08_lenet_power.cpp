// Fig. 8: layer-wise power breakdown of LeNet on Lightator at [4:4], [3:4],
// and [2:4], components {ADCs, DACs, DMVA, TUN, BPD, Misc}. Pooling layers
// run on CA banks with pre-set coefficients (the paper's note). The three
// configurations are analyzed as one ExperimentRunner sweep.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "nn/model_desc.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  const util::Config cfg = bench::parse_args(argc, argv);
  const core::ArchConfig arch = core::ArchConfig::from_config(cfg);
  const core::LightatorSystem sys(arch);
  const nn::ModelDesc model = nn::lenet_desc();

  bench::print_header(
      "Fig. 8 - LeNet layer-wise power breakdown",
      "DAC 2024 Lightator, Fig. 8 (LeNet L1..L7 on [4:4], [3:4], [2:4])");

  core::ExperimentRunner runner;
  const std::vector<int> bit_ladder = {4, 3, 2};
  const auto reports = runner.sweep(
      bit_ladder, [&](int bits, core::ExecutionContext&) {
        return sys.analyze(model, nn::PrecisionSchedule::uniform(bits));
      });

  std::vector<double> max_power;
  for (std::size_t i = 0; i < bit_ladder.size(); ++i) {
    const auto& report = reports[i];
    std::printf("--- configuration %s ---\n",
                nn::PrecisionSchedule::uniform(bit_ladder[i]).label().c_str());
    util::TablePrinter table(bench::power_table_header());
    std::size_t li = 1;
    for (const auto& layer : report.layers) {
      auto row = bench::power_row(layer);
      row[0] = "L" + std::to_string(li++) + " " + row[0];
      table.add_row(std::move(row));
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("max layer power: %s   energy/frame: %s\n\n",
                util::format_power(report.max_power).c_str(),
                util::format_sig(report.energy_per_frame, 4).c_str());
    max_power.push_back(report.max_power);
  }

  // Paper claim: reducing weight bit-width yields ~2.4x average power
  // efficiency (we report the measured ladder).
  const double gain_43 = max_power[0] / max_power[1];
  const double gain_42 = max_power[0] / max_power[2];
  std::printf("weight-bit power ladder: [4:4]/[3:4] = %.2fx, "
              "[4:4]/[2:4] = %.2fx, average = %.2fx (paper: ~2.4x avg)\n",
              gain_43, gain_42, (gain_43 + gain_42) / 2.0);
  std::printf("note: pooling layers (L2, L4) run on pre-set CA banks -> no "
              "DAC component, matching the Fig. 8 dips.\n");
  return 0;
}
