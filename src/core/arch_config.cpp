#include "core/arch_config.hpp"

namespace lightator::core {

ArchConfig ArchConfig::defaults() {
  ArchConfig c;
  // MR: high-Q ring with an efficient undercut heater. 4 nm/mW keeps the
  // whole-core tuning power near the ~4% share of Fig. 9's pie.
  c.ring.fwhm = 0.1 * units::kNm;
  c.ring.extinction = 0.05;
  c.ring.heater_efficiency = 4.0 * units::kNm / units::kMW;
  c.ring.max_detuning = 0.5 * units::kNm;
  c.ring.insertion_loss_db = 0.01;
  c.ring.settle_time = c.remap_settle;
  // uA-class VCSELs: the edge power budget forces low drive currents
  // (~0.1 mW electrical per active channel including the driver).
  c.vcsel.threshold_current = 20 * units::kUA;
  c.vcsel.step_current = 4 * units::kUA;
  c.vcsel.slope_efficiency = 0.3;
  c.vcsel.supply_voltage = 1.8;
  c.vcsel.levels = 15;
  c.vcsel.bandwidth = c.modulation_rate;
  // Current-mode driver switching energy per transistor per symbol; at
  // 25 GHz the driver dynamic power stays ~10% of the VCSEL bias power.
  c.vcsel.driver_energy_per_symbol = 0.03 * units::kFJ;
  // BPD: bandwidth tracks the symbol rate.
  c.detector.bandwidth = c.modulation_rate;
  c.detector.static_power = c.bpd_power;
  // Sensor: 256x256 RGGB, 4-bit CRC.
  c.sensor.rows = 256;
  c.sensor.cols = 256;
  return c;
}

ArchConfig ArchConfig::from_config(const util::Config& cfg) {
  ArchConfig c = defaults();
  c.geometry.bank_rows =
      static_cast<std::size_t>(cfg.get_int("oc.bank_rows", static_cast<int>(c.geometry.bank_rows)));
  c.geometry.bank_cols =
      static_cast<std::size_t>(cfg.get_int("oc.bank_cols", static_cast<int>(c.geometry.bank_cols)));
  c.geometry.arms_per_bank = static_cast<std::size_t>(
      cfg.get_int("oc.arms_per_bank", static_cast<int>(c.geometry.arms_per_bank)));
  c.geometry.mrs_per_arm = static_cast<std::size_t>(
      cfg.get_int("oc.mrs_per_arm", static_cast<int>(c.geometry.mrs_per_arm)));
  c.geometry.ca_banks = static_cast<std::size_t>(
      cfg.get_int("oc.ca_banks", static_cast<int>(c.geometry.ca_banks)));
  c.modulation_rate = cfg.get_double("oc.modulation_rate_ghz",
                                     c.modulation_rate / units::kGHz) *
                      units::kGHz;
  c.remap_settle =
      cfg.get_double("oc.remap_settle_ns", c.remap_settle / units::kNs) *
      units::kNs;
  c.throughput_batch = static_cast<std::size_t>(
      cfg.get_int("oc.batch", static_cast<int>(c.throughput_batch)));
  c.dac_power_4bit =
      cfg.get_double("power.dac_mw", c.dac_power_4bit / units::kMW) * units::kMW;
  c.adc_power =
      cfg.get_double("power.adc_mw", c.adc_power / units::kMW) * units::kMW;
  c.bpd_power =
      cfg.get_double("power.bpd_mw", c.bpd_power / units::kMW) * units::kMW;
  c.controller_power =
      cfg.get_double("power.ctrl_mw", c.controller_power / units::kMW) *
      units::kMW;
  c.ring.heater_efficiency =
      cfg.get_double("mr.heater_nm_per_mw",
                     c.ring.heater_efficiency / (units::kNm / units::kMW)) *
      units::kNm / units::kMW;
  c.ring.fwhm =
      cfg.get_double("mr.fwhm_nm", c.ring.fwhm / units::kNm) * units::kNm;
  c.vcsel.bandwidth = c.modulation_rate;
  c.detector.bandwidth = c.modulation_rate;
  c.ring.settle_time = c.remap_settle;
  return c;
}

}  // namespace lightator::core
