// Passive waveguide and coupling loss bookkeeping.
//
// Losses enter the arm model as a single end-to-end linear factor; they do
// not change the computed dot product (the arm calibrates them out) but they
// reduce the detected power and therefore the SNR at the BPD.
#pragma once

#include "optics/optical_signal.hpp"
#include "util/units.hpp"

namespace lightator::optics {

struct WaveguideParams {
  double propagation_loss_db_per_cm = 1.5;  // silicon strip waveguide
  double coupler_loss_db = 0.1;             // per splitter/combiner
  double laser_to_chip_loss_db = 1.0;       // VCSEL-to-waveguide coupling
};

class Waveguide {
 public:
  Waveguide(WaveguideParams params, double length_m, int num_couplers);

  /// Total end-to-end loss in dB.
  double total_loss_db() const;

  /// Linear transmission factor (<= 1).
  double transmission() const;

  /// Applies the loss to all channels of a signal.
  void propagate(OpticalSignal& signal) const;

  double length() const { return length_m_; }

 private:
  WaveguideParams params_;
  double length_m_;
  int num_couplers_;
};

}  // namespace lightator::optics
