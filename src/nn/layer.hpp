// Trainable layer abstraction: forward + backward + parameter access.
//
// Each layer caches what it needs from the forward pass to run backward.
// Conv2d and Linear support quantization-aware training: when
// `set_weight_qat_bits(b)` is non-zero the forward pass uses fake-quantized
// weights (straight-through estimator in backward — gradients flow to the
// fp32 master weights). Activation layers can fake-quantize their outputs to
// the 4-bit VCSEL/CRC code space with a running-max scale.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/activations.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace lightator::nn {

using tensor::ActKind;
using tensor::ConvSpec;
using tensor::Tensor;

enum class LayerKind { kConv, kLinear, kMaxPool, kAvgPool, kActivation, kFlatten };

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, bool training) = 0;
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Deep copy including parameters and QAT configuration. Forward/backward
  /// caches come along but are never shared — a clone is an independent
  /// replica, which is what data-parallel training and parallel Monte-Carlo
  /// trials need (layers cache per-forward state, so one instance must never
  /// run two concurrent passes).
  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual LayerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Trainable parameters and their gradients, pairwise aligned.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }
};

class Conv2d final : public Layer {
 public:
  Conv2d(ConvSpec spec, util::Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }
  LayerKind kind() const override { return LayerKind::kConv; }
  std::string name() const override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  const ConvSpec& spec() const { return spec_; }
  const Tensor& weight() const { return weight_; }
  Tensor& weight() { return weight_; }
  const Tensor& bias() const { return bias_; }

  /// 0 disables weight fake-quant; otherwise quantize to `bits` in forward.
  void set_weight_qat_bits(int bits) { weight_qat_bits_ = bits; }
  int weight_qat_bits() const { return weight_qat_bits_; }

  /// The weights the hardware would map: fake-quantized if QAT is on.
  Tensor effective_weight() const;

 private:
  ConvSpec spec_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
  int weight_qat_bits_ = 0;
};

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Linear>(*this);
  }
  LayerKind kind() const override { return LayerKind::kLinear; }
  std::string name() const override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }
  Tensor& weight() { return weight_; }
  const Tensor& bias() const { return bias_; }

  void set_weight_qat_bits(int bits) { weight_qat_bits_ = bits; }
  int weight_qat_bits() const { return weight_qat_bits_; }
  Tensor effective_weight() const;

 private:
  std::size_t in_features_, out_features_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
  int weight_qat_bits_ = 0;
};

class MaxPool final : public Layer {
 public:
  MaxPool(std::size_t kernel, std::size_t stride);
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool>(*this);
  }
  LayerKind kind() const override { return LayerKind::kMaxPool; }
  std::string name() const override;
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t kernel_, stride_;
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;
};

class AvgPool final : public Layer {
 public:
  AvgPool(std::size_t kernel, std::size_t stride);
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<AvgPool>(*this);
  }
  LayerKind kind() const override { return LayerKind::kAvgPool; }
  std::string name() const override;
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t kernel_, stride_;
  Tensor cached_input_;
};

class Activation final : public Layer {
 public:
  explicit Activation(ActKind act);
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Activation>(*this);
  }
  LayerKind kind() const override { return LayerKind::kActivation; }
  std::string name() const override;
  ActKind act() const { return act_; }

  /// Enables output fake-quant to `bits` (unsigned code space). The scale is
  /// a running max observed during training; frozen at evaluation.
  void set_act_qat_bits(int bits) { act_qat_bits_ = bits; }
  int act_qat_bits() const { return act_qat_bits_; }
  double act_scale() const { return act_scale_; }
  void set_act_scale(double scale) { act_scale_ = scale; }

 private:
  ActKind act_;
  Tensor cached_input_;
  int act_qat_bits_ = 0;
  double act_scale_ = 0.0;
};

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::string name() const override { return "flatten"; }

 private:
  tensor::Shape cached_shape_;
};

}  // namespace lightator::nn
