// One OC arm: the physical optical dot-product unit.
//
// An arm holds `num_cells` (paper: 9) differential MR weight cells in series
// on a positive and a negative rail, terminated by a balanced photodetector.
// Activations arrive as per-channel optical powers from the DMVA's VCSELs
// (4-bit codes -> intensity); the BPD's net current, divided by a one-time
// calibration constant, is the signed dot product
//     sum_i  a_i * w_i,   a_i in [0,1] (code/15),  w_i in [-1,1] (quantized).
//
// The physical path includes every analog non-ideality the device models
// capture: Lorentzian-tail inter-channel crosstalk, finite-detuning weight
// saturation, waveguide/coupler/insertion losses, and (optionally) BPD noise.
// The fast functional simulation in lt_core is validated against this class.
#pragma once

#include <span>
#include <vector>

#include "optics/photodetector.hpp"
#include "optics/vcsel.hpp"
#include "optics/waveguide.hpp"
#include "optics/weight_cell.hpp"

namespace lightator::optics {

struct ArmParams {
  std::size_t num_cells = 9;
  int weight_bits = 4;
  int activation_levels = 15;  // 4-bit thermometer
  MicroRingParams ring;
  VcselParams vcsel;
  PhotodetectorParams detector;
  WaveguideParams waveguide;
  double rail_length = 500 * units::kUm;  // per-rail waveguide length
};

class MrArm {
 public:
  explicit MrArm(ArmParams params);

  std::size_t num_cells() const { return cells_.size(); }
  int weight_bits() const { return params_.weight_bits; }

  /// Programs the arm's weights (size must equal num_cells, each in [-1,1]).
  void set_weights(std::span<const double> weights);

  /// The quantized weights the cells nominally realize.
  std::vector<double> nominal_weights() const;

  /// Physical MAC: activation codes (each 0..activation_levels) modulate the
  /// VCSELs; returns the calibrated dot product. Noiseless analog path.
  double compute(std::span<const int> activation_codes) const;

  /// Same, with BPD noise sampled from `rng`.
  double compute_noisy(std::span<const int> activation_codes,
                       util::Rng& rng) const;

  /// Ideal (digital) dot product of the quantized weights and the code
  /// activations — the value the analog path approximates.
  double ideal(std::span<const int> activation_codes) const;

  /// Total heater power of all weight cells (the arm's TUN share, watts).
  double tuning_power() const;

  /// BPD + TIA static power (watts).
  double detector_power() const { return bpd_.static_power(); }

  const WdmGrid& grid() const { return grid_; }
  const WeightCell& cell(std::size_t i) const { return cells_.at(i); }

 private:
  /// Builds the two rail signals for the given codes and runs them through
  /// the weight cells; returns the BPD net current.
  double propagate(std::span<const int> activation_codes,
                   util::Rng* rng) const;

  ArmParams params_;
  WdmGrid grid_;
  std::vector<WeightCell> cells_;
  BalancedPhotodetector bpd_;
  Waveguide rail_;
  double calibration_;  // net-current -> value divisor
};

}  // namespace lightator::optics
