// Power-model tests: component shares, the DAC precision ladder, and the
// pre-set-CA exemption — the mechanics behind Figs. 8/9 and Table 1.
#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "core/power_model.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {
namespace {

LayerMapping big_conv_mapping() {
  // VGG9 L8-class layer: saturates the OC.
  nn::LayerDesc l;
  l.kind = nn::LayerKind::kConv;
  l.name = "conv3x3_256->256";
  l.in_h = 8;
  l.in_w = 8;
  l.conv = tensor::ConvSpec{256, 256, 3, 1, 1};
  return Mapper(ArchConfig::defaults()).map_layer(l);
}

TEST(PowerBreakdown, Accumulates) {
  PowerBreakdown a{1, 2, 3, 4, 5, 6};
  const PowerBreakdown b{1, 1, 1, 1, 1, 1};
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 27.0);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a.dac, 1.5);
}

TEST(PowerModel, DacLadderFollowsCurrentSteering) {
  const ArchConfig cfg = ArchConfig::defaults();
  // (2^b - 1)/15 branch gating.
  EXPECT_DOUBLE_EQ(cfg.dac_power(4), cfg.dac_power_4bit);
  EXPECT_NEAR(cfg.dac_power(3) / cfg.dac_power(4), 7.0 / 15.0, 1e-12);
  EXPECT_NEAR(cfg.dac_power(2) / cfg.dac_power(4), 3.0 / 15.0, 1e-12);
}

TEST(PowerModel, DacDominatesSaturatedLayer) {
  const PowerModel pm(ArchConfig::defaults());
  const auto p = pm.layer_power(big_conv_mapping(), 3);
  const double share = p.streaming.dac / p.streaming.total();
  // Paper Fig. 9 pie: DACs > 85% of a [3:4] VGG9 layer.
  EXPECT_GT(share, 0.80);
  EXPECT_LT(share, 0.95);
}

TEST(PowerModel, ComponentSharesMatchPaperPie) {
  // Fig. 9 L8 pie at [3:4]: DAC 85%, DMVA 9%, TUN 4%, BPD 1%, ADC <1%.
  const PowerModel pm(ArchConfig::defaults());
  const auto p = pm.layer_power(big_conv_mapping(), 3);
  const double total = p.streaming.total();
  EXPECT_NEAR(p.streaming.dmva / total, 0.09, 0.05);
  EXPECT_NEAR(p.streaming.tun / total, 0.04, 0.03);
  EXPECT_LT(p.streaming.adc / total, 0.02);
  EXPECT_LT(p.streaming.bpd / total, 0.03);
  EXPECT_LT(p.streaming.misc / total, 0.02);
}

TEST(PowerModel, PowerLadderAcrossPrecisions) {
  // Total power must drop 4 -> 3 -> 2 bits, with ratios in the
  // neighborhood of the paper's 5.28 / 2.71 / 1.46 W ladder.
  const PowerModel pm(ArchConfig::defaults());
  const auto m = big_conv_mapping();
  const double p4 = pm.layer_power(m, 4).streaming.total();
  const double p3 = pm.layer_power(m, 3).streaming.total();
  const double p2 = pm.layer_power(m, 2).streaming.total();
  EXPECT_GT(p4, p3);
  EXPECT_GT(p3, p2);
  EXPECT_NEAR(p4 / p3, 5.28 / 2.71, 0.4);
  EXPECT_NEAR(p4 / p2, 5.28 / 1.46, 0.9);
}

TEST(PowerModel, AveragePowerEfficiencyGainNearPaper) {
  // The paper reports ~2.4x average power-efficiency gain per bit step
  // (4->3 and 4->2 averaged ~2.78x on the ladder). Accept 2-3.5x.
  const PowerModel pm(ArchConfig::defaults());
  const auto m = big_conv_mapping();
  const double p4 = pm.layer_power(m, 4).streaming.total();
  const double p3 = pm.layer_power(m, 3).streaming.total();
  const double p2 = pm.layer_power(m, 2).streaming.total();
  const double avg_gain = (p4 / p3 + p4 / p2) / 2.0;
  EXPECT_GT(avg_gain, 2.0);
  EXPECT_LT(avg_gain, 3.5);
}

TEST(PowerModel, PresetCaBanksDrawNoDacPower) {
  const ArchConfig cfg = ArchConfig::defaults();
  const Mapper mapper(cfg);
  const auto m = mapper.map_ca_window(12, 256, "ca", nn::LayerKind::kAvgPool);
  const PowerModel pm(cfg);
  const auto p = pm.layer_power(m, 4);
  EXPECT_DOUBLE_EQ(p.streaming.dac, 0.0);
  EXPECT_GT(p.streaming.tun, 0.0);  // heaters still hold the coefficients
  EXPECT_GT(p.streaming.total(), 0.0);
}

TEST(PowerModel, PoolingOrdersOfMagnitudeBelowConv) {
  // The Fig. 8 dips: CA-mapped pooling draws orders of magnitude less than
  // a saturated conv layer.
  const ArchConfig cfg = ArchConfig::defaults();
  const PowerModel pm(cfg);
  const Mapper mapper(cfg);
  const auto pool = mapper.map_ca_window(4, 6 * 14 * 14, "pool",
                                         nn::LayerKind::kAvgPool);
  const double p_pool = pm.layer_power(pool, 4).streaming.total();
  const double p_conv = pm.layer_power(big_conv_mapping(), 4).streaming.total();
  EXPECT_LT(p_pool * 20.0, p_conv);
}

TEST(PowerModel, CrcChargedToFirstLayerOnly) {
  const PowerModel pm(ArchConfig::defaults());
  const auto m = big_conv_mapping();
  const auto with_crc = pm.layer_power(m, 4, /*first_layer=*/true);
  const auto without = pm.layer_power(m, 4, /*first_layer=*/false);
  EXPECT_GT(with_crc.streaming.dmva, without.streaming.dmva);
  EXPECT_DOUBLE_EQ(with_crc.streaming.dac, without.streaming.dac);
}

TEST(PowerModel, TuningPowerUsesActualWeightStats) {
  const PowerModel pm(ArchConfig::defaults());
  const auto m = big_conv_mapping();
  const auto small_w = pm.layer_power(m, 4, false, 0.1);
  const auto large_w = pm.layer_power(m, 4, false, 0.9);
  EXPECT_LT(small_w.streaming.tun, large_w.streaming.tun);
}

TEST(PowerModel, ExpectedTuningMonotoneishAcrossExtremes) {
  const PowerModel pm(ArchConfig::defaults());
  // Fewer bits -> levels concentrated at larger |w| -> more heater power.
  EXPECT_GT(pm.expected_tuning_power_per_cell(2),
            pm.expected_tuning_power_per_cell(4));
  EXPECT_GT(pm.expected_tuning_power_per_cell(2),
            pm.expected_tuning_power_per_cell(6));
}

TEST(PowerModel, RemapPhaseCheaperThanStreaming) {
  const PowerModel pm(ArchConfig::defaults());
  nn::LayerDesc fc;
  fc.kind = nn::LayerKind::kLinear;
  fc.name = "fc";
  fc.fc_in = 4096;
  fc.fc_out = 512;
  const auto m = Mapper(ArchConfig::defaults()).map_layer(fc);
  const auto p = pm.layer_power(m, 4);
  // FC layers are remap-dominated; average power must sit below the pure
  // streaming power because the optical path idles while MRs settle.
  EXPECT_LT(p.average.total(), p.streaming.total());
  EXPECT_GT(p.energy, 0.0);
  EXPECT_GT(p.duration, 0.0);
}

TEST(PowerModel, NonComputeLayerIsFree) {
  const PowerModel pm(ArchConfig::defaults());
  LayerMapping empty;
  const auto p = pm.layer_power(empty, 4);
  EXPECT_DOUBLE_EQ(p.average.total(), 0.0);
  EXPECT_DOUBLE_EQ(p.energy, 0.0);
}

TEST(PowerModel, VcselChannelPowerIsSubMilliwatt) {
  const PowerModel pm(ArchConfig::defaults());
  // uA-class edge VCSELs: ~0.1 mW per active channel (DESIGN.md §5).
  EXPECT_LT(pm.vcsel_channel_power(), 0.3e-3);
  EXPECT_GT(pm.vcsel_channel_power(), 0.02e-3);
}

class PowerPrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PowerPrecisionSweep, AllComponentsNonNegative) {
  const int bits = GetParam();
  const PowerModel pm(ArchConfig::defaults());
  const auto p = pm.layer_power(big_conv_mapping(), bits);
  EXPECT_GE(p.streaming.adc, 0.0);
  EXPECT_GE(p.streaming.dac, 0.0);
  EXPECT_GE(p.streaming.dmva, 0.0);
  EXPECT_GE(p.streaming.tun, 0.0);
  EXPECT_GE(p.streaming.bpd, 0.0);
  EXPECT_GE(p.streaming.misc, 0.0);
  EXPECT_GT(p.streaming.total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Bits, PowerPrecisionSweep, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace lightator::core
