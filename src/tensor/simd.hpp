// Runtime SIMD capability detection and dispatch control for the packed
// int16 GEMM kernels (tensor/gemm_s16_packed.hpp).
//
// The library is compiled for the baseline ISA; the AVX2 kernels are built
// with per-function target attributes and selected at runtime via cpuid, so
// one binary runs everywhere and the scalar segment-blocked loop remains the
// portable fallback. `set_simd_enabled(false)` forces the scalar path at
// runtime — the hook the bit-exactness fuzz tests and the backend_compare
// scalar-vs-packed timing use. Building with -DLIGHTATOR_DISABLE_SIMD=ON
// compiles the AVX2 kernels out entirely (the CI scalar-fallback config).
#pragma once

// One compile-time gate for the AVX2 kernel translation units: x86-64 with a
// compiler that supports per-function target attributes, unless the build
// opted out via -DLIGHTATOR_DISABLE_SIMD=ON.
#if !defined(LIGHTATOR_DISABLE_SIMD) && \
    (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define LIGHTATOR_HAVE_AVX2_KERNELS 1
#endif

namespace lightator::tensor::simd {

/// True when the AVX2 kernels were compiled in (x86-64 build without
/// LIGHTATOR_DISABLE_SIMD).
bool compiled_with_simd();

/// True when the AVX2 kernels are compiled in, the CPU reports AVX2, and no
/// runtime override disabled them — the packed GEMM dispatch predicate.
bool avx2_enabled();

/// Runtime override for tests/benches: `false` forces the scalar fallback
/// even on AVX2 hardware; `true` restores cpuid-based dispatch.
void set_simd_enabled(bool enabled);

/// "avx2" or "scalar" — what avx2_enabled() currently resolves to.
const char* active_kernel();

}  // namespace lightator::tensor::simd
