// Hardware mapper: assigns DNN layers onto the OC's arm/bank fabric
// following the paper's §4 methodology.
//
// Per kernel size (square K, 9-MR arms):
//   3x3 -> 1 arm per channel-slice, 0 idle MRs, 6 strides/bank (summation
//          tree bypassed for single-slice kernels);
//   5x5 -> 3 arms per slice, 2 idle MRs, 2 strides/bank, stage-1 summation;
//   7x7 -> 6 arms per slice (whole bank), 5 idle MRs, both summation stages;
//   1x1 -> up to 9 channels packed per arm;
//   KxK (K^2 > 54, e.g. AlexNet's 11x11) and FC -> segments of 9 MACs with
//          electronic partial-sum accumulation across banks.
// Multi-channel kernels use one slice per input channel, reduced through the
// in-bank summation tree and electronically across banks.
//
// A layer whose distinct weight-arm programmings exceed the fabric is
// processed in multiple *rounds*, each paying one MR-remap (paper: "weight
// values are stored in a dedicated memory and then mapped to the MRs during
// the processing of each layer").
#pragma once

#include <cstddef>
#include <string>

#include "core/arch_config.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {

struct LayerMapping {
  std::string layer_name;
  nn::LayerKind kind = nn::LayerKind::kConv;
  bool uses_ca_banks = false;   // pooling runs on the pre-set CA banks
  bool weighted = false;        // occupies MVM banks (conv / fc)

  // Geometry of one output's reduction.
  std::size_t macs_per_output = 0;
  std::size_t arms_per_output = 0;   // arms one output's reduction occupies
  std::size_t idle_mrs_per_output = 0;
  std::size_t summation_stages = 0;  // 0: BPD only, 1/2: in-bank tree stages
  bool cross_bank_accumulation = false;  // arms_per_output > arms_per_bank

  // Fabric occupancy.
  std::size_t total_arm_groups = 0;  // distinct weight-arm programmings
  std::size_t rounds = 0;            // remap rounds to stream all groups
  std::size_t arms_active = 0;       // concurrently active arms (peak round)
  std::size_t mrs_active = 0;        // programmed MRs among those arms
  std::size_t idle_mrs = 0;          // fragmentation losses (peak round)
  std::size_t banks_active = 0;

  // Work.
  std::size_t outputs = 0;           // output scalars of the layer
  std::size_t cycles_per_round = 0;  // streaming cycles per remap round
  std::size_t vcsels_active = 0;     // distinct activation channels per cycle
  std::size_t adc_samples_per_cycle = 0;
  std::size_t weight_writes = 0;     // total DAC programming events (MRs)

  /// Fraction of programmed MRs among occupied arm capacity.
  double mr_utilization() const {
    const std::size_t cap = arms_active * 9;
    return cap == 0 ? 0.0
                    : static_cast<double>(mrs_active) / static_cast<double>(cap);
  }
};

class Mapper {
 public:
  explicit Mapper(ArchConfig config) : config_(config) {}

  /// Maps a single layer. Activation/flatten layers map to an empty
  /// (non-compute) mapping with zero resources.
  LayerMapping map_layer(const nn::LayerDesc& layer) const;

  /// Maps every compute layer of a model, in order.
  std::vector<LayerMapping> map_model(const nn::ModelDesc& model) const;

  const ArchConfig& config() const { return config_; }

  /// Arms needed for a reduction of `macs` MACs (segments of mrs_per_arm).
  std::size_t arms_for_reduction(std::size_t macs) const;

  /// Maps a pre-set weighted-window reduction (pooling / compressive
  /// acquisition) onto the CA banks: `window` MACs per output, `outputs`
  /// outputs per frame. No DAC traffic, no remap rounds.
  LayerMapping map_ca_window(std::size_t window, std::size_t outputs,
                             std::string name, nn::LayerKind kind) const;

 private:
  LayerMapping map_conv(const nn::LayerDesc& layer) const;
  LayerMapping map_linear(const nn::LayerDesc& layer) const;
  LayerMapping map_pool(const nn::LayerDesc& layer) const;

  ArchConfig config_;
};

}  // namespace lightator::core
