// Backend-equivalence suite for the pluggable OC compute backends.
//
// GemmBackend must be *bit-exact* with ReferenceBackend — the segment-blocked
// int16 GEMM emits partial sums at the same BPD boundaries with the same
// arithmetic — across kernel/stride/pad/segment-boundary geometries and
// thread counts. PhysicalBackend must track the reference within the analog
// error budget and be deterministic under a fixed noise seed regardless of
// thread count.
#include <gtest/gtest.h>

#include <cmath>

#include "core/backends/reference_backend.hpp"
#include "core/compute_backend.hpp"
#include "core/lightator.hpp"
#include "core/optical_core.hpp"
#include "nn/models.hpp"
#include "tensor/gemm_s16.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lightator::core {
namespace {

struct ConvCase {
  std::string label;
  tensor::ConvSpec spec;
  std::size_t in_h, in_w;
  int act_bits = 4;
  int weight_bits = 4;
};

// Segment-boundary coverage for 9-MR arms: K = C*k*k below one segment (4),
// exactly one (9), an exact multiple (18), and off-boundary remainders
// (27 exact, 50 = 5*9+5, 75 = 8*9+3), plus stride/pad/kernel variety.
const ConvCase kConvCases[] = {
    {"k1_pointwise", {3, 4, 1, 1, 0}, 6, 6},         // K=3, sub-segment
    {"k2_subsegment", {1, 2, 2, 1, 0}, 5, 5},        // K=4 < 9
    {"k3_one_segment", {1, 3, 3, 1, 1}, 8, 8},       // K=9 exactly one arm
    {"k3_two_segments", {2, 3, 3, 1, 1}, 8, 8},      // K=18 exact multiple
    {"k3_three_segments", {3, 4, 3, 1, 1}, 8, 8},    // K=27 exact multiple
    {"k5_remainder", {2, 3, 5, 2, 2}, 12, 12},       // K=50 = 5*9+5
    {"k5_remainder3", {3, 2, 5, 1, 0}, 9, 9},        // K=75 = 8*9+3
    {"k3_stride2_nopad", {4, 4, 3, 2, 0}, 11, 11},   // odd input, stride 2
    {"k7_big_window", {2, 2, 7, 1, 3}, 10, 10},      // K=98, heavy padding
    {"w8_bits", {2, 3, 3, 1, 1}, 8, 8, 4, 8},        // 8-bit weight levels
    {"w2_bits", {2, 3, 3, 1, 1}, 8, 8, 4, 2},        // 2-bit weight levels
};

struct QuantConvInputs {
  tensor::QuantizedTensor x, w;
  tensor::Tensor bias;
};

QuantConvInputs make_conv_inputs(const ConvCase& c, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor x({3, c.spec.in_channels, c.in_h, c.in_w});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w(
      {c.spec.out_channels, c.spec.in_channels, c.spec.kernel, c.spec.kernel});
  w.fill_normal(rng, 0.4f);
  tensor::Tensor b({c.spec.out_channels});
  b.fill_normal(rng, 0.1f);
  return {tensor::quantize_unsigned(x, c.act_bits),
          tensor::quantize_symmetric(w, c.weight_bits), b};
}

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

TEST(BackendRegistry, BuiltinsRegistered) {
  const auto names = BackendRegistry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "gemm"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "physical"), names.end());
}

TEST(BackendRegistry, UnknownNameThrows) {
  EXPECT_THROW(
      BackendRegistry::instance().create("no-such-engine",
                                         ArchConfig::defaults()),
      std::invalid_argument);
}

TEST(BackendRegistry, RuntimeRegistration) {
  BackendRegistry::instance().register_factory(
      "reference-alias", [](const ArchConfig& cfg) {
        return std::make_unique<ReferenceBackend>(cfg);
      });
  const auto backend = BackendRegistry::instance().create(
      "reference-alias", ArchConfig::defaults());
  EXPECT_EQ(backend->name(), "reference");
}

TEST(BackendEquivalence, GemmBitExactWithReferenceAcrossGeometries) {
  const OpticalCore oc(ArchConfig::defaults());
  ExecutionContext ctx;
  std::uint64_t seed = 10;
  for (const auto& c : kConvCases) {
    const auto in = make_conv_inputs(c, seed++);
    const auto ref =
        oc.backend("reference").conv2d(in.x, in.w, in.bias, c.spec, ctx);
    const auto gemm =
        oc.backend("gemm").conv2d(in.x, in.w, in.bias, c.spec, ctx);
    expect_bit_exact(ref, gemm, c.label);
  }
}

TEST(BackendEquivalence, GemmBitExactWithoutBias) {
  const OpticalCore oc(ArchConfig::defaults());
  ExecutionContext ctx;
  const ConvCase c = kConvCases[5];
  const auto in = make_conv_inputs(c, 99);
  const auto ref = oc.backend("reference")
                       .conv2d(in.x, in.w, tensor::Tensor(), c.spec, ctx);
  const auto gemm =
      oc.backend("gemm").conv2d(in.x, in.w, tensor::Tensor(), c.spec, ctx);
  expect_bit_exact(ref, gemm, c.label + "_nobias");
}

TEST(BackendEquivalence, GemmInvariantUnderThreadCount) {
  const OpticalCore oc(ArchConfig::defaults());
  util::ThreadPool serial(1), wide(4);
  ExecutionContext ctx1, ctx4;
  ctx1.pool = &serial;
  ctx4.pool = &wide;
  for (const auto& c : {kConvCases[3], kConvCases[5]}) {
    const auto in = make_conv_inputs(c, 42);
    const auto y1 = oc.backend("gemm").conv2d(in.x, in.w, in.bias, c.spec, ctx1);
    const auto y4 = oc.backend("gemm").conv2d(in.x, in.w, in.bias, c.spec, ctx4);
    expect_bit_exact(y1, y4, c.label + "_threads");
  }
}

TEST(BackendEquivalence, LinearBitExactAndSegmented) {
  const OpticalCore oc(ArchConfig::defaults());
  ExecutionContext ctx;
  util::Rng rng(7);
  // 40 features = 4*9+4: exercises the segment remainder in the fc path.
  tensor::Tensor x({5, 40});
  x.fill_uniform(rng, 0.0f, 2.0f);
  tensor::Tensor w({10, 40});
  w.fill_normal(rng, 0.5f);
  tensor::Tensor b({10});
  b.fill_normal(rng, 0.2f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  const auto ref = oc.backend("reference").linear(xq, wq, b, ctx);
  const auto gemm = oc.backend("gemm").linear(xq, wq, b, ctx);
  expect_bit_exact(ref, gemm, "linear");
  // The fc reduction must use the same arm segmentation as conv: a KxK conv
  // producing a single output pixel is exactly an fc row.
  for (std::size_t o = 0; o < 10; ++o) {
    double acc = 0.0;
    std::int32_t seg_acc = 0;
    for (std::size_t i = 0; i < 40; ++i) {
      seg_acc += static_cast<std::int32_t>(xq.levels[i]) * wq.levels[o * 40 + i];
      if ((i + 1) % oc.config().geometry.mrs_per_arm == 0) {
        acc += seg_acc;
        seg_acc = 0;
      }
    }
    acc += seg_acc;
    float expected = static_cast<float>(
        acc * xq.scale * wq.scale / (15.0 * 7.0));
    expected += b[o];
    EXPECT_EQ(ref.at(0, o), expected) << "output " << o;
  }
}

TEST(BackendEquivalence, ConvOfFullWindowMatchesLinear) {
  // conv with kernel == input and no padding is one output pixel per filter:
  // it must reduce identically to the fc path over the flattened features.
  const OpticalCore oc(ArchConfig::defaults());
  ExecutionContext ctx;
  util::Rng rng(8);
  const tensor::ConvSpec spec{2, 3, 4, 1, 0};
  tensor::Tensor x({2, 2, 4, 4});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({3, 2, 4, 4});
  w.fill_normal(rng, 0.4f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  const auto conv =
      oc.backend("gemm").conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  auto xq_flat = xq;
  xq_flat.shape = {2, 32};
  auto wq_flat = wq;
  wq_flat.shape = {3, 32};
  const auto fc =
      oc.backend("gemm").linear(xq_flat, wq_flat, tensor::Tensor(), ctx);
  ASSERT_EQ(conv.size(), fc.size());
  for (std::size_t i = 0; i < fc.size(); ++i) {
    EXPECT_EQ(conv[i], fc[i]) << "flat index " << i;
  }
}

TEST(BackendEquivalence, DefaultOpticalCorePathIsGemm) {
  const OpticalCore oc(ArchConfig::defaults());
  ExecutionContext ctx;
  ctx.backend = "reference";
  const ConvCase c = kConvCases[4];
  const auto in = make_conv_inputs(c, 5);
  const auto via_default = oc.conv2d(in.x, in.w, in.bias, c.spec);
  const auto via_reference = oc.conv2d(in.x, in.w, in.bias, c.spec, ctx);
  expect_bit_exact(via_default, via_reference, "default_path");
}

TEST(PhysicalBackend, NoiselessTracksReferenceWithinAnalogBudget) {
  const OpticalCore oc(ArchConfig::defaults());
  ExecutionContext ctx;
  const tensor::ConvSpec spec{1, 2, 3, 1, 0};
  util::Rng rng(21);
  tensor::Tensor x({1, 1, 5, 5});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({2, 1, 3, 3});
  w.fill_normal(rng, 0.4f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  const auto ref =
      oc.backend("reference").conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  const auto phys =
      oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  ASSERT_EQ(ref.shape(), phys.shape());
  // Per-arm analog error budget (see OpticalCore.PhysicalMatchesFunctionalArm)
  // scaled by the tensor scales.
  const float budget =
      static_cast<float>(0.15 * xq.scale * wq.scale) + 1e-6f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(ref[i], phys[i], budget) << "flat index " << i;
  }
}

TEST(PhysicalBackend, DeterministicUnderFixedSeedAcrossThreadCounts) {
  const OpticalCore oc(ArchConfig::defaults());
  const tensor::ConvSpec spec{1, 2, 3, 1, 1};
  util::Rng rng(22);
  tensor::Tensor x({4, 1, 6, 6});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({2, 1, 3, 3});
  w.fill_normal(rng, 0.4f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);

  util::ThreadPool serial(1), wide(4);
  ExecutionContext ctx1, ctx4;
  ctx1.noise_seed = ctx4.noise_seed = 77;
  ctx1.pool = &serial;
  ctx4.pool = &wide;
  const auto y1 =
      oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec, ctx1);
  const auto y4 =
      oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec, ctx4);
  expect_bit_exact(y1, y4, "physical_threads");

  // A different seed must produce different noise.
  ExecutionContext ctx_other;
  ctx_other.noise_seed = 78;
  ctx_other.pool = &serial;
  const auto y_other =
      oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec, ctx_other);
  bool any_diff = false;
  for (std::size_t i = 0; i < y1.size() && !any_diff; ++i) {
    any_diff = y1[i] != y_other[i];
  }
  EXPECT_TRUE(any_diff) << "noise seed had no effect";
}

TEST(PhysicalBackend, SuccessiveCallsDrawFreshNoiseStreams) {
  const OpticalCore oc(ArchConfig::defaults());
  const tensor::ConvSpec spec{1, 1, 3, 1, 0};
  util::Rng rng(23);
  tensor::Tensor x({1, 1, 5, 5});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({1, 1, 3, 3});
  w.fill_normal(rng, 0.4f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  ExecutionContext ctx;
  ctx.noise_seed = 5;
  const auto first =
      oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  const auto second =
      oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  bool any_diff = false;
  for (std::size_t i = 0; i < first.size() && !any_diff; ++i) {
    any_diff = first[i] != second[i];
  }
  EXPECT_TRUE(any_diff) << "successive layers reused the same noise stream";
}

TEST(ExecutionContext, RunNetworkCollectsPerLayerStats) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(31);
  nn::Network net = nn::build_lenet(rng);
  tensor::Tensor x({2, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  ExecutionContext ctx;
  ctx.collect_stats = true;
  CompileOptions co;
  co.schedule = nn::PrecisionSchedule::uniform(4);
  const CompiledModel compiled = sys.compile(net, co);
  const auto logits = compiled.run(x, ctx).take();
  EXPECT_EQ(logits.dim(0), 2u);
  // LeNet: 2 conv + 3 fc weighted layers.
  ASSERT_EQ(ctx.stats.size(), 5u);
  for (const auto& s : ctx.stats) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.macs, 0u);
    EXPECT_EQ(s.frames, 2u);
    EXPECT_GE(s.wall_seconds, 0.0);
    EXPECT_GT(s.modeled_latency, 0.0);
    EXPECT_GT(s.modeled_energy, 0.0);
  }
  // A second batch through the same context accumulates into the same five
  // entries (per-frame modeled numbers unchanged, frame counts summed).
  compiled.run(x, ctx);
  ASSERT_EQ(ctx.stats.size(), 5u);
  for (const auto& s : ctx.stats) {
    EXPECT_EQ(s.frames, 4u);
  }
}

TEST(ExecutionContext, BackendChoiceFlowsThroughRunNetwork) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(32);
  nn::Network net = nn::build_lenet(rng);
  tensor::Tensor x({1, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  ExecutionContext ref_ctx, gemm_ctx;
  CompileOptions ref_co, gemm_co;
  ref_co.backend = "reference";
  ref_co.schedule = schedule;
  gemm_co.backend = "gemm";
  gemm_co.schedule = schedule;
  const auto ref = sys.compile(net, ref_co).run(x, ref_ctx).take();
  const auto gemm = sys.compile(net, gemm_co).run(x, gemm_ctx).take();
  expect_bit_exact(ref, gemm, "run_network");
}

TEST(GemmS16, FlatSegmentFullRangeDoesNotOverflow) {
  // segment=0 (one flat segment) with full-range int16 magnitudes exceeds an
  // int32 accumulator; the kernel must detect this and widen.
  const std::size_t m = 2, n = 3, k = 32;
  std::vector<std::int16_t> a(m * k, 32767), b(k * n, 32767);
  a[1] = -32768;
  std::vector<double> c(m * n);
  tensor::gemm_s16_segmented(m, n, k, a.data(), k, b.data(), n, /*segment=*/0,
                             c.data(), n);
  for (std::size_t i = 0; i < m; ++i) {
    double want = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      want += static_cast<double>(a[i * k + kk]) * 32767.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[i * n + j], want) << i << "," << j;
    }
  }
  std::vector<std::int16_t> b_col(k, 32767);
  EXPECT_EQ(tensor::dot_s16_segmented(a.data(), b_col.data(), k, 0),
            c[0 * n + 0]);
}

TEST(GemmS16, SegmentedKernelMatchesNaive) {
  util::Rng rng(41);
  const std::size_t m = 4, n = 13, k = 31, seg = 9;
  std::vector<std::int16_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform_index(15)) - 7;
  for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform_index(16));
  std::vector<double> c(m * n);
  tensor::gemm_s16_segmented(m, n, k, a.data(), k, b.data(), n, seg, c.data(),
                             n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double want = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        want += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      EXPECT_EQ(c[i * n + j], want) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace lightator::core
