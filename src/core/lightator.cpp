#include "core/lightator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/logging.hpp"

namespace lightator::core {

const LayerReport* SystemReport::find_layer(const std::string& name) const {
  for (const auto& l : layers) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

LightatorSystem::LightatorSystem(ArchConfig config)
    : config_(config),
      oc_(config),
      mapper_(config),
      power_(config),
      timing_(config) {}

SystemReport LightatorSystem::analyze(const nn::ModelDesc& model,
                                      const nn::PrecisionSchedule& schedule,
                                      const AnalyzeOptions& options) const {
  return analyze_impl(
      model,
      [&schedule](std::size_t i) { return schedule.weight_bits_for(i); },
      schedule.label(), options);
}

SystemReport LightatorSystem::analyze(const nn::ModelDesc& model,
                                      const std::vector<int>& weight_bits,
                                      const AnalyzeOptions& options) const {
  std::string label = "[";
  for (std::size_t i = 0; i < weight_bits.size(); ++i) {
    label += std::to_string(weight_bits[i]);
    if (i + 1 < weight_bits.size()) label += ",";
  }
  label += ":4]";
  return analyze_impl(
      model,
      [&weight_bits](std::size_t i) {
        return i < weight_bits.size() ? weight_bits[i] : weight_bits.back();
      },
      std::move(label), options);
}

SystemReport LightatorSystem::analyze_impl(
    const nn::ModelDesc& model,
    const std::function<int(std::size_t)>& weight_bits_for,
    std::string precision_label, const AnalyzeOptions& options) const {
  SystemReport report;
  report.model = model.name;
  report.precision = std::move(precision_label);
  report.total_macs = model.total_macs();
  report.total_weights = model.total_weights();

  // Optional CA front end ahead of L1.
  if (options.ca_frontend.has_value()) {
    const std::size_t in_h = options.ca_in_h ? options.ca_in_h : model.in_h;
    const std::size_t in_w = options.ca_in_w ? options.ca_in_w : model.in_w;
    const CompressiveAcquisitor ca(*options.ca_frontend, config_);
    LayerReport lr;
    lr.name = "CA";
    lr.mapping = ca.mapping(in_h, in_w);
    lr.power = power_.layer_power(lr.mapping, /*weight_bits=*/4,
                                  /*first_layer=*/true);
    lr.timing = timing_.layer_timing(lr.mapping);
    lr.weight_bits = 0;
    report.total_macs += lr.mapping.macs_per_output * lr.mapping.outputs;
    report.layers.push_back(std::move(lr));
  }

  std::size_t weighted_index = 0;
  bool first_weighted = true;
  for (const auto& layer : model.layers) {
    if (!layer.is_weighted() && !layer.is_pool()) continue;
    LayerReport lr;
    lr.name = layer.name;
    lr.mapping = mapper_.map_layer(layer);
    const int wbits = layer.is_weighted()
                          ? weight_bits_for(weighted_index)
                          : 0;
    lr.weight_bits = wbits;
    // The CRC pixel path feeds the first weighted layer only when no CA
    // front end already digested the frame.
    const bool crc_here = layer.is_weighted() && first_weighted &&
                          !options.ca_frontend.has_value();
    lr.power = power_.layer_power(lr.mapping, wbits == 0 ? 4 : wbits, crc_here);
    lr.timing = timing_.layer_timing(lr.mapping);
    if (layer.is_weighted()) {
      ++weighted_index;
      first_weighted = false;
    }
    report.layers.push_back(std::move(lr));
  }

  double energy = 0.0, duration = 0.0, amortized = 0.0;
  for (const auto& lr : report.layers) {
    // "Max Power" (Table 1) is the peak operational draw: the streaming
    // phase of the hungriest layer.
    report.max_power = std::max(report.max_power, lr.power.streaming.total());
    energy += lr.power.energy;
    duration += lr.timing.latency;
    amortized += lr.timing.amortized_per_frame;
  }
  report.energy_per_frame = energy;
  report.latency = duration;
  report.avg_power = duration > 0.0 ? energy / duration : 0.0;
  report.fps_batched = amortized > 0.0 ? 1.0 / amortized : 0.0;
  report.kfps_per_watt = report.max_power > 0.0
                             ? report.fps_batched / report.max_power / 1000.0
                             : 0.0;
  return report;
}

CompiledModel LightatorSystem::compile(const nn::Network& net,
                                       CompileOptions options) const {
  return Engine(*this).compile(net, std::move(options));
}

// ---- deprecated per-call shims ---------------------------------------------
//
// Each shim compiles the network for the call's precision/backend and runs
// once through CompiledModel — bit-identical to the pre-split per-call
// behavior (compilation performs exactly the per-forward quantize/pack the
// old path did), with none of the artifact reuse.

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace {

CompileOptions schedule_options(const nn::PrecisionSchedule& schedule,
                                const std::string& backend) {
  CompileOptions options;
  options.backend = backend;
  options.schedule = schedule;
  return options;
}

CompileOptions bits_options(const std::vector<int>& weight_bits, int act_bits,
                            const std::string& backend) {
  if (weight_bits.empty()) {
    // An empty vector would silently select CompileOptions' schedule mode
    // (and drop act_bits); the pre-split overloads never accepted it either.
    throw std::invalid_argument(
        "run_network_on_oc/evaluate_on_oc: weight_bits must be non-empty");
  }
  CompileOptions options;
  options.backend = backend;
  options.weight_bits = weight_bits;
  options.act_bits = act_bits;
  return options;
}

}  // namespace

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const nn::PrecisionSchedule& schedule, const FaultSpec& faults) const {
  ExecutionContext ctx;
  ctx.faults = faults;
  return compile(net, schedule_options(schedule, ctx.backend))
      .run(x, ctx)
      .take();
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const std::vector<int>& weight_bits, int act_bits,
    const FaultSpec& faults) const {
  ExecutionContext ctx;
  ctx.faults = faults;
  return compile(net, bits_options(weight_bits, act_bits, ctx.backend))
      .run(x, ctx)
      .take();
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const nn::PrecisionSchedule& schedule, ExecutionContext& ctx) const {
  return compile(net, schedule_options(schedule, ctx.backend))
      .run(x, ctx)
      .take();
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const std::vector<int>& weight_bits, int act_bits,
    ExecutionContext& ctx) const {
  return compile(net, bits_options(weight_bits, act_bits, ctx.backend))
      .run(x, ctx)
      .take();
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const std::vector<const tensor::Tensor*>& frames,
    const nn::PrecisionSchedule& schedule, ExecutionContext& ctx) const {
  return compile(net, schedule_options(schedule, ctx.backend))
      .run(frames, ctx)
      .take();
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const nn::PrecisionSchedule& schedule,
                                       std::size_t batch_size,
                                       std::size_t max_samples,
                                       const FaultSpec& faults) const {
  ExecutionContext ctx;
  ctx.faults = faults;
  return evaluate_on_oc(net, data, schedule, ctx, batch_size, max_samples);
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const nn::PrecisionSchedule& schedule,
                                       ExecutionContext& ctx,
                                       std::size_t batch_size,
                                       std::size_t max_samples) const {
  return compile(net, schedule_options(schedule, ctx.backend))
      .evaluate(data, ctx, batch_size, max_samples);
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const std::vector<int>& weight_bits,
                                       int act_bits, std::size_t batch_size,
                                       std::size_t max_samples) const {
  ExecutionContext ctx;
  return evaluate_on_oc(net, data, weight_bits, act_bits, ctx, batch_size,
                        max_samples);
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const std::vector<int>& weight_bits,
                                       int act_bits, ExecutionContext& ctx,
                                       std::size_t batch_size,
                                       std::size_t max_samples) const {
  return compile(net, bits_options(weight_bits, act_bits, ctx.backend))
      .evaluate(data, ctx, batch_size, max_samples);
}

#pragma GCC diagnostic pop

// ---- end deprecated shims --------------------------------------------------

std::vector<tensor::Tensor> LightatorSystem::acquire_frames(
    const std::vector<sensor::Image>& scenes, ExecutionContext& ctx,
    const CaptureOptions& capture) const {
  if (scenes.empty()) {
    throw std::invalid_argument("capture_and_infer: no scenes");
  }
  // Acquire every frame in parallel; each frame's sensor noise comes from a
  // stateless per-frame seed, so the captured codes are identical no matter
  // how the pool shards the frames.
  std::vector<tensor::Tensor> frames(scenes.size());
  ctx.thread_pool().parallel_for(0, scenes.size(), [&](std::size_t i) {
    std::unique_ptr<util::Rng> noise;
    if (capture.sensor_noise_seed != 0) {
      noise = std::make_unique<util::Rng>(
          mix_seed(capture.sensor_noise_seed, /*stream=*/0, i));
    }
    frames[i] = acquire(scenes[i], capture.ca, noise.get());
  });
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].shape() != frames[0].shape()) {
      throw std::invalid_argument(
          "capture_and_infer: scenes produced mismatched frame geometries");
    }
  }
  return frames;
}

tensor::Tensor LightatorSystem::capture_and_infer(
    nn::Network& net, const std::vector<sensor::Image>& scenes,
    const nn::PrecisionSchedule& schedule, ExecutionContext& ctx,
    const CaptureOptions& capture) const {
  CompileOptions options;
  options.backend = ctx.backend;
  options.schedule = schedule;
  return capture_and_infer(compile(net, std::move(options)), scenes, ctx,
                           capture)
      .take();
}

BatchOutput LightatorSystem::capture_and_infer(
    const CompiledModel& model, const std::vector<sensor::Image>& scenes,
    ExecutionContext& ctx, const CaptureOptions& capture) const {
  const std::vector<tensor::Tensor> frames =
      acquire_frames(scenes, ctx, capture);
  // Run the batched forward straight off the acquired frames (the gather
  // path): one compiled forward shares quantization and the programmed
  // weights across all frames, without re-stacking them first.
  std::vector<const tensor::Tensor*> frame_ptrs(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) frame_ptrs[i] = &frames[i];
  return model.run(frame_ptrs, ctx);
}

tensor::Tensor LightatorSystem::acquire(const sensor::Image& scene,
                                        const std::optional<CaOptions>& ca,
                                        util::Rng* noise) const {
  sensor::PixelArrayParams sensor_params = config_.sensor;
  sensor_params.rows = scene.height();
  sensor_params.cols = scene.width();
  sensor::PixelArray array(sensor_params);
  array.capture(scene, noise);
  const sensor::CodeFrame frame = array.read_codes(noise);

  // Reconstruct the RGB view the OC sees: demosaic the 4-bit Bayer codes.
  sensor::Image raw(frame.rows, frame.cols, 1);
  const float full_scale = 15.0f;
  for (std::size_t y = 0; y < frame.rows; ++y) {
    for (std::size_t x = 0; x < frame.cols; ++x) {
      raw.at(y, x) = static_cast<float>(frame.at(y, x)) / full_scale;
    }
  }
  sensor::Image rgb = sensor::bayer_demosaic(raw);

  sensor::Image processed = rgb;
  if (ca.has_value()) {
    const CompressiveAcquisitor acquisitor(*ca, config_);
    processed = acquisitor.apply(rgb);
  }
  tensor::Tensor out({1, processed.channels(), processed.height(),
                      processed.width()});
  for (std::size_t c = 0; c < processed.channels(); ++c) {
    for (std::size_t y = 0; y < processed.height(); ++y) {
      for (std::size_t x = 0; x < processed.width(); ++x) {
        out.at(0, c, y, x) = processed.at(y, x, c);
      }
    }
  }
  return out;
}

}  // namespace lightator::core
