// Power model: the component breakdown of Figs. 8 and 9.
//
// Per-layer average power is assembled from the mapper's active-resource
// counts:
//   DAC  — weight-tuning DACs, one per programmed MR cell, static
//          current-steering draw scaled by (2^b - 1)/15 at weight precision b
//          (power-gated branches: the paper's 2.4x bit-reduction claim).
//          Pre-set CA/pooling banks draw none.
//   TUN  — microheater power of programmed cells; computed from the actual
//          detuning of the mapped weight levels (expected value over a
//          uniform level distribution when only shapes are known).
//   DMVA — active VCSELs + drivers + selector, plus the CRC comparator bank
//          while the first layer streams pixels.
//   ADC  — one output ADC per active bank.
//   BPD  — balanced photodetector + TIA per active arm.
//   Misc — controller, weight/buffer SRAM dynamic + leakage.
// Layers with remap rounds average the (cheaper) remap phase and the
// streaming phase over their durations.
#pragma once

#include "core/arch_config.hpp"
#include "core/mapper.hpp"
#include "core/memory_model.hpp"

namespace lightator::core {

struct PowerBreakdown {
  double adc = 0.0;
  double dac = 0.0;
  double dmva = 0.0;
  double tun = 0.0;
  double bpd = 0.0;
  double misc = 0.0;

  double total() const { return adc + dac + dmva + tun + bpd + misc; }

  PowerBreakdown& operator+=(const PowerBreakdown& o);
  PowerBreakdown& operator*=(double s);
};

struct LayerPower {
  PowerBreakdown average;   // duration-weighted mean power (W)
  PowerBreakdown streaming; // power while symbols stream (W)
  double energy = 0.0;      // total layer energy, one frame (J)
  double duration = 0.0;    // latency-mode duration (s)
};

class PowerModel {
 public:
  explicit PowerModel(ArchConfig config);

  /// Average power/energy of one layer at the given weight precision.
  /// `first_layer` enables the CRC pixel-readout share of DMVA.
  /// `mean_abs_weight_level_fraction` is E[|w|]/w_max of the mapped weights
  /// in [0,1]; pass a negative value to use the uniform-level expectation.
  LayerPower layer_power(const LayerMapping& mapping, int weight_bits,
                         bool first_layer = false,
                         double mean_abs_weight_level_fraction = -1.0) const;

  /// Expected heater power per weight cell for `bits`-bit weights with
  /// uniformly distributed levels (one ring of the differential pair at the
  /// level's detuning, the other parked on resonance).
  double expected_tuning_power_per_cell(int weight_bits) const;

  /// Heater power per cell for a given |weight| in [0, 1].
  double tuning_power_for_weight(double abs_weight) const;

  /// Average electrical power of one active VCSEL channel (device + driver
  /// dynamic at the modulation rate + selector), at mid-scale drive.
  double vcsel_channel_power() const;

  const ArchConfig& config() const { return config_; }

 private:
  ArchConfig config_;
  SramModel weight_mem_;
  SramModel buffer_mem_;
};

}  // namespace lightator::core
