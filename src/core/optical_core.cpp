#include "core/optical_core.hpp"

#include <cmath>
#include <stdexcept>

#include "optics/microring.hpp"

namespace lightator::core {

OpticalCore::OpticalCore(ArchConfig config)
    : config_(config), dmva_(config) {}

double OpticalCore::arm_dot(std::span<const int> codes,
                            std::span<const int> levels,
                            int weight_bits) const {
  if (codes.size() != levels.size()) {
    throw std::invalid_argument("codes/levels size mismatch");
  }
  if (codes.size() > config_.geometry.mrs_per_arm) {
    throw std::invalid_argument("segment exceeds arm capacity");
  }
  const int act_levels = config_.vcsel.levels;
  const int wmax = (1 << (weight_bits - 1)) - 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] < 0 || codes[i] > act_levels) {
      throw std::out_of_range("activation code out of range");
    }
    if (levels[i] < -wmax || levels[i] > wmax) {
      throw std::out_of_range("weight level out of range");
    }
    acc += static_cast<double>(codes[i]) * static_cast<double>(levels[i]);
  }
  return acc / (static_cast<double>(act_levels) * static_cast<double>(wmax));
}

double OpticalCore::arm_dot_physical(std::span<const double> weights,
                                     std::span<const int> codes,
                                     int weight_bits,
                                     util::Rng* noise_rng) const {
  if (weights.size() != codes.size()) {
    throw std::invalid_argument("weights/codes size mismatch");
  }
  optics::ArmParams params;
  params.num_cells = config_.geometry.mrs_per_arm;
  params.weight_bits = weight_bits;
  params.activation_levels = config_.vcsel.levels;
  params.ring = config_.ring;
  params.vcsel = config_.vcsel;
  params.detector = config_.detector;
  optics::MrArm arm(params);
  // Pad the segment with zero weights / dark channels.
  std::vector<double> w(params.num_cells, 0.0);
  std::vector<int> c(params.num_cells, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    w[i] = weights[i];
    c[i] = codes[i];
  }
  arm.set_weights(w);
  return noise_rng == nullptr ? arm.compute(c) : arm.compute_noisy(c, *noise_rng);
}

double OpticalCore::reduce(std::span<const int> codes,
                           std::span<const int> levels,
                           int weight_bits) const {
  if (codes.size() != levels.size()) {
    throw std::invalid_argument("codes/levels size mismatch");
  }
  const std::size_t seg = config_.geometry.mrs_per_arm;
  double acc = 0.0;
  for (std::size_t begin = 0; begin < codes.size(); begin += seg) {
    const std::size_t len = std::min(seg, codes.size() - begin);
    acc += arm_dot(codes.subspan(begin, len), levels.subspan(begin, len),
                   weight_bits);
  }
  return acc;
}

tensor::Tensor OpticalCore::conv2d(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const tensor::ConvSpec& spec) const {
  if (x.is_signed || !w.is_signed) {
    throw std::invalid_argument("OC conv expects unsigned acts, signed weights");
  }
  if (x.shape.size() != 4 || w.shape.size() != 4) {
    throw std::invalid_argument("OC conv expects 4-d tensors");
  }
  const std::size_t batch = x.shape[0], c_in = x.shape[1], h = x.shape[2],
                    w_in = x.shape[3];
  if (c_in != spec.in_channels || w.shape[0] != spec.out_channels) {
    throw std::invalid_argument("OC conv shape mismatch");
  }
  const std::size_t k = spec.kernel;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w_in);
  tensor::Tensor y({batch, spec.out_channels, oh, ow});
  const double scale = x.scale * w.scale /
                       (static_cast<double>(x.max_level()) *
                        static_cast<double>(w.max_level()));
  const std::size_t seg = config_.geometry.mrs_per_arm;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      const std::int16_t* filter = w.levels.data() + oc * c_in * k * k;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          // Gather the window codes; out-of-bounds (padding) reads are dark
          // channels (code 0).
          double acc = 0.0;
          long seg_acc = 0;
          std::size_t in_seg = 0;
          for (std::size_t c = 0; c < c_in; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const long iy = static_cast<long>(oy * spec.stride + ky) -
                                static_cast<long>(spec.pad);
                const long ix = static_cast<long>(ox * spec.stride + kx) -
                                static_cast<long>(spec.pad);
                int code = 0;
                if (iy >= 0 && ix >= 0 && iy < static_cast<long>(h) &&
                    ix < static_cast<long>(w_in)) {
                  code = x.levels[((n * c_in + c) * h +
                                   static_cast<std::size_t>(iy)) *
                                      w_in +
                                  static_cast<std::size_t>(ix)];
                }
                const int level = filter[(c * k + ky) * k + kx];
                seg_acc += static_cast<long>(code) * level;
                if (++in_seg == seg) {
                  // Arm boundary: the BPD emits this partial sum.
                  acc += static_cast<double>(seg_acc);
                  seg_acc = 0;
                  in_seg = 0;
                }
              }
            }
          }
          acc += static_cast<double>(seg_acc);
          float out = static_cast<float>(acc * scale);
          if (!bias.empty()) out += bias[oc];
          y.at(n, oc, oy, ox) = out;
        }
      }
    }
  }
  return y;
}

tensor::Tensor OpticalCore::linear(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias) const {
  if (x.is_signed || !w.is_signed) {
    throw std::invalid_argument("OC linear expects unsigned acts, signed weights");
  }
  if (x.shape.size() != 2 || w.shape.size() != 2) {
    throw std::invalid_argument("OC linear expects 2-d tensors");
  }
  const std::size_t batch = x.shape[0], d = x.shape[1], out_f = w.shape[0];
  if (w.shape[1] != d) throw std::invalid_argument("OC linear shape mismatch");
  tensor::Tensor y({batch, out_f});
  const double scale = x.scale * w.scale /
                       (static_cast<double>(x.max_level()) *
                        static_cast<double>(w.max_level()));
  for (std::size_t n = 0; n < batch; ++n) {
    const std::int16_t* row = x.levels.data() + n * d;
    for (std::size_t o = 0; o < out_f; ++o) {
      const std::int16_t* filter = w.levels.data() + o * d;
      long acc = 0;
      for (std::size_t i = 0; i < d; ++i) {
        acc += static_cast<long>(row[i]) * filter[i];
      }
      float v = static_cast<float>(static_cast<double>(acc) * scale);
      if (!bias.empty()) v += bias[o];
      y.at(n, o) = v;
    }
  }
  return y;
}

double OpticalCore::tuning_power_for_levels(std::span<const int> levels,
                                            int weight_bits) const {
  const int wmax = (1 << (weight_bits - 1)) - 1;
  optics::MicroRing ring(config_.ring, 1550.0 * units::kNm);
  double total = 0.0;
  for (int level : levels) {
    ring.set_weight(std::fabs(static_cast<double>(level)) / wmax);
    total += ring.tuning_power();
  }
  return total;
}

}  // namespace lightator::core
