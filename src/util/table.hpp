// Plain-text and CSV table emitters used by the figure/table bench harnesses.
//
// TablePrinter renders the aligned, human-readable tables the benches print to
// stdout; the same rows can be dumped as CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace lightator::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; it may have fewer cells than the header (padded empty).
  /// Extra cells throw.
  void add_row(std::vector<std::string> row);

  /// Aligned fixed-width text rendering with a header separator.
  std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (benches use this for
/// compact scientific-style cells).
std::string format_sig(double value, int digits = 4);

/// Formats a double in fixed notation with `decimals` places.
std::string format_fixed(double value, int decimals = 2);

/// Formats a power in watts with an auto-selected unit (W / mW / uW / nW).
std::string format_power(double watts);

/// Formats a time in seconds with an auto-selected unit (s / ms / us / ns).
std::string format_time(double seconds);

}  // namespace lightator::util
