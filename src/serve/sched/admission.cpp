#include "serve/sched/admission.hpp"

#include <algorithm>
#include <cmath>

namespace lightator::serve::sched {

LoadEstimator::LoadEstimator(double alpha)
    : alpha_(std::clamp(alpha, 0.01, 1.0)) {}

void LoadEstimator::observe_batch(double queue_ms,
                                  double service_ms_per_request) {
  // The EWMAs are read lock-free on the submit path; updates happen once per
  // batch on worker threads. A racy read-modify-write between two workers
  // loses at most one batch's worth of smoothing — acceptable for a shed
  // heuristic, and it keeps the batch-completion path lock-free too.
  if (!seeded_.load(std::memory_order_acquire)) {
    queue_ms_.store(queue_ms, std::memory_order_relaxed);
    service_ms_.store(service_ms_per_request, std::memory_order_relaxed);
    seeded_.store(true, std::memory_order_release);
  } else {
    const double q = queue_ms_.load(std::memory_order_relaxed);
    const double s = service_ms_.load(std::memory_order_relaxed);
    queue_ms_.store(q + alpha_ * (queue_ms - q), std::memory_order_relaxed);
    service_ms_.store(s + alpha_ * (service_ms_per_request - s),
                      std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(window_mutex_);
  window_queue_ms_.add(queue_ms);
}

double LoadEstimator::queue_ms_ewma() const {
  return queue_ms_.load(std::memory_order_relaxed);
}

double LoadEstimator::service_ms_ewma() const {
  return service_ms_.load(std::memory_order_relaxed);
}

double LoadEstimator::expected_completion_ms(
    std::size_t depth, std::size_t active_replicas) const {
  if (!seeded_.load(std::memory_order_acquire)) return 0.0;
  const double service = service_ms_.load(std::memory_order_relaxed);
  const double replicas =
      static_cast<double>(std::max<std::size_t>(active_replicas, 1));
  return (static_cast<double>(depth) / replicas + 1.0) * service;
}

double LoadEstimator::window_queue_ms_quantile_and_reset(double q) {
  std::lock_guard<std::mutex> lock(window_mutex_);
  const double value =
      window_queue_ms_.empty() ? 0.0 : window_queue_ms_.quantile(q);
  window_queue_ms_ = util::StreamingQuantiles();
  return value;
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         std::size_t queue_capacity)
    : options_(options) {
  const double cap = static_cast<double>(std::max<std::size_t>(
      queue_capacity, 1));
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const double frac = std::clamp(options_.shed_depth[c], 0.0, 1.0);
    // A threshold of 1.0 disables the depth gate for that class entirely —
    // the queue's own capacity check produces the ordinary kRejected
    // backpressure, exactly the pre-sched behavior. Lower thresholds floor
    // at 1 so a class can still admit into an empty queue.
    depth_limit_[c] = frac >= 1.0
                          ? static_cast<std::size_t>(-1)
                          : std::max<std::size_t>(
                                static_cast<std::size_t>(frac * cap), 1);
  }
}

bool AdmissionController::admit(RequestClass klass, double deadline_ms,
                                std::size_t depth,
                                const LoadEstimator& estimator,
                                std::size_t active_replicas) const {
  if (!options_.enabled) return true;
  if (depth >= depth_limit_[class_index(klass)]) return false;
  if (options_.deadline_gate && deadline_ms > 0.0) {
    const double expected =
        estimator.expected_completion_ms(depth, active_replicas) *
        options_.deadline_headroom;
    if (expected > deadline_ms) return false;
  }
  return true;
}

}  // namespace lightator::serve::sched
