// Bounded-memory streaming quantile sketch (deterministic CDF re-gridding).
//
// The serving layer needs p50/p95/p99 latency over an unbounded request
// stream, and large fault Monte-Carlo campaigns need accuracy quantiles
// without holding every trial in memory. StreamingQuantiles keeps a weighted
// sample buffer of at most `capacity` entries: values stream in with weight
// 1; when the buffer overflows it is sorted and its weighted CDF is
// re-gridded onto capacity/2 evenly spaced rank cells, each surviving entry
// sitting at its cell's midpoint rank with the cell's total weight. The
// collapse is a pure function of the buffer (no RNG), and each compaction
// perturbs any rank by at most one cell width, total_weight / (capacity/2).
// Through `capacity` insertions the sketch is exact — quantile() reproduces
// the classic sorted-vector linear interpolation — and degrades gracefully
// beyond (measured: ~1% rank error at capacity 64 after 10k inserts).
//
// Count, min, max, mean, and (sample) standard deviation are tracked exactly
// for any stream length (Welford accumulation in insertion order, so results
// are a pure function of the input sequence).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lightator::util {

class StreamingQuantiles {
 public:
  /// `capacity` >= 8 bounds the buffer; sketches stay exact through that
  /// many insertions.
  explicit StreamingQuantiles(std::size_t capacity = 512);

  void add(double value);

  /// Merges another sketch's buffered samples into this one (weights
  /// preserved; exact accumulators combined). Insertion-order determinism is
  /// preserved when merge order is fixed.
  void merge(const StreamingQuantiles& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (n - 1 denominator); 0 for n < 2.
  double stddev() const;

  /// Quantile estimate for q in [0, 1] (clamped). Exact — identical to
  /// sorting the stream and linearly interpolating at rank q * (n - 1) —
  /// while at most `capacity` values have been added.
  double quantile(double q) const;

  /// True when no compaction has happened yet (quantiles are exact).
  bool is_exact() const { return exact_; }

 private:
  struct Entry {
    double value;
    std::uint64_t weight;
  };

  void compact();
  void ensure_sorted() const;
  /// Weighted-midpoint interpolation at a (fractional) rank; requires a
  /// sorted, non-empty buffer.
  double value_at_rank(double rank) const;

  std::size_t capacity_;
  bool exact_ = true;
  mutable bool sorted_ = true;
  mutable std::vector<Entry> entries_;

  std::uint64_t count_ = 0;
  double min_ = 0.0, max_ = 0.0;
  double mean_ = 0.0, m2_ = 0.0;  // Welford accumulators
};

}  // namespace lightator::util
