#include "core/compiler/autotune.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "nn/layer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm_s16.hpp"
#include "tensor/gemm_s16_packed.hpp"
#include "tensor/simd.hpp"

namespace lightator::core {
namespace {

using tensor::simd::KernelTier;

/// Conservative per-core L2 working-set budget; a B panel larger than this
/// makes the L2-sized strip-blocked variant worth racing.
constexpr std::size_t kL2BudgetBytes = 256 * 1024;
constexpr int kAutotuneReps = 3;
/// Hysteresis on winner selection: a challenger config must beat the
/// incumbent's best time by this fraction to take the choice. Near-tied
/// candidates otherwise flip on timing jitter, and a jitter-picked variant
/// is as likely as not to lose the rematch at execution time.
constexpr double kWinMargin = 0.05;

/// Deterministic LCG fill in [-mag, +mag], anchored so max_abs == mag and the
/// packed GEMM's narrow/wide width predicate sees exactly the magnitude the
/// geometry was derived from.
void fill_lcg(std::int16_t* v, std::size_t count, std::int16_t mag,
              std::uint32_t seed) {
  const std::uint32_t span = 2u * static_cast<std::uint32_t>(mag) + 1u;
  std::uint32_t s = seed;
  for (std::size_t i = 0; i < count; ++i) {
    s = s * 1664525u + 1013904223u;
    v[i] = static_cast<std::int16_t>(
        static_cast<std::int32_t>((s >> 8) % span) - mag);
  }
  if (count > 0) v[0] = mag;
}

double time_gemm_us(const tensor::PackedA& pa, const tensor::PackedB& pb,
                    double* c, std::size_t ldc,
                    const tensor::KernelConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  tensor::gemm_s16_packed(pa, pb, c, ldc, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

std::vector<tensor::KernelConfig> kernel_candidate_configs(
    const GemmGeometry& geom) {
  std::vector<tensor::KernelConfig> configs;
  const KernelTier top = tensor::simd::resolve_tier(KernelTier::kAuto);
  if (top == KernelTier::kScalar) return configs;  // nothing to choose

  configs.push_back(tensor::KernelConfig{top, 0});

  // L2-sized strip blocking when the B panel overflows the budget. One strip
  // costs kp/2 k-pairs x 32 int16 = 32*kp bytes.
  const std::size_t kp = tensor::packed_depth(geom.k, geom.seg);
  const std::size_t strips =
      (geom.n + tensor::kPackedCols - 1) / tensor::kPackedCols;
  const std::size_t strip_bytes = 32 * kp;
  if (strip_bytes > 0 && strips * strip_bytes > kL2BudgetBytes) {
    const std::size_t nc = std::max<std::size_t>(1, kL2BudgetBytes / strip_bytes);
    if (nc < strips) configs.push_back(tensor::KernelConfig{top, nc});
  }

  // The next tier down the ladder (resolve_tier(t) == t means the host — and
  // any LIGHTATOR_FORCE_KERNEL override — really runs t when asked for it).
  for (const KernelTier t : {KernelTier::kAvx512, KernelTier::kAvx2}) {
    if (static_cast<int>(t) < static_cast<int>(top) &&
        tensor::simd::resolve_tier(t) == t) {
      configs.push_back(tensor::KernelConfig{t, 0});
      break;
    }
  }
  return configs;
}

KernelPlanEntry autotune_gemm_geometry(const GemmGeometry& geom, int reps) {
  KernelPlanEntry entry;
  entry.geom = geom;
  if (geom.m == 0 || geom.n == 0 || geom.k == 0) return entry;

  const std::vector<tensor::KernelConfig> configs =
      kernel_candidate_configs(geom);
  if (configs.empty()) return entry;  // scalar-only host: keep auto dispatch
  if (configs.size() == 1) {
    entry.choice = configs.front();
    return entry;
  }

  LIGHTATOR_TRACE_SPAN("autotune_geometry", "compile");

  // Synthetic operands reproducing the geometry's accumulation mode: small
  // magnitudes keep every segment int32-safe; full-range magnitudes push the
  // width predicate into the int64 path for any multi-term segment.
  const std::int16_t mag =
      geom.wide ? std::numeric_limits<std::int16_t>::max() : 15;
  std::vector<std::int16_t> av(geom.m * geom.k);
  std::vector<std::int16_t> bv(geom.k * geom.n);
  fill_lcg(av.data(), av.size(), mag, 0x1234abcdu);
  fill_lcg(bv.data(), bv.size(), mag, 0x9e3779b9u);
  const tensor::PackedA pa =
      tensor::pack_a_s16(av.data(), geom.m, geom.k, geom.k, geom.seg);
  const tensor::PackedB pb =
      tensor::pack_b_s16(bv.data(), geom.k, geom.n, geom.n, geom.seg);
  std::vector<double> c(geom.m * geom.n);

  entry.measured = true;
  entry.hysteresis_margin = kWinMargin;
  double best = std::numeric_limits<double>::infinity();
  for (const tensor::KernelConfig& cfg : configs) {
    time_gemm_us(pa, pb, c.data(), geom.n, cfg);  // warmup
    double cand = std::numeric_limits<double>::infinity();
    for (int r = 0; r < std::max(1, reps); ++r) {
      cand = std::min(cand, time_gemm_us(pa, pb, c.data(), geom.n, cfg));
    }
    entry.candidates.push_back(KernelCandidate{cfg, cand});
    // Candidates are ordered simplest-first (top tier, unblocked, leads):
    // a challenger must beat the incumbent by a clear margin, so that
    // timing jitter between near-tied configs can never flip the choice
    // onto a variant that then loses the rematch.
    if (cand < best * (1.0 - kWinMargin)) {
      best = cand;
      entry.choice = cfg;
    }
  }

  // Race result onto the telemetry plane: how many geometries were measured,
  // how many candidates raced, and the winning best-of-reps times.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("compile.autotune.geometries").add(1);
  reg.counter("compile.autotune.candidates").add(entry.candidates.size());
  reg.histogram("compile.autotune.winner_us").observe(best);
  return entry;
}

namespace {

class KernelAutotunePass final : public CompilerPass {
 public:
  std::string name() const override { return "kernel-autotune"; }

  void run(CompiledPlan& plan, const PassContext& ctx) const override {
    // Only the gemm backend executes through the packed microkernels.
    if (ctx.backend == nullptr || ctx.backend->name() != "gemm") return;

    if (ctx.force_kernel != KernelTier::kAuto) {
      for (CompiledStep& step : plan.steps) {
        if (is_weighted(step)) {
          step.kernel = tensor::KernelConfig{ctx.force_kernel, 0};
        }
      }
      return;  // forced: deterministic, nothing measured or recorded
    }

    const KernelPlan* pinned = ctx.pinned_kernel_plan;
    if (pinned == nullptr && !tensor::simd::simd_active()) return;

    // Walk the per-item spatial size through the plan so each conv step's
    // output-pixel panel width is known. Unknown (empty input_shape, or a
    // degenerate geometry) poisons h/w to zero and conv steps keep auto
    // dispatch; fc geometries never need it.
    std::size_t h = 0, w = 0;
    if (ctx.input_shape.size() >= 2) {
      h = ctx.input_shape[ctx.input_shape.size() - 2];
      w = ctx.input_shape[ctx.input_shape.size() - 1];
    }

    for (CompiledStep& step : plan.steps) {
      switch (step.kind) {
        case nn::LayerKind::kConv: {
          if (h + 2 * step.conv.pad < step.conv.kernel ||
              w + 2 * step.conv.pad < step.conv.kernel || h == 0 || w == 0) {
            h = w = 0;
            break;
          }
          const std::size_t oh = step.conv.out_dim(h);
          const std::size_t ow = step.conv.out_dim(w);
          assign(plan, step,
                 step_geometry(step.conv.out_channels, oh * ow,
                               step.conv.weights_per_filter(), step, ctx),
                 pinned);
          h = oh;
          w = ow;
          if (step.epilogue.pool != PoolKind::kNone) {
            pool_dims(step.epilogue.pool_kernel, step.epilogue.pool_stride, h,
                      w);
          }
          break;
        }
        case nn::LayerKind::kLinear: {
          assign(plan, step,
                 step_geometry(std::max<std::size_t>(1, ctx.batch_hint),
                               step.fc_out, step.fc_in, step, ctx),
                 pinned);
          h = w = 0;  // spatial layout is gone after an fc layer
          break;
        }
        case nn::LayerKind::kMaxPool:
        case nn::LayerKind::kAvgPool:
          pool_dims(step.pool_kernel, step.pool_stride, h, w);
          break;
        default:
          break;  // flatten / activation: spatial size unchanged
      }
    }
  }

 private:
  static bool is_weighted(const CompiledStep& step) {
    return step.kind == nn::LayerKind::kConv ||
           step.kind == nn::LayerKind::kLinear;
  }

  static void pool_dims(std::size_t kernel, std::size_t stride, std::size_t& h,
                        std::size_t& w) {
    if (kernel == 0 || stride == 0 || h < kernel || w < kernel) {
      h = w = 0;
      return;
    }
    h = (h - kernel) / stride + 1;
    w = (w - kernel) / stride + 1;
  }

  /// The GEMM geometry this weighted step executes. The wide flag is the
  /// magnitude-bound version of the backend's data-driven width predicate
  /// (max weight level x max activation code): it can only over-predict
  /// wide, and a mispredicted mode only skews the timing model, never
  /// results.
  static GemmGeometry step_geometry(std::size_t m, std::size_t n,
                                    std::size_t k, const CompiledStep& step,
                                    const PassContext& ctx) {
    GemmGeometry g;
    g.m = m;
    g.n = n;
    g.k = k;
    g.seg = tensor::effective_segment(ctx.mrs_per_arm, k);
    const std::int32_t wmax = step.weights.max_level();
    const std::int32_t amax = (1 << step.abits) - 1;
    g.wide = !tensor::gemm_s16_int32_safe(wmax, amax,
                                          g.seg == 0 ? std::size_t{1} : g.seg);
    return g;
  }

  static void assign(CompiledPlan& plan, CompiledStep& step,
                     const GemmGeometry& geom, const KernelPlan* pinned) {
    if (pinned != nullptr) {
      if (const KernelPlanEntry* e = pinned->find(geom)) {
        step.kernel = e->choice;
        if (plan.kernel_plan.find(geom) == nullptr) {
          plan.kernel_plan.entries.push_back(*e);
        }
      }
      return;  // geometry absent from the pinned plan: keep auto dispatch
    }
    if (const KernelPlanEntry* e = plan.kernel_plan.find(geom)) {
      step.kernel = e->choice;  // already tuned this geometry in this plan
      return;
    }
    KernelPlanEntry e = autotune_gemm_geometry(geom, kAutotuneReps);
    step.kernel = e.choice;
    plan.kernel_plan.entries.push_back(std::move(e));
  }
};

}  // namespace

std::unique_ptr<CompilerPass> make_kernel_autotune_pass() {
  return std::make_unique<KernelAutotunePass>();
}

}  // namespace lightator::core
