#include <gtest/gtest.h>

#include <cmath>

#include "tensor/quantize.hpp"
#include "util/rng.hpp"

namespace lightator::tensor {
namespace {

TEST(FakeQuant, SymmetricBoundedError) {
  util::Rng rng(1);
  Tensor x({256});
  x.fill_normal(rng, 1.0f);
  Tensor original = x;
  const double scale = fake_quant_symmetric(x, 4);
  EXPECT_GT(scale, 0.0);
  const double step = scale / 7.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::fabs(x[i] - original[i]), step / 2 + 1e-6);
  }
}

TEST(FakeQuant, IdempotentOnQuantizedValues) {
  util::Rng rng(2);
  Tensor x({64});
  x.fill_normal(rng, 1.0f);
  const double scale = fake_quant_symmetric(x, 3);
  Tensor once = x;
  fake_quant_symmetric(x, 3, scale);
  EXPECT_TRUE(x.allclose(once, 1e-7f));
}

TEST(FakeQuant, FewerBitsMoreError) {
  util::Rng rng(3);
  Tensor base({512});
  base.fill_normal(rng, 1.0f);
  auto error_at = [&](int bits) {
    Tensor x = base;
    fake_quant_symmetric(x, bits);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err += std::fabs(x[i] - base[i]);
    }
    return err;
  };
  EXPECT_GT(error_at(2), error_at(3));
  EXPECT_GT(error_at(3), error_at(4));
  EXPECT_GT(error_at(4), error_at(6));
}

TEST(FakeQuant, UnsignedClampsNegatives) {
  Tensor x({2});
  x[0] = -0.5f;
  x[1] = 0.5f;
  fake_quant_unsigned(x, 4, 1.0);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  // 0.5 sits exactly between codes 7 and 8; either neighbor is one half-step.
  EXPECT_NEAR(x[1], 0.5f, 1.0 / 28.0);
}

TEST(FakeQuant, ZeroTensorNoOp) {
  Tensor x({8});
  EXPECT_DOUBLE_EQ(fake_quant_symmetric(x, 4), 0.0);
  EXPECT_DOUBLE_EQ(fake_quant_unsigned(x, 4), 0.0);
}

TEST(QuantizeTensor, SymmetricLevelsInRange) {
  util::Rng rng(4);
  Tensor x({128});
  x.fill_normal(rng, 2.0f);
  const QuantizedTensor q = quantize_symmetric(x, 4);
  EXPECT_TRUE(q.is_signed);
  EXPECT_EQ(q.max_level(), 7);
  for (auto l : q.levels) {
    EXPECT_GE(l, -7);
    EXPECT_LE(l, 7);
  }
}

TEST(QuantizeTensor, UnsignedCodesInRange) {
  util::Rng rng(5);
  Tensor x({128});
  x.fill_uniform(rng, 0.0f, 3.0f);
  const QuantizedTensor q = quantize_unsigned(x, 4);
  EXPECT_FALSE(q.is_signed);
  EXPECT_EQ(q.max_level(), 15);
  for (auto l : q.levels) {
    EXPECT_GE(l, 0);
    EXPECT_LE(l, 15);
  }
}

TEST(QuantizeTensor, DequantizeRoundTrip) {
  util::Rng rng(6);
  Tensor x({64});
  x.fill_normal(rng, 1.0f);
  const QuantizedTensor q = quantize_symmetric(x, 5);
  const Tensor back = dequantize(q);
  const double step = q.scale / q.max_level();
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::fabs(back[i] - x[i]), step / 2 + 1e-6);
  }
}

TEST(QuantizeTensor, BinaryWeights) {
  Tensor x({4});
  x[0] = 0.3f;
  x[1] = -0.2f;
  x[2] = 0.9f;
  x[3] = -0.9f;
  const QuantizedTensor q = quantize_symmetric(x, 1);
  EXPECT_EQ(q.max_level(), 1);
  EXPECT_EQ(q.levels[0], 1);
  EXPECT_EQ(q.levels[1], -1);
  const Tensor back = dequantize(q);
  EXPECT_FLOAT_EQ(std::fabs(back[0]), static_cast<float>(q.scale));
}

TEST(QuantizeTensor, ExplicitScaleRespected) {
  Tensor x({2});
  x[0] = 10.0f;  // beyond explicit scale -> saturates
  x[1] = 0.5f;
  const QuantizedTensor q = quantize_symmetric(x, 4, 1.0);
  EXPECT_EQ(q.levels[0], 7);
  EXPECT_NEAR(q.scale, 1.0, 1e-12);
}

}  // namespace
}  // namespace lightator::tensor
