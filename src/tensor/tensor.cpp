#include "tensor/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::tensor {

std::size_t shape_size(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {
  for (std::size_t d : shape_) {
    if (d == 0) throw std::invalid_argument("tensor dims must be positive");
  }
}

std::size_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("tensor dim out of range");
  return shape_[i];
}

float& Tensor::at(std::size_t i) {
  if (rank() != 1 || i >= shape_[0]) throw std::out_of_range("bad 1-d access");
  return data_[i];
}
float Tensor::at(std::size_t i) const {
  if (rank() != 1 || i >= shape_[0]) throw std::out_of_range("bad 1-d access");
  return data_[i];
}

float& Tensor::at(std::size_t i, std::size_t j) {
  if (rank() != 2 || i >= shape_[0] || j >= shape_[1]) {
    throw std::out_of_range("bad 2-d access");
  }
  return data_[i * shape_[1] + j];
}
float Tensor::at(std::size_t i, std::size_t j) const {
  if (rank() != 2 || i >= shape_[0] || j >= shape_[1]) {
    throw std::out_of_range("bad 2-d access");
  }
  return data_[i * shape_[1] + j];
}

std::size_t Tensor::flat_index(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w) const {
  if (rank() != 4 || n >= shape_[0] || c >= shape_[1] || h >= shape_[2] ||
      w >= shape_[3]) {
    throw std::out_of_range("bad 4-d access");
  }
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[flat_index(n, c, h, w)];
}
float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return data_[flat_index(n, c, h, w)];
}

void Tensor::reshape(Shape new_shape) {
  if (shape_size(new_shape) != data_.size()) {
    throw std::invalid_argument("reshape changes element count");
  }
  shape_ = std::move(new_shape);
}

void Tensor::resize(const Shape& shape) {
  shape_.assign(shape.begin(), shape.end());
  data_.resize(shape_size(shape_));
}

void Tensor::resize(std::initializer_list<std::size_t> dims) {
  shape_.assign(dims);
  data_.resize(shape_size(shape_));
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::add_scaled(const Tensor& x, float alpha) {
  if (x.size() != size()) throw std::invalid_argument("add_scaled size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * x.data_[i];
}

void Tensor::scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

void Tensor::fill_normal(util::Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace lightator::tensor
