// Ordered compiler pass pipeline over the CompiledPlan.
//
// The graph_transformer idiom: each pass is a small named object that
// rewrites the plan in place; the PassManager runs them in order, validates
// the plan's invariants after every pass (a broken rewrite fails loudly at
// compile time, never as silent bad numerics), and records the applied pass
// names on the plan for introspection. Engine::compile builds the default
// pipeline from CompileOptions::passes, so every pass can be toggled
// independently — the contract the per-pass equivalence suite checks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/compiler/plan.hpp"

namespace lightator::core {

/// Compile-time context handed to every pass.
struct PassContext {
  const ComputeBackend* backend = nullptr;
  std::size_t mrs_per_arm = 0;
  /// Kernel-autotune inputs (see core/compiler/autotune.hpp). The per-item
  /// input geometry ([1, C, H, W] or [C, H, W]) conv tuning derives its
  /// panel widths from — when empty, conv steps keep auto dispatch and only
  /// fc geometries (fully known at compile time) are tuned.
  tensor::Shape input_shape;
  /// Representative batch size for fc GEMM tuning (the batch is a run-time
  /// property; any value yields a valid, bit-exact config).
  std::size_t batch_hint = 8;
  /// A previously recorded plan to apply verbatim — no measuring, fully
  /// deterministic. Geometries absent from the pinned plan keep auto
  /// dispatch.
  const KernelPlan* pinned_kernel_plan = nullptr;
  /// Explicit tier override (kAuto = none): pins every weighted step without
  /// measuring. The CompileOptions face of LIGHTATOR_FORCE_KERNEL.
  tensor::simd::KernelTier force_kernel = tensor::simd::KernelTier::kAuto;
};

class CompilerPass {
 public:
  virtual ~CompilerPass() = default;
  virtual std::string name() const = 0;
  virtual void run(CompiledPlan& plan, const PassContext& ctx) const = 0;
};

class PassManager {
 public:
  PassManager& add(std::unique_ptr<CompilerPass> pass);

  /// Runs every pass in order, validating the plan after each one and
  /// appending the pass name to plan.applied_passes.
  void run(CompiledPlan& plan, const PassContext& ctx) const;

  std::vector<std::string> pass_names() const;

 private:
  std::vector<std::unique_ptr<CompilerPass>> passes_;
};

/// The standard pipeline in its canonical order — dead-stage elimination
/// (so fusion never absorbs a stage that is about to be dropped), stage
/// fusion, kernel autotuning (after fusion: fused pools change downstream
/// conv geometry), memory planning — with each stage gated by `options`.
PassManager default_pass_pipeline(const PassOptions& options);

/// Structural invariants every pass must preserve: contiguous weighted
/// indices, weights present on weighted steps, epilogues only on weighted
/// steps (pooling only on conv), sane pool geometry. Throws
/// std::logic_error on violation.
void validate_plan(const CompiledPlan& plan);

}  // namespace lightator::core
