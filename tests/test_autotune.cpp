// Kernel-autotune pass suite: the tuning report a compile records, the
// deterministic pinned-plan and forced-tier compile paths, and bit-exactness
// of the autotuned artifact against plain auto dispatch and against every
// forced tier.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/compiler/autotune.hpp"
#include "core/experiment.hpp"
#include "nn/models.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace lightator::core {
namespace {

tensor::Tensor lenet_batch(std::size_t n, std::uint64_t seed) {
  tensor::Tensor x({n, 1, 28, 28});
  util::Rng rng(seed);
  x.fill_uniform(rng, 0.0f, 1.0f);
  return x;
}

tensor::Tensor run_model(const CompiledModel& m, const tensor::Tensor& x) {
  ExecutionContext ctx;
  return m.run(x, ctx).take();
}

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const char* label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

CompileOptions tuned_options() {
  CompileOptions co;
  co.input_shape = {1, 1, 28, 28};  // unlocks conv geometry derivation
  return co;
}

TEST(KernelAutotune, CompileRecordsATuningReport) {
  if (!tensor::simd::simd_active()) {
    GTEST_SKIP() << "scalar-only host: nothing to tune";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(301);
  const nn::Network net = nn::build_lenet(rng);
  const CompiledModel model = sys.compile(net, tuned_options());

  // LeNet: 2 conv + 3 fc = 5 weighted steps, each with a distinct geometry.
  const KernelPlan& plan = model.kernel_plan();
  EXPECT_EQ(plan.entries.size(), 5u);
  for (const KernelPlanEntry& e : plan.entries) {
    EXPECT_GT(e.geom.m, 0u);
    EXPECT_GT(e.geom.n, 0u);
    EXPECT_GT(e.geom.k, 0u);
    // A measured entry carries its full candidate table and the winner is
    // one of the candidates; a single-candidate geometry is unmeasured.
    if (e.measured) {
      EXPECT_GE(e.candidates.size(), 2u);
      bool winner_listed = false;
      for (const KernelCandidate& c : e.candidates) {
        EXPECT_GT(c.best_us, 0.0);
        winner_listed = winner_listed || c.config == e.choice;
      }
      EXPECT_TRUE(winner_listed);
    }
    // Whatever won must actually run (resolve to itself on this host).
    EXPECT_EQ(tensor::simd::resolve_tier(e.choice.tier), e.choice.tier);
  }
  // The frozen per-step config is visible through the artifact.
  for (std::size_t i = 0; i < model.num_weighted_layers(); ++i) {
    EXPECT_NE(model.kernel_config(i).tier, tensor::simd::KernelTier::kAuto);
  }
}

TEST(KernelAutotune, WithoutInputShapeOnlyFcGeometriesAreTuned) {
  if (!tensor::simd::simd_active()) {
    GTEST_SKIP() << "scalar-only host: nothing to tune";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(302);
  const nn::Network net = nn::build_lenet(rng);
  const CompiledModel model = sys.compile(net, {});  // no input_shape
  EXPECT_EQ(model.kernel_plan().entries.size(), 3u);  // the 3 fc layers
  EXPECT_EQ(model.kernel_config(0).tier, tensor::simd::KernelTier::kAuto);
  EXPECT_EQ(model.kernel_config(1).tier, tensor::simd::KernelTier::kAuto);
}

TEST(KernelAutotune, AutotunedMatchesAutoDispatchBitExactly) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(303);
  const nn::Network net = nn::build_lenet(rng);
  const tensor::Tensor x = lenet_batch(4, 9001);

  CompileOptions off = tuned_options();
  off.passes.autotune_kernels = false;
  const tensor::Tensor baseline =
      run_model(sys.compile(net, off), x);
  const tensor::Tensor tuned =
      run_model(sys.compile(net, tuned_options()), x);
  expect_bit_exact(baseline, tuned, "autotuned_vs_auto");
}

TEST(KernelAutotune, PinnedPlanReproducesChoicesWithoutMeasuring) {
  if (!tensor::simd::simd_active()) {
    GTEST_SKIP() << "scalar-only host: nothing to tune";
  }
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(304);
  const nn::Network net = nn::build_lenet(rng);

  const CompiledModel first = sys.compile(net, tuned_options());
  CompileOptions pin = tuned_options();
  pin.pinned_kernel_plan =
      std::make_shared<const KernelPlan>(first.kernel_plan());
  const CompiledModel second = sys.compile(net, pin);

  // Identical per-step configs and an identical recorded plan — the
  // deterministic artifact contract (same machine + pinned plan).
  ASSERT_EQ(second.kernel_plan().entries.size(),
            first.kernel_plan().entries.size());
  for (std::size_t i = 0; i < first.num_weighted_layers(); ++i) {
    EXPECT_EQ(first.kernel_config(i), second.kernel_config(i)) << "step " << i;
  }
  for (const KernelPlanEntry& e : first.kernel_plan().entries) {
    const KernelPlanEntry* pe = second.kernel_plan().find(e.geom);
    ASSERT_NE(pe, nullptr);
    EXPECT_EQ(pe->choice, e.choice);
  }

  const tensor::Tensor x = lenet_batch(4, 9002);
  expect_bit_exact(run_model(first, x), run_model(second, x),
                   "pinned_outputs");
}

TEST(KernelAutotune, ForceKernelPinsEveryWeightedStep) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(305);
  const nn::Network net = nn::build_lenet(rng);
  const tensor::Tensor x = lenet_batch(3, 9003);

  tensor::Tensor baseline;
  for (const tensor::simd::KernelTier tier :
       tensor::simd::available_tiers()) {
    CompileOptions co = tuned_options();
    co.force_kernel = tier;
    const CompiledModel model = sys.compile(net, co);
    EXPECT_TRUE(model.kernel_plan().empty());  // forced: nothing measured
    for (std::size_t i = 0; i < model.num_weighted_layers(); ++i) {
      EXPECT_EQ(model.kernel_config(i).tier, tier);
    }
    const tensor::Tensor out = run_model(model, x);
    if (baseline.empty()) {
      baseline = out;
    } else {
      expect_bit_exact(baseline, out, tensor::simd::tier_name(tier));
    }
  }
}

TEST(KernelAutotune, CandidateConfigsLadderShape) {
  if (!tensor::simd::simd_active()) {
    GTEST_SKIP() << "scalar-only host: no candidates";
  }
  const tensor::simd::KernelTier top =
      tensor::simd::resolve_tier(tensor::simd::KernelTier::kAuto);
  // Small panel: top tier unblocked, plus at most a lower tier.
  GemmGeometry small{16, 64, 150, 9, false};
  const auto small_cfgs = kernel_candidate_configs(small);
  ASSERT_FALSE(small_cfgs.empty());
  EXPECT_EQ(small_cfgs.front().tier, top);
  EXPECT_EQ(small_cfgs.front().nc_strips, 0u);
  for (const auto& cfg : small_cfgs) {
    EXPECT_EQ(cfg.nc_strips, 0u) << "small panel must not block";
  }
  // A B panel well beyond 256 KiB adds an L2-blocked variant of the top tier.
  GemmGeometry big{64, 4096, 1152, 9, false};
  const auto big_cfgs = kernel_candidate_configs(big);
  bool has_blocked = false;
  for (const auto& cfg : big_cfgs) {
    has_blocked = has_blocked || (cfg.tier == top && cfg.nc_strips > 0);
  }
  EXPECT_TRUE(has_blocked);

  // The measurement helper produces a well-formed entry for the big case.
  const KernelPlanEntry e = autotune_gemm_geometry(big, 1);
  EXPECT_TRUE(e.measured);
  EXPECT_EQ(e.candidates.size(), big_cfgs.size());
}

}  // namespace
}  // namespace lightator::core
