// Compiler pass pipeline suite: stage fusion, dead-stage elimination, and
// static memory planning must be pure optimizations.
//
// The central contract: for EVERY combination of the three passes, the
// compiled forward is bit-identical (gemm/reference backends) or
// seeded-noise-identical (physical backend) to the unoptimized plan — on
// LeNet and VGG9, batch 1 and 8, stacked and gathered inputs, per-batch and
// per-item activation scales, plain and QAT-calibrated networks. On top of
// the equivalence sweep: plan-shrink accounting for dead-stage elimination,
// applied-pass introspection, planned-vs-naive peak memory, and thread-count
// invariance of the row-range fc sharding.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "nn/models.hpp"
#include "nn/qat.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::core {
namespace {

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

PassOptions pass_combo(bool dse, bool fuse, bool mem) {
  PassOptions p;
  p.eliminate_dead_stages = dse;
  p.fuse_stages = fuse;
  p.plan_memory = mem;
  // The kernel-autotune pass is covered by its own suite
  // (tests/test_autotune.cpp): it only moves dispatch, never results, so the
  // structural combos here sweep the plan-rewriting passes.
  p.autotune_kernels = false;
  return p;
}

std::string combo_label(const PassOptions& p) {
  return std::string("dse=") + (p.eliminate_dead_stages ? "1" : "0") +
         " fuse=" + (p.fuse_stages ? "1" : "0") +
         " mem=" + (p.plan_memory ? "1" : "0");
}

/// One compiled forward with a fresh context (fresh noise streams, so the
/// physical backend draws identically for identical plans and seeds).
tensor::Tensor run_once(const LightatorSystem& sys, const nn::Network& net,
                        const std::string& backend, const PassOptions& passes,
                        const tensor::Tensor& x, std::uint64_t noise_seed) {
  CompileOptions co;
  co.backend = backend;
  co.passes = passes;
  const CompiledModel compiled = sys.compile(net, co);
  ExecutionContext ctx;
  ctx.noise_seed = noise_seed;
  return compiled.run(x, ctx).take();
}

TEST(CompilerPasses, EveryPassComboMatchesUnoptimizedPlan) {
  // The full sweep: 2 networks x 2 batch sizes x 3 backends x 8 pass
  // combinations, all against the all-passes-off plan. LeNet covers the
  // conv->relu->avgpool chains and the fc tail; the slim VGG9 covers
  // conv->relu (no pool) and conv->relu->maxpool chains.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(101);
  const nn::Network lenet = nn::build_lenet(rng);
  const nn::Network vgg = nn::build_vgg9(rng, 10, /*width_mult=*/0.125);

  struct Workload {
    const nn::Network* net;
    tensor::Shape frame;
    const char* name;
  };
  const std::array<Workload, 2> workloads = {
      Workload{&lenet, {1, 1, 28, 28}, "lenet"},
      Workload{&vgg, {1, 3, 32, 32}, "vgg9"}};

  for (const Workload& wl : workloads) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      tensor::Shape shape = wl.frame;
      shape[0] = batch;
      tensor::Tensor x(shape);
      x.fill_uniform(rng, 0.0f, 1.0f);
      for (const std::string backend : {"reference", "gemm", "physical"}) {
        const std::uint64_t seed = backend == "physical" ? 77 : 0;
        const tensor::Tensor baseline =
            run_once(sys, *wl.net, backend, pass_combo(false, false, false), x,
                     seed);
        for (int mask = 1; mask < 8; ++mask) {
          const PassOptions passes =
              pass_combo((mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0);
          const tensor::Tensor out =
              run_once(sys, *wl.net, backend, passes, x, seed);
          expect_bit_exact(baseline, out,
                           std::string(wl.name) + " b" +
                               std::to_string(batch) + " " + backend + " " +
                               combo_label(passes));
        }
      }
    }
  }
}

TEST(CompilerPasses, FusedMatchesUnfusedOnQatCalibratedNetwork) {
  // QAT-calibrated activations carry a frozen fake-quant scale; the fused
  // epilogue must apply it at exactly the staged pipeline's point (after the
  // activation, before pooling).
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(102);
  workloads::SynthMnistOptions mo;
  mo.samples = 48;
  const nn::Dataset data = workloads::make_synth_mnist(mo);
  nn::Network net = nn::build_lenet(rng);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  nn::enable_qat(net, schedule);
  nn::calibrate_activations(net, data, /*num_batches=*/2, /*batch_size=*/16);

  tensor::Tensor x({8, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  for (const std::string backend : {"reference", "gemm"}) {
    expect_bit_exact(
        run_once(sys, net, backend, pass_combo(false, false, false), x, 0),
        run_once(sys, net, backend, pass_combo(true, true, true), x, 0),
        "qat_" + backend);
  }
}

TEST(CompilerPasses, GatherAndPerItemScalesMatchAcrossCombos) {
  // The serving-shaped call: gathered [1, ...] frames, per-item activation
  // scales, per-request noise stream ids. Fusion + planning must preserve
  // it bit-for-bit too (per-item scales exercise the epilogue's per-row
  // scale lookup).
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(103);
  const nn::Network net = nn::build_lenet(rng);

  std::vector<tensor::Tensor> frames;
  for (std::size_t i = 0; i < 4; ++i) {
    tensor::Tensor f({1, 1, 28, 28});
    f.fill_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(f));
  }
  std::vector<const tensor::Tensor*> ptrs;
  for (const auto& f : frames) ptrs.push_back(&f);

  auto run_gathered = [&](const std::string& backend,
                          const PassOptions& passes) {
    CompileOptions co;
    co.backend = backend;
    co.passes = passes;
    const CompiledModel compiled = sys.compile(net, co);
    ExecutionContext ctx;
    ctx.per_item_act_scale = true;
    ctx.noise_seed = backend == "physical" ? 55 : 0;
    ctx.noise_stream_ids = {10, 11, 12, 13};
    return compiled.run(ptrs, ctx).take();
  };

  for (const std::string backend : {"gemm", "physical"}) {
    const tensor::Tensor baseline =
        run_gathered(backend, pass_combo(false, false, false));
    for (int mask = 1; mask < 8; ++mask) {
      const PassOptions passes =
          pass_combo((mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0);
      expect_bit_exact(baseline, run_gathered(backend, passes),
                       "gather_" + backend + " " + combo_label(passes));
    }
  }
}

TEST(CompilerPasses, DeadStageEliminationAndFusionShrinkThePlan) {
  // LeNet's 12 stages: DSE drops the flatten (12 -> 11); fusion then folds
  // every activation and pool into its producing conv/fc (11 -> 5 weighted
  // steps). The weighted count never changes.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(104);
  const nn::Network net = nn::build_lenet(rng);

  CompileOptions off;
  off.passes = pass_combo(false, false, false);
  const CompiledModel unopt = sys.compile(net, off);
  EXPECT_EQ(unopt.num_layers(), 12u);
  EXPECT_EQ(unopt.num_weighted_layers(), 5u);
  EXPECT_TRUE(unopt.applied_passes().empty());

  CompileOptions dse_only;
  dse_only.passes = pass_combo(true, false, false);
  const CompiledModel dse = sys.compile(net, dse_only);
  EXPECT_EQ(dse.num_layers(), 11u);
  ASSERT_EQ(dse.applied_passes().size(), 1u);
  EXPECT_EQ(dse.applied_passes()[0], "dead-stage-elimination");

  const CompiledModel full = sys.compile(net, {});  // all passes default on
  EXPECT_EQ(full.num_layers(), 5u);
  EXPECT_EQ(full.num_weighted_layers(), 5u);
  ASSERT_EQ(full.applied_passes().size(), 4u);
  EXPECT_EQ(full.applied_passes()[0], "dead-stage-elimination");
  EXPECT_EQ(full.applied_passes()[1], "stage-fusion");
  EXPECT_EQ(full.applied_passes()[2], "kernel-autotune");
  EXPECT_EQ(full.applied_passes()[3], "memory-planning");

  // Introspection by weighted index survives the rewrite.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(full.weight_bits(i), unopt.weight_bits(i));
    EXPECT_EQ(full.weights(i).levels, unopt.weights(i).levels);
  }
}

TEST(CompilerPasses, PlannedPeakMemoryBeatsNaivePeak) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(105);
  const nn::Network lenet = nn::build_lenet(rng);
  const nn::Network vgg = nn::build_vgg9(rng, 10, /*width_mult=*/0.25);

  const CompiledModel clenet = sys.compile(lenet, {});
  const MemoryReport lr = clenet.memory_report(8, {1, 1, 28, 28});
  EXPECT_GT(lr.planned_peak_bytes, 0u);
  EXPECT_LT(lr.planned_peak_bytes, lr.naive_peak_bytes);

  CompileOptions co;
  co.backend = "gemm";
  const CompiledModel cvgg = sys.compile(vgg, co);
  const MemoryReport vr = cvgg.memory_report(8, {1, 3, 32, 32});
  EXPECT_LT(vr.planned_peak_bytes, vr.naive_peak_bytes);

  // More shards cost more scratch (one slot each), never less.
  const MemoryReport vr4 = cvgg.memory_report(8, {1, 3, 32, 32}, /*slots=*/4);
  EXPECT_GE(vr4.planned_peak_bytes, vr.planned_peak_bytes);
}

TEST(CompilerPasses, ThreadCountNeverChangesResults) {
  // The row-range fc sharding (and the sharded fused conv loop) must be
  // bit-exact across thread counts — the historical per-item contract, now
  // over contiguous ranges. Batch 7 forces ragged shard boundaries.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(106);
  const nn::Network mlp = nn::build_mlp(rng, 64, 96, 10);
  const nn::Network lenet = nn::build_lenet(rng);

  struct Workload {
    const nn::Network* net;
    tensor::Shape shape;
    const char* name;
  };
  const std::array<Workload, 2> workloads = {
      Workload{&mlp, {7, 1, 8, 8}, "mlp"},
      Workload{&lenet, {7, 1, 28, 28}, "lenet"}};

  for (const Workload& wl : workloads) {
    tensor::Tensor x(wl.shape);
    x.fill_uniform(rng, 0.0f, 1.0f);
    const CompiledModel compiled = sys.compile(*wl.net, {});
    util::ThreadPool pool1(1);
    ExecutionContext ctx1;
    ctx1.pool = &pool1;
    const tensor::Tensor serial = compiled.run(x, ctx1).take();
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      util::ThreadPool pool(threads);
      ExecutionContext ctx;
      ctx.pool = &pool;
      expect_bit_exact(serial, compiled.run(x, ctx).take(),
                       std::string(wl.name) + "_threads" +
                           std::to_string(threads));
    }
  }
}

TEST(CompilerPasses, EvaluateAndRepeatedRunsStableUnderFullPipeline) {
  // The arena is per-context and reused across forwards: repeated runs and
  // batched evaluation must not drift as buffers warm up.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(107);
  const nn::Network net = nn::build_lenet(rng);
  const CompiledModel compiled = sys.compile(net, {});

  tensor::Tensor x({3, 1, 28, 28});
  x.fill_uniform(rng, 0.0f, 1.0f);
  ExecutionContext ctx;
  const tensor::Tensor first = compiled.run(x, ctx).take();
  for (int r = 0; r < 4; ++r) {
    expect_bit_exact(first, compiled.run(x, ctx).take(),
                     "warm_repeat" + std::to_string(r));
  }
  // Alternating batch geometries through one arena (ratcheting capacities).
  tensor::Tensor big({8, 1, 28, 28});
  big.fill_uniform(rng, 0.0f, 1.0f);
  const tensor::Tensor big_first = compiled.run(big, ctx).take();
  expect_bit_exact(first, compiled.run(x, ctx).take(), "after_big_batch");
  expect_bit_exact(big_first, compiled.run(big, ctx).take(), "big_repeat");
}

}  // namespace
}  // namespace lightator::core
