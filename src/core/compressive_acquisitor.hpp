// Compressive Acquisitor (paper §3.2): fused RGB-to-grayscale conversion and
// average pooling in a single optical pass over pre-set MR coefficients.
//
// Eq. 1: for a pxp pooling window, the output is a weighted sum of the
// 3*p^2 window values with weights (1/p^2) * {0.299, 0.587, 0.114}. The
// coefficients are quantized to the CA banks' MR levels once at configuration
// time; apply() reproduces exactly what the mapped hardware computes.
#pragma once

#include <vector>

#include "core/arch_config.hpp"
#include "core/mapper.hpp"
#include "sensor/image.hpp"

namespace lightator::core {

struct CaOptions {
  std::size_t pool_factor = 2;   // p (1 = no pooling)
  bool to_grayscale = true;      // fold in the luma weights
  int weight_bits = 4;           // MR level precision of the coefficients
};

class CompressiveAcquisitor {
 public:
  CompressiveAcquisitor(CaOptions options, const ArchConfig& config);

  const CaOptions& options() const { return options_; }

  /// The exact (unquantized) fused window coefficients, ordered
  /// (dy, dx, channel); length 3*p^2 for grayscale, p^2 for channel-wise.
  std::vector<double> ideal_weights() const;

  /// The coefficients the MR levels actually realize (quantized).
  std::vector<double> mapped_weights() const;

  /// Runs the compressive acquisition on an RGB scene with the mapped
  /// (quantized) coefficients. Output: grayscale H/p x W/p (grayscale mode)
  /// or RGB H/p x W/p (channel-wise mode).
  sensor::Image apply(const sensor::Image& rgb) const;

  /// Resource/occupancy view for the power & timing models.
  LayerMapping mapping(std::size_t in_h, std::size_t in_w) const;

  /// MACs per output of the fused window.
  std::size_t window_size() const;

 private:
  CaOptions options_;
  ArchConfig config_;
  std::vector<double> mapped_;  // quantized coefficients, cached
};

}  // namespace lightator::core
