// Versatile image processing on the OC: a library of classic 3x3 kernels
// and the machinery to run them through the optical MAC path.
//
// This is the paper's "versatile image processing at the edge" claim as an
// API: a named kernel is quantized to MR levels, mapped onto one arm per
// stride (Fig. 5), and applied to a grayscale image through the quantized
// functional path. Quality metrics (PSNR, per-kernel quantization error) and
// the mapping/power footprint of a filtering pass are exposed so users can
// budget a pipeline without touching the DNN stack.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/mapper.hpp"
#include "core/optical_core.hpp"
#include "sensor/image.hpp"

namespace lightator::core {

enum class FilterKind {
  kIdentity,
  kSobelX,
  kSobelY,
  kGaussianBlur,
  kSharpen,
  kLaplacian,
  kEmboss,
  kBoxBlur,
};

/// All supported kinds (iteration order of list_filters()).
std::vector<FilterKind> all_filter_kinds();

const char* filter_name(FilterKind kind);

/// The 3x3 taps (row-major) of a kernel.
std::array<float, 9> filter_taps(FilterKind kind);

struct FilterResult {
  sensor::Image output;     // filtered image, values clamped to [0,1]
  double psnr_vs_float = 0.0;  // against the float-tap reference
  double weight_rms_error = 0.0;  // quantization error of the taps
};

class FilterBank {
 public:
  explicit FilterBank(ArchConfig config, int weight_bits = 4);

  int weight_bits() const { return weight_bits_; }

  /// Runs one kernel over a grayscale image through the OC functional path
  /// (same-size output; zero padding).
  FilterResult apply(FilterKind kind, const sensor::Image& gray) const;

  /// Runs several kernels in one pass (they share the activation broadcast,
  /// like multiple filters of a conv layer sharing a window).
  std::vector<FilterResult> apply_all(const std::vector<FilterKind>& kinds,
                                      const sensor::Image& gray) const;

  /// Fabric footprint of an n-kernel filtering pass over an HxW image:
  /// one arm per kernel (Fig. 6a), streaming H*W cycles.
  LayerMapping mapping(std::size_t num_kernels, std::size_t height,
                       std::size_t width) const;

 private:
  ArchConfig config_;
  OpticalCore oc_;
  Mapper mapper_;
  int weight_bits_;
};

/// Peak signal-to-noise ratio between two equal-size grayscale images,
/// full scale 1.0 (dB; 99 dB cap for identical inputs).
double image_psnr(const sensor::Image& a, const sensor::Image& b);

}  // namespace lightator::core
