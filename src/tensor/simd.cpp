#include "tensor/simd.hpp"

#include <atomic>

namespace lightator::tensor::simd {

namespace {

#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
bool cpu_has_avx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}
#endif

std::atomic<bool>& runtime_enabled_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

bool compiled_with_simd() {
#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
  return true;
#else
  return false;
#endif
}

bool avx2_enabled() {
#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
  // cpuid is queried once; the runtime override is re-read on every call so
  // tests/benches can flip between the kernels mid-process.
  static const bool hw = cpu_has_avx2();
  return hw && runtime_enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void set_simd_enabled(bool enabled) {
  runtime_enabled_flag().store(enabled, std::memory_order_relaxed);
}

const char* active_kernel() { return avx2_enabled() ? "avx2" : "scalar"; }

}  // namespace lightator::tensor::simd
