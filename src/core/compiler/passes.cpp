#include "core/compiler/passes.hpp"

#include <utility>
#include <vector>

namespace lightator::core {

namespace {

bool is_weighted(const CompiledStep& step) {
  return step.kind == nn::LayerKind::kConv ||
         step.kind == nn::LayerKind::kLinear;
}

class DeadStageEliminationPass final : public CompilerPass {
 public:
  std::string name() const override { return "dead-stage-elimination"; }

  void run(CompiledPlan& plan, const PassContext&) const override {
    std::vector<CompiledStep> kept;
    kept.reserve(plan.steps.size());
    for (CompiledStep& step : plan.steps) {
      if (is_dead(step)) continue;
      kept.push_back(std::move(step));
    }
    plan.steps = std::move(kept);
  }

 private:
  static bool is_dead(const CompiledStep& step) {
    switch (step.kind) {
      case nn::LayerKind::kFlatten:
        // The executor shapes activation codes logically before every fc
        // layer, so the flatten copy is pure overhead.
        return true;
      case nn::LayerKind::kActivation:
        // Identity is a no-op — unless it carries an active QAT fake-quant,
        // which does change values and must stay.
        return step.act == tensor::ActKind::kIdentity &&
               !(step.act_qat_bits > 0 && step.act_scale > 0.0);
      case nn::LayerKind::kMaxPool:
      case nn::LayerKind::kAvgPool:
        // A 1x1/stride-1 window reproduces its input exactly (max of one
        // value; avg of one value * 1.0f).
        return step.pool_kernel == 1 && step.pool_stride == 1;
      default:
        return false;
    }
  }
};

class StageFusionPass final : public CompilerPass {
 public:
  std::string name() const override { return "stage-fusion"; }

  void run(CompiledPlan& plan, const PassContext&) const override {
    std::vector<CompiledStep> fused;
    fused.reserve(plan.steps.size());
    const std::size_t n = plan.steps.size();
    for (std::size_t i = 0; i < n; ++i) {
      CompiledStep step = std::move(plan.steps[i]);
      if (is_weighted(step) && !step.epilogue.any()) {
        // Greedy absorb in dataflow order: the directly following activation
        // stage, then (conv only — fc outputs are not spatial) a directly
        // following pool stage. A pool appearing first ends the chain: the
        // epilogue applies activation before pooling, so reordering around
        // it is not semantics-preserving in general.
        if (i + 1 < n &&
            plan.steps[i + 1].kind == nn::LayerKind::kActivation) {
          const CompiledStep& act = plan.steps[i + 1];
          step.epilogue.has_act = true;
          step.epilogue.act = act.act;
          step.epilogue.act_qat_bits = act.act_qat_bits;
          step.epilogue.act_scale = act.act_scale;
          ++i;
        }
        if (step.kind == nn::LayerKind::kConv && i + 1 < n &&
            (plan.steps[i + 1].kind == nn::LayerKind::kMaxPool ||
             plan.steps[i + 1].kind == nn::LayerKind::kAvgPool)) {
          const CompiledStep& pool = plan.steps[i + 1];
          step.epilogue.pool = pool.kind == nn::LayerKind::kMaxPool
                                   ? PoolKind::kMax
                                   : PoolKind::kAvg;
          step.epilogue.pool_kernel = pool.pool_kernel;
          step.epilogue.pool_stride = pool.pool_stride;
          ++i;
        }
      }
      fused.push_back(std::move(step));
    }
    plan.steps = std::move(fused);
  }
};

class MemoryPlanningPass final : public CompilerPass {
 public:
  std::string name() const override { return "memory-planning"; }

  void run(CompiledPlan& plan, const PassContext&) const override {
    // The concrete layout is batch-parameterized, so the sizing happens in
    // ScratchArena::prepare (via compute_arena_plan) at first run; the pass
    // records the decision to execute through the arena.
    plan.arena_enabled = true;
  }
};

}  // namespace

std::unique_ptr<CompilerPass> make_dead_stage_elimination_pass() {
  return std::make_unique<DeadStageEliminationPass>();
}

std::unique_ptr<CompilerPass> make_stage_fusion_pass() {
  return std::make_unique<StageFusionPass>();
}

std::unique_ptr<CompilerPass> make_memory_planning_pass() {
  return std::make_unique<MemoryPlanningPass>();
}

}  // namespace lightator::core
