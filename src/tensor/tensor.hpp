// Dense float tensor in NCHW layout — the DNN substrate's data type.
//
// Deliberately minimal: contiguous float storage with shape bookkeeping and
// the handful of element-wise helpers the layers need. All heavy math lives
// in gemm.cpp / ops.cpp.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/rng.hpp"

namespace lightator::tensor {

using Shape = std::vector<std::size_t>;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Checked multi-dimensional accessors for the common ranks.
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterprets the shape; total element count must be unchanged.
  void reshape(Shape new_shape);

  /// Reshapes to `shape` and resizes storage to match (new elements are
  /// zero). Within existing capacity this never reallocates — the scratch
  /// arena relies on that to keep steady-state forwards allocation-free.
  void resize(const Shape& shape);
  void resize(std::initializer_list<std::size_t> dims);

  /// Pre-grows storage capacity (shape and contents unchanged).
  void reserve(std::size_t elements) { data_.reserve(elements); }

  void fill(float value);

  /// In-place y += alpha * x (shapes must match).
  void add_scaled(const Tensor& x, float alpha);

  /// In-place scale by alpha.
  void scale(float alpha);

  /// Fills with N(0, stddev) samples.
  void fill_normal(util::Rng& rng, float stddev);

  /// Fills with U(lo, hi) samples.
  void fill_uniform(util::Rng& rng, float lo, float hi);

  /// Largest |element| (0 for empty).
  float max_abs() const;

  /// Sum of all elements.
  double sum() const;

  /// True when shapes and all elements match within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  std::size_t flat_index(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape (1 for the empty shape).
std::size_t shape_size(const Shape& shape);

}  // namespace lightator::tensor
