#include "accel/electronic_baselines.hpp"

namespace lightator::accel {

ElectronicAccelerator eyeriss() {
  // 168 PEs x 200 MHz = 33.6 GMAC/s peak; row-stationary keeps conv
  // utilization high while FC layers are DRAM-bandwidth bound.
  return {"Eyeriss", 168.0 * 200e6, 0.77, 0.077};
}

ElectronicAccelerator yodann() {
  // Binary-weight SoP units; the paper's area-constrained configuration
  // clocks a 32x32 array at 31 MHz-equivalent effective throughput for
  // multi-bit activations streamed serially.
  return {"YodaNN", 1024.0 * 31e6, 0.34, 0.078};
}

ElectronicAccelerator appcip() {
  // Analog conv-in-pixel first layer + modest digital backend for the rest.
  return {"AppCip", 512.0 * 31e6, 0.71, 0.28};
}

ElectronicAccelerator envision() {
  // 512 subword MACs x 150 MHz with dynamic voltage/precision scaling.
  return {"ENVISION", 512.0 * 150e6, 0.39, 0.045};
}

std::vector<ElectronicAccelerator> all_electronic_baselines() {
  return {eyeriss(), envision(), appcip(), yodann()};
}

}  // namespace lightator::accel
