// Controller (paper Fig. 3: Ctrl unit, timing control, command decoder):
// turns layer mappings into an explicit execution schedule.
//
// The controller sequences each layer's remap rounds (weight SRAM -> DACs ->
// MR settle) and streaming phases (DMVA drives activations, BPDs/ADCs drain
// results), producing a phase-accurate timeline. Two schedules match the two
// operating points of the evaluation:
//   * frame schedule  — one frame, phases strictly sequential (Fig. 10);
//   * batch schedule  — each round streams `batch` frames before the next
//     remap (Table 1 throughput mode).
// It also audits the activation I/O buffer: the largest inter-layer feature
// map (4-bit codes) must fit the configured buffer SRAM.
#pragma once

#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/mapper.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {

enum class PhaseKind { kRemap, kStream };

struct SchedulePhase {
  std::string layer;
  PhaseKind kind = PhaseKind::kStream;
  std::size_t round = 0;       // round index within the layer
  double start = 0.0;          // s, from frame start
  double duration = 0.0;       // s
  std::size_t layer_index = 0; // position in the schedule's layer order

  double end() const { return start + duration; }
};

struct ExecutionSchedule {
  std::vector<SchedulePhase> phases;
  std::size_t frames = 1;  // frames completed by this schedule

  double makespan() const;

  /// Fraction of the makespan during which the optical datapath streams
  /// symbols (the rest is MR settling — dark time).
  double optical_duty() const;

  /// Total remap / stream time.
  double total_remap_time() const;
  double total_stream_time() const;

  /// ASCII Gantt chart: one row per layer, R = remap, # = stream.
  std::string render_timeline(std::size_t columns = 72) const;
};

class Controller {
 public:
  explicit Controller(ArchConfig config) : config_(config) {}

  /// Strictly sequential single-frame schedule (latency mode).
  ExecutionSchedule schedule_frame(
      const std::vector<LayerMapping>& mappings) const;

  /// Weight-reuse schedule: each remap round streams `batch` frames worth of
  /// cycles before moving on (throughput mode).
  ExecutionSchedule schedule_batch(const std::vector<LayerMapping>& mappings,
                                   std::size_t batch) const;

  /// Peak inter-layer activation footprint of a model (bytes of 4-bit codes,
  /// double-buffered: producer + consumer maps live simultaneously).
  double peak_buffer_bytes(const nn::ModelDesc& model) const;

  /// True if the model's activations fit the configured buffer SRAM.
  bool buffer_fits(const nn::ModelDesc& model) const {
    return peak_buffer_bytes(model) <= config_.buffer_sram_bytes;
  }

  const ArchConfig& config() const { return config_; }

 private:
  ExecutionSchedule build(const std::vector<LayerMapping>& mappings,
                          std::size_t frames_per_round) const;

  ArchConfig config_;
};

}  // namespace lightator::core
