#include "obs/metrics.hpp"

#include <functional>
#include <sstream>
#include <thread>

namespace lightator::obs {

namespace {

// Metric names and attr values are code-controlled identifiers, but layer
// names flow in from user model definitions — escape the JSON specials.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::size_t sketch_capacity) : capacity_(sketch_capacity) {
  shards_.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(capacity_));
  }
}

Histogram::Shard& Histogram::local_shard() {
  const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return *shards_[idx];
}

void Histogram::observe(double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch.add(value);
}

util::StreamingQuantiles Histogram::snapshot() const {
  util::StreamingQuantiles merged(capacity_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.merge(shard->sketch);
  }
  return merged;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sketch.count();
  }
  return total;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sketch = util::StreamingQuantiles(capacity_);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t sketch_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(sketch_capacity);
  return *slot;
}

void MetricsRegistry::annotate(const std::string& name, const std::string& key,
                               const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  attrs_[name][key] = value;
}

std::string MetricsRegistry::snapshot_json(const std::string& indent) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  const std::string i1 = indent;
  const std::string i2 = indent + indent;
  out << "{\n" << i1 << "\"version\": 1,\n";

  out << i1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << i2 << "\"" << json_escape(name)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << i2 << "\"" << json_escape(name)
        << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const util::StreamingQuantiles q = h->snapshot();
    out << (first ? "\n" : ",\n") << i2 << "\"" << json_escape(name)
        << "\": {\"count\": " << q.count();
    if (!q.empty()) {
      out << ", \"min\": " << q.min() << ", \"max\": " << q.max()
          << ", \"mean\": " << q.mean() << ", \"p50\": " << q.quantile(0.5)
          << ", \"p90\": " << q.quantile(0.9)
          << ", \"p95\": " << q.quantile(0.95)
          << ", \"p99\": " << q.quantile(0.99);
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"attrs\": {";
  first = true;
  for (const auto& [name, kv] : attrs_) {
    out << (first ? "\n" : ",\n") << i2 << "\"" << json_escape(name) << "\": {";
    bool kfirst = true;
    for (const auto& [k, v] : kv) {
      if (!kfirst) out << ", ";
      kfirst = false;
      out << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "}\n}";
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  attrs_.clear();
}

std::string sanitize_metric_component(const std::string& s) {
  if (s.empty()) return "_";
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace lightator::obs
