#include "tensor/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lightator::tensor::simd {

namespace {

#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
bool cpu_has_avx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__GNUC__) || defined(__clang__)
  // The kernels use 512-bit madd/unpack (BW), cvtepi64_pd and 256-bit lane
  // extracts (DQ), and 256-bit EVEX forms (VL) on top of the F foundation.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

bool cpu_has_vnni() {
#if defined(__GNUC__) || defined(__clang__)
  return cpu_has_avx512() && __builtin_cpu_supports("avx512vnni") != 0;
#else
  return false;
#endif
}
#endif  // LIGHTATOR_HAVE_AVX2_KERNELS

std::atomic<bool>& runtime_enabled_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

/// set_forced_tier state: kAuto = defer to the environment variable.
std::atomic<KernelTier>& forced_tier_flag() {
  static std::atomic<KernelTier> forced{KernelTier::kAuto};
  return forced;
}

/// LIGHTATOR_FORCE_KERNEL, parsed once per process. An unrecognized value
/// warns once and is ignored rather than aborting — a typo in a CI matrix
/// leg should fail the tier assertion, not every binary on the runner.
KernelTier env_forced_tier() {
  static const KernelTier tier = [] {
    const char* v = std::getenv("LIGHTATOR_FORCE_KERNEL");
    if (v == nullptr || *v == '\0') return KernelTier::kAuto;
    const KernelTier t = parse_tier(v);
    if (t == KernelTier::kAuto && std::strcmp(v, "auto") != 0) {
      std::fprintf(stderr,
                   "lightator: ignoring unrecognized LIGHTATOR_FORCE_KERNEL"
                   "=\"%s\" (expected scalar|avx2|avx512|vnni)\n",
                   v);
    }
    return t;
  }();
  return tier;
}

KernelTier forced_tier() {
  const KernelTier hook = forced_tier_flag().load(std::memory_order_relaxed);
  return hook != KernelTier::kAuto ? hook : env_forced_tier();
}

}  // namespace

bool compiled_with_simd() {
#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
  return true;
#else
  return false;
#endif
}

bool avx2_enabled() {
#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
  // cpuid is queried once; the runtime override is re-read on every call so
  // tests/benches can flip between the kernels mid-process.
  static const bool hw = cpu_has_avx2();
  return hw && runtime_enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

bool avx512_enabled() {
#if defined(LIGHTATOR_HAVE_AVX512_KERNELS)
  static const bool hw = cpu_has_avx512();
  return hw && runtime_enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

bool vnni_enabled() {
#if defined(LIGHTATOR_HAVE_AVX512_KERNELS)
  static const bool hw = cpu_has_vnni();
  return hw && runtime_enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void set_simd_enabled(bool enabled) {
  runtime_enabled_flag().store(enabled, std::memory_order_relaxed);
}

void set_forced_tier(KernelTier tier) {
  forced_tier_flag().store(tier, std::memory_order_relaxed);
}

KernelTier resolve_tier(KernelTier requested) {
  const KernelTier forced = forced_tier();
  KernelTier want = forced != KernelTier::kAuto ? forced : requested;
  if (want == KernelTier::kAuto) want = KernelTier::kVnni;  // top of ladder
  if (want >= KernelTier::kVnni && vnni_enabled()) return KernelTier::kVnni;
  if (want >= KernelTier::kAvx512 && avx512_enabled()) {
    return KernelTier::kAvx512;
  }
  if (want >= KernelTier::kAvx2 && avx2_enabled()) return KernelTier::kAvx2;
  return KernelTier::kScalar;
}

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar};
  if (avx2_enabled()) tiers.push_back(KernelTier::kAvx2);
  if (avx512_enabled()) tiers.push_back(KernelTier::kAvx512);
  if (vnni_enabled()) tiers.push_back(KernelTier::kVnni);
  return tiers;
}

const char* tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
    case KernelTier::kVnni:
      return "vnni";
    case KernelTier::kAuto:
      break;
  }
  return "auto";
}

KernelTier parse_tier(const char* name) {
  if (name == nullptr) return KernelTier::kAuto;
  if (std::strcmp(name, "scalar") == 0) return KernelTier::kScalar;
  if (std::strcmp(name, "avx2") == 0) return KernelTier::kAvx2;
  if (std::strcmp(name, "avx512") == 0) return KernelTier::kAvx512;
  if (std::strcmp(name, "vnni") == 0) return KernelTier::kVnni;
  return KernelTier::kAuto;
}

const char* active_kernel() { return tier_name(resolve_tier(KernelTier::kAuto)); }

bool simd_active() { return resolve_tier(KernelTier::kAuto) != KernelTier::kScalar; }

}  // namespace lightator::tensor::simd
