// Minimal leveled logger for the Lightator simulator.
//
// Usage:
//   LT_LOG_INFO("mapped %zu weights onto %d banks", n, banks);
//
// The logger is process-global, thread-compatible (not thread-safe by design:
// the simulator is single-threaded), and writes to stderr so bench harnesses
// can keep stdout clean for table output.
#pragma once

#include <cstdarg>
#include <string>

namespace lightator::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style log entry point. Prefer the LT_LOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

/// Returns the short name ("INFO", ...) of a level.
const char* level_name(LogLevel level);

}  // namespace lightator::util

#define LT_LOG_DEBUG(...) \
  ::lightator::util::log_message(::lightator::util::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define LT_LOG_INFO(...) \
  ::lightator::util::log_message(::lightator::util::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define LT_LOG_WARN(...) \
  ::lightator::util::log_message(::lightator::util::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define LT_LOG_ERROR(...) \
  ::lightator::util::log_message(::lightator::util::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)
