// Labeled image dataset container shared by the trainer and the synthetic
// dataset generators in lt_workloads.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace lightator::nn {

struct Dataset {
  tensor::Tensor images;             // [N, C, H, W], values in [0, 1]
  std::vector<std::size_t> labels;   // size N
  std::size_t num_classes = 0;

  std::size_t size() const { return labels.size(); }

  /// Copies samples [begin, begin+count) into a contiguous batch.
  tensor::Tensor batch_images(std::size_t begin, std::size_t count) const;
  std::vector<std::size_t> batch_labels(std::size_t begin,
                                        std::size_t count) const;

  /// In-place Fisher–Yates shuffle of samples (images + labels together).
  void shuffle(util::Rng& rng);
};

}  // namespace lightator::nn
