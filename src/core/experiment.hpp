// ExperimentRunner: one ExecutionContext for a whole experiment campaign.
//
// Every headline experiment of the paper — mixed-precision power/accuracy
// sweeps (Table 1), layer-wise power breakdowns (Fig. 8/9), latency
// comparisons (Fig. 10), noise/fault ablations — is a map over a list of
// configurations, each item evaluated through the simulator. ExperimentRunner
// owns the execution machinery those maps share:
//
//   * one util::ThreadPool, sized once, reused by every stage (backend batch
//     sharding, sweep items, trainer shards, multi-frame capture);
//   * one ExecutionContext carrying the backend name, fault spec, and base
//     noise seed;
//   * sweep(items, fn): a deterministic parallel map. Items run concurrently
//     on the pool, each with its own ExecutionContext whose noise seed is a
//     stateless mix of (base seed, sweep number, item index) — results are
//     bit-identical for any pool size, and per-item stats merge back into the
//     runner's context in index order;
//   * monte_carlo(...): the fault Monte-Carlo driver the physical backend was
//     built for — compiles the network once, samples per-trial FaultSpec
//     realizations (stuck cells, dark VCSELs, ring drift) evaluated against
//     the shared CompiledModel, and reports mean/stddev/quantile accuracy;
//   * fit(...): nn::Trainer with the runner's pool injected, so QAT training
//     shards mini-batches on the same threads as everything else.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "core/compute_backend.hpp"
#include "core/lightator.hpp"
#include "nn/trainer.hpp"
#include "util/streaming_quantiles.hpp"

namespace lightator::core {

struct ExperimentOptions {
  std::string backend = "gemm";
  /// Pool size; 0 = LIGHTATOR_THREADS / hardware_concurrency.
  std::size_t threads = 0;
  /// Base noise seed for the physical backend; 0 = noiseless. Per sweep item
  /// this derives a distinct stream via mix_seed, so trials draw independent
  /// noise while staying reproducible from this one number.
  std::uint64_t noise_seed = 0;
  FaultSpec faults;
  bool collect_stats = false;
};

/// Summary statistics of a fault Monte-Carlo campaign. Per-trial accuracies
/// always stream (in trial order) into a bounded StreamingQuantiles sketch;
/// the raw `accuracy` vector is additionally kept unless the campaign ran
/// with `MonteCarloOptions::stream`, so huge campaigns don't retain every
/// trial.
struct MonteCarloResult {
  std::vector<double> accuracy;  // per trial, in trial order; empty if streamed
  util::StreamingQuantiles sketch;
  double mean = 0.0;
  double stddev = 0.0;

  /// Accuracy quantile, q in [0, 1]: exact (classic sorted linear
  /// interpolation) while the sketch is exact — always the case for
  /// campaigns up to `sketch_capacity` trials — and a bounded-error
  /// estimate beyond. Identical whether or not the campaign streamed.
  double quantile(double q) const;
};

struct MonteCarloOptions {
  std::size_t trials = 16;
  /// Fault rates applied each trial; the spec's `seed` is ignored — each
  /// trial derives its own fault seed from `base_seed` and the trial index.
  FaultSpec faults;
  std::uint64_t base_seed = 1;
  std::size_t batch_size = 32;
  std::size_t max_samples = 0;
  /// Don't retain the per-trial accuracy vector — quantiles/mean/stddev come
  /// from the streaming sketch only (bit-identical to the unstreamed
  /// statistics, which are computed from the same sketch). Trials always run
  /// in sketch_capacity-sized chunks, so a streamed campaign's peak memory
  /// is one chunk regardless of `trials`.
  bool stream = false;
  /// Sketch buffer size; quantiles are exact up to this many trials.
  std::size_t sketch_capacity = 512;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentOptions options = {});

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  const ExperimentOptions& options() const { return options_; }
  util::ThreadPool& pool() { return pool_; }
  ExecutionContext& context() { return ctx_; }
  const ExecutionContext& context() const { return ctx_; }

  /// Deterministic seed-per-item parallel map: runs fn(items[i], item_ctx)
  /// for every item concurrently on the runner's pool and returns the results
  /// in item order. Each item context inherits the runner's backend/faults
  /// and derives noise_seed = mix_seed(base, sweep#, i) (0 stays 0 —
  /// noiseless stays noiseless). Nested parallel_for calls inside an item
  /// (backend batch sharding) run inline on the item's thread, so one pool
  /// serves both levels without oversubscription. When the runner collects
  /// stats, per-item stats merge into context().stats in item-index order.
  /// The result type must be default-constructible.
  template <typename T, typename Fn>
  auto sweep(const std::vector<T>& items, Fn&& fn)
      -> std::vector<std::decay_t<
          std::invoke_result_t<Fn&, const T&, ExecutionContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const T&,
                                                ExecutionContext&>>;
    static_assert(!std::is_same_v<R, bool>,
                  "sweep items write results concurrently; vector<bool> "
                  "packs bits — return e.g. int or a struct instead");
    std::vector<R> results(items.size());
    std::vector<std::vector<LayerExecStats>> item_stats(
        ctx_.collect_stats ? items.size() : 0);
    const std::uint64_t sweep_index = next_sweep_index();
    pool_.parallel_for(0, items.size(), [&](std::size_t i) {
      ExecutionContext item_ctx;
      prime_item_context(item_ctx, sweep_index, i);
      results[i] = fn(items[i], item_ctx);
      if (ctx_.collect_stats) item_stats[i] = std::move(item_ctx.stats);
    });
    for (const auto& s : item_stats) merge_layer_stats(ctx_.stats, s);
    return results;
  }

  /// Fault Monte-Carlo through the runner's backend (construct the runner
  /// with backend = "physical" for the full device-model path): `trials`
  /// independent FaultSpec realizations of `options.faults`' rates. The
  /// network compiles ONCE per campaign; all trials share the immutable
  /// CompiledModel (no per-trial Network::clone) and carry only their fault
  /// spec as mutable state. Results are invariant to the pool size and
  /// bit-identical to the historical per-clone evaluation.
  MonteCarloResult monte_carlo(const LightatorSystem& system,
                               const nn::Network& net,
                               const nn::Dataset& data,
                               const nn::PrecisionSchedule& schedule,
                               const MonteCarloOptions& options);

  /// nn::Trainer::fit with this runner's pool injected (params.pool and, when
  /// params.grad_shards > 1, sharded mini-batch training on it).
  nn::EpochStats fit(nn::Network& net, nn::Dataset& train,
                     nn::TrainParams params);

 private:
  std::uint64_t next_sweep_index() {
    return sweep_counter_.fetch_add(1, std::memory_order_relaxed);
  }
  void prime_item_context(ExecutionContext& item_ctx,
                          std::uint64_t sweep_index, std::size_t item);

  ExperimentOptions options_;
  util::ThreadPool pool_;
  ExecutionContext ctx_;
  std::atomic<std::uint64_t> sweep_counter_{0};
};

/// Per-layer modeled-vs-measured table from accumulated LayerExecStats: the
/// architecture models' per-frame latency/energy next to the simulator's
/// measured wall time per frame. The report the fig09/table1 drivers print.
std::string format_stats_report(const std::vector<LayerExecStats>& stats);

}  // namespace lightator::core
