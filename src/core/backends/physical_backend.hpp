// PhysicalBackend: the MrArm device-model datapath.
//
// Routes every arm segment through the full analog stack — VCSEL L-I curves,
// Lorentzian rings with inter-channel crosstalk, lossy rails, balanced
// photodetection — instead of integer math. With ExecutionContext::noise_seed
// set, BPD noise is sampled from a per-batch-item RNG derived from
// (noise_seed, invocation stream, batch index), so results are bit-identical
// for a given seed regardless of how many threads the pool shards the batch
// across. This is the slow validation/Monte-Carlo engine: use it for
// analog-error and noise studies, not accuracy sweeps.
//
// MrArm construction (WDM grid + ring spectra setup) dominates short calls,
// so arms are pooled in a free-list keyed on weight_bits: each batch item
// checks an arm out for the duration of its work and returns it afterwards.
// Monte-Carlo fault sweeps — thousands of small conv/fc calls on the same
// backend — stop paying the construction cost after the first batch.
//
// Weight programming is batched per segment: the arm programs once per
// (item, filter, segment) and the whole output-pixel sweep runs against the
// programmed state (set_weights per MAC was pure overhead — the weights
// don't change across pixels). Compiled models additionally carry an
// ArmProgram (tensor/quantize.hpp): the normalized, zero-padded segment
// weights built once at Engine::compile time, so execution skips the
// per-call levels->[-1,1] normalization entirely. Both are pure re-layouts:
// results (noisy ones included) are bit-identical either way.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/compute_backend.hpp"

namespace lightator::optics {
class MrArm;
}

namespace lightator::core {

class PhysicalBackend final : public ComputeBackend {
 public:
  explicit PhysicalBackend(ArchConfig config);
  ~PhysicalBackend() override;

  std::string name() const override { return "physical"; }

  tensor::Tensor conv2d(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const tensor::ConvSpec& spec,
                        const ExecutionContext& ctx) const override;

  tensor::Tensor linear(const tensor::QuantizedTensor& x,
                        const tensor::QuantizedTensor& w,
                        const tensor::Tensor& bias,
                        const ExecutionContext& ctx) const override;

  /// Number of arms currently parked in the cache (test/introspection hook).
  std::size_t cached_arm_count() const;

 private:
  /// Checks an arm for `weight_bits` out of the cache, constructing one on a
  /// miss. The caller owns it until release_arm puts it back.
  std::unique_ptr<optics::MrArm> acquire_arm(int weight_bits) const;
  void release_arm(int weight_bits, std::unique_ptr<optics::MrArm> arm) const;

  ArchConfig config_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<int, std::vector<std::unique_ptr<optics::MrArm>>>
      arm_cache_;
};

}  // namespace lightator::core
