// MR weight-bank calibration: builds the weight-level -> DAC-code lookup
// tables a real MRR system programs at bring-up.
//
// The mapper assumes a weight level can be imprinted exactly; hardware gets
// there by sweeping each ring's heater DAC, measuring the through-port
// transmission at the home channel, and recording the code whose realized
// weight is closest to each quantized level. This module performs that sweep
// on the device models, reports the residual calibration error per level,
// and exposes the LUT the controller would ship to the DAC array.
//
// It also quantifies two practical effects the paper's device level cares
// about: (i) the DAC's finite code space limits how exactly a level can be
// hit (tuning resolution), and (ii) thermal drift between calibrations
// shifts every resonance by a common delta-lambda, which the differential
// weight cell largely rejects.
#pragma once

#include <cstdint>
#include <vector>

#include "core/arch_config.hpp"
#include "optics/microring.hpp"

namespace lightator::core {

struct CalibrationEntry {
  int level = 0;            // signed weight level
  int dac_code = 0;         // heater DAC code realizing it best
  double target_weight = 0.0;
  double realized_weight = 0.0;
  double error = 0.0;       // |realized - target|
  double heater_power = 0.0;  // W at this code
};

struct CalibrationTable {
  int weight_bits = 4;
  int dac_bits = 10;          // heater DAC resolution
  std::vector<CalibrationEntry> entries;  // levels -m..m in order

  const CalibrationEntry& entry_for_level(int level) const;

  /// Worst and RMS residual over all levels.
  double max_error() const;
  double rms_error() const;

  /// Mean heater power across levels (uniform level usage) — cross-checks
  /// PowerModel::expected_tuning_power_per_cell.
  double mean_heater_power() const;
};

class Calibrator {
 public:
  explicit Calibrator(ArchConfig config) : config_(config) {}

  /// Sweeps a heater DAC of `dac_bits` codes across the phase-shifter range
  /// and builds the LUT for `weight_bits` levels. The DAC code maps linearly
  /// to detuning (heater power ~ detuning for small shifts).
  CalibrationTable calibrate(int weight_bits, int dac_bits = 10) const;

  /// Realized weight at a given DAC code (the measurement primitive).
  double measure_weight(int dac_code, int dac_bits) const;

  /// Residual arm-level error when every ring suffers a common thermal
  /// drift of `drift` meters between calibration and use: returns the RMS
  /// error of the differential weight over all levels. Demonstrates the
  /// common-mode rejection of the differential cell.
  double drift_rms_error(const CalibrationTable& table, double drift) const;

 private:
  ArchConfig config_;
};

}  // namespace lightator::core
