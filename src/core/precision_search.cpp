#include "core/precision_search.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::core {

std::string PrecisionAssignment::label() const {
  std::string out = "[";
  for (std::size_t i = 0; i < weight_bits.size(); ++i) {
    out += std::to_string(weight_bits[i]);
    if (i + 1 < weight_bits.size()) out += ",";
  }
  return out + ":4]";
}

std::vector<const nn::LayerDesc*> PrecisionSearch::weighted_layers() const {
  std::vector<const nn::LayerDesc*> out;
  for (const auto& l : model_.layers) {
    if (l.is_weighted()) out.push_back(&l);
  }
  return out;
}

double PrecisionSearch::layer_sensitivity(std::size_t weighted_index,
                                          int bits) const {
  const auto layers = weighted_layers();
  if (weighted_index >= layers.size()) {
    throw std::out_of_range("weighted layer index out of range");
  }
  if (bits <= 1) return 1e9;  // cannot lower further
  // Uniform quantization noise power ~ step^2 / 12 with step ~ 1/(2^(b-1)-1).
  auto noise = [](int b) {
    const double step = 1.0 / static_cast<double>((1 << (b - 1)) - 1);
    return step * step / 12.0;
  };
  const double noise_increase = noise(bits - 1) - noise(bits);
  // Early layers poison everything downstream: weight by the fraction of
  // total MACs computed at or after this layer.
  double downstream = 0.0, total = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const double macs = static_cast<double>(layers[i]->macs());
    total += macs;
    if (i >= weighted_index) downstream += macs;
  }
  const double position_weight = total > 0.0 ? downstream / total : 1.0;
  return noise_increase * position_weight;
}

void PrecisionSearch::bind_validation(nn::Network& net,
                                      const nn::Dataset& data, int act_bits,
                                      std::size_t batch_size,
                                      std::size_t max_samples) {
  eval_net_ = &net;
  eval_data_ = &data;
  eval_act_bits_ = act_bits;
  eval_batch_size_ = batch_size;
  eval_max_samples_ = max_samples;
}

PrecisionAssignment PrecisionSearch::search(
    const PrecisionSearchOptions& options, const Evaluator& evaluate) const {
  // No measured default on this path: context-less callers get the analytic
  // proxy unless they pass an evaluator themselves.
  return search_impl(options, evaluate);
}

PrecisionAssignment PrecisionSearch::search(
    const PrecisionSearchOptions& options, ExecutionContext& ctx,
    const Evaluator& evaluate) const {
  if (evaluate) return search_impl(options, evaluate);
  if (eval_net_ == nullptr || eval_data_ == nullptr) {
    return search_impl(options, nullptr);  // nothing bound: analytic proxy
  }
  // The measured default: each candidate assignment compiles ONCE (weights
  // quantized and panels packed for that bit vector) and the artifact is
  // reused across every validation batch of the evaluation — the greedy loop
  // no longer re-programs weights per batch. The context's pool shards the
  // validation batches, so measured search stays multicore-fast and
  // thread-count invariant.
  const Evaluator measured = [this, &ctx](const std::vector<int>& bits) {
    CompileOptions compile_options;
    compile_options.backend = ctx.backend;
    compile_options.weight_bits = bits;
    compile_options.act_bits = eval_act_bits_;
    const CompiledModel candidate =
        system_.compile(*eval_net_, std::move(compile_options));
    return candidate.evaluate(*eval_data_, ctx, eval_batch_size_,
                              eval_max_samples_);
  };
  return search_impl(options, measured);
}

PrecisionAssignment PrecisionSearch::search_impl(
    const PrecisionSearchOptions& options, const Evaluator& evaluate) const {
  if (options.min_bits < 1 || options.max_bits < options.min_bits) {
    throw std::invalid_argument("invalid bit range");
  }
  const auto layers = weighted_layers();
  PrecisionAssignment current;
  current.weight_bits.assign(layers.size(), options.max_bits);

  const double base_accuracy =
      evaluate ? evaluate(current.weight_bits) : 1.0;
  double proxy_drop = 0.0;

  auto power_of = [&](const std::vector<int>& bits) {
    return system_.analyze(model_, bits).max_power;
  };
  current.max_power = power_of(current.weight_bits);

  while (true) {
    if (options.power_budget > 0.0 &&
        current.max_power <= options.power_budget) {
      break;  // budget met
    }
    // Candidate: the layer whose next bit costs least sensitivity per watt
    // saved. Max-power is a plateau metric (several layers can pin the max),
    // so when no single step frees power, lower the least-sensitive layer
    // anyway — progress toward the budget requires clearing the plateau.
    std::size_t best_layer = layers.size();
    double best_score = 1e18;
    std::size_t fallback_layer = layers.size();
    double fallback_sensitivity = 1e18;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      if (current.weight_bits[i] <= options.min_bits) continue;
      const double sensitivity =
          layer_sensitivity(i, current.weight_bits[i]);
      if (sensitivity < fallback_sensitivity) {
        fallback_sensitivity = sensitivity;
        fallback_layer = i;
      }
      std::vector<int> trial = current.weight_bits;
      --trial[i];
      const double saved = current.max_power - power_of(trial);
      if (saved <= 0.0) continue;  // lowering this layer frees no power now
      const double score = sensitivity / saved;
      if (score < best_score) {
        best_score = score;
        best_layer = i;
      }
    }
    if (best_layer == layers.size()) {
      if (options.power_budget <= 0.0 ||
          current.max_power <= options.power_budget ||
          fallback_layer == layers.size()) {
        break;  // nothing lowerable (or nothing worth lowering)
      }
      best_layer = fallback_layer;  // plateau: step through it
    }

    std::vector<int> trial = current.weight_bits;
    --trial[best_layer];
    // Proxy-to-drop scaling: calibrated so lowering every VGG9 layer from
    // 4 to 3 bits accumulates ~3% — the paper's observed [4:4] -> [3:4]
    // accuracy cost (Table 1, CIFAR100: 64.22 -> 61.04).
    constexpr double kProxyScale = 1.5;
    const double trial_drop =
        evaluate ? base_accuracy - evaluate(trial)
                 : proxy_drop + layer_sensitivity(best_layer,
                                                  current.weight_bits[best_layer]) *
                                    kProxyScale;
    if (trial_drop > options.max_accuracy_drop) break;

    current.weight_bits = std::move(trial);
    current.max_power = power_of(current.weight_bits);
    current.estimated_drop = trial_drop;
    if (!evaluate) proxy_drop = trial_drop;
  }
  return current;
}

}  // namespace lightator::core
