#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "core/timing_model.hpp"
#include "nn/model_desc.hpp"

namespace lightator::core {
namespace {

ArchConfig cfg() { return ArchConfig::defaults(); }

LayerMapping map_conv(std::size_t in_c, std::size_t out_c, std::size_t k,
                      std::size_t dim) {
  nn::LayerDesc l;
  l.kind = nn::LayerKind::kConv;
  l.in_h = dim;
  l.in_w = dim;
  l.conv = tensor::ConvSpec{in_c, out_c, k, 1, 1};
  return Mapper(cfg()).map_layer(l);
}

LayerMapping map_fc(std::size_t in, std::size_t out) {
  nn::LayerDesc l;
  l.kind = nn::LayerKind::kLinear;
  l.fc_in = in;
  l.fc_out = out;
  return Mapper(cfg()).map_layer(l);
}

TEST(Timing, StreamTimeMatchesCycles) {
  const TimingModel tm(cfg());
  const auto m = map_conv(3, 64, 3, 32);
  const auto t = tm.layer_timing(m);
  EXPECT_NEAR(t.stream_time,
              static_cast<double>(m.rounds * m.cycles_per_round) /
                  cfg().modulation_rate,
              1e-15);
}

TEST(Timing, RemapChargedPerRound) {
  const TimingModel tm(cfg());
  const auto m = map_conv(256, 256, 3, 8);
  const auto t = tm.layer_timing(m);
  EXPECT_NEAR(t.remap_time, static_cast<double>(m.rounds) * cfg().remap_settle,
              1e-12);
  EXPECT_DOUBLE_EQ(t.latency, t.remap_time + t.stream_time);
}

TEST(Timing, CaLayersNeverRemap) {
  const TimingModel tm(cfg());
  const auto m =
      Mapper(cfg()).map_ca_window(12, 1024, "ca", nn::LayerKind::kAvgPool);
  const auto t = tm.layer_timing(m);
  EXPECT_DOUBLE_EQ(t.remap_time, 0.0);
  EXPECT_GT(t.stream_time, 0.0);
}

TEST(Timing, FcLayersRemapDominated) {
  const TimingModel tm(cfg());
  const auto t = tm.layer_timing(map_fc(4096, 4096));
  EXPECT_GT(t.remap_time, 100.0 * t.stream_time);
}

TEST(Timing, BatchingAmortizesRemap) {
  const TimingModel tm(cfg());
  const auto t = tm.layer_timing(map_fc(4096, 512));
  EXPECT_LT(t.amortized_per_frame, t.latency);
  const double batch = static_cast<double>(cfg().throughput_batch);
  EXPECT_NEAR(t.amortized_per_frame, t.remap_time / batch + t.stream_time,
              1e-15);
}

TEST(Timing, ModelTimingSumsLayers) {
  const TimingModel tm(cfg());
  const Mapper mapper(cfg());
  const auto mappings = mapper.map_model(nn::lenet_desc());
  const auto mt = tm.model_timing(mappings);
  double latency = 0.0;
  for (const auto& lt : mt.layers) latency += lt.latency;
  EXPECT_NEAR(mt.latency, latency, 1e-12);
  EXPECT_GT(mt.fps_batched, mt.fps_latency);
}

TEST(Timing, Vgg9BatchedThroughputInPaperBallpark) {
  // Table 1 implies ~300 KFPS batched for VGG9-class workloads; our
  // calibration should land within 3x either way.
  const TimingModel tm(cfg());
  const Mapper mapper(cfg());
  const auto mt = tm.model_timing(mapper.map_model(nn::vgg9_desc()));
  EXPECT_GT(mt.fps_batched, 1.0e5);
  EXPECT_LT(mt.fps_batched, 1.0e6);
}

TEST(Timing, LatencyOrderingLenetVgg9Alexnet) {
  const TimingModel tm(cfg());
  const Mapper mapper(cfg());
  const double lenet =
      tm.model_timing(mapper.map_model(nn::lenet_desc())).latency;
  const double vgg9 =
      tm.model_timing(mapper.map_model(nn::vgg9_desc())).latency;
  const double alexnet =
      tm.model_timing(mapper.map_model(nn::alexnet_desc())).latency;
  const double vgg16 =
      tm.model_timing(mapper.map_model(nn::vgg16_desc())).latency;
  EXPECT_LT(lenet, vgg9);
  EXPECT_LT(vgg9, alexnet);
  EXPECT_LT(alexnet, vgg16);  // 138M weights -> heaviest remap load
}

TEST(Timing, AlexnetLatencyMilliseconds) {
  // Fig. 10 regime: single-frame AlexNet latency is remap-bound, in the
  // milliseconds (the electronic baselines sit 9-20x above it).
  const TimingModel tm(cfg());
  const Mapper mapper(cfg());
  const double alexnet =
      tm.model_timing(mapper.map_model(nn::alexnet_desc())).latency;
  EXPECT_GT(alexnet, 1e-3);
  EXPECT_LT(alexnet, 50e-3);
}

TEST(Timing, FasterModulationShortensStreaming) {
  ArchConfig fast = cfg();
  fast.modulation_rate *= 2.0;
  const auto m = map_conv(64, 64, 3, 16);
  const auto slow_t = TimingModel(cfg()).layer_timing(m);
  const auto fast_t = TimingModel(fast).layer_timing(m);
  EXPECT_NEAR(fast_t.stream_time * 2.0, slow_t.stream_time, 1e-12);
  EXPECT_DOUBLE_EQ(fast_t.remap_time, slow_t.remap_time);
}

}  // namespace
}  // namespace lightator::core
