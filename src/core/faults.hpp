// Fault injection for the optical core: manufacturing / runtime defects and
// their effect on mapped inference.
//
// Two defect classes dominate MR weight banks and VCSEL arrays:
//   * stuck weight cells — a ring whose heater (or DAC) is dead holds an
//     arbitrary fixed level;
//   * dead activation channels — a VCSEL that never lases leaves its
//     wavelength dark (activation reads as 0).
// Faults are sampled per-element from a seeded RNG so experiments are
// reproducible; apply_* mutate quantized tensors in place, which composes
// with the OC functional path (run_network_on_oc).
#pragma once

#include <cstdint>

#include "tensor/quantize.hpp"
#include "util/rng.hpp"

namespace lightator::core {

struct FaultSpec {
  double stuck_cell_rate = 0.0;    // fraction of weight cells stuck
  double dead_channel_rate = 0.0;  // fraction of activation channels dark
  std::uint64_t seed = 1;

  bool any() const { return stuck_cell_rate > 0.0 || dead_channel_rate > 0.0; }
};

/// Replaces a `stuck_cell_rate` fraction of weight levels with random stuck
/// levels (uniform over the level range). Returns the number of cells hit.
std::size_t apply_weight_faults(tensor::QuantizedTensor& weights,
                                const FaultSpec& spec, util::Rng& rng);

/// Zeroes a `dead_channel_rate` fraction of activation codes (dark VCSELs).
/// Returns the number of channels hit.
std::size_t apply_activation_faults(tensor::QuantizedTensor& acts,
                                    const FaultSpec& spec, util::Rng& rng);

}  // namespace lightator::core
