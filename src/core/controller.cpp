#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lightator::core {

double ExecutionSchedule::makespan() const {
  double end = 0.0;
  for (const auto& p : phases) end = std::max(end, p.end());
  return end;
}

double ExecutionSchedule::total_remap_time() const {
  double t = 0.0;
  for (const auto& p : phases) {
    if (p.kind == PhaseKind::kRemap) t += p.duration;
  }
  return t;
}

double ExecutionSchedule::total_stream_time() const {
  double t = 0.0;
  for (const auto& p : phases) {
    if (p.kind == PhaseKind::kStream) t += p.duration;
  }
  return t;
}

double ExecutionSchedule::optical_duty() const {
  const double span = makespan();
  return span > 0.0 ? total_stream_time() / span : 0.0;
}

std::string ExecutionSchedule::render_timeline(std::size_t columns) const {
  if (phases.empty()) return "(empty schedule)\n";
  if (columns < 8) columns = 8;
  const double span = makespan();
  if (span <= 0.0) return "(zero-length schedule)\n";

  // Collect layer rows in first-appearance order.
  std::vector<std::string> layer_names;
  for (const auto& p : phases) {
    if (std::find(layer_names.begin(), layer_names.end(), p.layer) ==
        layer_names.end()) {
      layer_names.push_back(p.layer);
    }
  }
  std::size_t label_width = 0;
  for (const auto& n : layer_names) label_width = std::max(label_width, n.size());

  std::ostringstream out;
  for (const auto& name : layer_names) {
    std::string row(columns, '.');
    for (const auto& p : phases) {
      if (p.layer != name) continue;
      auto col_of = [&](double t) {
        auto c = static_cast<std::size_t>(t / span * static_cast<double>(columns));
        return std::min(c, columns - 1);
      };
      const std::size_t c0 = col_of(p.start);
      const std::size_t c1 = col_of(std::max(p.start, p.end() - 1e-15));
      const char mark = p.kind == PhaseKind::kRemap ? 'R' : '#';
      for (std::size_t c = c0; c <= c1; ++c) row[c] = mark;
    }
    out << name << std::string(label_width - name.size() + 2, ' ') << row
        << '\n';
  }
  out << "(R = MR remap/settle, # = optical streaming; span = " << span * 1e6
      << " us)\n";
  return out.str();
}

ExecutionSchedule Controller::build(const std::vector<LayerMapping>& mappings,
                                    std::size_t frames_per_round) const {
  if (frames_per_round == 0) {
    throw std::invalid_argument("need >= 1 frame per round");
  }
  ExecutionSchedule schedule;
  schedule.frames = frames_per_round;
  double clock = 0.0;
  std::size_t layer_index = 0;
  for (const auto& m : mappings) {
    if (m.rounds == 0) continue;  // non-compute layer
    for (std::size_t round = 0; round < m.rounds; ++round) {
      if (m.weighted) {
        SchedulePhase remap;
        remap.layer = m.layer_name;
        remap.kind = PhaseKind::kRemap;
        remap.round = round;
        remap.start = clock;
        remap.duration = config_.remap_settle;
        remap.layer_index = layer_index;
        clock = remap.end();
        schedule.phases.push_back(std::move(remap));
      }
      SchedulePhase stream;
      stream.layer = m.layer_name;
      stream.kind = PhaseKind::kStream;
      stream.round = round;
      stream.start = clock;
      stream.duration = static_cast<double>(m.cycles_per_round) *
                        static_cast<double>(frames_per_round) *
                        config_.cycle_time();
      stream.layer_index = layer_index;
      clock = stream.end();
      schedule.phases.push_back(std::move(stream));
    }
    ++layer_index;
  }
  return schedule;
}

ExecutionSchedule Controller::schedule_frame(
    const std::vector<LayerMapping>& mappings) const {
  return build(mappings, 1);
}

ExecutionSchedule Controller::schedule_batch(
    const std::vector<LayerMapping>& mappings, std::size_t batch) const {
  return build(mappings, batch);
}

double Controller::peak_buffer_bytes(const nn::ModelDesc& model) const {
  // Producer/consumer double buffering: layer i's output plus layer i+1's
  // output coexist. Activations are 4-bit codes.
  std::vector<std::size_t> outputs;
  outputs.push_back(model.in_channels * model.in_h * model.in_w);
  for (const auto& layer : model.layers) {
    const std::size_t n = layer.output_count();
    if (n > 0) outputs.push_back(n);
  }
  double peak = 0.0;
  for (std::size_t i = 0; i + 1 < outputs.size(); ++i) {
    peak = std::max(peak,
                    static_cast<double>(outputs[i] + outputs[i + 1]) * 0.5);
  }
  return peak;
}

}  // namespace lightator::core
