// Common interfaces for the baseline accelerator models.
//
// The paper compares Lightator against (a) MR-based photonic accelerators
// (Table 1: power, KFPS/W, accuracy) and (b) electronic accelerators
// (Fig. 10: execution time). We rebuild each from its published component
// inventory — the same "created from the ground up resembling the original
// design" methodology the paper describes — with constants documented next
// to each model.
#pragma once

#include <string>

#include "nn/model_desc.hpp"

namespace lightator::accel {

/// Execution-time model of an electronic accelerator: peak MAC rate derated
/// by dataflow utilization per layer class (conv vs. memory-bound fc).
struct ElectronicAccelerator {
  std::string name;
  double peak_macs_per_s = 0.0;
  double conv_utilization = 0.5;
  double fc_utilization = 0.1;

  /// Single-frame execution time of a model (seconds).
  double execution_time(const nn::ModelDesc& model) const;
};

/// Steady-state summary of a photonic accelerator on a DNN workload.
struct PhotonicSummary {
  std::string name;
  std::string precision;  // "[W:A]"
  int process_nm = 0;
  double max_power = 0.0;      // W
  double fps = 0.0;            // frames / s on the reference workload
  double kfps_per_watt = 0.0;  // 1e3 frames / J
};

/// Photonic accelerator model: wavelength-parallel MAC fabric plus the
/// electronic conversion overhead (ADC/DAC arrays) that dominates most
/// published designs.
struct PhotonicAccelerator {
  std::string name;
  std::string precision;
  int process_nm = 0;

  // Optical fabric.
  std::size_t mac_units = 0;     // parallel multiply sites (MRs / XNOR gates)
  double symbol_rate = 5e9;      // photodetection-limited cycle rate
  double utilization = 0.5;      // fabric occupancy on the workload

  // Electronic inventory (watts).
  double adc_array_power = 0.0;
  double dac_array_power = 0.0;
  double tuning_power = 0.0;
  double laser_power = 0.0;
  double digital_power = 0.0;

  double total_power() const {
    return adc_array_power + dac_array_power + tuning_power + laser_power +
           digital_power;
  }

  /// Frames/s on a workload with `macs_per_frame` MAC operations.
  double fps(std::size_t macs_per_frame) const;

  PhotonicSummary summarize(std::size_t macs_per_frame) const;
};

}  // namespace lightator::accel
