#include "core/compiler/pass_manager.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/compiler/autotune.hpp"
#include "core/compiler/passes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lightator::core {

PassManager& PassManager::add(std::unique_ptr<CompilerPass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

void PassManager::run(CompiledPlan& plan, const PassContext& ctx) const {
  validate_plan(plan);  // a malformed input plan is a compile bug, not a pass bug
  for (const auto& pass : passes_) {
    const std::string pname = pass->name();  // outlives the span below
    const auto t0 = std::chrono::steady_clock::now();
    {
      LIGHTATOR_TRACE_SPAN(pname.c_str(), "compile");
      pass->run(plan, ctx);
    }
    obs::MetricsRegistry::global()
        .histogram("compile.pass." + pname + ".ms")
        .observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
    try {
      validate_plan(plan);
    } catch (const std::logic_error& e) {
      throw std::logic_error("compiler pass '" + pname +
                             "' broke the plan: " + e.what());
    }
    plan.applied_passes.push_back(pname);
  }
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

PassManager default_pass_pipeline(const PassOptions& options) {
  PassManager pm;
  if (options.eliminate_dead_stages) pm.add(make_dead_stage_elimination_pass());
  if (options.fuse_stages) pm.add(make_stage_fusion_pass());
  if (options.autotune_kernels) pm.add(make_kernel_autotune_pass());
  if (options.plan_memory) pm.add(make_memory_planning_pass());
  return pm;
}

void validate_plan(const CompiledPlan& plan) {
  std::size_t weighted = 0;
  for (const CompiledStep& step : plan.steps) {
    const bool is_weighted = step.kind == nn::LayerKind::kConv ||
                             step.kind == nn::LayerKind::kLinear;
    if (is_weighted) {
      if (step.weighted_index != weighted) {
        throw std::logic_error("plan: weighted indices not contiguous");
      }
      ++weighted;
      if (step.weights.levels.empty() || !step.weights.is_signed) {
        throw std::logic_error("plan: weighted step without programmed weights");
      }
      if (step.epilogue.pool != PoolKind::kNone) {
        if (step.kind != nn::LayerKind::kConv) {
          throw std::logic_error("plan: pooling fused into a non-conv step");
        }
        if (step.epilogue.pool_kernel == 0 || step.epilogue.pool_stride == 0) {
          throw std::logic_error("plan: fused pool with empty geometry");
        }
      }
    } else {
      if (step.epilogue.any()) {
        throw std::logic_error("plan: epilogue on a non-weighted step");
      }
      if ((step.kind == nn::LayerKind::kMaxPool ||
           step.kind == nn::LayerKind::kAvgPool) &&
          (step.pool_kernel == 0 || step.pool_stride == 0)) {
        throw std::logic_error("plan: pool step with empty geometry");
      }
    }
  }
  if (weighted != plan.num_weighted) {
    throw std::logic_error("plan: num_weighted does not match the steps");
  }
}

}  // namespace lightator::core
