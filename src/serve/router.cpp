#include "serve/router.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/artifact/artifact.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lightator::serve {

namespace {

/// Per-route metric namespace: the router owns tenant separation, so a
/// route's options always get "serve.<name>" regardless of what the caller
/// set (names pass through sanitize so "resnet/v2" can't fork the registry
/// namespace).
ServerOptions routed_options(const std::string& name, ServerOptions options) {
  options.metric_prefix = "serve." + obs::sanitize_metric_component(name);
  return options;
}

}  // namespace

InferenceRouter::~InferenceRouter() { shutdown(); }

std::shared_ptr<InferenceRouter::Route> InferenceRouter::route(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routes_.find(name);
  if (it != routes_.end()) return it->second;
  std::ostringstream msg;
  msg << "InferenceRouter: unknown model \"" << name << "\" (deployed:";
  if (routes_.empty()) {
    msg << " none";
  } else {
    for (const auto& [route_name, r] : routes_)
      msg << " " << route_name << "@" << r->version;
  }
  msg << ")";
  throw std::out_of_range(msg.str());
}

void InferenceRouter::deploy(const std::string& name,
                             const std::string& version,
                             core::CompiledModel model, ServerOptions options) {
  {
    // Pre-check so an existing route fails before the registry mutates or a
    // server spins up (the try_emplace below still decides races).
    std::shared_lock<std::shared_mutex> lock(route_mutex_);
    if (routes_.count(name) != 0) {
      throw std::invalid_argument("InferenceRouter::deploy: route \"" + name +
                                  "\" already exists (use swap to change "
                                  "versions)");
    }
  }
  registry_.add(name, version, model);  // validates name/version/model
  options = routed_options(name, std::move(options));
  // Build the server (replicas spin up here) before touching the route map —
  // a failed construction must leave the router unchanged.
  auto server = std::make_shared<InferenceServer>(std::move(model), options);
  std::lock_guard<std::mutex> admin(admin_mutex_);
  {
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    auto [it, inserted] = routes_.try_emplace(name);
    if (!inserted) {
      lock.unlock();
      server->shutdown();
      throw std::invalid_argument("InferenceRouter::deploy: route \"" + name +
                                  "\" already exists (use swap to change "
                                  "versions)");
    }
    it->second = std::make_shared<Route>(
        Route{std::move(server), version, std::move(options)});
  }
  registry_.pin(name + "@" + version);  // live route: never evicted
}

void InferenceRouter::deploy_artifact(const std::string& name,
                                      const std::string& version,
                                      const std::string& path,
                                      const core::LightatorSystem& system,
                                      ServerOptions options) {
  deploy(name, version, core::load_artifact(path, system), std::move(options));
}

void InferenceRouter::swap(const std::string& name, const std::string& version,
                           core::CompiledModel model) {
  swap(name, version, std::move(model), route(name)->options);
}

void InferenceRouter::swap(const std::string& name, const std::string& version,
                           core::CompiledModel model, ServerOptions options) {
  LIGHTATOR_TRACE_SPAN("model_swap", "serve");
  route(name);  // unknown route throws before the registry mutates
  registry_.add(name, version, model);
  options = routed_options(name, std::move(options));
  // v2 comes up fully (replica threads running against the new artifact)
  // while v1 still serves every request — the flip below is pointer-swap
  // cheap, so the exclusive hold on route_mutex_ is nanoseconds, not a
  // compile or a drain.
  auto fresh = std::make_shared<Route>(Route{
      std::make_shared<InferenceServer>(std::move(model), options), version,
      std::move(options)});
  std::shared_ptr<Route> old;
  {
    std::lock_guard<std::mutex> admin(admin_mutex_);
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    const auto it = routes_.find(name);
    if (it == routes_.end()) {
      lock.unlock();
      fresh->server->shutdown();
      route(name);  // throws std::out_of_range with the deployed list
    }
    old = std::exchange(it->second, fresh);
  }
  registry_.pin(name + "@" + version);
  // Drain outside every lock: submits already routed to v2, and v1's queue
  // was only reachable under the shared lock we now exclude, so every
  // request it holds was accepted — shutdown() completes them all.
  old->server->shutdown();
  // v1 stays registered (rollback stays cheap) but loses its route pin, so
  // a byte-budgeted registry may now evict it.
  registry_.unpin(name + "@" + old->version);
  obs::MetricsRegistry::global()
      .counter(fresh->options.metric_prefix + ".swaps")
      .add(1);
}

void InferenceRouter::swap_artifact(const std::string& name,
                                    const std::string& version,
                                    const std::string& path,
                                    const core::LightatorSystem& system) {
  swap(name, version, core::load_artifact(path, system));
}

SubmitTicket InferenceRouter::submit(const std::string& name,
                                     tensor::Tensor input) {
  // Lookup and enqueue under one shared hold: a swap's exclusive flip cannot
  // interleave, so the request lands either in v1's queue before the flip
  // (drained, completes on v1) or in v2's after — never in a closed queue.
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routes_.find(name);
  if (it == routes_.end()) {
    lock.unlock();
    route(name);  // throws
  }
  return it->second->server->submit(std::move(input));
}

SubmitTicket InferenceRouter::submit(const std::string& name,
                                     tensor::Tensor input,
                                     std::uint64_t request_id) {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routes_.find(name);
  if (it == routes_.end()) {
    lock.unlock();
    route(name);  // throws
  }
  return it->second->server->submit(std::move(input), request_id);
}

SubmitTicket InferenceRouter::submit(const std::string& name,
                                     tensor::Tensor input,
                                     sched::SubmitOptions opts) {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routes_.find(name);
  if (it == routes_.end()) {
    lock.unlock();
    route(name);  // throws
  }
  return it->second->server->submit(std::move(input), opts);
}

SubmitTicket InferenceRouter::submit(const std::string& name,
                                     tensor::Tensor input,
                                     std::uint64_t request_id,
                                     sched::SubmitOptions opts) {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  const auto it = routes_.find(name);
  if (it == routes_.end()) {
    lock.unlock();
    route(name);  // throws
  }
  return it->second->server->submit(std::move(input), request_id, opts);
}

InferResult InferenceRouter::infer(const std::string& name,
                                   tensor::Tensor input) {
  SubmitTicket ticket = submit(name, std::move(input));
  if (ticket.status != SubmitStatus::kAccepted) {
    const char* why = "server closed";
    if (ticket.status == SubmitStatus::kRejected) why = "queue full";
    if (ticket.status == SubmitStatus::kShed) why = "shed by admission control";
    throw std::runtime_error(
        "InferenceRouter::infer: request not accepted for \"" + name + "\" (" +
        why + ")");
  }
  return ticket.result.get();
}

void InferenceRouter::undeploy(const std::string& name) {
  std::shared_ptr<Route> old;
  {
    std::lock_guard<std::mutex> admin(admin_mutex_);
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    const auto it = routes_.find(name);
    if (it == routes_.end()) {
      lock.unlock();
      route(name);  // throws
    }
    old = std::move(it->second);
    routes_.erase(it);
  }
  old->server->shutdown();
  // The version stays registered and addressable; it just loses its route
  // pin and becomes evictable under a byte budget.
  registry_.unpin(name + "@" + old->version);
}

void InferenceRouter::shutdown() {
  std::vector<std::pair<std::string, std::shared_ptr<Route>>> drained;
  {
    std::lock_guard<std::mutex> admin(admin_mutex_);
    std::unique_lock<std::shared_mutex> lock(route_mutex_);
    drained.reserve(routes_.size());
    for (auto& [name, r] : routes_) drained.emplace_back(name, std::move(r));
    routes_.clear();
  }
  for (auto& [name, r] : drained) {
    r->server->shutdown();
    registry_.unpin(name + "@" + r->version);
  }
}

ServerStats InferenceRouter::stats(const std::string& name) const {
  return route(name)->server->stats();
}

std::string InferenceRouter::active_version(const std::string& name) const {
  return route(name)->version;
}

core::CompiledModel InferenceRouter::active_model(
    const std::string& name) const {
  return route(name)->server->compiled();
}

std::size_t InferenceRouter::queue_depth(const std::string& name) const {
  return route(name)->server->queue_depth();
}

std::vector<std::string> InferenceRouter::models() const {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const auto& [name, r] : routes_) out.push_back(name);
  return out;
}

std::size_t InferenceRouter::size() const {
  std::shared_lock<std::shared_mutex> lock(route_mutex_);
  return routes_.size();
}

}  // namespace lightator::serve
