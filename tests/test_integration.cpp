// Cross-module integration sweeps: invariants that must hold for every
// (model, precision) combination, end-to-end acquisition -> inference, and
// consistency between the independent views of the same hardware (mapper vs
// power vs timing vs controller).
#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.hpp"
#include "core/filter_bank.hpp"
#include "core/lightator.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "workloads/scenes.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::core {
namespace {

struct SweepCase {
  const char* model;
  int weight_bits;
};

class SystemSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  nn::ModelDesc model_desc() const {
    const std::string name = GetParam().model;
    if (name == "lenet") return nn::lenet_desc();
    if (name == "vgg9") return nn::vgg9_desc();
    if (name == "vgg13") return nn::vgg13_desc();
    if (name == "vgg16") return nn::vgg16_desc();
    return nn::alexnet_desc();
  }
};

TEST_P(SystemSweep, ReportInvariants) {
  const LightatorSystem sys(ArchConfig::defaults());
  const auto schedule = nn::PrecisionSchedule::uniform(GetParam().weight_bits);
  const auto report = sys.analyze(model_desc(), schedule);

  EXPECT_GT(report.max_power, 0.0);
  EXPECT_GT(report.latency, 0.0);
  EXPECT_GT(report.fps_batched, 0.0);
  EXPECT_GT(report.energy_per_frame, 0.0);
  // Average power can never exceed the peak streaming power.
  EXPECT_LE(report.avg_power, report.max_power * (1.0 + 1e-9));
  // Throughput mode can only be faster than latency mode.
  EXPECT_GE(report.fps_batched, 1.0 / report.latency - 1e-9);
  // Every compute layer got a mapping that fits the fabric.
  const auto& g = sys.config().geometry;
  for (const auto& l : report.layers) {
    EXPECT_LE(l.mapping.arms_active, std::max(g.arms(), g.ca_arms()));
    EXPECT_EQ(l.mapping.mrs_active + l.mapping.idle_mrs,
              l.mapping.arms_active * g.mrs_per_arm);
    if (l.mapping.weighted) {
      EXPECT_GT(l.mapping.rounds, 0u);
      EXPECT_GT(l.power.streaming.dac, 0.0);
    } else if (l.mapping.rounds > 0) {
      EXPECT_DOUBLE_EQ(l.power.streaming.dac, 0.0);
    }
  }
}

TEST_P(SystemSweep, ControllerAgreesWithTimingModel) {
  const ArchConfig cfg = ArchConfig::defaults();
  const Mapper mapper(cfg);
  const TimingModel tm(cfg);
  const Controller ctrl(cfg);
  const auto mappings = mapper.map_model(model_desc());
  const auto schedule = ctrl.schedule_frame(mappings);
  const auto timing = tm.model_timing(mappings);
  EXPECT_NEAR(schedule.makespan(), timing.latency,
              timing.latency * 1e-9 + 1e-15);
}

TEST_P(SystemSweep, PowerMonotoneInWeightBits) {
  const LightatorSystem sys(ArchConfig::defaults());
  const auto desc = model_desc();
  const int bits = GetParam().weight_bits;
  if (bits <= 2) GTEST_SKIP() << "no lower precision to compare";
  const double hi =
      sys.analyze(desc, nn::PrecisionSchedule::uniform(bits)).max_power;
  const double lo =
      sys.analyze(desc, nn::PrecisionSchedule::uniform(bits - 1)).max_power;
  EXPECT_GT(hi, lo);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndBits, SystemSweep,
    ::testing::Values(SweepCase{"lenet", 4}, SweepCase{"lenet", 3},
                      SweepCase{"lenet", 2}, SweepCase{"vgg9", 4},
                      SweepCase{"vgg9", 3}, SweepCase{"vgg9", 2},
                      SweepCase{"vgg13", 4}, SweepCase{"vgg16", 4},
                      SweepCase{"alexnet", 4}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.model) + "_w" +
             std::to_string(info.param.weight_bits);
    });

// ---------------------------------------------------------------- E2E

TEST(EndToEnd, AcquireCompressTrainInfer) {
  // The full Fig. 2 pipeline against a digit "poster" scene: render a digit
  // into a 28x28 tile, upscale to a 56x56 scene, capture through the pixel
  // array, CA-compress 2x back to 28x28 grayscale, and classify with a
  // LeNet trained on the synthetic digits.
  util::Rng rng(3);
  workloads::SynthMnistOptions opts;
  opts.samples = 500;
  opts.noise_stddev = 0.02;
  nn::Dataset data = workloads::make_synth_mnist(opts);
  nn::Network net = nn::build_lenet(rng);
  nn::TrainParams tp;
  tp.epochs = 3;
  tp.batch_size = 25;
  nn::Trainer(tp).fit(net, data);

  const LightatorSystem sys(ArchConfig::defaults());
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  CompileOptions co;
  co.schedule = schedule;
  const CompiledModel compiled = sys.compile(net, co);
  ExecutionContext ctx;
  std::size_t correct = 0, total = 0;
  for (int digit = 0; digit < 10; ++digit) {
    // Render a clean digit and blow it up to a 2x scene (RGB).
    std::vector<float> tile(28 * 28);
    workloads::SynthMnistOptions clean;
    clean.noise_stddev = 0.0;
    clean.jitter_pixels = 0.0;
    clean.rotation_radians = 0.0;
    clean.scale_jitter = 0.0;
    workloads::render_digit(digit, rng, clean, tile.data());
    sensor::Image scene(56, 56, 3);
    for (std::size_t y = 0; y < 56; ++y) {
      for (std::size_t x = 0; x < 56; ++x) {
        const float v = tile[(y / 2) * 28 + (x / 2)];
        scene.at(y, x, 0) = v;
        scene.at(y, x, 1) = v;
        scene.at(y, x, 2) = v;
      }
    }
    const auto input = sys.acquire(scene, CaOptions{2, true, 4});
    ASSERT_EQ(input.dim(2), 28u);
    const auto logits = compiled.run(input, ctx).take();
    const auto pred = tensor::predict(logits);
    if (pred[0] == static_cast<std::size_t>(digit)) ++correct;
    ++total;
  }
  // The capture/CA path adds Bayer + 4-bit CRC + pooling distortion; most
  // digits must still classify.
  EXPECT_GE(correct, total - 4);
}

TEST(EndToEnd, FilteringAndInferenceShareTheFabric) {
  // The "versatile" claim: the same OC that classifies also runs image
  // kernels. Check both mappings are legal simultaneously (filters fit in
  // the arms a LeNet L1 leaves free).
  const ArchConfig cfg = ArchConfig::defaults();
  const Mapper mapper(cfg);
  const auto l1 = mapper.map_layer(nn::lenet_desc().layers.front());
  const FilterBank bank(cfg);
  const auto filters = bank.mapping(8, 64, 64);
  EXPECT_LE(l1.arms_active + filters.arms_active, cfg.geometry.arms());
}

}  // namespace
}  // namespace lightator::core
