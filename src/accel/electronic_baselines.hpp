// The four electronic accelerators of Fig. 10, as execution-time models.
//
// Each model is peak-MACs x per-layer-class utilization; constants follow
// the published architectures (PE counts / frequencies) with utilizations
// derated per each design's dataflow story (e.g. Eyeriss' row-stationary
// conv efficiency vs. its memory-bound FC layers). See the .cpp for the
// provenance notes.
#pragma once

#include <vector>

#include "accel/accel_model.hpp"

namespace lightator::accel {

/// Eyeriss (JSSC'17): 168 PEs @ 200 MHz, row-stationary dataflow.
ElectronicAccelerator eyeriss();

/// YodaNN (TCAD'18): binary-weight ASIC (VGG13 substituted for VGG16 in the
/// paper's Fig. 10, matching its supported filter sizes).
ElectronicAccelerator yodann();

/// AppCip (JETCAS'23): analog convolution-in-pixel + digital backend.
ElectronicAccelerator appcip();

/// ENVISION (ISSCC'17): subword-parallel DVFS CNN processor (28 nm FDSOI).
ElectronicAccelerator envision();

/// Fig. 10 row order: Eyeriss, ENVISION, AppCip, YodaNN.
std::vector<ElectronicAccelerator> all_electronic_baselines();

}  // namespace lightator::accel
