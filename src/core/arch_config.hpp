// Architecture configuration: every calibration constant of the
// device-to-architecture simulator in one traceable place.
//
// Defaults are chosen from the paper and the literature it cites (see
// DESIGN.md §5) so that the component *shares* match the paper's Fig. 9 pie
// (DACs > 85%, DMVA ~ 9%, TUN ~ 4%, BPD ~ 1%, ADC < 1%) and the [4:4] ->
// [3:4] -> [2:4] power ladder follows the current-steering DAC scaling the
// paper attributes its 2.4x claim to. All values can be overridden from a
// util::Config ("key=value") for sweeps.
#pragma once

#include <cstddef>

#include "optics/microring.hpp"
#include "optics/photodetector.hpp"
#include "optics/vcsel.hpp"
#include "sensor/pixel_array.hpp"
#include "util/config.hpp"
#include "util/units.hpp"

namespace lightator::core {

/// Optical-core geometry (paper §4): 96 banks in an 8x12 array, 6 arms per
/// bank, 9 MRs per arm -> 5184 MRs / MAC slots per cycle.
struct OcGeometry {
  std::size_t bank_rows = 12;
  std::size_t bank_cols = 8;
  std::size_t arms_per_bank = 6;
  std::size_t mrs_per_arm = 9;
  /// Dedicated compressive-acquisitor banks (pre-set weights), in addition
  /// to the 96 MVM banks.
  std::size_t ca_banks = 8;

  std::size_t banks() const { return bank_rows * bank_cols; }
  std::size_t arms() const { return banks() * arms_per_bank; }
  std::size_t mrs() const { return arms() * mrs_per_arm; }
  std::size_t ca_arms() const { return ca_banks * arms_per_bank; }
};

struct ArchConfig {
  OcGeometry geometry;

  // ---- rates & times -------------------------------------------------
  /// Symbol (modulation/detection) rate of the optical datapath. The paper
  /// cites photodetection rates beyond 100 GHz; we default to a conservative
  /// 25 GHz directly-modulated-VCSEL rate.
  double modulation_rate = 25 * units::kGHz;
  /// MR thermal settle per weight-remap round (all DACs settle in parallel).
  double remap_settle = 500 * units::kNs;
  /// Frames sharing one weight-load in batched-throughput mode (Table 1).
  std::size_t throughput_batch = 256;

  // ---- per-unit electrical powers -------------------------------------
  /// 4-bit current-steering weight DAC per MR cell, full precision. Scales
  /// with (2^b - 1)/15 at lower weight precision b (power-gated branches).
  double dac_power_4bit = 0.92 * units::kMW;
  /// Output 4-bit ADC per bank (behind the splitter in Fig. 3).
  double adc_power = 0.2 * units::kMW;
  /// BPD + TIA static power per arm.
  double bpd_power = 0.05 * units::kMW;
  /// Controller / timing / command decoder.
  double controller_power = 5.0 * units::kMW;
  /// Selector mux per active VCSEL channel.
  double selector_power = 2.0 * units::kUW;
  /// Register-file / FIFO energy per bit for the streaming activation path
  /// (the SRAM buffer sits behind a line buffer; SRAM dynamic energy is
  /// charged per frame, not per symbol).
  double activation_buffer_energy_per_bit = 2.0 * units::kFJ;
  /// Pooling windows the CA banks process concurrently. The CA is sized for
  /// the sensor line rate, not the OC symbol rate, so a handful of parallel
  /// windows suffices and keeps its power in the Fig. 8 "dip" regime.
  std::size_t ca_parallel_windows = 4;

  // ---- device parameter blocks ----------------------------------------
  optics::MicroRingParams ring;     // heater efficiency set in defaults()
  optics::VcselParams vcsel;        // uA-class edge VCSELs, see defaults()
  optics::PhotodetectorParams detector;
  sensor::PixelArrayParams sensor;

  // ---- memory (CACTI-class 45 nm approximations) ----------------------
  double weight_sram_bytes = 2 * 1024 * 1024;
  double buffer_sram_bytes = 256 * 1024;

  /// Weight-DAC power at `bits` precision (current-steering branch gating).
  double dac_power(int bits) const {
    return dac_power_4bit * static_cast<double>((1 << bits) - 1) / 15.0;
  }

  double cycle_time() const { return 1.0 / modulation_rate; }

  /// Defaults tuned per DESIGN.md §5.
  static ArchConfig defaults();

  /// defaults() overridden by "key=value" entries (see arch_config.cpp for
  /// the key list).
  static ArchConfig from_config(const util::Config& cfg);
};

}  // namespace lightator::core
