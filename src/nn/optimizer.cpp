#include "nn/optimizer.hpp"

#include <cmath>

#include <stdexcept>

namespace lightator::nn {

void Sgd::step(const std::vector<tensor::Tensor*>& params,
               const std::vector<tensor::Tensor*>& grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("optimizer params/grads mismatch");
  }
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (const auto* p : params) velocity_.emplace_back(p->shape());
  }
  const auto lr = static_cast<float>(params_.learning_rate);
  const auto mu = static_cast<float>(params_.momentum);
  const auto wd = static_cast<float>(params_.weight_decay);
  float clip = 1.0f;
  if (params_.max_grad_norm > 0.0) {
    double norm_sq = 0.0;
    for (const auto* g : grads) {
      for (std::size_t j = 0; j < g->size(); ++j) {
        norm_sq += static_cast<double>((*g)[j]) * (*g)[j];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > params_.max_grad_norm) {
      clip = static_cast<float>(params_.max_grad_norm / norm);
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::Tensor& p = *params[i];
    tensor::Tensor& g = *grads[i];
    tensor::Tensor& v = velocity_[i];
    if (p.size() != g.size() || p.size() != v.size()) {
      throw std::invalid_argument("optimizer tensor size mismatch");
    }
    for (std::size_t j = 0; j < p.size(); ++j) {
      const float grad = clip * g[j] + wd * p[j];
      v[j] = mu * v[j] + grad;
      p[j] -= lr * v[j];
      g[j] = 0.0f;
    }
  }
}

}  // namespace lightator::nn
