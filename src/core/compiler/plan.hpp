// The compiled execution plan the pass pipeline operates on.
//
// Engine::compile lowers a Network into a linear CompiledPlan of steps, then
// runs the PassManager (core/compiler/pass_manager.hpp) over it: dead-stage
// elimination drops no-op stages, stage fusion folds activation/pool stages
// into their producing conv/fc step's epilogue, and memory planning marks the
// plan for arena-backed execution. The executor (CompiledModel::run) walks
// whatever plan the pipeline produced — it has no knowledge of which passes
// ran, which is what keeps every pass independently toggleable and testable
// against the unoptimized plan.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/compute_backend.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"
#include "tensor/simd.hpp"
#include "tensor/tensor.hpp"

namespace lightator::core {

/// Which compiler passes Engine::compile runs over the plan, each
/// independently toggleable (the equivalence suite sweeps every
/// combination). All passes default on: each is verified bit-exact on the
/// gemm/reference backends and seeded-noise-identical on the physical
/// backend against the unoptimized plan, so the optimized plan is safe as
/// the default.
struct PassOptions {
  /// Drop stages that cannot change results: flatten (the executor shapes
  /// codes logically), identity activations without an active QAT
  /// fake-quant, and 1x1/stride-1 pools.
  bool eliminate_dead_stages = true;
  /// Fold activation (and, for conv, max/avg pool) stages into the producing
  /// weighted step's epilogue, applied on cache-resident GEMM output rows.
  bool fuse_stages = true;
  /// Micro-benchmark the candidate (kernel tier, strip blocking) variants per
  /// distinct GEMM geometry and freeze the winner into each weighted step
  /// (core/compiler/autotune.hpp). Off, the backend uses plain cpuid auto
  /// dispatch; either way every candidate is bit-exact, so this toggle only
  /// moves time.
  bool autotune_kernels = true;
  /// Execute through the per-context ScratchArena: static per-step scratch
  /// sizing + peak liveness, zero heap allocations at steady state.
  bool plan_memory = true;
};

/// One distinct packed-GEMM shape a compiled plan executes: C[m x n] =
/// A[m x k] B[k x n] reduced in `seg`-length arm segments, in `wide` (int64)
/// or narrow (int32) accumulation mode. Conv steps contribute
/// (out_channels, npix, kdim); fc steps (batch_hint, out_features,
/// in_features). The kernel-autotune pass tunes each distinct geometry once
/// — LeNet and VGG9 each have fewer than ten.
struct GemmGeometry {
  std::size_t m = 0, n = 0, k = 0;
  std::size_t seg = 0;
  bool wide = false;

  bool operator==(const GemmGeometry&) const = default;
};

/// One measured autotune candidate.
struct KernelCandidate {
  tensor::KernelConfig config;
  double best_us = 0.0;
};

/// The tuning record for one geometry: every candidate measured (empty when
/// the choice was pinned or forced rather than measured) and the winner.
struct KernelPlanEntry {
  GemmGeometry geom;
  tensor::KernelConfig choice;
  bool measured = false;
  std::vector<KernelCandidate> candidates;
  /// The win-margin hysteresis the race applied (0 when nothing was
  /// measured) — part of the tuning report so a reader of the JSON artifact
  /// can tell how decisive the winner was.
  double hysteresis_margin = 0.0;
};

/// The per-geometry kernel decisions carried by a CompiledModel — the
/// artifact's tuning report. Pinning a plan into a later compile
/// (CompileOptions::pinned_kernel_plan) applies these choices without
/// re-measuring, which makes compilation deterministic: same machine +
/// pinned plan => identical CompiledModel and bit-identical outputs.
struct KernelPlan {
  std::vector<KernelPlanEntry> entries;

  bool empty() const { return entries.empty(); }
  const KernelPlanEntry* find(const GemmGeometry& geom) const {
    for (const KernelPlanEntry& e : entries) {
      if (e.geom == geom) return &e;
    }
    return nullptr;
  }
};

/// One step of the compiled execution plan. Weighted steps carry the
/// programmed (quantized + prepacked) weights; electronic-block steps carry
/// the snapshot of the layer's inference-time configuration, so execution
/// never touches the source Network again.
struct CompiledStep {
  nn::LayerKind kind = nn::LayerKind::kFlatten;
  std::string name;

  // kConv / kLinear
  tensor::QuantizedTensor weights;
  tensor::Tensor bias;
  tensor::ConvSpec conv;
  std::size_t fc_in = 0, fc_out = 0;
  int wbits = 0, abits = 4;
  std::size_t weighted_index = 0;
  /// What the stage-fusion pass folded into this weighted step (inactive by
  /// default — an unfused step behaves exactly like plain conv2d/linear).
  FusedEpilogue epilogue;
  /// The kernel-autotune pass's dispatch decision for this step's GEMM
  /// (default: plain runtime auto dispatch, the pre-autotune behavior).
  /// Routed to the backend through StepScratch::kernel; purely a speed
  /// choice — every config is bit-exact.
  tensor::KernelConfig kernel;

  // kMaxPool / kAvgPool
  std::size_t pool_kernel = 0, pool_stride = 0;

  // kActivation (act_scale frozen at compile time, the QAT convention)
  tensor::ActKind act = tensor::ActKind::kReLU;
  int act_qat_bits = 0;
  double act_scale = 0.0;
};

/// The pass pipeline's working object: the step sequence plus what the
/// pipeline decided about it. Owned (immutably, post-compile) by
/// CompiledModel::Impl.
struct CompiledPlan {
  std::vector<CompiledStep> steps;
  std::size_t num_weighted = 0;
  /// Set by the memory-planning pass: run() stages intermediates in the
  /// context's ScratchArena (the concrete layout is batch-parameterized and
  /// computed by ScratchArena::prepare at first run).
  bool arena_enabled = false;
  /// Names of the passes that ran, in order (introspection / tests).
  std::vector<std::string> applied_passes;
  /// Per-geometry kernel decisions recorded by the kernel-autotune pass
  /// (empty when the pass was off, the backend has no packed GEMM, or every
  /// choice came from a CompileOptions::force_kernel override).
  KernelPlan kernel_plan;
  /// Geometry-only snapshot (weights/bias/name dropped) of the plan before
  /// any pass ran — the baseline for planned-vs-naive peak-memory
  /// accounting in CompiledModel::memory_report.
  std::vector<CompiledStep> unoptimized_geometry;
};

}  // namespace lightator::core
