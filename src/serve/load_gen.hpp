// LoadGen: deterministic load generators for the serving layer.
//
// Two drive modes share one seeding discipline (every stochastic choice is a
// pure function of the seed, never of completion timing):
//
// Closed loop (run_closed_loop): at most `concurrency` requests outstanding;
// each completion admits the next submission. Rejected submissions retry
// after reaping the oldest outstanding request, so a capacity smaller than
// the concurrency degrades throughput instead of dropping work. Because
// request i's input index — and, when a class mix is configured, its
// priority class — come from seeded streams, and the server's per-request
// outputs are batching-invariant (physical-backend noise seeds from the
// request id), the collected outputs are bit-identical across replica
// counts and batching policies.
//
// Open loop (run_open_loop): offered load is fixed up front as an arrival
// SCHEDULE — make_arrival_schedule() is a pure function of the options — and
// requests are submitted at their scheduled times whether or not earlier
// ones completed. This is the mode that can actually overload a server:
// rejections and sheds are recorded as outcomes, never retried, which is
// what the SLO bench needs to measure shed ordering and deadline hit-rates
// under saturation. Interarrivals are exponential (Poisson process) under
// kPoisson, with kBurst/kDiurnal modulating the instantaneous rate
// deterministically; kConstant spaces arrivals evenly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/server.hpp"

namespace lightator::serve {

/// One component of a mixed-priority request stream: `share` of requests
/// (normalized over the mix) carry `klass`, each with `deadline_ms` from
/// submission (0 = no deadline).
struct ClassMix {
  sched::RequestClass klass = sched::RequestClass::kStandard;
  double share = 1.0;
  double deadline_ms = 0.0;
};

struct LoadGenOptions {
  std::size_t requests = 64;
  /// Outstanding-request window (closed loop).
  std::size_t concurrency = 8;
  /// Seeds the input-selection sequence.
  std::uint64_t seed = 1;
  /// Optional priority-class mix. Empty (default) submits every request as
  /// plain kStandard with no deadline — byte-identical to the pre-scheduler
  /// closed loop. The class stream draws from a second Rng (seed ^ salt) so
  /// configuring a mix never perturbs the input-index sequence.
  std::vector<ClassMix> classes;
};

struct LoadGenReport {
  std::vector<std::size_t> input_index;  // request i -> inputs[] index used
  std::vector<tensor::Tensor> outputs;   // request i -> its [1, ...] output
  std::vector<std::size_t> batch_sizes;  // request i -> batch it rode in
  std::uint64_t reject_retries = 0;      // backpressure events absorbed
  std::uint64_t shed = 0;     // admission-control drops (not retried)
  std::uint64_t expired = 0;  // completed with kDeadlineExceeded
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
};

/// Runs the closed loop to completion. `inputs` are single frames
/// ([C, H, W] or [1, C, H, W]); mixed geometries are fine — the server
/// buckets them. Propagates the first request failure as an exception.
/// Shed or deadline-expired requests (only possible when the server's
/// SchedOptions are non-default) leave outputs[i] empty / batch_sizes[i]=0.
LoadGenReport run_closed_loop(InferenceServer& server,
                              const std::vector<tensor::Tensor>& inputs,
                              const LoadGenOptions& options = {});

/// Offered-load shape for the open loop.
enum class TrafficShape {
  kConstant,  // evenly spaced arrivals at rate_rps
  kPoisson,   // exponential interarrivals at rate_rps
  kBurst,     // Poisson, rate * burst_factor during periodic burst windows
  kDiurnal,   // Poisson, rate * (1 + amplitude * sin(2*pi*t / period))
};

struct OpenLoopOptions {
  std::size_t requests = 256;
  /// Mean offered rate, requests per second.
  double rate_rps = 1000.0;
  std::uint64_t seed = 1;
  TrafficShape shape = TrafficShape::kPoisson;
  /// kBurst: every burst_period_seconds, the first burst_duty fraction of
  /// the period runs at rate_rps * burst_factor (the rest at rate_rps).
  double burst_factor = 4.0;
  double burst_period_seconds = 0.05;
  double burst_duty = 0.25;
  /// kDiurnal: sinusoidal rate modulation.
  double diurnal_amplitude = 0.8;
  double diurnal_period_seconds = 0.2;
  /// Priority-class mix; empty = all kStandard, no deadlines.
  std::vector<ClassMix> classes;
};

/// Per-request terminal outcome in the open loop.
enum class RequestOutcome : std::uint8_t {
  kCompleted = 0,  // served, output captured
  kShed = 1,       // dropped by admission control at submit
  kRejected = 2,   // queue full at submit
  kExpired = 3,    // admitted, then completed as deadline_exceeded
};

/// The precomputed offered stream: request i arrives at `at_seconds` from
/// t=0 carrying `klass`/`deadline_ms` and input `input_index`.
struct Arrival {
  double at_seconds = 0.0;
  std::size_t input_index = 0;
  sched::RequestClass klass = sched::RequestClass::kStandard;
  double deadline_ms = 0.0;
};

/// Pure function of (options, num_inputs): same options, same schedule —
/// the open loop's determinism anchor, and independently testable.
std::vector<Arrival> make_arrival_schedule(const OpenLoopOptions& options,
                                           std::size_t num_inputs);

struct OpenLoopReport {
  std::vector<Arrival> schedule;           // as offered
  std::vector<RequestOutcome> outcomes;    // request i -> terminal outcome
  std::vector<tensor::Tensor> outputs;     // completed requests only
  std::vector<double> latency_seconds;     // submit->complete; -1 otherwise
  std::vector<bool> deadline_met;          // completed w/ deadline: on time?
  std::uint64_t offered = 0, completed = 0, shed = 0, rejected = 0,
                expired = 0;
  double wall_seconds = 0.0;
};

/// Replays the arrival schedule against `server`, submitting request i under
/// id i at its scheduled time (never retrying — open loop measures loss).
OpenLoopReport run_open_loop(InferenceServer& server,
                             const std::vector<tensor::Tensor>& inputs,
                             const OpenLoopOptions& options = {});

}  // namespace lightator::serve
