#include <gtest/gtest.h>

#include "core/filter_bank.hpp"
#include "workloads/scenes.hpp"

namespace lightator::core {
namespace {

FilterBank make_bank(int bits = 4) {
  return FilterBank(ArchConfig::defaults(), bits);
}

sensor::Image test_image() {
  return workloads::make_checker_scene(32, 32, 4).to_grayscale();
}

TEST(FilterBank, AllKindsHaveNamesAndTaps) {
  for (const auto kind : all_filter_kinds()) {
    EXPECT_STRNE(filter_name(kind), "?");
    const auto taps = filter_taps(kind);
    double mag = 0.0;
    for (float t : taps) mag += std::fabs(t);
    EXPECT_GT(mag, 0.0) << filter_name(kind);
  }
}

TEST(FilterBank, IdentityPassesThrough) {
  const auto r = make_bank(8).apply(FilterKind::kIdentity, test_image());
  const auto img = test_image();
  // 8-bit weights + 4-bit activations: fidelity is bounded by the 4-bit
  // activation grid (~1/15 steps -> low-30s dB).
  EXPECT_GT(image_psnr(r.output, img), 25.0);
  EXPECT_GT(r.psnr_vs_float, 30.0);
}

TEST(FilterBank, BlurSmoothsEdges) {
  const auto img = test_image();
  const auto r = make_bank().apply(FilterKind::kBoxBlur, img);
  // Total variation must shrink under blurring.
  auto variation = [](const sensor::Image& im) {
    double tv = 0.0;
    for (std::size_t y = 0; y < im.height(); ++y) {
      for (std::size_t x = 1; x < im.width(); ++x) {
        tv += std::fabs(static_cast<double>(im.at(y, x)) - im.at(y, x - 1));
      }
    }
    return tv;
  };
  EXPECT_LT(variation(r.output), variation(img));
}

TEST(FilterBank, SobelRespondsToEdges) {
  // Vertical-edge image: sobel_x responds, sobel_y ~ 0 away from borders.
  sensor::Image img(16, 16, 1);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 8; x < 16; ++x) img.at(y, x) = 1.0f;
  }
  const FilterBank bank = make_bank();
  const auto rx = bank.apply(FilterKind::kSobelX, img);
  const auto ry = bank.apply(FilterKind::kSobelY, img);
  EXPECT_GT(rx.output.at(8, 7), 0.5f);   // clamped positive response
  EXPECT_LT(ry.output.at(8, 4), 0.05f);  // interior: no horizontal edge
}

TEST(FilterBank, MorePrecisionBetterFidelity) {
  const auto img = test_image();
  const auto lo = make_bank(2).apply(FilterKind::kGaussianBlur, img);
  const auto hi = make_bank(6).apply(FilterKind::kGaussianBlur, img);
  EXPECT_GT(hi.psnr_vs_float, lo.psnr_vs_float);
  EXPECT_LT(hi.weight_rms_error, lo.weight_rms_error);
}

TEST(FilterBank, ApplyAllMatchesIndividualApply) {
  const auto img = test_image();
  const FilterBank bank = make_bank();
  const std::vector<FilterKind> kinds = {FilterKind::kSobelX,
                                         FilterKind::kSharpen};
  const auto batch = bank.apply_all(kinds, img);
  ASSERT_EQ(batch.size(), 2u);
  const auto single = bank.apply(FilterKind::kSobelX, img);
  EXPECT_NEAR(batch[0].psnr_vs_float, single.psnr_vs_float, 1e-9);
}

TEST(FilterBank, MappingOneArmPerKernel) {
  const FilterBank bank = make_bank();
  const auto m = bank.mapping(5, 64, 64);
  EXPECT_EQ(m.arms_per_output, 1u);  // 3x3 -> one arm per stride (Fig. 6a)
  EXPECT_EQ(m.total_arm_groups, 5u);
  EXPECT_EQ(m.idle_mrs, 0u);
  EXPECT_EQ(m.cycles_per_round, 64u * 64u);
}

TEST(FilterBank, RejectsBadInput) {
  const FilterBank bank = make_bank();
  EXPECT_THROW(bank.apply(FilterKind::kSobelX, sensor::Image(8, 8, 3)),
               std::invalid_argument);
  EXPECT_THROW(bank.apply_all({}, test_image()), std::invalid_argument);
  EXPECT_THROW(FilterBank(ArchConfig::defaults(), 0), std::invalid_argument);
}

TEST(ImagePsnr, IdenticalImagesCap) {
  const auto img = test_image();
  EXPECT_DOUBLE_EQ(image_psnr(img, img), 99.0);
  EXPECT_THROW(image_psnr(img, sensor::Image(4, 4, 1)), std::invalid_argument);
}

class FilterKindSweep : public ::testing::TestWithParam<FilterKind> {};

TEST_P(FilterKindSweep, OutputInRangeAndFiniteFidelity) {
  const auto r = make_bank().apply(GetParam(), test_image());
  for (float v : r.output.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  EXPECT_GT(r.psnr_vs_float, 0.0);
  EXPECT_GE(r.weight_rms_error, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, FilterKindSweep,
                         ::testing::ValuesIn(all_filter_kinds()));

}  // namespace
}  // namespace lightator::core
