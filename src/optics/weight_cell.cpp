#include "optics/weight_cell.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::optics {

WeightCell::WeightCell(MicroRingParams params, double channel_wavelength,
                       int weight_bits)
    : quantizer_{weight_bits, 1.0},
      pos_(params, channel_wavelength),
      neg_(params, channel_wavelength) {
  if (weight_bits < 1 || weight_bits > 8) {
    throw std::invalid_argument("weight bits must be in [1,8]");
  }
  set_weight(0.0);
}

void WeightCell::set_weight(double w) {
  if (w < -1.0 || w > 1.0) {
    throw std::invalid_argument("weight must be in [-1,1]");
  }
  level_ = quantizer_.quantize(w);
  const double magnitude = std::fabs(quantizer_.dequantize(level_));
  if (level_ >= 0) {
    pos_.set_weight(magnitude);
    neg_.set_weight(0.0);
  } else {
    pos_.set_weight(0.0);
    neg_.set_weight(magnitude);
  }
}

double WeightCell::realized_weight() const {
  return level_ >= 0 ? pos_.realized_weight() : -neg_.realized_weight();
}

double WeightCell::tuning_power() const {
  return pos_.tuning_power() + neg_.tuning_power();
}

double WeightCell::differential_transmission(double wavelength) const {
  const double t_pos = pos_.through_transmission(wavelength);
  const double t_neg = neg_.through_transmission(wavelength);
  const double norm =
      (1.0 - pos_.params().extinction) * pos_.params().weight_headroom;
  return (t_pos - t_neg) / norm;
}

}  // namespace lightator::optics
