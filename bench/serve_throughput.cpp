// Serving-layer throughput: batched dynamic-batching server vs serial
// submission, with JSON output for the CI perf gate.
//
// Drives the same seeded closed-loop request stream three ways:
//   * serial (per-call)  — one request at a time, compiling per forward:
//     exactly the pre-compile/execute-split per-call cost every entry point
//     used to pay (PR 4's serial baseline, and the quantity the historical
//     "batched_over_serial" CI floor was calibrated on);
//   * serial (compiled)  — one request at a time against one pre-compiled
//     artifact: the honest post-split no-batching baseline;
//   * batched — through an InferenceServer (N replicas sharing ONE
//     CompiledModel, geometry-bucketed micro-batching) via serve::LoadGen.
// batched/per-call isolates everything serving amortizes (compilation +
// batching); batched/compiled isolates batching alone — on one core it
// hovers near 1x (gated not to lose materially), on multicore the replicas
// pull ahead. Verifies per-request bit-exactness across all three paths
// (the serving determinism contract), then prints a JSON record:
//   { "bench": "serve_throughput", "serial_rps": ..,
//     "serial_compiled_rps": .., "batched_rps": ..,
//     "batched_over_serial": .., "batched_over_compiled": ..,
//     "bit_exact": ..., "stats": {...}, "tracing": {...}, "metrics": {...} }
// With tracing requested (trace=path or --trace path) an extra interleaved
// race measures the request-tracing overhead on a steady-state server: two
// passes tracing-disabled and two tracing-enabled (best-of each), the
// chrome://tracing JSON written from the enabled passes. The "tracing"
// section feeds two check_perf.py gates: disabled/batched >= noise floor
// (spans compiled in but off must cost nothing measurable) and
// enabled/disabled >= overhead floor.
// A multi-model router smoke follows the main runs: two LeNets behind one
// serve::InferenceRouter under mixed traffic, per-model stats checked, every
// response verified bit-exact against its own model's in-process compile.
// With artifact=path the "lenet" route serves a serialized CompiledModel
// blob (tools/model_artifact output) instead of compiling — CI's
// cross-process artifact-reuse proof; the "router" JSON section records it
// and check_perf.py requires failed == 0 and bit_exact when present.
// An SLO "overload" section closes the run: a deterministic shed/expiry
// micro-scenario on a frozen sched::ManualClock (its shed and
// deadline_exceeded trace events land in the trace BEFORE it is written, so
// validate_trace.py --expect-sched can check them), then an open-loop
// p99-vs-offered-load curve at {0.5, 0.9, 1.3, 2, 3}x the measured closed-
// loop capacity with a mixed class stream (admission shed_depth
// {0.25, 0.6, 1.0}; critical carries a deadline), plus one bursty run.
// check_perf.py gates graceful degradation off the "overload" JSON: critical
// deadline-hit-rate floor, saturated critical p99 bound, best-effort shed
// first, and bit-exactness of every ADMITTED request vs the compiled truth.
// Overrides (key=value): requests=256 concurrency=16 replicas=2 max_batch=16
//   max_wait_us=500 threads=1 inputs=8 seed=1 out=path.json trace=path.json
//   artifact=path.blob overload_requests=400
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/load_gen.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace lightator;

namespace {

/// Deterministic SLO micro-scenario: a frozen sched::ManualClock holds queue
/// depth constant, so the per-class depth gate trips at exact submission
/// indices (shed best-effort at depth 2, standard at 4, critical never on a
/// capacity-8 queue with thresholds {0.25, 0.5, 1.0}), and one deadline
/// request expires with the typed status. Run while the trace recorder is
/// live so the shed / deadline_exceeded events land in the CI trace.
struct SloSynthetic {
  std::uint64_t shed_best_effort = 0, shed_standard = 0, shed_critical = 0;
  std::uint64_t expired = 0, served = 0;
  bool shed_order_ok = false, expired_typed_ok = false;
};

SloSynthetic run_synthetic_slo(const core::LightatorSystem& sys,
                               const nn::Network& net,
                               const nn::PrecisionSchedule& schedule) {
  using RC = serve::sched::RequestClass;
  serve::sched::ManualClock clock;
  // Park the frozen timeline at the real clock's current value: the trace
  // recorder normalizes timestamps against its own steady_clock base, so a
  // ManualClock left at epoch zero would emit negative-ts events.
  clock.set_us(std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count());
  serve::ServerOptions so;
  so.replicas = 1;
  so.queue_capacity = 8;
  so.sched.clock = &clock;
  so.sched.admission.shed_depth = {0.25, 0.5, 1.0};
  serve::InferenceServer server(sys, net, schedule, so);

  tensor::Tensor x({1, 1, 28, 28}, 0.5f);
  std::vector<std::future<serve::InferResult>> accepted;
  // Explicit nonzero request ids: trace events only attribute args.request_id
  // when the id is set, and the gate checks every shed / expiry carries one.
  std::uint64_t next_id = 1;
  auto submit = [&](RC klass, double deadline_ms) {
    serve::SubmitTicket t = server.submit(
        x, next_id++, serve::sched::SubmitOptions{klass, deadline_ms});
    if (t.status == serve::SubmitStatus::kAccepted) {
      accepted.push_back(std::move(t.result));
    }
    return t.status;
  };
  // Doomed request first (cold EWMA: the deadline gate never sheds on a
  // guess), then fill depths with the clock frozen so each shed lands at an
  // exact submission index. Critical is submitted only after the first
  // advance, at depth 0 — submitted alongside the rest it would either be
  // depth-shed or dispatch the doomed request before its deadline passed.
  // Each advance releases the coalescing windows of everything queued
  // before it.
  submit(RC::kStandard, /*deadline_ms=*/5.0);                // doomed, depth 1
  for (int i = 0; i < 2; ++i) submit(RC::kBestEffort, 0.0);  // 2nd sheds
  for (int i = 0; i < 3; ++i) submit(RC::kStandard, 0.0);    // 3rd sheds
  clock.advance_us(10'000);  // doomed expires; windows release the rest
  submit(RC::kCritical, 0.0);
  clock.advance_us(10'000);  // releases the critical request's window

  SloSynthetic out;
  for (auto& f : accepted) {
    const serve::InferResult r = f.get();
    if (r.ok()) {
      ++out.served;
    } else {
      out.expired_typed_ok = r.batch_size == 0;
    }
  }
  const serve::ServerStats st = server.stats();
  server.shutdown();
  out.shed_best_effort =
      st.by_class[serve::sched::class_index(RC::kBestEffort)].shed;
  out.shed_standard =
      st.by_class[serve::sched::class_index(RC::kStandard)].shed;
  out.shed_critical =
      st.by_class[serve::sched::class_index(RC::kCritical)].shed;
  out.expired = st.expired;
  out.shed_order_ok = out.shed_best_effort == 1 && out.shed_standard == 1 &&
                      out.shed_critical == 0;
  out.expired_typed_ok = out.expired_typed_ok && out.expired == 1;
  return out;
}

/// One open-loop overload measurement: offered rate, per-class loss
/// accounting, critical completion p99, admitted deadline-hit rates, and
/// bit-exactness of every completed request vs the compiled ground truth.
struct OverloadPoint {
  double target_x = 0.0, offered_rps = 0.0, achieved_rps = 0.0;
  std::uint64_t offered = 0, completed = 0, shed = 0, rejected = 0,
                expired = 0;
  std::array<std::uint64_t, 3> offered_by_class{}, shed_by_class{};
  double critical_p99_ms = 0.0;
  double critical_hit_rate = 1.0, standard_hit_rate = 1.0;
  bool bit_exact = true;
};

OverloadPoint run_overload_point(const core::LightatorSystem& sys,
                                 const nn::Network& net,
                                 const nn::PrecisionSchedule& schedule,
                                 const serve::ServerOptions& base_options,
                                 const std::vector<tensor::Tensor>& inputs,
                                 const std::vector<tensor::Tensor>& truth,
                                 serve::OpenLoopOptions ol, double target_x) {
  using RC = serve::sched::RequestClass;
  serve::ServerOptions so = base_options;
  so.sched.admission.shed_depth = {0.25, 0.6, 1.0};
  serve::InferenceServer server(sys, net, schedule, so);
  const serve::OpenLoopReport rep = serve::run_open_loop(server, inputs, ol);
  const serve::ServerStats st = server.stats();
  server.shutdown();

  OverloadPoint pt;
  pt.target_x = target_x;
  pt.offered_rps = ol.rate_rps;
  pt.achieved_rps = rep.wall_seconds > 0.0
                        ? static_cast<double>(rep.completed) / rep.wall_seconds
                        : 0.0;
  pt.offered = rep.offered;
  pt.completed = rep.completed;
  pt.shed = rep.shed;
  pt.rejected = rep.rejected;
  pt.expired = rep.expired;
  std::vector<double> critical_ms;
  for (std::size_t i = 0; i < rep.schedule.size(); ++i) {
    const std::size_t c = serve::sched::class_index(rep.schedule[i].klass);
    ++pt.offered_by_class[c];
    if (rep.outcomes[i] == serve::RequestOutcome::kShed) ++pt.shed_by_class[c];
    if (rep.outcomes[i] != serve::RequestOutcome::kCompleted) continue;
    if (rep.schedule[i].klass == RC::kCritical) {
      critical_ms.push_back(rep.latency_seconds[i] * 1e3);
    }
    // Bit-exactness of every ADMITTED-and-served request: outputs depend
    // only on the input frame (noiseless gemm backend), so the compiled
    // batch-of-1 truth per distinct input is the full reference.
    const tensor::Tensor& want = truth[rep.schedule[i].input_index];
    pt.bit_exact = pt.bit_exact && rep.outputs[i].size() == want.size();
    for (std::size_t j = 0; pt.bit_exact && j < want.size(); ++j) {
      pt.bit_exact = rep.outputs[i][j] == want[j];
    }
  }
  if (!critical_ms.empty()) {
    std::sort(critical_ms.begin(), critical_ms.end());
    pt.critical_p99_ms =
        critical_ms[static_cast<std::size_t>(0.99 *
                    static_cast<double>(critical_ms.size() - 1))];
  }
  pt.critical_hit_rate =
      st.by_class[serve::sched::class_index(RC::kCritical)]
          .deadline_hit_rate();
  pt.standard_hit_rate =
      st.by_class[serve::sched::class_index(RC::kStandard)]
          .deadline_hit_rate();
  return pt;
}

std::string overload_point_json(const OverloadPoint& pt,
                                const char* indent) {
  std::ostringstream j;
  j << indent << "{\"target_x\": " << pt.target_x
    << ", \"offered_rps\": " << pt.offered_rps
    << ", \"achieved_rps\": " << pt.achieved_rps
    << ", \"offered\": " << pt.offered
    << ", \"completed\": " << pt.completed
    << ", \"shed\": " << pt.shed << ", \"rejected\": " << pt.rejected
    << ", \"expired\": " << pt.expired
    << ",\n" << indent << " \"shed_best_effort\": " << pt.shed_by_class[0]
    << ", \"shed_standard\": " << pt.shed_by_class[1]
    << ", \"shed_critical\": " << pt.shed_by_class[2]
    << ", \"offered_best_effort\": " << pt.offered_by_class[0]
    << ", \"offered_standard\": " << pt.offered_by_class[1]
    << ", \"offered_critical\": " << pt.offered_by_class[2]
    << ",\n" << indent << " \"critical_p99_ms\": " << pt.critical_p99_ms
    << ", \"critical_hit_rate\": " << pt.critical_hit_rate
    << ", \"standard_hit_rate\": " << pt.standard_hit_rate
    << ", \"bit_exact\": " << (pt.bit_exact ? "true" : "false") << "}";
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  // `--trace <path>` convenience spelling: strip it before the strict
  // key=value parser sees it (equivalent to trace=<path>).
  std::string trace_path;
  std::vector<char*> cfg_args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::string(argv[i]) == "--trace") {
      trace_path = argv[++i];
      continue;
    }
    cfg_args.push_back(argv[i]);
  }
  const util::Config cfg = bench::parse_args(
      static_cast<int>(cfg_args.size()), cfg_args.data());
  if (trace_path.empty()) trace_path = cfg.get_string("trace", "");
  const std::size_t requests =
      static_cast<std::size_t>(cfg.get_int("requests", 256));
  const std::size_t concurrency =
      static_cast<std::size_t>(cfg.get_int("concurrency", 16));
  const std::size_t replicas =
      static_cast<std::size_t>(cfg.get_int("replicas", 2));
  const std::size_t max_batch =
      static_cast<std::size_t>(cfg.get_int("max_batch", 16));
  const double max_wait_us = cfg.get_double("max_wait_us", 500.0);
  const std::size_t threads =
      static_cast<std::size_t>(cfg.get_int("threads", 1));
  const std::size_t num_inputs =
      static_cast<std::size_t>(cfg.get_int("inputs", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const std::string out_path = cfg.get_string("out", "");

  bench::print_header("serve_throughput",
                      "dynamic-batching inference server vs serial submission");

  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(21);
  nn::Network net = nn::build_lenet(rng);
  const auto schedule = nn::PrecisionSchedule::uniform(4);

  // A pool of distinct LeNet-geometry frames the load generator samples from.
  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    tensor::Tensor x({1, 1, 28, 28});
    x.fill_uniform(rng, 0.0f, 1.0f);
    inputs.push_back(std::move(x));
  }

  // The exact request sequence the load generator will submit.
  serve::LoadGenOptions lg;
  lg.requests = requests;
  lg.concurrency = concurrency;
  lg.seed = seed;

  // --- serial baseline: one request at a time, batch of 1 -------------------
  std::vector<std::size_t> serial_index(requests);
  {
    util::Rng pick(seed);
    for (std::size_t i = 0; i < requests; ++i) {
      serial_index[i] = pick.uniform_index(inputs.size());
    }
  }
  util::ThreadPool serial_pool(1);
  core::ExecutionContext serial_ctx;
  serial_ctx.pool = &serial_pool;
  core::CompileOptions serial_co;
  serial_co.schedule = schedule;
  // Pre-split per-call baseline: compile (quantize + pack) on every forward
  // — bit-identical outputs, the cost profile run_network_on_oc had before
  // the compile/execute split.
  std::vector<tensor::Tensor> serial_out(requests);
  const auto serial_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    serial_out[i] = sys.compile(net, serial_co)
                        .run(inputs[serial_index[i]], serial_ctx)
                        .take();
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  const double serial_rps =
      serial_s > 0.0 ? static_cast<double>(requests) / serial_s : 0.0;

  // Compile-once serial baseline: what a modern single-stream client pays.
  const core::CompiledModel serial_model = sys.compile(net, serial_co);
  std::vector<tensor::Tensor> compiled_out(requests);
  const auto compiled_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    compiled_out[i] = serial_model.run(inputs[serial_index[i]], serial_ctx)
                          .take();
  }
  const double compiled_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compiled_start)
          .count();
  const double serial_compiled_rps =
      compiled_s > 0.0 ? static_cast<double>(requests) / compiled_s : 0.0;

  // Per-layer execution stats for the metrics snapshot — collected on a few
  // post-timing forwards so the timed loops above stay undisturbed.
  serial_ctx.collect_stats = true;
  for (std::size_t i = 0; i < std::min<std::size_t>(requests, 8); ++i) {
    serial_model.run(inputs[serial_index[i]], serial_ctx).take();
  }
  serial_ctx.collect_stats = false;
  obs::record_layer_stats(obs::MetricsRegistry::global(), serial_ctx.stats);

  // --- batched: the inference server --------------------------------------
  serve::ServerOptions so;
  so.backend = "gemm";
  so.replicas = replicas;
  so.queue_capacity = std::max<std::size_t>(2 * concurrency, 16);
  so.batch.max_batch = max_batch;
  so.batch.max_wait_us = max_wait_us;
  so.threads_per_replica = threads;
  serve::InferenceServer server(sys, net, schedule, so);
  const serve::LoadGenReport load = serve::run_closed_loop(server, inputs, lg);
  const serve::ServerStats stats = server.stats();
  server.shutdown();

  // --- tracing overhead race (only when a trace was requested) --------------
  // Interleaved best-of-2 passes, tracing off/on, against one steady-state
  // server: interleaving cancels thermal / frequency drift, best-of damps
  // scheduler noise. The trace artifact itself comes from the enabled
  // passes.
  double tracing_disabled_rps = 0.0, tracing_enabled_rps = 0.0;
  std::size_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  SloSynthetic synthetic;
  const bool tracing_requested = !trace_path.empty();
  if (tracing_requested) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    serve::InferenceServer race_server(sys, net, schedule, so);
    const auto run_pass = [&] {
      return serve::run_closed_loop(race_server, inputs, lg)
          .requests_per_second;
    };
    run_pass();  // warmup: arenas, rings-to-be, queue steady state
    for (int r = 0; r < 2; ++r) {
      rec.stop();
      tracing_disabled_rps = std::max(tracing_disabled_rps, run_pass());
      rec.start();
      tracing_enabled_rps = std::max(tracing_enabled_rps, run_pass());
    }
    rec.stop();
    race_server.shutdown();
    // The SLO micro-scenario runs with the recorder LIVE and before the
    // trace is written, so the shed / deadline_exceeded events (and the
    // expired request's balanced async queue span) are part of the artifact
    // validate_trace.py --expect-sched checks.
    rec.start();
    synthetic = run_synthetic_slo(sys, net, schedule);
    rec.stop();
    trace_events = rec.write_chrome_json(trace_path);
    trace_dropped = rec.dropped();
    std::printf("trace    %zu events (%llu dropped) -> %s\n", trace_events,
                static_cast<unsigned long long>(trace_dropped),
                trace_path.c_str());
    std::printf("tracing  %8.1f req/s disabled, %8.1f req/s enabled "
                "(%.3fx)\n",
                tracing_disabled_rps, tracing_enabled_rps,
                tracing_disabled_rps > 0.0
                    ? tracing_enabled_rps / tracing_disabled_rps
                    : 0.0);
  }

  if (!tracing_requested) {
    synthetic = run_synthetic_slo(sys, net, schedule);
  }
  std::printf("slo      synthetic: shed be=%llu std=%llu crit=%llu, "
              "expired %llu, served %llu (order %s, typed expiry %s)\n",
              static_cast<unsigned long long>(synthetic.shed_best_effort),
              static_cast<unsigned long long>(synthetic.shed_standard),
              static_cast<unsigned long long>(synthetic.shed_critical),
              static_cast<unsigned long long>(synthetic.expired),
              static_cast<unsigned long long>(synthetic.served),
              synthetic.shed_order_ok ? "ok" : "WRONG",
              synthetic.expired_typed_ok ? "ok" : "WRONG");

  // --- multi-model router smoke ---------------------------------------------
  // Two models behind one InferenceRouter: "lenet" — served from the
  // artifact= blob when one is given (a blob compiled by a DIFFERENT process
  // via tools/model_artifact: the cross-process artifact-reuse proof CI
  // leans on) or compiled in-process otherwise — and "lenet-b", a second
  // network. Mixed traffic; every response must match its own model's
  // in-process compiled baseline bit-for-bit, and per-model ServerStats must
  // account exactly for their own traffic. Runs after the trace is written,
  // so the traced span stream validate_trace.py checks stays untouched.
  const std::string artifact_path = cfg.get_string("artifact", "");
  bool router_exact = true;
  std::uint64_t router_failed = 0;
  std::uint64_t router_a_completed = 0, router_b_completed = 0;
  {
    serve::InferenceRouter router;
    if (!artifact_path.empty()) {
      router.deploy_artifact("lenet", "v1", artifact_path, sys, so);
    } else {
      router.deploy("lenet", "v1", sys.compile(net, serial_co), so);
    }
    util::Rng rng_b(33);
    nn::Network net_b = nn::build_lenet(rng_b);
    const core::CompiledModel model_b = sys.compile(net_b, serial_co);
    router.deploy("lenet-b", "v1", model_b, so);

    // In-process ground truth for both models (for "lenet" this is what the
    // blob must reproduce across the process boundary).
    const core::CompiledModel truth_a = sys.compile(net, serial_co);
    const std::size_t per_model = std::min<std::size_t>(requests / 2, 64);
    for (std::size_t i = 0; i < per_model && router_exact; ++i) {
      const tensor::Tensor& x = inputs[i % inputs.size()];
      const tensor::Tensor ya = truth_a.run(x, serial_ctx).take();
      const tensor::Tensor yb = model_b.run(x, serial_ctx).take();
      const serve::InferResult ra = router.infer("lenet", x);
      const serve::InferResult rb = router.infer("lenet-b", x);
      router_exact = ra.output().size() == ya.size() &&
                     rb.output().size() == yb.size();
      for (std::size_t j = 0; router_exact && j < ya.size(); ++j) {
        router_exact = ra.output()[j] == ya[j] && rb.output()[j] == yb[j];
      }
    }
    const serve::ServerStats sa = router.stats("lenet");
    const serve::ServerStats sb = router.stats("lenet-b");
    router_failed = sa.failed + sb.failed;
    router_a_completed = sa.completed;
    router_b_completed = sb.completed;
    router_exact = router_exact && sa.completed == sb.completed;
    router.shutdown();
    std::printf("router   lenet %llu + lenet-b %llu requests (%s)   "
                "bit-exact %s\n",
                static_cast<unsigned long long>(router_a_completed),
                static_cast<unsigned long long>(router_b_completed),
                artifact_path.empty() ? "compiled in-process"
                                      : ("artifact " + artifact_path).c_str(),
                router_exact ? "yes" : "NO");
  }

  // --- SLO overload curve ---------------------------------------------------
  // Open-loop offered load at multiples of the measured closed-loop capacity,
  // mixed class stream (30% best-effort, 40% standard w/ 200ms deadline, 30%
  // critical w/ 100ms deadline), admission thresholds {0.25, 0.6, 1.0}. The
  // graceful-degradation story check_perf.py gates: past saturation the
  // server sheds best-effort first, keeps admitting critical, and every
  // request it DOES admit is served bit-exact and overwhelmingly inside its
  // deadline.
  const std::size_t overload_requests =
      static_cast<std::size_t>(cfg.get_int("overload_requests", 400));
  const double capacity_rps = load.requests_per_second;
  // Per-input ground truth (outputs depend only on the input frame under the
  // noiseless gemm backend): one compiled batch-of-1 run per distinct input
  // covers every admitted request at every load point.
  std::vector<tensor::Tensor> truth(inputs.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    truth[k] = serial_model.run(inputs[k], serial_ctx).take();
  }
  std::vector<serve::ClassMix> slo_mix = {
      {serve::sched::RequestClass::kBestEffort, 0.3, 0.0},
      {serve::sched::RequestClass::kStandard, 0.4, 200.0},
      {serve::sched::RequestClass::kCritical, 0.3, 100.0}};
  std::vector<OverloadPoint> points;
  const double load_multiples[] = {0.5, 0.9, 1.3, 2.0, 3.0};
  for (std::size_t p = 0; p < std::size(load_multiples); ++p) {
    serve::OpenLoopOptions ol;
    ol.requests = overload_requests;
    ol.rate_rps = std::max(load_multiples[p] * capacity_rps, 1.0);
    ol.seed = seed + 100 + p;
    ol.shape = serve::TrafficShape::kPoisson;
    ol.classes = slo_mix;
    points.push_back(run_overload_point(sys, net, schedule, so, inputs,
                                        truth, ol, load_multiples[p]));
    const OverloadPoint& pt = points.back();
    std::printf("overload %.1fx  offered %7.0f req/s  completed %4llu  "
                "shed be/std/crit %llu/%llu/%llu  crit p99 %6.2f ms  "
                "crit hit %.3f  %s\n",
                pt.target_x, pt.offered_rps,
                static_cast<unsigned long long>(pt.completed),
                static_cast<unsigned long long>(pt.shed_by_class[0]),
                static_cast<unsigned long long>(pt.shed_by_class[1]),
                static_cast<unsigned long long>(pt.shed_by_class[2]),
                pt.critical_p99_ms, pt.critical_hit_rate,
                pt.bit_exact ? "bit-exact" : "NOT BIT-EXACT");
  }
  OverloadPoint burst;
  {
    serve::OpenLoopOptions ol;
    ol.requests = overload_requests;
    ol.rate_rps = std::max(1.5 * capacity_rps, 1.0);
    ol.seed = seed + 200;
    ol.shape = serve::TrafficShape::kBurst;
    ol.burst_factor = 4.0;
    ol.classes = slo_mix;
    burst = run_overload_point(sys, net, schedule, so, inputs, truth, ol,
                               1.5);
    std::printf("overload burst 1.5x(x4)  completed %4llu  crit p99 "
                "%6.2f ms  crit hit %.3f  %s\n",
                static_cast<unsigned long long>(burst.completed),
                burst.critical_p99_ms, burst.critical_hit_rate,
                burst.bit_exact ? "bit-exact" : "NOT BIT-EXACT");
  }
  // Summary the perf gate reads. Shed ordering compares per-class shed RATES
  // aggregated over the saturated points (>= 1.3x) plus the burst run.
  double min_critical_hit = 1.0, max_saturated_crit_p99 = 0.0;
  std::array<std::uint64_t, 3> agg_shed{}, agg_offered{};
  bool overload_exact = burst.bit_exact;
  for (const OverloadPoint& pt : points) {
    overload_exact = overload_exact && pt.bit_exact;
    min_critical_hit = std::min(min_critical_hit, pt.critical_hit_rate);
    if (pt.target_x >= 1.29) {
      max_saturated_crit_p99 =
          std::max(max_saturated_crit_p99, pt.critical_p99_ms);
      for (std::size_t c = 0; c < 3; ++c) {
        agg_shed[c] += pt.shed_by_class[c];
        agg_offered[c] += pt.offered_by_class[c];
      }
    }
  }
  min_critical_hit = std::min(min_critical_hit, burst.critical_hit_rate);
  max_saturated_crit_p99 =
      std::max(max_saturated_crit_p99, burst.critical_p99_ms);
  for (std::size_t c = 0; c < 3; ++c) {
    agg_shed[c] += burst.shed_by_class[c];
    agg_offered[c] += burst.offered_by_class[c];
  }
  const auto shed_rate = [&](std::size_t c) {
    return agg_offered[c] > 0 ? static_cast<double>(agg_shed[c]) /
                                    static_cast<double>(agg_offered[c])
                              : 0.0;
  };
  const bool shed_order_ok = shed_rate(0) >= shed_rate(1) &&
                             shed_rate(1) >= shed_rate(2) &&
                             agg_shed[0] > 0;  // overload DID shed something
  std::printf("overload summary: shed rates be %.3f / std %.3f / crit %.3f "
              "(%s), min crit hit %.3f, saturated crit p99 %.2f ms\n\n",
              shed_rate(0), shed_rate(1), shed_rate(2),
              shed_order_ok ? "ordered" : "OUT OF ORDER", min_critical_hit,
              max_saturated_crit_p99);

  // --- bit-exactness: the serving determinism contract ---------------------
  bool exact = true;
  for (std::size_t i = 0; exact && i < requests; ++i) {
    exact = load.input_index[i] == serial_index[i] &&
            load.outputs[i].size() == serial_out[i].size() &&
            compiled_out[i].size() == serial_out[i].size();
    for (std::size_t j = 0; exact && j < serial_out[i].size(); ++j) {
      exact = load.outputs[i][j] == serial_out[i][j] &&
              compiled_out[i][j] == serial_out[i][j];
    }
  }

  const double ratio =
      serial_rps > 0.0 ? load.requests_per_second / serial_rps : 0.0;
  const double compiled_ratio =
      serial_compiled_rps > 0.0
          ? load.requests_per_second / serial_compiled_rps
          : 0.0;
  std::printf("serial   %8.1f req/s  (%zu requests, batch 1, "
              "compile-per-call)\n",
              serial_rps, requests);
  std::printf("compiled %8.1f req/s  (batch 1, one artifact)\n",
              serial_compiled_rps);
  std::printf("batched  %8.1f req/s  (%zu replicas, max_batch %zu, "
              "mean batch %.2f)\n",
              load.requests_per_second, server.replica_count(), max_batch,
              stats.mean_batch_size());
  std::printf("speedup  %8.2fx vs per-call, %.2fx vs compiled   "
              "bit-exact %s\n\n",
              ratio, compiled_ratio, exact ? "yes" : "NO");
  std::printf("%s\n", stats.to_text().c_str());

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve_throughput\",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"replicas\": " << server.replica_count() << ",\n"
       << "  \"concurrency\": " << concurrency << ",\n"
       << "  \"max_batch\": " << max_batch << ",\n"
       << "  \"max_wait_us\": " << max_wait_us << ",\n"
       << "  \"serial_rps\": " << serial_rps << ",\n"
       << "  \"serial_compiled_rps\": " << serial_compiled_rps << ",\n"
       << "  \"batched_rps\": " << load.requests_per_second << ",\n"
       << "  \"batched_over_serial\": " << ratio << ",\n"
       << "  \"batched_over_compiled\": " << compiled_ratio << ",\n"
       << "  \"reject_retries\": " << load.reject_retries << ",\n"
       << "  \"bit_exact\": " << (exact ? "true" : "false") << ",\n"
       << "  \"stats\": " << stats.to_json("    ") << ",\n";
  if (tracing_requested) {
    json << "  \"tracing\": {\n"
         << "    \"disabled_rps\": " << tracing_disabled_rps << ",\n"
         << "    \"enabled_rps\": " << tracing_enabled_rps << ",\n"
         << "    \"disabled_over_batched\": "
         << (load.requests_per_second > 0.0
                 ? tracing_disabled_rps / load.requests_per_second
                 : 0.0)
         << ",\n"
         << "    \"enabled_over_disabled\": "
         << (tracing_disabled_rps > 0.0
                 ? tracing_enabled_rps / tracing_disabled_rps
                 : 0.0)
         << ",\n"
         << "    \"trace_events\": " << trace_events << ",\n"
         << "    \"trace_dropped\": " << trace_dropped << "\n  },\n";
  }
  json << "  \"router\": {\n"
       << "    \"models\": 2,\n"
       << "    \"artifact\": "
       << (artifact_path.empty() ? "false" : "true") << ",\n"
       << "    \"lenet_completed\": " << router_a_completed << ",\n"
       << "    \"lenet_b_completed\": " << router_b_completed << ",\n"
       << "    \"failed\": " << router_failed << ",\n"
       << "    \"bit_exact\": " << (router_exact ? "true" : "false")
       << "\n  },\n";
  json << "  \"overload\": {\n"
       << "    \"capacity_rps\": " << capacity_rps << ",\n"
       << "    \"requests_per_point\": " << overload_requests << ",\n"
       << "    \"points\": [\n";
  for (std::size_t p = 0; p < points.size(); ++p) {
    json << overload_point_json(points[p], "      ")
         << (p + 1 < points.size() ? ",\n" : "\n");
  }
  json << "    ],\n"
       << "    \"burst\": " << overload_point_json(burst, "    ") << ",\n"
       << "    \"summary\": {\n"
       << "      \"min_critical_hit_rate\": " << min_critical_hit << ",\n"
       << "      \"max_saturated_critical_p99_ms\": " << max_saturated_crit_p99
       << ",\n"
       << "      \"shed_rate_best_effort\": " << shed_rate(0) << ",\n"
       << "      \"shed_rate_standard\": " << shed_rate(1) << ",\n"
       << "      \"shed_rate_critical\": " << shed_rate(2) << ",\n"
       << "      \"shed_order_ok\": " << (shed_order_ok ? "true" : "false")
       << ",\n"
       << "      \"bit_exact\": " << (overload_exact ? "true" : "false")
       << "\n    },\n"
       << "    \"synthetic\": {\n"
       << "      \"shed_best_effort\": " << synthetic.shed_best_effort << ",\n"
       << "      \"shed_standard\": " << synthetic.shed_standard << ",\n"
       << "      \"shed_critical\": " << synthetic.shed_critical << ",\n"
       << "      \"expired\": " << synthetic.expired << ",\n"
       << "      \"served\": " << synthetic.served << ",\n"
       << "      \"shed_order_ok\": "
       << (synthetic.shed_order_ok ? "true" : "false") << ",\n"
       << "      \"expired_typed_ok\": "
       << (synthetic.expired_typed_ok ? "true" : "false") << "\n    }\n  },\n";
  json << "  \"metrics\": " << obs::MetricsRegistry::global().snapshot_json()
       << "\n}\n";

  std::printf("%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return (exact && router_exact && router_failed == 0 && overload_exact &&
          synthetic.shed_order_ok && synthetic.expired_typed_ok)
             ? 0
             : 1;
}
