#include <gtest/gtest.h>

#include <cmath>

#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/qat.hpp"
#include "nn/trainer.hpp"
#include "tensor/activations.hpp"
#include "workloads/synth_mnist.hpp"

namespace lightator::nn {
namespace {

// ----------------------------------------------------------------- Layers

TEST(Conv2dLayer, ForwardShape) {
  util::Rng rng(1);
  Conv2d conv(tensor::ConvSpec{3, 8, 3, 1, 1}, rng);
  const Tensor x({2, 3, 16, 16});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.dim(1), 8u);
  EXPECT_EQ(y.dim(2), 16u);
}

TEST(Conv2dLayer, BackwardRequiresForward) {
  util::Rng rng(2);
  Conv2d conv(tensor::ConvSpec{1, 1, 3, 1, 1}, rng);
  EXPECT_THROW(conv.backward(Tensor({1, 1, 4, 4})), std::logic_error);
}

TEST(Conv2dLayer, QatWeightsAreQuantized) {
  util::Rng rng(3);
  Conv2d conv(tensor::ConvSpec{1, 4, 3, 1, 0}, rng);
  conv.set_weight_qat_bits(3);
  const Tensor w = conv.effective_weight();
  const float scale = conv.weight().max_abs();
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float level = w[i] / scale * 3.0f;
    EXPECT_NEAR(level, std::round(level), 1e-4);
  }
}

TEST(LinearLayer, ParamsAndGradsAligned) {
  util::Rng rng(4);
  Linear fc(10, 5, rng);
  const auto params = fc.params();
  const auto grads = fc.grads();
  ASSERT_EQ(params.size(), 2u);
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_EQ(params[0]->size(), grads[0]->size());
  EXPECT_EQ(params[1]->size(), grads[1]->size());
}

TEST(ActivationLayer, QatRunningScaleGrows) {
  Activation act(ActKind::kReLU);
  act.set_act_qat_bits(4);
  Tensor x1({4});
  x1.fill(0.5f);
  act.forward(x1, /*training=*/true);
  EXPECT_NEAR(act.act_scale(), 0.5, 1e-6);
  Tensor x2({4});
  x2.fill(2.0f);
  act.forward(x2, /*training=*/true);
  EXPECT_NEAR(act.act_scale(), 2.0, 1e-6);
  // Scale does not shrink.
  act.forward(x1, /*training=*/true);
  EXPECT_NEAR(act.act_scale(), 2.0, 1e-6);
}

TEST(ActivationLayer, QatQuantizesOutput) {
  Activation act(ActKind::kReLU);
  act.set_act_qat_bits(4);
  act.set_act_scale(1.0);
  Tensor x({1});
  x[0] = 0.512f;
  const Tensor y = act.forward(x, false);
  EXPECT_NEAR(y[0], std::round(0.512 * 15.0) / 15.0, 1e-6);
}

TEST(FlattenLayer, RoundTripShape) {
  Flatten flat;
  Tensor x({2, 3, 4, 4});
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.dim(1), 48u);
  const Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

// ----------------------------------------------------------------- Network

TEST(Network, ForwardThroughMlp) {
  util::Rng rng(5);
  Network net = build_mlp(rng, 16, 8, 3);
  const Tensor x({4, 1, 4, 4});
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.dim(0), 4u);
  EXPECT_EQ(y.dim(1), 3u);
}

TEST(Network, ParamCountLenet) {
  util::Rng rng(6);
  Network net = build_lenet(rng);
  // Classic LeNet-5: conv1 156, conv2 2416, fc1 48120, fc2 10164, fc3 850.
  EXPECT_EQ(net.num_params(), 156u + 2416u + 48120u + 10164u + 850u);
}

TEST(Network, EmptyThrows) {
  Network net;
  EXPECT_THROW(net.forward(Tensor({1, 1})), std::logic_error);
}

// ----------------------------------------------------------------- Sgd

TEST(Sgd, PlainGradientStep) {
  SgdParams p;
  p.learning_rate = 0.1;
  p.momentum = 0.0;
  p.weight_decay = 0.0;
  Sgd sgd(p);
  Tensor w({2}), g({2});
  w.fill(1.0f);
  g.fill(2.0f);
  sgd.step({&w}, {&g});
  EXPECT_FLOAT_EQ(w[0], 0.8f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);  // gradient consumed
}

TEST(Sgd, MomentumAccumulates) {
  SgdParams p;
  p.learning_rate = 1.0;
  p.momentum = 0.5;
  p.weight_decay = 0.0;
  Sgd sgd(p);
  Tensor w({1}), g({1});
  w[0] = 0.0f;
  g[0] = 1.0f;
  sgd.step({&w}, {&g});
  EXPECT_FLOAT_EQ(w[0], -1.0f);  // v = 1
  g[0] = 1.0f;
  sgd.step({&w}, {&g});
  EXPECT_FLOAT_EQ(w[0], -2.5f);  // v = 1.5
}

TEST(Sgd, WeightDecayShrinks) {
  SgdParams p;
  p.learning_rate = 0.1;
  p.momentum = 0.0;
  p.weight_decay = 0.5;
  Sgd sgd(p);
  Tensor w({1}), g({1});
  w[0] = 1.0f;
  g[0] = 0.0f;
  sgd.step({&w}, {&g});
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

// ----------------------------------------------------------------- Training

TEST(Trainer, LearnsLinearlySeparableTask) {
  // Two Gaussian blobs in 2-D; an MLP must reach >95% quickly.
  util::Rng rng(7);
  Dataset data;
  data.num_classes = 2;
  const std::size_t n = 256;
  data.images = Tensor({n, 1, 1, 2});
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = i % 2;
    const double cx = label == 0 ? -1.0 : 1.0;
    data.images[i * 2 + 0] = static_cast<float>(cx + rng.normal(0.0, 0.4));
    data.images[i * 2 + 1] = static_cast<float>(cx + rng.normal(0.0, 0.4));
    data.labels[i] = label;
  }
  Network net = build_mlp(rng, 2, 8, 2);
  TrainParams params;
  params.epochs = 20;
  params.batch_size = 16;
  params.sgd.learning_rate = 0.1;
  params.sgd.weight_decay = 0.0;
  Trainer trainer(params);
  trainer.fit(net, data);
  EXPECT_GT(Trainer::evaluate(net, data), 0.95);
}

TEST(Trainer, LossDecreases) {
  util::Rng rng(8);
  workloads::SynthMnistOptions opts;
  opts.samples = 200;
  Dataset data = workloads::make_synth_mnist(opts);
  Network net = build_mlp(rng, 28 * 28, 32, 10);
  TrainParams params;
  params.epochs = 1;
  params.batch_size = 20;
  params.sgd.learning_rate = 0.05;
  Trainer trainer(params);
  const auto first = trainer.train_epoch(net, data);
  EpochStats last{};
  for (int e = 0; e < 4; ++e) last = trainer.train_epoch(net, data);
  EXPECT_LT(last.loss, first.loss);
}

// ----------------------------------------------------------------- QAT

TEST(Qat, ScheduleLabels) {
  EXPECT_EQ(PrecisionSchedule::uniform(4).label(), "[4:4]");
  EXPECT_EQ(PrecisionSchedule::uniform(2).label(), "[2:4]");
  EXPECT_EQ(PrecisionSchedule::mixed(3).label(), "[4:4][3:4]");
  EXPECT_FALSE(PrecisionSchedule::uniform(3).is_mixed());
  EXPECT_TRUE(PrecisionSchedule::mixed(2).is_mixed());
}

TEST(Qat, MixedAssignsFirstLayerSeparately) {
  const auto s = PrecisionSchedule::mixed(2);
  EXPECT_EQ(s.weight_bits_for(0), 4);
  EXPECT_EQ(s.weight_bits_for(1), 2);
  EXPECT_EQ(s.weight_bits_for(5), 2);
}

TEST(Qat, EnableDisableTogglesLayers) {
  util::Rng rng(9);
  Network net = build_lenet(rng);
  enable_qat(net, PrecisionSchedule::uniform(3));
  int quantized = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(&net.layer(i))) {
      EXPECT_EQ(conv->weight_qat_bits(), 3);
      ++quantized;
    }
    if (auto* fc = dynamic_cast<Linear*>(&net.layer(i))) {
      EXPECT_EQ(fc->weight_qat_bits(), 3);
      ++quantized;
    }
  }
  EXPECT_EQ(quantized, 5);
  disable_qat(net);
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(&net.layer(i))) {
      EXPECT_EQ(conv->weight_qat_bits(), 0);
    }
  }
}

TEST(Qat, MixedScheduleFirstConvKeeps4Bits) {
  util::Rng rng(10);
  Network net = build_lenet(rng);
  enable_qat(net, PrecisionSchedule::mixed(2));
  bool first = true;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(&net.layer(i))) {
      EXPECT_EQ(conv->weight_qat_bits(), first ? 4 : 2);
      first = false;
    }
  }
}

TEST(Qat, CalibrationSetsActivationScales) {
  util::Rng rng(11);
  workloads::SynthMnistOptions opts;
  opts.samples = 64;
  Dataset data = workloads::make_synth_mnist(opts);
  Network net = build_lenet(rng);
  enable_qat(net, PrecisionSchedule::uniform(4));
  calibrate_activations(net, data, 2, 16);
  int scaled = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (auto* act = dynamic_cast<Activation*>(&net.layer(i))) {
      if (act->act_scale() > 0.0) ++scaled;
    }
  }
  EXPECT_GE(scaled, 3);
}

}  // namespace
}  // namespace lightator::nn
