// Lightweight key=value configuration store with typed accessors.
//
// Benches and examples accept "key=value" command-line overrides so sweeps
// can be scripted without recompiling; ArchConfig and friends pull their
// defaults through this store when constructed from a Config.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lightator::util {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens (e.g. from argv). Unrecognised tokens throw.
  static Config from_args(int argc, const char* const* argv);

  /// Parses a string of newline- or whitespace-separated key=value pairs.
  /// Lines starting with '#' are comments.
  static Config from_string(const std::string& text);

  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::invalid_argument when present but malformed.
  std::string get_string(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys in insertion-independent (sorted) order, for reproducible dumps.
  std::vector<std::string> keys() const;

  /// "key=value" lines, sorted by key.
  std::string dump() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace lightator::util
