#include "core/artifact/artifact.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <type_traits>
#include <utility>

#include "core/lightator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm_s16_packed.hpp"
#include "tensor/simd.hpp"

namespace lightator::core {

namespace {

// ---- blob layout constants -------------------------------------------------

constexpr std::uint8_t kMagic[8] = {'L', 'T', 'A', 'R', 'T', 'F', 'C', '1'};
// magic[8] + version u32 + total u64 + hash u64 + mrs u64 + section count u32.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8 + 4;
constexpr std::size_t kTotalOffset = 12;
constexpr std::size_t kHashOffset = 20;

enum SectionId : std::uint32_t {
  kSectionPlan = 1,
  kSectionWeights = 2,
  kSectionPanels = 3,
  kSectionArmPrograms = 4,
  kSectionKernelPlan = 5,
};

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSectionPlan: return "plan";
    case kSectionWeights: return "weights";
    case kSectionPanels: return "panels";
    case kSectionArmPrograms: return "arm_programs";
    case kSectionKernelPlan: return "kernel_plan";
  }
  return "unknown";
}

/// FNV-1a-style 64-bit hash over the hashed region (everything after the
/// fixed header, so header-field corruption reports as its own error kind,
/// not as a hash failure). Folds 8-byte little-endian lanes per multiply
/// instead of single bytes: blobs carry megabytes of packed panels, and the
/// byte-serial FNV multiply chain was the dominant cost of validating them
/// (~25 ms on a 15 MB VGG9 blob — most of the cold-start win this format
/// exists to deliver). Any flipped bit still lands in the xor'd lane, so the
/// corruption tests hold; the tail (< 8 bytes) folds byte-wise.
std::uint64_t content_hash64(const std::uint8_t* p, std::size_t n) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = 1469598103934665603ULL;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p + i, 8);
    if constexpr (std::endian::native == std::endian::big) {
      lane = __builtin_bswap64(lane);  // hash is defined over LE lane order
    }
    h ^= lane;
    h *= kPrime;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

[[noreturn]] void fail(ArtifactErrorKind kind, const std::string& what) {
  throw ArtifactError(kind, "artifact: " + what);
}

// ---- little-endian writer --------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i32(std::int32_t v) { le(static_cast<std::uint32_t>(v)); }
  void f64(double v) { le(std::bit_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Bulk array with a leading element count. One memcpy on little-endian
  /// hosts (every supported target); per-element encode otherwise.
  template <typename T>
  void array(const T* p, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(n);
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t at = buf_.size();
      buf_.resize(at + n * sizeof(T));
      if (n > 0) std::memcpy(buf_.data() + at, p, n * sizeof(T));
    } else {
      using U = std::make_unsigned_t<
          std::conditional_t<std::is_floating_point_v<T>,
                             std::conditional_t<sizeof(T) == 8, std::uint64_t,
                                                std::uint32_t>,
                             std::make_signed_t<T>>>;
      for (std::size_t i = 0; i < n; ++i) le(std::bit_cast<U>(p[i]));
    }
  }

  void tensor(const tensor::Tensor& t) {
    u64(t.rank());
    for (std::size_t i = 0; i < t.rank(); ++i) u64(t.dim(i));
    array(t.data(), t.size());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  template <typename U>
  void le(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

// ---- bounds-checked little-endian reader -----------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}

  std::uint8_t u8() {
    need(1);
    return p_[pos_++];
  }
  std::uint32_t u32() { return le<std::uint32_t>(); }
  std::uint64_t u64() { return le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(le<std::uint32_t>()); }
  double f64() { return std::bit_cast<double>(le<std::uint64_t>()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    need(n * sizeof(T));
    std::vector<T> out(n);
    if constexpr (std::endian::native == std::endian::little) {
      if (n > 0) std::memcpy(out.data(), p_ + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    } else {
      using U = std::make_unsigned_t<
          std::conditional_t<std::is_floating_point_v<T>,
                             std::conditional_t<sizeof(T) == 8, std::uint64_t,
                                                std::uint32_t>,
                             std::make_signed_t<T>>>;
      for (std::uint64_t i = 0; i < n; ++i) out[i] = std::bit_cast<T>(le<U>());
    }
    return out;
  }

  tensor::Tensor tensor() {
    const std::uint64_t rank = u64();
    if (rank > 8) fail(ArtifactErrorKind::kFormat, "implausible tensor rank");
    tensor::Shape shape(rank);
    for (std::uint64_t i = 0; i < rank; ++i) shape[i] = u64();
    const std::vector<float> data = array<float>();
    if (rank == 0 && data.empty()) return {};
    tensor::Tensor t(shape);
    if (t.size() != data.size()) {
      fail(ArtifactErrorKind::kFormat, "tensor payload/shape mismatch");
    }
    std::memcpy(t.data(), data.data(), data.size() * sizeof(float));
    return t;
  }

  bool done() const { return pos_ == n_; }

 private:
  void need(std::uint64_t bytes) {
    if (bytes > n_ - pos_) {
      fail(ArtifactErrorKind::kFormat, "section payload overrun");
    }
  }

  template <typename U>
  U le() {
    need(sizeof(U));
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(p_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(U);
    return v;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

bool is_weighted(const CompiledStep& step) {
  return step.kind == nn::LayerKind::kConv ||
         step.kind == nn::LayerKind::kLinear;
}

// ---- section encoders ------------------------------------------------------

/// One step's geometry + frozen decisions. Weights are NOT written here —
/// they live in the weights/panels/arm sections, keyed by weighted order —
/// so the same encoder serves plan.steps and the weightless
/// unoptimized_geometry snapshot.
void write_step(Writer& w, const CompiledStep& s) {
  w.u32(static_cast<std::uint32_t>(s.kind));
  w.str(s.name);
  w.tensor(s.bias);
  w.u64(s.conv.in_channels);
  w.u64(s.conv.out_channels);
  w.u64(s.conv.kernel);
  w.u64(s.conv.stride);
  w.u64(s.conv.pad);
  w.u64(s.fc_in);
  w.u64(s.fc_out);
  w.i32(s.wbits);
  w.i32(s.abits);
  w.u64(s.weighted_index);
  w.u8(s.epilogue.has_act ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(s.epilogue.act));
  w.i32(s.epilogue.act_qat_bits);
  w.f64(s.epilogue.act_scale);
  w.u32(static_cast<std::uint32_t>(s.epilogue.pool));
  w.u64(s.epilogue.pool_kernel);
  w.u64(s.epilogue.pool_stride);
  w.i32(static_cast<std::int32_t>(s.kernel.tier));
  w.u64(s.kernel.nc_strips);
  w.u64(s.pool_kernel);
  w.u64(s.pool_stride);
  w.u32(static_cast<std::uint32_t>(s.act));
  w.i32(s.act_qat_bits);
  w.f64(s.act_scale);
}

CompiledStep read_step(Reader& r) {
  CompiledStep s;
  const std::uint32_t kind = r.u32();
  if (kind > static_cast<std::uint32_t>(nn::LayerKind::kFlatten)) {
    fail(ArtifactErrorKind::kFormat, "unknown step kind");
  }
  s.kind = static_cast<nn::LayerKind>(kind);
  s.name = r.str();
  s.bias = r.tensor();
  s.conv.in_channels = r.u64();
  s.conv.out_channels = r.u64();
  s.conv.kernel = r.u64();
  s.conv.stride = r.u64();
  s.conv.pad = r.u64();
  s.fc_in = r.u64();
  s.fc_out = r.u64();
  s.wbits = r.i32();
  s.abits = r.i32();
  s.weighted_index = r.u64();
  s.epilogue.has_act = r.u8() != 0;
  s.epilogue.act = static_cast<tensor::ActKind>(r.u32());
  s.epilogue.act_qat_bits = r.i32();
  s.epilogue.act_scale = r.f64();
  s.epilogue.pool = static_cast<PoolKind>(r.u32());
  s.epilogue.pool_kernel = r.u64();
  s.epilogue.pool_stride = r.u64();
  s.kernel.tier = static_cast<tensor::simd::KernelTier>(r.i32());
  s.kernel.nc_strips = r.u64();
  s.pool_kernel = r.u64();
  s.pool_stride = r.u64();
  s.act = static_cast<tensor::ActKind>(r.u32());
  s.act_qat_bits = r.i32();
  s.act_scale = r.f64();
  return s;
}

Writer encode_plan(const std::string& backend, const CompiledPlan& plan) {
  Writer w;
  w.str(backend);
  w.u64(plan.steps.size());
  for (const CompiledStep& s : plan.steps) write_step(w, s);
  w.u64(plan.num_weighted);
  w.u8(plan.arena_enabled ? 1 : 0);
  w.u64(plan.applied_passes.size());
  for (const std::string& p : plan.applied_passes) w.str(p);
  w.u64(plan.unoptimized_geometry.size());
  for (const CompiledStep& s : plan.unoptimized_geometry) write_step(w, s);
  return w;
}

/// Decoded plan (steps still weightless) + the backend name it targets.
struct DecodedPlan {
  std::string backend;
  CompiledPlan plan;
};

DecodedPlan decode_plan(Reader r) {
  DecodedPlan d;
  d.backend = r.str();
  const std::uint64_t steps = r.u64();
  d.plan.steps.reserve(steps);
  for (std::uint64_t i = 0; i < steps; ++i) {
    d.plan.steps.push_back(read_step(r));
  }
  d.plan.num_weighted = r.u64();
  d.plan.arena_enabled = r.u8() != 0;
  const std::uint64_t passes = r.u64();
  d.plan.applied_passes.reserve(passes);
  for (std::uint64_t i = 0; i < passes; ++i) {
    d.plan.applied_passes.push_back(r.str());
  }
  const std::uint64_t unopt = r.u64();
  d.plan.unoptimized_geometry.reserve(unopt);
  for (std::uint64_t i = 0; i < unopt; ++i) {
    d.plan.unoptimized_geometry.push_back(read_step(r));
  }
  return d;
}

Writer encode_weights(const CompiledPlan& plan) {
  Writer w;
  w.u64(plan.num_weighted);
  for (const CompiledStep& s : plan.steps) {
    if (!is_weighted(s)) continue;
    const tensor::QuantizedTensor& q = s.weights;
    w.array(q.levels.data(), q.levels.size());
    w.u64(q.shape.size());
    for (std::size_t d : q.shape) w.u64(d);
    w.f64(q.scale);
    w.i32(q.bits);
    w.u8(q.is_signed ? 1 : 0);
  }
  return w;
}

std::vector<tensor::QuantizedTensor> decode_weights(Reader r) {
  const std::uint64_t count = r.u64();
  std::vector<tensor::QuantizedTensor> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    tensor::QuantizedTensor q;
    q.levels = r.array<std::int16_t>();
    const std::uint64_t rank = r.u64();
    if (rank > 8) fail(ArtifactErrorKind::kFormat, "implausible weight rank");
    q.shape.resize(rank);
    for (std::uint64_t d = 0; d < rank; ++d) q.shape[d] = r.u64();
    q.scale = r.f64();
    q.bits = r.i32();
    q.is_signed = r.u8() != 0;
    out.push_back(std::move(q));
  }
  return out;
}

Writer encode_panels(const CompiledPlan& plan) {
  Writer w;
  // Fingerprint: the kernel tier auto dispatch resolved to when the panels
  // were packed. Empty when the blob carries no panels at all.
  bool any = false;
  for (const CompiledStep& s : plan.steps) {
    if (is_weighted(s) && s.weights.prepack != nullptr) any = true;
  }
  w.str(any ? tensor::simd::active_kernel() : "");
  w.u64(plan.num_weighted);
  for (const CompiledStep& s : plan.steps) {
    if (!is_weighted(s)) continue;
    const tensor::PackedWeights* pw = s.weights.prepack.get();
    w.u8(pw != nullptr ? 1 : 0);
    if (pw == nullptr) continue;
    w.u64(pw->seg);
    w.u8(pw->has_a ? 1 : 0);
    if (pw->has_a) {
      w.u64(pw->a.m);
      w.u64(pw->a.k);
      w.u64(pw->a.kp);
      w.u64(pw->a.seg);
      w.i32(pw->a.max_abs);
      w.array(pw->a.base(), pw->a.m * pw->a.kp);
    }
    w.u8(pw->has_b ? 1 : 0);
    if (pw->has_b) {
      w.u64(pw->bt.k);
      w.u64(pw->bt.n);
      w.u64(pw->bt.kp);
      w.u64(pw->bt.seg);
      w.i32(pw->bt.max_abs);
      w.array(pw->bt.base(),
              tensor::packed_b_elems(pw->bt.k, pw->bt.n, pw->bt.seg));
    }
  }
  return w;
}

struct DecodedPanels {
  std::string fingerprint;
  /// Per weighted step (in order); null when the step had no panels.
  std::vector<std::shared_ptr<const tensor::PackedWeights>> per_step;
  bool any() const {
    for (const auto& p : per_step) {
      if (p != nullptr) return true;
    }
    return false;
  }
};

DecodedPanels decode_panels(Reader r) {
  DecodedPanels d;
  d.fingerprint = r.str();
  const std::uint64_t count = r.u64();
  d.per_step.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (r.u8() == 0) continue;
    auto pw = std::make_shared<tensor::PackedWeights>();
    pw->seg = r.u64();
    pw->has_a = r.u8() != 0;
    if (pw->has_a) {
      pw->a.m = r.u64();
      pw->a.k = r.u64();
      pw->a.kp = r.u64();
      pw->a.seg = r.u64();
      pw->a.max_abs = r.i32();
      pw->a.data = r.array<std::int16_t>();
      if (pw->a.data.size() != pw->a.m * pw->a.kp) {
        fail(ArtifactErrorKind::kFormat, "packed A panel size mismatch");
      }
    }
    pw->has_b = r.u8() != 0;
    if (pw->has_b) {
      pw->bt.k = r.u64();
      pw->bt.n = r.u64();
      pw->bt.kp = r.u64();
      pw->bt.seg = r.u64();
      pw->bt.max_abs = r.i32();
      pw->bt.data = r.array<std::int16_t>();
      if (pw->bt.data.size() !=
          tensor::packed_b_elems(pw->bt.k, pw->bt.n, pw->bt.seg)) {
        fail(ArtifactErrorKind::kFormat, "packed B panel size mismatch");
      }
    }
    d.per_step[i] = std::move(pw);
  }
  return d;
}

Writer encode_arm_programs(const CompiledPlan& plan) {
  Writer w;
  w.u64(plan.num_weighted);
  for (const CompiledStep& s : plan.steps) {
    if (!is_weighted(s)) continue;
    const tensor::ArmProgram* ap = s.weights.arm_program.get();
    w.u8(ap != nullptr ? 1 : 0);
    if (ap == nullptr) continue;
    w.u64(ap->seg);
    w.u64(ap->rows);
    w.u64(ap->row_length);
    w.u64(ap->segments_per_row);
    w.array(ap->weights.data(), ap->weights.size());
  }
  return w;
}

std::vector<std::shared_ptr<const tensor::ArmProgram>> decode_arm_programs(
    Reader r) {
  const std::uint64_t count = r.u64();
  std::vector<std::shared_ptr<const tensor::ArmProgram>> out(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (r.u8() == 0) continue;
    auto ap = std::make_shared<tensor::ArmProgram>();
    ap->seg = r.u64();
    ap->rows = r.u64();
    ap->row_length = r.u64();
    ap->segments_per_row = r.u64();
    ap->weights = r.array<double>();
    if (ap->weights.size() != ap->rows * ap->segments_per_row * ap->seg) {
      fail(ArtifactErrorKind::kFormat, "arm program size mismatch");
    }
    out[i] = std::move(ap);
  }
  return out;
}

Writer encode_kernel_plan(const KernelPlan& plan) {
  Writer w;
  w.u64(plan.entries.size());
  for (const KernelPlanEntry& e : plan.entries) {
    w.u64(e.geom.m);
    w.u64(e.geom.n);
    w.u64(e.geom.k);
    w.u64(e.geom.seg);
    w.u8(e.geom.wide ? 1 : 0);
    w.i32(static_cast<std::int32_t>(e.choice.tier));
    w.u64(e.choice.nc_strips);
    w.u8(e.measured ? 1 : 0);
    w.f64(e.hysteresis_margin);
    w.u64(e.candidates.size());
    for (const KernelCandidate& c : e.candidates) {
      w.i32(static_cast<std::int32_t>(c.config.tier));
      w.u64(c.config.nc_strips);
      w.f64(c.best_us);
    }
  }
  return w;
}

KernelPlan decode_kernel_plan(Reader r) {
  KernelPlan plan;
  const std::uint64_t entries = r.u64();
  plan.entries.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    KernelPlanEntry e;
    e.geom.m = r.u64();
    e.geom.n = r.u64();
    e.geom.k = r.u64();
    e.geom.seg = r.u64();
    e.geom.wide = r.u8() != 0;
    e.choice.tier = static_cast<tensor::simd::KernelTier>(r.i32());
    e.choice.nc_strips = r.u64();
    e.measured = r.u8() != 0;
    e.hysteresis_margin = r.f64();
    const std::uint64_t cands = r.u64();
    e.candidates.reserve(cands);
    for (std::uint64_t c = 0; c < cands; ++c) {
      KernelCandidate cand;
      cand.config.tier = static_cast<tensor::simd::KernelTier>(r.i32());
      cand.config.nc_strips = r.u64();
      cand.best_us = r.f64();
      e.candidates.push_back(cand);
    }
    plan.entries.push_back(std::move(e));
  }
  return plan;
}

// ---- blob-level parse/validate ---------------------------------------------

struct Section {
  std::uint32_t id = 0;
  const std::uint8_t* data = nullptr;
  std::uint64_t bytes = 0;
};

struct ParsedBlob {
  std::uint32_t version = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t mrs_per_arm = 0;
  std::vector<Section> sections;

  Reader section(std::uint32_t id) const {
    for (const Section& s : sections) {
      if (s.id == id) return Reader(s.data, s.bytes);
    }
    fail(ArtifactErrorKind::kFormat,
         std::string("missing section: ") + section_name(id));
  }
};

/// Layered validation, strictest-to-cheapest story first: magic → version →
/// size → content hash → section table bounds. The order fixes which error a
/// given corruption reports — a bumped version byte is version skew (the
/// header is outside the hashed region), a flipped payload byte is a hash
/// mismatch, a truncated file is corruption.
ParsedBlob parse_blob(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < kHeaderBytes) {
    fail(ArtifactErrorKind::kCorrupt, "file shorter than the header");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    fail(ArtifactErrorKind::kCorrupt, "bad magic (not a lightator artifact)");
  }
  Reader header(blob.data() + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  ParsedBlob p;
  p.version = header.u32();
  p.total_bytes = header.u64();
  p.content_hash = header.u64();
  p.mrs_per_arm = header.u64();
  const std::uint32_t section_count = header.u32();
  if (p.version > kArtifactVersion) {
    fail(ArtifactErrorKind::kVersionSkew,
         "format version " + std::to_string(p.version) +
             " is newer than this build reads (" +
             std::to_string(kArtifactVersion) + ")");
  }
  if (p.total_bytes != blob.size()) {
    fail(ArtifactErrorKind::kCorrupt,
         "size mismatch: header says " + std::to_string(p.total_bytes) +
             " bytes, file has " + std::to_string(blob.size()));
  }
  const std::uint64_t hashed =
      content_hash64(blob.data() + kHeaderBytes, blob.size() - kHeaderBytes);
  if (hashed != p.content_hash) {
    fail(ArtifactErrorKind::kHashMismatch,
         "content hash mismatch (corrupted payload)");
  }
  Reader table(blob.data() + kHeaderBytes, blob.size() - kHeaderBytes);
  p.sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section s;
    s.id = table.u32();
    const std::uint64_t offset = table.u64();
    s.bytes = table.u64();
    if (offset > blob.size() || s.bytes > blob.size() - offset) {
      fail(ArtifactErrorKind::kCorrupt, "section table out of bounds");
    }
    s.data = blob.data() + offset;
    p.sections.push_back(s);
  }
  return p;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    fail(ArtifactErrorKind::kIo, "cannot open " + path + " for reading");
  }
  const std::streamoff size = in.tellg();
  if (size < 0) fail(ArtifactErrorKind::kIo, "cannot stat " + path);
  // One bulk read: blobs carry megabytes of packed panels, and a streambuf-
  // iterator copy (one virtual call per byte) costs more than every decode
  // memcpy combined.
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(blob.size()));
  if (!in || in.gcount() != static_cast<std::streamsize>(blob.size())) {
    fail(ArtifactErrorKind::kIo, "read failure on " + path);
  }
  return blob;
}

}  // namespace

const char* artifact_error_kind_name(ArtifactErrorKind kind) {
  switch (kind) {
    case ArtifactErrorKind::kIo: return "io";
    case ArtifactErrorKind::kCorrupt: return "corrupt";
    case ArtifactErrorKind::kVersionSkew: return "version_skew";
    case ArtifactErrorKind::kHashMismatch: return "hash_mismatch";
    case ArtifactErrorKind::kArchMismatch: return "arch_mismatch";
    case ArtifactErrorKind::kFormat: return "format";
  }
  return "unknown";
}

std::vector<std::uint8_t> serialize_artifact(const CompiledModel& model) {
  const CompiledPlan& plan = compiled_model_plan(model);
  const std::string& backend = model.backend();

  const std::pair<std::uint32_t, Writer> sections[] = {
      {kSectionPlan, encode_plan(backend, plan)},
      {kSectionWeights, encode_weights(plan)},
      {kSectionPanels, encode_panels(plan)},
      {kSectionArmPrograms, encode_arm_programs(plan)},
      {kSectionKernelPlan, encode_kernel_plan(plan.kernel_plan)},
  };
  constexpr std::size_t kSectionCount = std::size(sections);
  // id u32 + offset u64 + bytes u64 per table row.
  const std::size_t table_bytes = kSectionCount * (4 + 8 + 8);

  Writer head;
  for (std::uint8_t b : kMagic) head.u8(b);
  head.u32(kArtifactVersion);
  head.u64(0);  // total_bytes — patched below
  head.u64(0);  // content_hash — patched below
  // The arm-geometry fingerprint: segment length changes partial-sum
  // boundaries and therefore numerics, so it lives in the header and the
  // loader hard-rejects a mismatch.
  head.u64(compiled_model_system(model).config().geometry.mrs_per_arm);
  head.u32(static_cast<std::uint32_t>(kSectionCount));

  Writer table;
  std::uint64_t offset = kHeaderBytes + table_bytes;
  for (const auto& [id, payload] : sections) {
    table.u32(id);
    table.u64(offset);
    table.u64(payload.bytes().size());
    offset += payload.bytes().size();
  }

  std::vector<std::uint8_t> blob;
  blob.reserve(offset);
  blob.insert(blob.end(), head.bytes().begin(), head.bytes().end());
  blob.insert(blob.end(), table.bytes().begin(), table.bytes().end());
  for (const auto& [id, payload] : sections) {
    blob.insert(blob.end(), payload.bytes().begin(), payload.bytes().end());
  }

  const std::uint64_t total = blob.size();
  const std::uint64_t hash =
      content_hash64(blob.data() + kHeaderBytes, blob.size() - kHeaderBytes);
  for (std::size_t i = 0; i < 8; ++i) {
    blob[kTotalOffset + i] = static_cast<std::uint8_t>(total >> (8 * i));
    blob[kHashOffset + i] = static_cast<std::uint8_t>(hash >> (8 * i));
  }
  return blob;
}

void save_artifact(const CompiledModel& model, const std::string& path) {
  const std::vector<std::uint8_t> blob = serialize_artifact(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    fail(ArtifactErrorKind::kIo, "cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) fail(ArtifactErrorKind::kIo, "write failure on " + path);
}

CompiledModel deserialize_artifact(const std::vector<std::uint8_t>& blob,
                                   const LightatorSystem& system,
                                   ArtifactLoadStats* stats) {
  LIGHTATOR_TRACE_SPAN("artifact_load", "compile");
  const auto load_start = std::chrono::steady_clock::now();
  const ParsedBlob parsed = parse_blob(blob);

  const std::size_t seg = system.config().geometry.mrs_per_arm;
  if (parsed.mrs_per_arm != 0 && parsed.mrs_per_arm != seg) {
    fail(ArtifactErrorKind::kArchMismatch,
         "arm geometry mismatch: blob packed for mrs_per_arm=" +
             std::to_string(parsed.mrs_per_arm) + ", system has " +
             std::to_string(seg));
  }

  DecodedPlan decoded = decode_plan(parsed.section(kSectionPlan));
  CompiledPlan& plan = decoded.plan;
  plan.kernel_plan = decode_kernel_plan(parsed.section(kSectionKernelPlan));

  std::vector<tensor::QuantizedTensor> weights =
      decode_weights(parsed.section(kSectionWeights));
  DecodedPanels panels = decode_panels(parsed.section(kSectionPanels));
  std::vector<std::shared_ptr<const tensor::ArmProgram>> arms =
      decode_arm_programs(parsed.section(kSectionArmPrograms));
  if (weights.size() != plan.num_weighted ||
      panels.per_step.size() != plan.num_weighted ||
      arms.size() != plan.num_weighted) {
    fail(ArtifactErrorKind::kFormat, "weighted-section count mismatch");
  }

  ArtifactLoadStats local_stats;
  ArtifactLoadStats& ls = stats != nullptr ? *stats : local_stats;
  ls = ArtifactLoadStats{};
  ls.blob_bytes = blob.size();

  // Panel policy: serialized panels are only usable when this host's auto
  // dispatch resolves to the same kernel tier they were packed under (the
  // packed layout is tier-independent, but whether panels should exist at
  // all — and what a fresh compile here would build — is fingerprint
  // business). On mismatch, drop and re-pack from the levels: bit-exact by
  // construction, since packing is a pure re-layout of the levels.
  const bool wants_panels = decoded.backend != "reference" &&
                            decoded.backend != "physical" &&
                            tensor::simd::simd_active();
  const bool panels_usable = panels.any() &&
                             panels.fingerprint ==
                                 tensor::simd::active_kernel();
  const bool wants_arms = decoded.backend == "physical";

  std::size_t wi = 0;
  for (CompiledStep& step : plan.steps) {
    if (!is_weighted(step)) continue;
    if (wi >= weights.size()) {
      fail(ArtifactErrorKind::kFormat, "more weighted steps than weights");
    }
    step.weights = std::move(weights[wi]);
    if (wants_panels && panels_usable) {
      step.weights.prepack = std::move(panels.per_step[wi]);
    } else if (wants_panels) {
      program_step_weights(step, seg, /*pack_simd=*/true, /*pack_arms=*/false);
      if (panels.any()) {
        ls.repacked_panels = true;
      } else {
        ls.packed_fresh = true;
      }
    }
    if (wants_arms) {
      if (arms[wi] != nullptr) {
        step.weights.arm_program = std::move(arms[wi]);
      } else {
        program_step_weights(step, seg, /*pack_simd=*/false,
                             /*pack_arms=*/true);
        ls.rebuilt_arm_programs = true;
      }
    }
    ++wi;
  }
  if (wi != plan.num_weighted) {
    fail(ArtifactErrorKind::kFormat, "weighted step count mismatch");
  }

  CompiledModel model;
  try {
    model = make_compiled_model(system, decoded.backend, std::move(plan));
  } catch (const std::invalid_argument& e) {
    fail(ArtifactErrorKind::kFormat, e.what());
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("compile.load_count").add(1);
  reg.histogram("compile.load_ms")
      .observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - load_start)
                   .count());
  return model;
}

CompiledModel load_artifact(const std::string& path,
                            const LightatorSystem& system,
                            ArtifactLoadStats* stats) {
  return deserialize_artifact(read_file(path), system, stats);
}

ArtifactInfo inspect_artifact_blob(const std::vector<std::uint8_t>& blob) {
  const ParsedBlob parsed = parse_blob(blob);
  ArtifactInfo info;
  info.version = parsed.version;
  info.total_bytes = parsed.total_bytes;
  info.content_hash = parsed.content_hash;
  info.mrs_per_arm = parsed.mrs_per_arm;
  for (const Section& s : parsed.sections) {
    info.sections.push_back({section_name(s.id), s.bytes});
  }
  DecodedPlan decoded = decode_plan(parsed.section(kSectionPlan));
  info.backend = decoded.backend;
  info.num_steps = decoded.plan.steps.size();
  info.num_weighted = decoded.plan.num_weighted;
  info.applied_passes = std::move(decoded.plan.applied_passes);
  info.kernel_plan = decode_kernel_plan(parsed.section(kSectionKernelPlan));
  DecodedPanels panels = decode_panels(parsed.section(kSectionPanels));
  info.simd_fingerprint = panels.fingerprint;
  info.panels_present = panels.any();
  const auto arms = decode_arm_programs(parsed.section(kSectionArmPrograms));
  for (const auto& ap : arms) {
    if (ap != nullptr) info.arm_programs_present = true;
  }
  return info;
}

ArtifactInfo inspect_artifact(const std::string& path) {
  return inspect_artifact_blob(read_file(path));
}

// ---- convenience members declared in core/compiled_model.hpp ---------------

void CompiledModel::save(const std::string& path) const {
  save_artifact(*this, path);
}

CompiledModel Engine::load(const std::string& path) const {
  return load_artifact(path, *system_);
}

}  // namespace lightator::core
