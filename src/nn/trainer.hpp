// Mini-batch training loop and evaluation.
//
// This is the application-level stage of the paper's framework (Fig. 7):
// train a float model, then fine-tune with QAT (qat.hpp) before mapping the
// quantized weights onto the optical core.
//
// With grad_shards > 1 each mini-batch is split into that many contiguous
// shards, run data-parallel on cloned network replicas over a thread pool,
// and the per-shard gradients are reduced into the master in shard-index
// order. The shard count — not the pool size — fixes the floating-point
// summation order, so trained parameters are bit-identical for any number of
// threads (asserted in tests/test_experiment.cpp).
#pragma once

#include "nn/dataset.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "util/thread_pool.hpp"

namespace lightator::nn {

struct TrainParams {
  std::size_t batch_size = 32;
  std::size_t epochs = 5;
  SgdParams sgd;
  bool verbose = false;
  std::uint64_t shuffle_seed = 7;
  /// Multiply the learning rate by this factor after each epoch.
  double lr_decay = 0.85;
  /// Data-parallel shards per mini-batch (1 = serial). Determines the
  /// gradient reduction order, so results depend on this value but never on
  /// the thread count executing the shards.
  std::size_t grad_shards = 1;
  /// Pool the shards run on; nullptr uses ThreadPool::global(). Typically
  /// injected by core::ExperimentRunner so training shares the experiment's
  /// pool.
  util::ThreadPool* pool = nullptr;
};

struct EpochStats {
  double loss = 0.0;
  double accuracy = 0.0;
};

class Trainer {
 public:
  explicit Trainer(TrainParams params)
      : params_(params), sgd_(params.sgd), shuffle_rng_(params.shuffle_seed) {}

  /// Trains for params.epochs; returns the last epoch's stats.
  EpochStats fit(Network& net, Dataset& train);

  /// One epoch over (a shuffled copy of the order of) `train`.
  EpochStats train_epoch(Network& net, Dataset& train);

  /// Top-1 accuracy on `data` (no caching, eval mode).
  static double evaluate(Network& net, const Dataset& data,
                         std::size_t batch_size = 64);

 private:
  EpochStats train_epoch_sharded(Network& net, Dataset& train,
                                 std::size_t shards);

  TrainParams params_;
  Sgd sgd_;
  util::Rng shuffle_rng_;
  /// Replicas for shards 1..S-1 (shard 0 runs on the master); rebuilt per
  /// epoch so QAT reconfiguration between epochs is picked up.
  std::vector<Network> replicas_;
};

}  // namespace lightator::nn
