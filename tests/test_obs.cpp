// The telemetry plane: MetricsRegistry snapshot semantics and TraceRecorder
// ring/serialization behavior (src/obs/).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lightator::obs {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(1);
  EXPECT_EQ(c.value(), 4u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramObservesAcrossThreads) {
  Histogram h;
  // 8 threads x 100 observations, values 1..800 exactly once — under the
  // sketch capacity, so the merged snapshot is exact regardless of which
  // shard each thread hashed to.
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < 100; ++i) h.observe(t * 100 + i + 1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), 800u);
  const util::StreamingQuantiles q = h.snapshot();
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 800.0);
  EXPECT_NEAR(q.quantile(0.5), 400.0, 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, RegistryHandlesAreStable) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("requests");
  c1.add(7);
  // A second lookup returns the same object — handles cached across calls
  // stay valid forever.
  Counter& c2 = reg.counter("requests");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 7u);
  reg.reset();
  EXPECT_EQ(c1.value(), 0u);  // reset zeroes, never destroys
}

TEST(Metrics, SnapshotJsonShapeAndDeterminism) {
  MetricsRegistry reg;
  reg.counter("serve.completed").add(12);
  reg.gauge("serve.queue_depth").set(3.0);
  Histogram& h = reg.histogram("latency_ms");
  for (int i = 1; i <= 100; ++i) h.observe(i);
  reg.annotate("layer.0.conv \"a\"", "kernel", "vnni");

  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.completed\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"serve.queue_depth\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  // JSON specials in user-controlled names are escaped.
  EXPECT_NE(json.find("layer.0.conv \\\"a\\\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"vnni\""), std::string::npos);
  // Two snapshots of untouched state are byte-identical: the shard merge
  // walks shards in index order and maps iterate sorted by name, so the
  // serialization is deterministic.
  EXPECT_EQ(json, reg.snapshot_json());
}

TEST(Metrics, MergeDeterministicUnderThreadedObservation) {
  // Same multiset of observations pushed through two registries from
  // different thread interleavings must merge to identical quantiles —
  // exact while under sketch capacity, so shard assignment cannot matter.
  auto fill = [](MetricsRegistry& reg, int nthreads) {
    Histogram& h = reg.histogram("v");
    std::vector<std::thread> workers;
    for (int t = 0; t < nthreads; ++t) {
      workers.emplace_back([&h, t, nthreads] {
        for (int i = t; i < 400; i += nthreads) h.observe(i);
      });
    }
    for (auto& w : workers) w.join();
  };
  MetricsRegistry a, b;
  fill(a, 2);
  fill(b, 7);
  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());
}

#if !defined(LIGHTATOR_DISABLE_TRACING)

TEST(Trace, DisabledRecordsNothing) {
  TraceRecorder rec(64);
  rec.record("span", "test", 0, 10);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
  rec.start();
  rec.record("span", "test", 0, 10);
  rec.stop();
  rec.record("late", "test", 20, 5);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "span");
}

TEST(Trace, SpansNestAcrossThreads) {
  TraceRecorder rec(1024);
  rec.start();
  // Each thread records a parent span containing two children; threads get
  // distinct dense tids and their events stay separated per ring.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&rec, t] {
      const std::int64_t base = t * 1000;
      rec.record("child_a", "test", base + 10, 20, t + 1);
      rec.record("child_b", "test", base + 40, 20, t + 1);
      rec.record("parent", "test", base, 100, t + 1);
    });
  }
  for (auto& w : workers) w.join();
  rec.stop();
  EXPECT_EQ(rec.thread_count(), 4u);
  EXPECT_EQ(rec.recorded(), 12u);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 12u);
  // Per tid: exactly one parent and two children, children contained in
  // the parent's [ts, ts+dur) window.
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    const TraceEvent* parent = nullptr;
    std::vector<const TraceEvent*> children;
    for (const TraceEvent& e : events) {
      if (e.tid != tid) continue;
      if (std::string(e.name) == "parent") {
        parent = &e;
      } else {
        children.push_back(&e);
      }
    }
    ASSERT_NE(parent, nullptr) << "tid " << tid;
    ASSERT_EQ(children.size(), 2u) << "tid " << tid;
    for (const TraceEvent* c : children) {
      EXPECT_GE(c->ts_us, parent->ts_us);
      EXPECT_LE(c->ts_us + c->dur_us, parent->ts_us + parent->dur_us);
      EXPECT_EQ(c->request_id, parent->request_id);
    }
  }
}

TEST(Trace, RingWraparoundDropsOldestAndCounts) {
  TraceRecorder rec(8);
  rec.start();
  for (int i = 0; i < 20; ++i) {
    rec.record("e", "test", i, 1, static_cast<std::uint64_t>(i));
  }
  rec.stop();
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The newest 8 survive, oldest-first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].request_id, 12u + i);
  }
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(Trace, NamesTruncateAndDetailsSurvive) {
  TraceRecorder rec(16);
  rec.start();
  const std::string long_name(200, 'x');
  rec.record(long_name.c_str(), "test", 0, 1, 0, "kernel", "vnni", "epilogue",
             "act+pool");
  rec.stop();
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name),
            std::string(TraceEvent::kNameCapacity - 1, 'x'));
  EXPECT_STREQ(events[0].detail_key[0], "kernel");
  EXPECT_STREQ(events[0].detail_val[0], "vnni");
  EXPECT_STREQ(events[0].detail_val[1], "act+pool");
}

TEST(Trace, ChromeJsonSortedWithAsyncPairs) {
  TraceRecorder rec(64);
  rec.start();
  rec.record("inner", "test", 10, 5);
  rec.record("outer", "test", 0, 100);
  rec.record_async("queue", "serve", 2, 30, 77);
  rec.stop();
  const std::string json = rec.chrome_json();
  // Sorted by (ts asc, dur desc): outer first despite being recorded
  // second, so viewers rebuild nesting by containment.
  const auto outer_pos = json.find("\"outer\"");
  const auto inner_pos = json.find("\"inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  // The async event serializes as a balanced b/e pair keyed by request id.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
}

TEST(Trace, MacroSpansRecordOnlyWhileGlobalEnabled) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  { LIGHTATOR_TRACE_SPAN("idle", "test"); }
  EXPECT_EQ(rec.recorded(), 0u);
  rec.start();
  {
    LIGHTATOR_TRACE_SPAN("armed", "test");
    LIGHTATOR_TRACE_SPAN_REQ("armed_req", "test", 42u);
  }
  rec.stop();
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  bool saw_req = false;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "armed_req") {
      saw_req = true;
      EXPECT_EQ(e.request_id, 42u);
    }
  }
  EXPECT_TRUE(saw_req);
  rec.clear();
}

#endif  // !LIGHTATOR_DISABLE_TRACING

}  // namespace
}  // namespace lightator::obs
