#include "core/memory_model.hpp"

#include <cmath>
#include <stdexcept>

namespace lightator::core {

namespace {
// 45 nm fits: a small SRAM (1 KiB) reads at ~0.02 pJ/bit and a few-MiB bank
// approaches ~0.2 pJ/bit; leakage ~ 6 uW per KiB; latency sub-ns to a few ns.
constexpr double kReadBasePjPerBit = 0.02;
constexpr double kReadSlopePjPerBit = 0.004;
constexpr double kWriteFactor = 1.15;     // writes cost slightly more
constexpr double kLeakUwPerKb = 6.0;
constexpr double kLatencyBaseNs = 0.35;
constexpr double kLatencySlopeNs = 0.045;
}  // namespace

SramModel::SramModel(double capacity_bytes) : capacity_bytes_(capacity_bytes) {
  if (capacity_bytes <= 0) {
    throw std::invalid_argument("SRAM capacity must be positive");
  }
  sqrt_kb_ = std::sqrt(capacity_bytes / 1024.0);
}

double SramModel::read_energy_per_bit() const {
  return (kReadBasePjPerBit + kReadSlopePjPerBit * sqrt_kb_) * units::kPJ;
}

double SramModel::write_energy_per_bit() const {
  return kWriteFactor * read_energy_per_bit();
}

double SramModel::leakage_power() const {
  return kLeakUwPerKb * (capacity_bytes_ / 1024.0) * units::kUW;
}

double SramModel::access_latency() const {
  return (kLatencyBaseNs + kLatencySlopeNs * sqrt_kb_) * units::kNs;
}

}  // namespace lightator::core
