// The five MR-based photonic baselines of Table 1, rebuilt from their
// published component inventories, plus the GPU reference.
//
// Constants are calibrated so each model's total power and throughput land
// near the original papers' reports under the same ~20-60 mm^2 area
// constraint the Lightator authors applied (numbers in the .cpp are
// annotated with their provenance). Accuracy columns are produced separately
// by evaluating our trained models at each design's [W:A] precision.
#pragma once

#include <vector>

#include "accel/accel_model.hpp"

namespace lightator::accel {

/// LightBulb (DATE'20): fully binarized photonic XNOR/popcount; throughput
/// comes from dense binary fabric, power dominated by flash-ADC arrays.
PhotonicAccelerator lightbulb();

/// HolyLight-A (DATE'19): nanophotonic with MR adders/shifters instead of
/// ADCs; modest throughput per watt.
PhotonicAccelerator holylight();

/// HQNNA (GLSVLSI'22): heterogeneous-quantization CNN accelerator with
/// WDM + TDM; persistent ADC/DAC inter-layer conversion.
PhotonicAccelerator hqnna();

/// ROBIN (TECS'21): binary-weight MR accelerator; heavy DAC tuning load.
PhotonicAccelerator robin();

/// CrossLight (DAC'21): 4-bit weight+activation MR accelerator; low- and
/// high-power operating points as reported ("84-390 W").
PhotonicAccelerator crosslight_low();
PhotonicAccelerator crosslight_high();

/// All photonic baselines in Table 1 row order.
std::vector<PhotonicAccelerator> all_photonic_baselines();

/// RTX 3060Ti GPU reference (Table 1 "baseline [32:32]"): roofline model.
struct GpuBaseline {
  double peak_macs_per_s = 8.1e12;  // 16.2 TFLOPS fp32
  double utilization = 0.35;        // achieved on small-batch CNN inference
  double board_power = 200.0;       // W

  double fps(std::size_t macs_per_frame) const;
};

}  // namespace lightator::accel
