#include <gtest/gtest.h>

#include <cmath>

#include "sensor/bayer.hpp"
#include "sensor/crc.hpp"
#include "sensor/image.hpp"
#include "sensor/photodiode.hpp"
#include "sensor/pixel_array.hpp"
#include "util/rng.hpp"

namespace lightator::sensor {
namespace {

// ----------------------------------------------------------------- Image

TEST(Image, ConstructionAndAccess) {
  Image img(4, 6, 3, 0.5f);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.width(), 6u);
  EXPECT_EQ(img.channels(), 3u);
  EXPECT_EQ(img.size(), 72u);
  img.at(1, 2, 0) = 0.9f;
  EXPECT_FLOAT_EQ(img.at(1, 2, 0), 0.9f);
  EXPECT_THROW(img.at(4, 0, 0), std::out_of_range);
  EXPECT_THROW(Image(0, 4, 3), std::invalid_argument);
  EXPECT_THROW(Image(4, 4, 2), std::invalid_argument);
}

TEST(Image, GrayscaleUsesLumaWeights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 1.0f;  // pure red
  const Image gray = img.to_grayscale();
  EXPECT_NEAR(gray.at(0, 0), 0.299f, 1e-6);
}

TEST(Image, GrayscaleOfWhiteIsOne) {
  Image img(2, 2, 3, 1.0f);
  const Image gray = img.to_grayscale();
  EXPECT_NEAR(gray.at(1, 1), 1.0f, 1e-5);
}

TEST(Image, AveragePool) {
  Image img(2, 2, 1);
  img.at(0, 0) = 0.0f;
  img.at(0, 1) = 1.0f;
  img.at(1, 0) = 1.0f;
  img.at(1, 1) = 0.0f;
  const Image pooled = img.average_pool(2);
  EXPECT_EQ(pooled.height(), 1u);
  EXPECT_NEAR(pooled.at(0, 0), 0.5f, 1e-6);
  EXPECT_THROW(img.average_pool(3), std::invalid_argument);
}

TEST(Image, ClampAndMean) {
  Image img(1, 2, 1);
  img.at(0, 0) = -0.5f;
  img.at(0, 1) = 1.5f;
  img.clamp();
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(0, 1), 1.0f);
  EXPECT_NEAR(img.mean(), 0.5f, 1e-6);
}

// ----------------------------------------------------------------- Photodiode

TEST(Photodiode, LinearTransfer) {
  const Photodiode pd(PhotodiodeParams{});
  EXPECT_DOUBLE_EQ(pd.expose(0.0), pd.min_voltage());
  EXPECT_DOUBLE_EQ(pd.expose(1.0), pd.max_voltage());
  EXPECT_NEAR(pd.expose(0.5), (pd.min_voltage() + pd.max_voltage()) / 2, 1e-12);
}

TEST(Photodiode, ClampsBrightness) {
  const Photodiode pd(PhotodiodeParams{});
  EXPECT_DOUBLE_EQ(pd.expose(-1.0), pd.min_voltage());
  EXPECT_DOUBLE_EQ(pd.expose(2.0), pd.max_voltage());
}

TEST(Photodiode, NoisyExposeUnbiasedAndBounded) {
  const Photodiode pd(PhotodiodeParams{});
  util::Rng rng(3);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double v = pd.expose_noisy(0.5, rng);
    EXPECT_GE(v, pd.min_voltage());
    EXPECT_LE(v, pd.max_voltage());
    sum += v;
  }
  EXPECT_NEAR(sum / n, pd.expose(0.5), 0.01);
}

TEST(Photodiode, ShotNoiseScalesWithSignal) {
  PhotodiodeParams params;
  params.read_noise_electrons = 0.0;
  params.dark_current_fraction = 0.0;
  const Photodiode pd(params);
  util::Rng rng(9);
  auto stddev_at = [&](double b) {
    double sum = 0.0, sq = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const double v = pd.expose_noisy(b, rng);
      sum += v;
      sq += v * v;
    }
    const double mean = sum / n;
    return std::sqrt(std::max(0.0, sq / n - mean * mean));
  };
  // Poisson: sigma ~ sqrt(signal); 0.64 vs 0.16 brightness -> 2x sigma.
  EXPECT_NEAR(stddev_at(0.64) / stddev_at(0.16), 2.0, 0.35);
}

// ----------------------------------------------------------------- CRC

TEST(Crc, ReferencesSpanSwing) {
  const Photodiode pd(PhotodiodeParams{});
  const Crc crc(CrcParams{}, pd);
  EXPECT_EQ(crc.num_comparators(), 15);
  EXPECT_GT(crc.reference(0), pd.min_voltage());
  EXPECT_LT(crc.reference(14), pd.max_voltage());
  for (int i = 1; i < 15; ++i) {
    EXPECT_GT(crc.reference(i), crc.reference(i - 1));
  }
}

TEST(Crc, CodeMonotoneInVoltage) {
  const Photodiode pd(PhotodiodeParams{});
  const Crc crc(CrcParams{}, pd);
  int prev = -1;
  for (double b = 0.0; b <= 1.0; b += 0.01) {
    const int code = crc.read_code(pd.expose(b));
    EXPECT_GE(code, prev);
    prev = code;
  }
  EXPECT_EQ(crc.read_code(pd.expose(0.0)), 0);
  EXPECT_EQ(crc.read_code(pd.expose(1.0)), 15);
}

TEST(Crc, ThermometerOutputValid) {
  const Photodiode pd(PhotodiodeParams{});
  const Crc crc(CrcParams{}, pd);
  for (double b : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const auto code = crc.read_thermometer(pd.expose(b));
    bool seen_zero = false;
    for (bool bit : code) {
      EXPECT_FALSE(bit && seen_zero) << "bubble at brightness " << b;
      if (!bit) seen_zero = true;
    }
  }
}

TEST(Crc, MidScaleQuantizationError) {
  // The 15-level flash gives ~1/15 resolution across the swing.
  const Photodiode pd(PhotodiodeParams{});
  const Crc crc(CrcParams{}, pd);
  for (double b = 0.03; b < 1.0; b += 0.07) {
    const int code = crc.read_code(pd.expose(b));
    EXPECT_NEAR(static_cast<double>(code) / 15.0, b, 1.0 / 15.0);
  }
}

TEST(Crc, OffsetNoiseStaysMonotone) {
  const Photodiode pd(PhotodiodeParams{});
  CrcParams params;
  params.comparator_offset_sigma = 0.05;
  const Crc crc(params, pd);
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto code = crc.read_thermometer(pd.expose(0.5), &rng);
    bool seen_zero = false;
    for (bool bit : code) {
      EXPECT_FALSE(bit && seen_zero);
      if (!bit) seen_zero = true;
    }
  }
}

TEST(Crc, ConversionEnergy) {
  const Photodiode pd(PhotodiodeParams{});
  const Crc crc(CrcParams{}, pd);
  EXPECT_NEAR(crc.conversion_energy(), 15 * 12e-15, 1e-20);
}

// ----------------------------------------------------------------- Bayer

TEST(Bayer, RggbPattern) {
  EXPECT_EQ(bayer_channel_at(0, 0), BayerChannel::kRed);
  EXPECT_EQ(bayer_channel_at(0, 1), BayerChannel::kGreen);
  EXPECT_EQ(bayer_channel_at(1, 0), BayerChannel::kGreen);
  EXPECT_EQ(bayer_channel_at(1, 1), BayerChannel::kBlue);
  EXPECT_EQ(bayer_channel_at(2, 2), BayerChannel::kRed);
}

TEST(Bayer, MosaicPicksFilterChannel) {
  Image rgb(2, 2, 3);
  rgb.at(0, 0, 0) = 0.9f;  // R site
  rgb.at(0, 1, 1) = 0.8f;  // G site
  rgb.at(1, 1, 2) = 0.7f;  // B site
  const Image raw = bayer_mosaic(rgb);
  EXPECT_FLOAT_EQ(raw.at(0, 0), 0.9f);
  EXPECT_FLOAT_EQ(raw.at(0, 1), 0.8f);
  EXPECT_FLOAT_EQ(raw.at(1, 1), 0.7f);
}

TEST(Bayer, DemosaicRecoversUniformColor) {
  Image rgb(8, 8, 3);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      rgb.at(y, x, 0) = 0.6f;
      rgb.at(y, x, 1) = 0.3f;
      rgb.at(y, x, 2) = 0.1f;
    }
  }
  const Image back = bayer_demosaic(bayer_mosaic(rgb));
  for (std::size_t y = 1; y < 7; ++y) {
    for (std::size_t x = 1; x < 7; ++x) {
      EXPECT_NEAR(back.at(y, x, 0), 0.6f, 1e-5);
      EXPECT_NEAR(back.at(y, x, 1), 0.3f, 1e-5);
      EXPECT_NEAR(back.at(y, x, 2), 0.1f, 1e-5);
    }
  }
}

TEST(Bayer, RejectsWrongChannelCounts) {
  EXPECT_THROW(bayer_mosaic(Image(2, 2, 1)), std::invalid_argument);
  EXPECT_THROW(bayer_demosaic(Image(2, 2, 3)), std::invalid_argument);
}

// ----------------------------------------------------------------- PixelArray

PixelArrayParams small_array() {
  PixelArrayParams p;
  p.rows = 8;
  p.cols = 8;
  return p;
}

TEST(PixelArray, CaptureAndReadCodes) {
  PixelArray array(small_array());
  Image scene(8, 8, 3, 1.0f);  // white
  array.capture(scene);
  const CodeFrame frame = array.read_codes();
  EXPECT_EQ(frame.rows, 8u);
  for (auto c : frame.codes) EXPECT_EQ(c, 15);
}

TEST(PixelArray, DarkSceneReadsZero) {
  PixelArray array(small_array());
  Image scene(8, 8, 3, 0.0f);
  array.capture(scene);
  const CodeFrame frame = array.read_codes();
  for (auto c : frame.codes) EXPECT_EQ(c, 0);
}

TEST(PixelArray, GradientPreservedThroughBayerAndCrc) {
  PixelArray array(small_array());
  Image scene(8, 8, 3);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      const float v = static_cast<float>(x) / 7.0f;
      scene.at(y, x, 0) = v;
      scene.at(y, x, 1) = v;
      scene.at(y, x, 2) = v;
    }
  }
  array.capture(scene);
  const CodeFrame frame = array.read_codes();
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 1; x < 8; ++x) {
      EXPECT_GE(frame.at(y, x), frame.at(y, x - 1));
    }
  }
}

TEST(PixelArray, RejectsWrongScene) {
  PixelArray array(small_array());
  EXPECT_THROW(array.capture(Image(4, 4, 3)), std::invalid_argument);
}

TEST(PixelArray, EnergyAndPowerScaleWithPixels) {
  PixelArrayParams p = small_array();
  const PixelArray small(p);
  p.rows = 16;
  p.cols = 16;
  const PixelArray big(p);
  EXPECT_NEAR(big.readout_energy_per_frame() / small.readout_energy_per_frame(),
              4.0, 1e-9);
  EXPECT_NEAR(big.static_power() / small.static_power(), 4.0, 1e-9);
}

TEST(PixelArray, NoisyCaptureStaysInCodeRange) {
  PixelArray array(small_array());
  Image scene(8, 8, 3, 0.5f);
  util::Rng rng(11);
  array.capture(scene, &rng);
  const CodeFrame frame = array.read_codes(&rng);
  for (auto c : frame.codes) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 15);
  }
}

}  // namespace
}  // namespace lightator::sensor
