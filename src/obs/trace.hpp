// Request tracing: chrome://tracing / Perfetto-loadable span recording.
//
// The "where did the time go" half of src/obs/. A TraceRecorder captures
// nested spans — submit → queue → batch_dispatch → replica/backend →
// per-step conv/linear → respond — and writes them as Trace Event Format
// JSON ("X" complete events with microsecond ts/dur keyed by pid/tid), the
// format chrome://tracing and ui.perfetto.dev load directly.
//
// Hot-path contract (the part that earns its place next to the memory
// planner): recording must not break the `-DLIGHTATOR_ALLOC_TRACE=ON`
// zero-allocation steady-state gate. Events are fixed-size PODs (span
// names memcpy'd into an inline buffer, two optional const-char* detail
// slots for static strings like kernel tier names) appended to pre-sized
// per-thread ring buffers. A thread's ring is allocated on its first
// event — one allocation per thread, covered by warmup — and then reused
// forever; when a ring wraps, the oldest events are overwritten and the
// recorder's dropped() counter advances. Each ring has its own mutex,
// uncontended in steady state (only snapshot() takes them all).
//
// Cost model:
//   * tracing compiled in, disabled (default): one relaxed atomic load per
//     LIGHTATOR_TRACE_SPAN site;
//   * tracing enabled: two steady_clock reads + a ~100-byte ring store per
//     span (overhead floor gated in CI via serve_throughput's interleaved
//     tracing race);
//   * -DLIGHTATOR_DISABLE_TRACING=ON: the macros expand to nothing — true
//     zero cost, the config CI's scalar job builds.
//
// Usage:
//   obs::TraceRecorder::global().start();
//   { LIGHTATOR_TRACE_SPAN("batch_dispatch", "serve"); ... }
//   obs::TraceRecorder::global().write_chrome_json("trace.json");
// Open the file in chrome://tracing or ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lightator::obs {

/// One completed span. POD — no heap members, memcpy-safe — so recording
/// into a pre-sized ring never allocates. `ph` selects the serialization:
/// 'X' is a synchronous complete event (nested by containment on its tid's
/// stack); 'A' is an async span, written out as a "b"/"e" pair keyed by
/// request_id — the right shape for intervals that cross threads, like a
/// request's queue residency (enqueued on the submitter, dispatched on a
/// worker), which chrome://tracing renders on its own track instead of
/// forcing onto a thread stack.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 48;

  char name[kNameCapacity];   // truncated copy, always NUL-terminated
  const char* cat;            // static string ("serve", "step", "compile")
  char ph;                    // 'X' sync complete, 'A' async span
  std::int64_t ts_us;         // start, microseconds since recorder start
  std::int64_t dur_us;        // duration, microseconds
  std::uint32_t tid;          // recorder-assigned dense thread index
  std::uint64_t request_id;   // 0 = not request-scoped
  // Optional static-string annotations (kernel tier, fused epilogue);
  // must point at storage with static lifetime. nullptr key = unused slot.
  const char* detail_key[2];
  const char* detail_val[2];
};

/// Records spans into per-thread ring buffers and serializes them as Trace
/// Event Format JSON. One global() instance serves the whole process;
/// tests may build locals.
class TraceRecorder {
 public:
  /// `ring_capacity` events per thread (newest kept on overflow).
  explicit TraceRecorder(std::size_t ring_capacity = 32768);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& global();

  /// Arms recording and (re)bases the clock; events before start() or
  /// after stop() are ignored at the atomic-load gate.
  void start();
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events (rings stay allocated; drop counter zeroed).
  void clear();

  /// Records a completed span. ts/dur in microseconds relative to the
  /// recorder epoch; cat/detail pointers must be static-lifetime strings.
  /// No-op when disabled. Never allocates after the calling thread's first
  /// event.
  void record(const char* name, const char* cat, std::int64_t ts_us,
              std::int64_t dur_us, std::uint64_t request_id = 0,
              const char* detail_key0 = nullptr,
              const char* detail_val0 = nullptr,
              const char* detail_key1 = nullptr,
              const char* detail_val1 = nullptr);

  /// Async-span variant: serialized as a "b"/"e" pair keyed by request_id,
  /// exempt from per-thread stack nesting (see TraceEvent::ph).
  void record_async(const char* name, const char* cat, std::int64_t ts_us,
                    std::int64_t dur_us, std::uint64_t request_id);

  /// Microseconds since the recorder epoch (start() rebases it).
  std::int64_t now_us() const;

  /// Converts an already-captured steady_clock time point onto the recorder
  /// timeline — lets callers trace intervals they timestamped themselves
  /// (the serving layer's enqueue/dispatch points).
  std::int64_t to_us(std::chrono::steady_clock::time_point tp) const;

  /// All buffered events, oldest-first per tid. Takes every ring's mutex —
  /// call from a quiesced or low-rate context, not the hot path.
  std::vector<TraceEvent> snapshot() const;

  /// Events overwritten by ring wraparound since the last clear().
  std::uint64_t dropped() const;
  std::uint64_t recorded() const;
  /// Number of threads that have recorded at least one event.
  std::uint32_t thread_count() const;

  /// Writes the Trace Event Format JSON ({"traceEvents": [...]}) sorted by
  /// (ts asc, dur desc) so viewers reconstruct nesting by containment.
  /// Returns the number of events written.
  std::size_t write_chrome_json(const std::string& path) const;
  std::string chrome_json() const;

  /// Opaque per-thread buffer (defined in trace.cpp; public only so the
  /// implementation's thread-local cache can name it).
  struct Ring;

 private:
  Ring& local_ring();

  std::size_t ring_capacity_;
  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;

  mutable std::mutex rings_mutex_;  // guards rings_ growth
  std::vector<std::unique_ptr<Ring>> rings_;
  const std::uint64_t recorder_id_;  // process-unique; keys the TLS cache
};

#if defined(LIGHTATOR_DISABLE_TRACING)

// Compiled out: zero code at every span site.
#define LIGHTATOR_TRACE_SPAN(name, cat) \
  do {                                  \
  } while (false)
#define LIGHTATOR_TRACE_SPAN_REQ(name, cat, request_id) \
  do {                                                  \
  } while (false)
#define LIGHTATOR_TRACE_SPAN_DETAIL(name, cat, request_id, k0, v0, k1, v1) \
  do {                                                                     \
  } while (false)

#else

/// RAII span against the global recorder: captures start in the
/// constructor, records on destruction. The name/cat/detail pointers must
/// outlive the scope (string literals, step-name c_str()s held by the
/// CompiledModel, tier_name() statics all qualify).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, std::uint64_t request_id = 0,
            const char* detail_key0 = nullptr,
            const char* detail_val0 = nullptr,
            const char* detail_key1 = nullptr,
            const char* detail_val1 = nullptr)
      : name_(name),
        cat_(cat),
        request_id_(request_id),
        detail_key0_(detail_key0),
        detail_val0_(detail_val0),
        detail_key1_(detail_key1),
        detail_val1_(detail_val1),
        armed_(TraceRecorder::global().enabled()) {
    if (armed_) start_us_ = TraceRecorder::global().now_us();
  }
  ~TraceSpan() {
    if (armed_) {
      TraceRecorder& rec = TraceRecorder::global();
      rec.record(name_, cat_, start_us_, rec.now_us() - start_us_, request_id_,
                 detail_key0_, detail_val0_, detail_key1_, detail_val1_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t request_id_;
  const char* detail_key0_;
  const char* detail_val0_;
  const char* detail_key1_;
  const char* detail_val1_;
  bool armed_;
  std::int64_t start_us_ = 0;
};

#define LIGHTATOR_TRACE_CONCAT_(a, b) a##b
#define LIGHTATOR_TRACE_CONCAT(a, b) LIGHTATOR_TRACE_CONCAT_(a, b)

#define LIGHTATOR_TRACE_SPAN(name, cat)                                 \
  ::lightator::obs::TraceSpan LIGHTATOR_TRACE_CONCAT(lightator_span_,   \
                                                     __LINE__)(name, cat)
#define LIGHTATOR_TRACE_SPAN_REQ(name, cat, request_id)               \
  ::lightator::obs::TraceSpan LIGHTATOR_TRACE_CONCAT(lightator_span_, \
                                                     __LINE__)(name, cat, \
                                                               request_id)
#define LIGHTATOR_TRACE_SPAN_DETAIL(name, cat, request_id, k0, v0, k1, v1) \
  ::lightator::obs::TraceSpan LIGHTATOR_TRACE_CONCAT(lightator_span_,      \
                                                     __LINE__)(            \
      name, cat, request_id, k0, v0, k1, v1)

#endif  // LIGHTATOR_DISABLE_TRACING

}  // namespace lightator::obs
