// Umbrella header for the scheduling subsystem: priority classes + EDF
// dispatch policy, per-class admission control, and the replica autoscaler.
// ServerOptions embeds a SchedOptions; an unconfigured one is inert (all
// requests kStandard, no deadlines, no shedding beyond queue-full, fixed
// replica count) so the scheduler composes invisibly with existing callers.
#pragma once

#include "serve/sched/admission.hpp"
#include "serve/sched/autoscaler.hpp"
#include "serve/sched/policy.hpp"

namespace lightator::serve::sched {

struct SchedOptions {
  /// Per-class dispatch knobs folded into the queue's SchedPolicy (the
  /// max_batch / base window half still comes from ServerOptions::batch).
  std::array<ClassPolicy, kNumClasses> classes{};
  AdmissionOptions admission;
  AutoscalerOptions autoscale;
  /// Test hook: virtual time source for every scheduler decision (expiry,
  /// coalescing windows). nullptr = steady_clock. Must outlive the server.
  const SchedClock* clock = nullptr;
};

}  // namespace lightator::serve::sched
