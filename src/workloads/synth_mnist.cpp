#include "workloads/synth_mnist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lightator::workloads {

namespace {

constexpr std::size_t kDim = 28;

struct Segment {
  float x0, y0, x1, y1;  // in [0,1]^2 glyph coordinates
};

/// Stroke templates per digit in a unit box (y grows downward).
const std::vector<Segment>& digit_segments(int digit) {
  static const std::vector<std::vector<Segment>> kTemplates = {
      // 0: rounded rectangle approximated by 8 segments
      {{0.3f, 0.1f, 0.7f, 0.1f}, {0.7f, 0.1f, 0.8f, 0.3f},
       {0.8f, 0.3f, 0.8f, 0.7f}, {0.8f, 0.7f, 0.7f, 0.9f},
       {0.7f, 0.9f, 0.3f, 0.9f}, {0.3f, 0.9f, 0.2f, 0.7f},
       {0.2f, 0.7f, 0.2f, 0.3f}, {0.2f, 0.3f, 0.3f, 0.1f}},
      // 1
      {{0.35f, 0.25f, 0.55f, 0.1f}, {0.55f, 0.1f, 0.55f, 0.9f},
       {0.35f, 0.9f, 0.75f, 0.9f}},
      // 2
      {{0.2f, 0.25f, 0.35f, 0.1f}, {0.35f, 0.1f, 0.65f, 0.1f},
       {0.65f, 0.1f, 0.8f, 0.3f}, {0.8f, 0.3f, 0.2f, 0.9f},
       {0.2f, 0.9f, 0.8f, 0.9f}},
      // 3
      {{0.2f, 0.1f, 0.75f, 0.1f}, {0.75f, 0.1f, 0.5f, 0.45f},
       {0.5f, 0.45f, 0.8f, 0.7f}, {0.8f, 0.7f, 0.65f, 0.9f},
       {0.65f, 0.9f, 0.2f, 0.88f}},
      // 4
      {{0.6f, 0.1f, 0.2f, 0.6f}, {0.2f, 0.6f, 0.85f, 0.6f},
       {0.65f, 0.3f, 0.65f, 0.9f}},
      // 5
      {{0.75f, 0.1f, 0.25f, 0.1f}, {0.25f, 0.1f, 0.25f, 0.45f},
       {0.25f, 0.45f, 0.7f, 0.45f}, {0.7f, 0.45f, 0.8f, 0.65f},
       {0.8f, 0.65f, 0.7f, 0.9f}, {0.7f, 0.9f, 0.2f, 0.88f}},
      // 6
      {{0.7f, 0.1f, 0.35f, 0.35f}, {0.35f, 0.35f, 0.22f, 0.65f},
       {0.22f, 0.65f, 0.3f, 0.9f}, {0.3f, 0.9f, 0.7f, 0.9f},
       {0.7f, 0.9f, 0.78f, 0.65f}, {0.78f, 0.65f, 0.25f, 0.55f}},
      // 7
      {{0.2f, 0.1f, 0.8f, 0.1f}, {0.8f, 0.1f, 0.4f, 0.9f},
       {0.35f, 0.5f, 0.7f, 0.5f}},
      // 8
      {{0.5f, 0.1f, 0.25f, 0.28f}, {0.25f, 0.28f, 0.5f, 0.48f},
       {0.5f, 0.48f, 0.75f, 0.28f}, {0.75f, 0.28f, 0.5f, 0.1f},
       {0.5f, 0.48f, 0.22f, 0.7f}, {0.22f, 0.7f, 0.5f, 0.9f},
       {0.5f, 0.9f, 0.78f, 0.7f}, {0.78f, 0.7f, 0.5f, 0.48f}},
      // 9
      {{0.75f, 0.45f, 0.3f, 0.45f}, {0.3f, 0.45f, 0.22f, 0.25f},
       {0.22f, 0.25f, 0.35f, 0.1f}, {0.35f, 0.1f, 0.7f, 0.1f},
       {0.7f, 0.1f, 0.78f, 0.35f}, {0.78f, 0.35f, 0.72f, 0.9f},
       {0.72f, 0.9f, 0.35f, 0.88f}},
  };
  if (digit < 0 || digit > 9) throw std::out_of_range("digit must be 0..9");
  return kTemplates[static_cast<std::size_t>(digit)];
}

float point_segment_distance(float px, float py, const Segment& s) {
  const float dx = s.x1 - s.x0, dy = s.y1 - s.y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0 ? ((px - s.x0) * dx + (py - s.y0) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = s.x0 + t * dx, cy = s.y0 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

void render_digit(int digit, util::Rng& rng, const SynthMnistOptions& options,
                  float* out) {
  const auto& segments = digit_segments(digit);
  // Per-sample affine jitter.
  const double angle = rng.uniform(-options.rotation_radians,
                                   options.rotation_radians);
  const double scale = 1.0 + rng.uniform(-options.scale_jitter,
                                         options.scale_jitter);
  const double shift_x = rng.uniform(-options.jitter_pixels,
                                     options.jitter_pixels) / kDim;
  const double shift_y = rng.uniform(-options.jitter_pixels,
                                     options.jitter_pixels) / kDim;
  const double thickness = 0.045 + rng.uniform(0.0, 0.025);
  const float ca = static_cast<float>(std::cos(angle));
  const float sa = static_cast<float>(std::sin(angle));

  for (std::size_t y = 0; y < kDim; ++y) {
    for (std::size_t x = 0; x < kDim; ++x) {
      // Map the pixel into glyph coordinates (inverse affine about center).
      const float px0 = (static_cast<float>(x) + 0.5f) / kDim - 0.5f -
                        static_cast<float>(shift_x);
      const float py0 = (static_cast<float>(y) + 0.5f) / kDim - 0.5f -
                        static_cast<float>(shift_y);
      const float px = (ca * px0 + sa * py0) / static_cast<float>(scale) + 0.5f;
      const float py = (-sa * px0 + ca * py0) / static_cast<float>(scale) + 0.5f;
      float dist = 1e9f;
      for (const auto& s : segments) {
        dist = std::min(dist, point_segment_distance(px, py, s));
      }
      // Soft stroke profile.
      const float v = std::clamp(
          1.0f - (dist - static_cast<float>(thickness)) / 0.03f, 0.0f, 1.0f);
      float noisy = v + static_cast<float>(rng.normal(0.0, options.noise_stddev));
      out[y * kDim + x] = std::clamp(noisy, 0.0f, 1.0f);
    }
  }
}

nn::Dataset make_synth_mnist(const SynthMnistOptions& options) {
  util::Rng rng(options.seed);
  nn::Dataset data;
  data.num_classes = 10;
  data.images = tensor::Tensor({options.samples, 1, kDim, kDim});
  data.labels.resize(options.samples);
  for (std::size_t i = 0; i < options.samples; ++i) {
    const int digit = static_cast<int>(i % 10);
    data.labels[i] = static_cast<std::size_t>(digit);
    render_digit(digit, rng, options, data.images.data() + i * kDim * kDim);
  }
  return data;
}

}  // namespace lightator::workloads
