#include "core/backends/gemm_backend.hpp"

#include <vector>

#include "tensor/gemm_s16.hpp"
#include "tensor/gemm_s16_packed.hpp"
#include "tensor/simd.hpp"

namespace lightator::core {

namespace {

/// The layer's pre-packed panels when they match this backend's arm length —
/// programmed weights carry them (Engine::compile packs once per layer;
/// every consumer of the CompiledModel shares the panels).
const tensor::PackedWeights* usable_prepack(const tensor::QuantizedTensor& w,
                                            std::size_t seg) {
  return (w.prepack != nullptr && w.prepack->seg == seg) ? w.prepack.get()
                                                         : nullptr;
}

}  // namespace

tensor::Tensor GemmBackend::conv2d(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const tensor::ConvSpec& spec,
                                   const ExecutionContext& ctx) const {
  validate_oc_conv_inputs(x, w, spec);
  const std::size_t batch = x.shape[0], c_in = x.shape[1], h = x.shape[2],
                    w_in = x.shape[3];
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w_in);
  const std::size_t npix = oh * ow;
  const std::size_t kdim = spec.weights_per_filter();
  tensor::Tensor y({batch, spec.out_channels, oh, ow});
  const std::size_t seg = config_.geometry.mrs_per_arm;
  // Packed AVX2 path: the weight panel (GEMM A operand) packs once per call
  // — or not at all when the programmed layer carries pre-packed panels —
  // and each item's im2col panel packs into B strips right after unfolding.
  // Bit-exact with the scalar kernel (same segment reduction order, same
  // integer arithmetic), so the choice is purely a speed dispatch. Wins at
  // every panel width: the kernel's register-resident double accumulators
  // spill to C once per 16-column strip, so even DRAM-bound hires panels
  // (backend_compare's 36864-pixel case) come out ahead of the scalar
  // kernel's n-blocked loop.
  const bool packed = tensor::simd::avx2_enabled();
  const tensor::PackedWeights* pre =
      packed ? usable_prepack(w, seg) : nullptr;
  tensor::PackedA local_a;
  if (packed && (pre == nullptr || !pre->has_a)) {
    local_a = tensor::pack_a_s16(w.levels.data(), spec.out_channels, kdim,
                                 kdim, seg);
  }
  const tensor::PackedA& wa =
      (pre != nullptr && pre->has_a) ? pre->a : local_a;
  ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
    const double scale = oc_output_scale_for_item(x, w, n);
    std::vector<std::int16_t> cols(kdim * npix);
    std::vector<double> acc(spec.out_channels * npix);
    tensor::im2col_s16(x.levels.data() + n * c_in * h * w_in, h, w_in, spec,
                       cols.data());
    if (packed) {
      const tensor::PackedB cb =
          tensor::pack_b_s16(cols.data(), kdim, npix, npix, seg);
      tensor::gemm_s16_packed(wa, cb, acc.data(), npix);
    } else {
      tensor::gemm_s16_segmented(spec.out_channels, npix, kdim,
                                 w.levels.data(), kdim, cols.data(), npix, seg,
                                 acc.data(), npix);
    }
    float* y_n = y.data() + n * spec.out_channels * npix;
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      const double* a_row = acc.data() + oc * npix;
      float* y_row = y_n + oc * npix;
      if (bias.empty()) {
        for (std::size_t j = 0; j < npix; ++j) {
          y_row[j] = static_cast<float>(a_row[j] * scale);
        }
      } else {
        const float b = bias[oc];
        for (std::size_t j = 0; j < npix; ++j) {
          float out = static_cast<float>(a_row[j] * scale);
          out += b;
          y_row[j] = out;
        }
      }
    }
  });
  return y;
}

tensor::Tensor GemmBackend::linear(const tensor::QuantizedTensor& x,
                                   const tensor::QuantizedTensor& w,
                                   const tensor::Tensor& bias,
                                   const ExecutionContext& ctx) const {
  validate_oc_linear_inputs(x, w);
  const std::size_t batch = x.shape[0], d = x.shape[1], out_f = w.shape[0];
  tensor::Tensor y({batch, out_f});
  const std::size_t seg = config_.geometry.mrs_per_arm;
  const bool packed = tensor::simd::avx2_enabled();
  if (packed) {
    // Packed path: the fc layer is one GEMM — activation rows as the A
    // operand (packed per forward, cheap), Wᵀ as the B panel (pre-packed on
    // programmed layers, one pass over W otherwise, amortized over the
    // batch). Each item is one C row, so the batch shards over the pool by
    // row range without re-packing anything.
    const tensor::PackedWeights* pre = usable_prepack(w, seg);
    tensor::PackedB local_bt;
    if (pre == nullptr || !pre->has_b) {
      local_bt = tensor::pack_b_s16_transposed(w.levels.data(), d, out_f, d,
                                               seg);
    }
    const tensor::PackedB& wb =
        (pre != nullptr && pre->has_b) ? pre->bt : local_bt;
    const tensor::PackedA xa =
        tensor::pack_a_s16(x.levels.data(), batch, d, d, seg);
    std::vector<double> acc(batch * out_f);
    ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
      tensor::gemm_s16_packed(xa, wb, acc.data(), out_f, n, n + 1);
      const double scale = oc_output_scale_for_item(x, w, n);
      const double* a_row = acc.data() + n * out_f;
      for (std::size_t o = 0; o < out_f; ++o) {
        float v = static_cast<float>(a_row[o] * scale);
        if (!bias.empty()) v += bias[o];
        y.at(n, o) = v;
      }
    });
    return y;
  }
  ctx.thread_pool().parallel_for(0, batch, [&](std::size_t n) {
    const double scale = oc_output_scale_for_item(x, w, n);
    const std::int16_t* row = x.levels.data() + n * d;
    for (std::size_t o = 0; o < out_f; ++o) {
      const double acc =
          tensor::dot_s16_segmented(row, w.levels.data() + o * d, d, seg);
      float v = static_cast<float>(acc * scale);
      if (!bias.empty()) v += bias[o];
      y.at(n, o) = v;
    }
  });
  return y;
}

}  // namespace lightator::core
