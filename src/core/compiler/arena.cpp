#include "core/compiler/arena.hpp"

#include <algorithm>
#include <stdexcept>

namespace lightator::core {

namespace {

constexpr std::size_t kFloatBytes = sizeof(float);
constexpr std::size_t kCodeBytes = sizeof(std::int16_t);
constexpr std::size_t kScaleBytes = sizeof(double);

/// Per-item geometry propagated through the plan walk. Conv/pool steps need
/// the (c, h, w) split; fc and flatten only the flat element count.
struct Geometry {
  bool spatial = false;  // c/h/w valid (4-d activations)
  std::size_t c = 0, h = 0, w = 0;
  std::size_t elems = 0;  // per-item element count (always valid)
};

Geometry frame_geometry(const tensor::Shape& frame_shape) {
  Geometry g;
  g.elems = 1;
  for (std::size_t i = 1; i < frame_shape.size(); ++i) g.elems *= frame_shape[i];
  if (frame_shape.size() == 4) {
    g.spatial = true;
    g.c = frame_shape[1];
    g.h = frame_shape[2];
    g.w = frame_shape[3];
  }
  return g;
}

std::size_t pool_out_dim(std::size_t in, std::size_t kernel,
                         std::size_t stride) {
  if (kernel == 0 || stride == 0 || in < kernel) {
    throw std::invalid_argument("arena planner: invalid pool geometry");
  }
  return (in - kernel) / stride + 1;
}

/// What one step contributes to the memory accounting.
struct StepFootprint {
  std::size_t in_elems = 0;       // per-item input elements
  std::size_t out_elems = 0;      // per-item output elements
  std::size_t scratch_bytes = 0;  // backend scratch while the step runs
  bool weighted = false;          // consumes quantized activation codes
};

/// Walks `steps` propagating geometry and calls fn(step_index, footprint)
/// for each. The single source of truth for both the planned and the naive
/// accounting — they only aggregate differently.
template <typename F>
void walk_plan(const std::vector<CompiledStep>& steps,
               const ComputeBackend& backend, std::size_t batch,
               const tensor::Shape& frame_shape, std::size_t slots, F&& fn) {
  Geometry g = frame_geometry(frame_shape);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const CompiledStep& step = steps[i];
    StepFootprint fp;
    fp.in_elems = g.elems;
    switch (step.kind) {
      case nn::LayerKind::kConv: {
        if (!g.spatial) {
          throw std::invalid_argument(
              "arena planner: conv step on non-spatial activations");
        }
        const std::size_t oh = step.conv.out_dim(g.h);
        const std::size_t ow = step.conv.out_dim(g.w);
        fp.weighted = true;
        fp.scratch_bytes = backend.conv2d_scratch_bytes(
            step.conv, g.h, g.w, step.epilogue, batch, slots);
        g.c = step.conv.out_channels;
        g.h = oh;
        g.w = ow;
        if (step.epilogue.pool != PoolKind::kNone) {
          g.h = pool_out_dim(oh, step.epilogue.pool_kernel,
                             step.epilogue.pool_stride);
          g.w = pool_out_dim(ow, step.epilogue.pool_kernel,
                             step.epilogue.pool_stride);
        }
        g.elems = g.c * g.h * g.w;
        break;
      }
      case nn::LayerKind::kLinear: {
        fp.weighted = true;
        fp.scratch_bytes =
            backend.linear_scratch_bytes(g.elems, step.fc_out, batch, slots);
        g.spatial = false;
        g.elems = step.fc_out;
        break;
      }
      case nn::LayerKind::kMaxPool:
      case nn::LayerKind::kAvgPool: {
        if (!g.spatial) {
          throw std::invalid_argument(
              "arena planner: pool step on non-spatial activations");
        }
        g.h = pool_out_dim(g.h, step.pool_kernel, step.pool_stride);
        g.w = pool_out_dim(g.w, step.pool_kernel, step.pool_stride);
        g.elems = g.c * g.h * g.w;
        break;
      }
      case nn::LayerKind::kActivation:
        break;  // geometry unchanged
      case nn::LayerKind::kFlatten:
        g.spatial = false;
        break;  // element count unchanged
    }
    fp.out_elems = g.elems;
    fn(i, fp);
  }
}

}  // namespace

ArenaPlan compute_arena_plan(const std::vector<CompiledStep>& steps,
                             const ComputeBackend& backend, std::size_t batch,
                             const tensor::Shape& frame_shape,
                             std::size_t slots) {
  ArenaPlan plan;
  plan.batch = batch;
  plan.frame_shape.assign(frame_shape.begin(), frame_shape.end());
  plan.slots = slots == 0 ? 1 : slots;
  plan.step_extents.clear();
  plan.step_extents.reserve(steps.size());
  std::size_t final_elems = frame_geometry(frame_shape).elems;
  walk_plan(steps, backend, batch, frame_shape, plan.slots,
            [&](std::size_t i, const StepFootprint& fp) {
              ArenaStepExtent ext;
              ext.step = i;
              ext.out_bytes = batch * fp.out_elems * kFloatBytes;
              ext.scratch_bytes = fp.scratch_bytes;
              if (fp.weighted) {
                ext.codes_bytes =
                    batch * fp.in_elems * kCodeBytes + batch * kScaleBytes;
                plan.codes_bytes = std::max(plan.codes_bytes, ext.codes_bytes);
              }
              // Step i writes ping-pong slot i & 1; steps run sequentially,
              // so one shared scratch region sized to the worst step serves
              // them all — that is the whole liveness argument.
              plan.io_bytes[i & 1] =
                  std::max(plan.io_bytes[i & 1], ext.out_bytes);
              plan.scratch_bytes =
                  std::max(plan.scratch_bytes, ext.scratch_bytes);
              final_elems = fp.out_elems;
              plan.step_extents.push_back(ext);
            });
  plan.output_bytes = batch * final_elems * kFloatBytes;
  return plan;
}

std::size_t naive_peak_bytes(const std::vector<CompiledStep>& steps,
                             const ComputeBackend& backend, std::size_t batch,
                             const tensor::Shape& frame_shape,
                             std::size_t slots) {
  std::size_t peak = 0;
  walk_plan(steps, backend, batch, frame_shape, slots == 0 ? 1 : slots,
            [&](std::size_t, const StepFootprint& fp) {
              // The naive executor holds the input tensor, the freshly
              // allocated output, the codes (for weighted steps), and the
              // backend's per-call scratch all at once.
              std::size_t live = batch * fp.in_elems * kFloatBytes +
                                 batch * fp.out_elems * kFloatBytes +
                                 fp.scratch_bytes;
              if (fp.weighted) {
                live += batch * fp.in_elems * kCodeBytes + batch * kScaleBytes;
              }
              peak = std::max(peak, live);
            });
  return peak;
}

void ScratchArena::prepare(const CompiledPlan& plan,
                           const ComputeBackend& backend, std::size_t batch,
                           const tensor::Shape& frame_shape,
                           std::size_t slots) {
  if (slots == 0) slots = 1;
  const void* key = static_cast<const void*>(plan.steps.data());
  if (plan_key_ == key && plan_.batch == batch && plan_.slots == slots &&
      plan_.frame_shape == frame_shape) {
    return;  // warm: the steady-state (allocation-free) path
  }
  plan_ = compute_arena_plan(plan.steps, backend, batch, frame_shape, slots);
  plan_key_ = key;
  // Monotone growth: capacities only ever ratchet up, so alternating batch
  // geometries settle at the high-water mark and stop allocating.
  io_[0].reserve(plan_.io_bytes[0] / kFloatBytes);
  io_[1].reserve(plan_.io_bytes[1] / kFloatBytes);
  codes_.levels.reserve(plan_.codes_bytes / kCodeBytes);
  codes_.item_scales.reserve(batch);
  codes_.shape.reserve(frame_shape.size());
  if (scratch_storage_.size() < plan_.scratch_bytes) {
    scratch_storage_.resize(plan_.scratch_bytes);
  }
}

std::shared_ptr<tensor::Tensor> ScratchArena::acquire_output() {
  for (const auto& out : outputs_) {
    // use_count 1 == only the pool holds it: the previous consumer released
    // its BatchOutput, so the buffer (and its capacity) can be recycled.
    if (out.use_count() == 1) return out;
  }
  outputs_.push_back(std::make_shared<tensor::Tensor>());
  return outputs_.back();
}

}  // namespace lightator::core
