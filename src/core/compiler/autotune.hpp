// Kernel-autotune compiler pass: freeze the packed-GEMM dispatch decision
// per layer at compile time.
//
// The packed GEMM (tensor/gemm_s16_packed.hpp) exposes a ladder of bit-exact
// microkernel tiers (scalar / AVX2 / AVX-512 / VNNI) plus an optional B-panel
// strip blocking; runtime auto dispatch always picks the top tier unblocked.
// That is usually right, but not always — small panels can favor a lower
// tier's shorter dependency chains, and panels that overflow L2 favor strip
// blocking. This pass micro-benchmarks the 2-3 plausible (tier, blocking)
// candidates per DISTINCT GEMM geometry on synthetic panels at
// Engine::compile, freezes the winner into each weighted step
// (CompiledStep::kernel), and records the full tuning report on the plan
// (CompiledPlan::kernel_plan). Because every candidate is bit-exact, the
// choice only moves time — never results.
//
// Determinism: measurement is inherently noisy, so two compiles on the same
// machine may pick different winners for a borderline geometry. Callers that
// need reproducible artifacts pin a previously recorded plan
// (PassContext::pinned_kernel_plan) or force a tier
// (PassContext::force_kernel); both paths measure nothing and are fully
// deterministic. Conv geometries need the input spatial size — when
// PassContext::input_shape is empty they keep auto dispatch and only fc
// geometries (known at compile time) are tuned.
#pragma once

#include <memory>
#include <vector>

#include "core/compiler/pass_manager.hpp"
#include "core/compiler/plan.hpp"

namespace lightator::core {

/// The candidate (tier, blocking) configs the autotuner would race for one
/// geometry, best-guess first: top available SIMD tier unblocked, the same
/// tier with an L2-sized strip block when the B panel overflows L2, and the
/// next tier down the ladder. Empty when only the scalar tier is available
/// (nothing to choose). Exposed for the bench driver and tests.
std::vector<tensor::KernelConfig> kernel_candidate_configs(
    const GemmGeometry& geom);

/// Races the candidates for `geom` on synthetic packed panels (deterministic
/// LCG fill reproducing the geometry's narrow/wide accumulation mode) with
/// one warmup plus best-of-`reps` steady_clock timings each, and returns the
/// tuning record. With zero or one candidate the entry is unmeasured and the
/// choice is the sole candidate (or auto dispatch).
KernelPlanEntry autotune_gemm_geometry(const GemmGeometry& geom, int reps = 3);

/// The "kernel-autotune" pass (see file comment). Runs between stage fusion
/// and memory planning: fusion first because fused pools change downstream
/// conv geometry, memory planning after because tuning does not move scratch
/// sizes.
std::unique_ptr<CompilerPass> make_kernel_autotune_pass();

}  // namespace lightator::core
