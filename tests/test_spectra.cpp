// Spectral-domain property tests for the photonic device models: passive
// energy conservation, resonance symmetry, and the WDM budget that makes a
// 9-channel arm viable.
#include <gtest/gtest.h>

#include <cmath>

#include "optics/microring.hpp"
#include "optics/wavelength.hpp"
#include "util/rng.hpp"

namespace lightator::optics {
namespace {

using lightator::units::kNm;

MicroRingParams lossless_ring() {
  MicroRingParams p;
  p.fwhm = 0.1 * kNm;
  p.extinction = 0.05;
  p.max_detuning = 0.5 * kNm;
  p.insertion_loss_db = 0.0;
  return p;
}

TEST(Spectra, PassiveRingConservesEnergy) {
  // A lossless add-drop ring must never emit more than it receives:
  // T_through + T_drop <= 1 everywhere on the spectrum.
  const MicroRing ring(lossless_ring(), 1550 * kNm);
  for (double d = -2.0; d <= 2.0; d += 0.01) {
    const double lambda = 1550 * kNm + d * kNm;
    const double total =
        ring.through_transmission(lambda) + ring.drop_transmission(lambda);
    EXPECT_LE(total, 1.0 + 1e-9) << "detune " << d << " nm";
    EXPECT_GE(total, 0.0);
  }
}

TEST(Spectra, LossyRingStrictlyBelowUnity) {
  MicroRingParams p = lossless_ring();
  p.insertion_loss_db = 0.05;
  const MicroRing ring(p, 1550 * kNm);
  for (double d = -1.0; d <= 1.0; d += 0.05) {
    const double lambda = 1550 * kNm + d * kNm;
    EXPECT_LT(ring.through_transmission(lambda) + ring.drop_transmission(lambda),
              1.0);
  }
}

TEST(Spectra, ResonanceSymmetricAboutCenter) {
  const MicroRing ring(lossless_ring(), 1550 * kNm);
  for (double d = 0.01; d <= 1.0; d += 0.03) {
    EXPECT_NEAR(ring.through_transmission(1550 * kNm + d * kNm),
                ring.through_transmission(1550 * kNm - d * kNm), 1e-12);
  }
}

TEST(Spectra, DetuningShiftsTheWholeLineShape) {
  MicroRing ring(lossless_ring(), 1550 * kNm);
  const double t_at_center_before = ring.through_transmission(1550 * kNm);
  ring.set_detuning(0.2 * kNm);
  // The dip moved: center recovers, the shifted point now sits in the dip.
  EXPECT_GT(ring.through_transmission(1550 * kNm), t_at_center_before);
  EXPECT_NEAR(ring.through_transmission(1550.2 * kNm), t_at_center_before,
              1e-9);
}

TEST(Spectra, MonotoneTransmissionAwayFromResonance) {
  const MicroRing ring(lossless_ring(), 1550 * kNm);
  double prev = ring.through_transmission(1550 * kNm);
  for (double d = 0.01; d <= 2.0; d += 0.01) {
    const double t = ring.through_transmission(1550 * kNm + d * kNm);
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
}

TEST(Spectra, NineChannelWorstCaseAggregateCrosstalk) {
  // The arm budget: for channel 4 (center of a 9-channel grid), the product
  // of 8 parked neighbors' through transmissions must stay above 0.98 —
  // otherwise the functional==physical property tests could not hold.
  const WdmGrid grid = WdmGrid::c_band(9);
  const double lambda4 = grid.wavelength(4);
  double product = 1.0;
  for (std::size_t c = 0; c < 9; ++c) {
    if (c == 4) continue;
    MicroRing neighbor(lossless_ring(), grid.wavelength(c));
    neighbor.set_weight(0.0);  // parked on resonance: widest dip
    product *= neighbor.through_transmission(lambda4);
  }
  EXPECT_GT(product, 0.98);
}

TEST(Spectra, DetunedNeighborsLeanTowardButDontReachChannel) {
  // Worst detuning case: all lower neighbors maximally red-shifted toward
  // channel 4. Aggregate crosstalk must still stay in budget.
  const WdmGrid grid = WdmGrid::c_band(9);
  const double lambda4 = grid.wavelength(4);
  double product = 1.0;
  for (std::size_t c = 0; c < 4; ++c) {
    MicroRing neighbor(lossless_ring(), grid.wavelength(c));
    neighbor.set_weight(1.0);  // max detuning, toward higher wavelengths
    product *= neighbor.through_transmission(lambda4);
  }
  EXPECT_GT(product, 0.985);
}

TEST(Spectra, FwhmScalesDipWidth) {
  MicroRingParams narrow = lossless_ring();
  MicroRingParams wide = lossless_ring();
  wide.fwhm = 0.4 * kNm;
  const MicroRing rn(narrow, 1550 * kNm);
  const MicroRing rw(wide, 1550 * kNm);
  // At 0.2 nm off resonance the wide ring still dips, the narrow is clear.
  const double off = 1550.2 * kNm;
  EXPECT_GT(rn.through_transmission(off), rw.through_transmission(off));
}

TEST(Spectra, HeadroomLimitsTopTransmission) {
  // With headroom h, weight 1.0 targets T = Tmin + h*(1-Tmin), not 1.0:
  // the detuning stays finite and inside the phase-shifter range.
  MicroRingParams p = lossless_ring();
  p.weight_headroom = 0.9;
  MicroRing ring(p, 1550 * kNm);
  ring.set_weight(1.0);
  EXPECT_LT(ring.detuning(), p.max_detuning - 1e-15);
  const double t = ring.through_transmission(1550 * kNm);
  EXPECT_NEAR(t, 0.05 + 0.9 * 0.95, 1e-9);
}

class SpectraWeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpectraWeightSweep, CalibrationRoundTripsAcrossTheRange) {
  MicroRing ring(lossless_ring(), 1550 * kNm);
  const double w = GetParam();
  ring.set_weight(w);
  EXPECT_NEAR(ring.realized_weight(), w, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Weights, SpectraWeightSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 1.0 / 3.0, 0.5,
                                           6.0 / 7.0, 0.99, 1.0));

}  // namespace
}  // namespace lightator::optics
