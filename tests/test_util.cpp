#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/quant.hpp"
#include "util/rng.hpp"
#include "util/streaming_quantiles.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace lightator::util {
namespace {

// ----------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(17);
  for (double lambda : {0.5, 3.0, 25.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1) << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

// ----------------------------------------------------------------- Config

TEST(Config, FromArgsParsesKeyValues) {
  const char* argv[] = {"prog", "a=1", "b.c=hello", "x=2.5"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b.c", ""), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 0.0), 2.5);
}

TEST(Config, FromArgsRejectsMalformed) {
  const char* argv[] = {"prog", "novalue"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(Config, FallbacksWhenAbsent) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_EQ(cfg.get_string("missing", "d"), "d");
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, MalformedValueThrows) {
  Config cfg;
  cfg.set("n", "12abc");
  EXPECT_THROW(cfg.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_double("n", 0.0), std::invalid_argument);
}

TEST(Config, BoolParsing) {
  Config cfg;
  cfg.set("t1", "true");
  cfg.set("t2", "1");
  cfg.set("f1", "off");
  EXPECT_TRUE(cfg.get_bool("t1", false));
  EXPECT_TRUE(cfg.get_bool("t2", false));
  EXPECT_FALSE(cfg.get_bool("f1", true));
  cfg.set("bad", "maybe");
  EXPECT_THROW(cfg.get_bool("bad", false), std::invalid_argument);
}

TEST(Config, FromStringSkipsComments) {
  const Config cfg = Config::from_string("# comment line\na=1\nb=2");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_int("b", 0), 2);
}

TEST(Config, DumpSortedRoundTrips) {
  Config cfg;
  cfg.set("z", "1");
  cfg.set("a", "2");
  const Config back = Config::from_string(cfg.dump());
  EXPECT_EQ(back.get_int("z", 0), 1);
  EXPECT_EQ(back.get_int("a", 0), 2);
  EXPECT_EQ(back.keys().front(), "a");
}

// ----------------------------------------------------------------- Table

TEST(Table, TextAlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_NO_THROW(t.to_csv());
}

TEST(Table, OverlongRowThrows) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  TablePrinter t({"a"});
  t.add_row({"va,l\"ue"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"va,l\"\"ue\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_power(2.5), "2.500 W");
  EXPECT_EQ(format_power(2.5e-3), "2.500 mW");
  EXPECT_EQ(format_power(2.5e-6), "2.500 uW");
  EXPECT_EQ(format_time(1.5e-3), "1.500 ms");
  EXPECT_EQ(format_time(3.2e-6), "3.200 us");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

// ----------------------------------------------------------------- Quant

TEST(SymmetricQuantizer, RoundTripLevels) {
  const SymmetricQuantizer q{4, 1.0};
  EXPECT_EQ(q.max_level(), 7);
  for (int l = -7; l <= 7; ++l) {
    EXPECT_EQ(q.quantize(q.dequantize(l)), l);
  }
}

TEST(SymmetricQuantizer, Saturates) {
  const SymmetricQuantizer q{4, 1.0};
  EXPECT_EQ(q.quantize(5.0), 7);
  EXPECT_EQ(q.quantize(-5.0), -7);
}

TEST(SymmetricQuantizer, BinaryIsSign) {
  const SymmetricQuantizer q{1, 1.0};
  EXPECT_EQ(q.max_level(), 1);
  EXPECT_EQ(q.quantize(0.3), 1);
  EXPECT_EQ(q.quantize(-0.3), -1);
  EXPECT_EQ(q.quantize(0.0), 1);
}

TEST(SymmetricQuantizer, ErrorBoundedByHalfStep) {
  const SymmetricQuantizer q{4, 2.0};
  const double step = 2.0 / 7.0;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 2.0);
    EXPECT_LE(std::fabs(q.fake_quant(v) - v), step / 2 + 1e-12);
  }
}

TEST(UnsignedQuantizer, RoundTripCodes) {
  const UnsignedQuantizer q{4, 1.0};
  EXPECT_EQ(q.max_code(), 15);
  for (int c = 0; c <= 15; ++c) EXPECT_EQ(q.quantize(q.dequantize(c)), c);
}

TEST(UnsignedQuantizer, ClampsNegative) {
  const UnsignedQuantizer q{4, 1.0};
  EXPECT_EQ(q.quantize(-0.5), 0);
  EXPECT_EQ(q.quantize(2.0), 15);
}

TEST(Thermometer, EncodeDecodeRoundTrip) {
  for (int code = 0; code <= 15; ++code) {
    const auto bits = thermometer_encode(code, 15);
    EXPECT_TRUE(thermometer_valid(bits));
    EXPECT_EQ(thermometer_decode(bits), code);
  }
}

TEST(Thermometer, BubbleDetected) {
  std::vector<bool> bits = {true, false, true};
  EXPECT_FALSE(thermometer_valid(bits));
  EXPECT_THROW(thermometer_decode(bits), std::invalid_argument);
}

TEST(Thermometer, OutOfRangeThrows) {
  EXPECT_THROW(thermometer_encode(16, 15), std::out_of_range);
  EXPECT_THROW(thermometer_encode(-1, 15), std::out_of_range);
}

TEST(MaxAbs, FindsLargestMagnitude) {
  const float data[] = {0.5f, -2.0f, 1.5f};
  EXPECT_DOUBLE_EQ(max_abs(data, 3), 2.0);
  EXPECT_DOUBLE_EQ(max_abs(data, 0), 0.0);
}

// ----------------------------------------------------------------- Units

TEST(Units, DbLossToLinear) {
  EXPECT_NEAR(units::db_loss_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(units::db_loss_to_linear(3.0103), 0.5, 1e-4);
  EXPECT_NEAR(units::db_loss_to_linear(10.0), 0.1, 1e-12);
}

TEST(Units, PhotonEnergyAt1550nm) {
  // ~0.8 eV = 1.28e-19 J.
  EXPECT_NEAR(units::photon_energy(1550e-9), 1.28e-19, 0.02e-19);
}

TEST(Logging, LevelsFilter) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  LT_LOG_INFO("should be suppressed %d", 1);
  set_log_level(LogLevel::kWarn);
  EXPECT_STREQ(level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(level_name(LogLevel::kError), "ERROR");
}

// ------------------------------------------------- StreamingQuantiles

/// The exact reference the sketch must reproduce while uncompacted.
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

TEST(StreamingQuantiles, ExactBelowCapacity) {
  StreamingQuantiles sketch(128);
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.normal(3.0, 2.0);
    values.push_back(v);
    sketch.add(v);
  }
  ASSERT_TRUE(sketch.is_exact());
  EXPECT_EQ(sketch.count(), 100u);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(sketch.quantile(q), exact_quantile(values, q)) << "q=" << q;
  }
  EXPECT_EQ(sketch.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(sketch.max(), *std::max_element(values.begin(), values.end()));
}

TEST(StreamingQuantiles, MeanAndStddevExactForAnyLength) {
  StreamingQuantiles sketch(16);  // tiny capacity: forces many compactions
  double sum = 0.0;
  std::vector<double> values;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(-1.0, 5.0);
    values.push_back(v);
    sum += v;
    sketch.add(v);
  }
  EXPECT_FALSE(sketch.is_exact());
  EXPECT_EQ(sketch.count(), 5000u);
  const double mean = sum / 5000.0;
  EXPECT_NEAR(sketch.mean(), mean, 1e-12);
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  EXPECT_NEAR(sketch.stddev(), std::sqrt(var / 4999.0), 1e-9);
}

TEST(StreamingQuantiles, BoundedErrorAfterCompaction) {
  // 10k uniform values through a 64-entry buffer: quantiles must stay within
  // a few multiples of the 1/capacity rank-error bound.
  StreamingQuantiles sketch(64);
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) sketch.add(rng.uniform());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(sketch.quantile(q), q, 0.05) << "q=" << q;
  }
  // Order statistics stay monotone.
  EXPECT_LE(sketch.quantile(0.1), sketch.quantile(0.5));
  EXPECT_LE(sketch.quantile(0.5), sketch.quantile(0.9));
  EXPECT_LE(sketch.min(), sketch.quantile(0.0) + 1e-12);
  EXPECT_GE(sketch.max(), sketch.quantile(1.0) - 1e-12);
}

TEST(StreamingQuantiles, DeterministicForIdenticalStreams) {
  StreamingQuantiles a(32), b(32);
  Rng rng(23);
  std::vector<double> stream;
  for (int i = 0; i < 3000; ++i) stream.push_back(rng.normal());
  for (double v : stream) a.add(v);
  for (double v : stream) b.add(v);
  for (const double q : {0.05, 0.5, 0.95}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
}

TEST(StreamingQuantiles, MergeCombinesCountsAndMoments) {
  StreamingQuantiles a(64), b(64);
  Rng rng(29);
  std::vector<double> all;
  for (int i = 0; i < 40; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    all.push_back(v);
    a.add(v);
  }
  for (int i = 0; i < 24; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    all.push_back(v);
    b.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 64u);
  double sum = 0.0;
  for (double v : all) sum += v;
  EXPECT_NEAR(a.mean(), sum / 64.0, 1e-12);
  EXPECT_EQ(a.max(), *std::max_element(all.begin(), all.end()));
  // The quantiles must cleanly separate the two merged populations.
  EXPECT_GT(a.quantile(0.9), 2.0);
  EXPECT_LT(a.quantile(0.3), 1.0);
}

TEST(StreamingQuantiles, EmptyAndSingle) {
  StreamingQuantiles sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_EQ(sketch.stddev(), 0.0);
  sketch.add(42.0);
  EXPECT_EQ(sketch.quantile(0.0), 42.0);
  EXPECT_EQ(sketch.quantile(1.0), 42.0);
  EXPECT_EQ(sketch.mean(), 42.0);
  EXPECT_EQ(sketch.stddev(), 0.0);
}

}  // namespace
}  // namespace lightator::util
