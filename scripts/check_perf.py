#!/usr/bin/env python3
"""Diff a backend_compare JSON snapshot against the committed baseline.

The gemm backend's value is its speedup over the reference backend measured
in the same process on the same machine, so the speedup ratio — not absolute
milliseconds — is what transfers across CI runners. A layer regresses when
its current speedup falls more than --tolerance (default 25%) below the
baseline's, or when the backends stop being bit-exact.

Usage: check_perf.py current.json [baseline.json] [--tolerance 0.25]
Exit status: 0 ok, 1 regression / bit-exactness failure, 2 usage error.
"""

import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"
DEFAULT_TOLERANCE = 0.25


def load_layers(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") != "backend_compare":
        sys.exit(f"error: {path} is not a backend_compare snapshot")
    return {layer["name"]: layer for layer in data["layers"]}


def main(argv):
    args = []
    tolerance = DEFAULT_TOLERANCE
    i = 0
    while i < len(argv):
        a = argv[i]
        if a.startswith("--tolerance"):
            if "=" in a:
                tolerance = float(a.split("=", 1)[1])
            else:
                i += 1
                tolerance = float(argv[i])
        else:
            args.append(a)
        i += 1
    if not args:
        print(__doc__.strip())
        return 2
    current = load_layers(args[0])
    baseline = load_layers(args[1] if len(args) > 1 else DEFAULT_BASELINE)

    failed = False
    for name, base in sorted(baseline.items()):
        layer = current.get(name)
        if layer is None:
            print(f"FAIL  {name}: missing from current snapshot")
            failed = True
            continue
        if not layer.get("bit_exact", False):
            print(f"FAIL  {name}: gemm no longer bit-exact with reference")
            failed = True
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        status = "ok  " if layer["speedup"] >= floor else "FAIL"
        failed = failed or status == "FAIL"
        print(f"{status}  {name}: speedup {layer['speedup']:.2f}x "
              f"(baseline {base['speedup']:.2f}x, floor {floor:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note  {name}: new layer, no baseline (add it to "
              f"{DEFAULT_BASELINE.name})")

    if failed:
        print(f"\nperf check FAILED (tolerance {tolerance:.0%}); if the "
              "regression is intended, regenerate the baseline with\n"
              "  ./build/backend_compare out=scripts/perf_baseline.json")
        return 1
    print(f"\nperf check ok (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
