#include "core/lightator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "tensor/activations.hpp"
#include "tensor/gemm_s16_packed.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "util/logging.hpp"

namespace lightator::core {

const LayerReport* SystemReport::find_layer(const std::string& name) const {
  for (const auto& l : layers) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

LightatorSystem::LightatorSystem(ArchConfig config)
    : config_(config),
      oc_(config),
      mapper_(config),
      power_(config),
      timing_(config) {}

SystemReport LightatorSystem::analyze(const nn::ModelDesc& model,
                                      const nn::PrecisionSchedule& schedule,
                                      const AnalyzeOptions& options) const {
  return analyze_impl(
      model,
      [&schedule](std::size_t i) { return schedule.weight_bits_for(i); },
      schedule.label(), options);
}

SystemReport LightatorSystem::analyze(const nn::ModelDesc& model,
                                      const std::vector<int>& weight_bits,
                                      const AnalyzeOptions& options) const {
  std::string label = "[";
  for (std::size_t i = 0; i < weight_bits.size(); ++i) {
    label += std::to_string(weight_bits[i]);
    if (i + 1 < weight_bits.size()) label += ",";
  }
  label += ":4]";
  return analyze_impl(
      model,
      [&weight_bits](std::size_t i) {
        return i < weight_bits.size() ? weight_bits[i] : weight_bits.back();
      },
      std::move(label), options);
}

SystemReport LightatorSystem::analyze_impl(const nn::ModelDesc& model,
                                           const BitsFn& weight_bits_for,
                                           std::string precision_label,
                                           const AnalyzeOptions& options) const {
  SystemReport report;
  report.model = model.name;
  report.precision = std::move(precision_label);
  report.total_macs = model.total_macs();
  report.total_weights = model.total_weights();

  // Optional CA front end ahead of L1.
  if (options.ca_frontend.has_value()) {
    const std::size_t in_h = options.ca_in_h ? options.ca_in_h : model.in_h;
    const std::size_t in_w = options.ca_in_w ? options.ca_in_w : model.in_w;
    const CompressiveAcquisitor ca(*options.ca_frontend, config_);
    LayerReport lr;
    lr.name = "CA";
    lr.mapping = ca.mapping(in_h, in_w);
    lr.power = power_.layer_power(lr.mapping, /*weight_bits=*/4,
                                  /*first_layer=*/true);
    lr.timing = timing_.layer_timing(lr.mapping);
    lr.weight_bits = 0;
    report.total_macs += lr.mapping.macs_per_output * lr.mapping.outputs;
    report.layers.push_back(std::move(lr));
  }

  std::size_t weighted_index = 0;
  bool first_weighted = true;
  for (const auto& layer : model.layers) {
    if (!layer.is_weighted() && !layer.is_pool()) continue;
    LayerReport lr;
    lr.name = layer.name;
    lr.mapping = mapper_.map_layer(layer);
    const int wbits = layer.is_weighted()
                          ? weight_bits_for(weighted_index)
                          : 0;
    lr.weight_bits = wbits;
    // The CRC pixel path feeds the first weighted layer only when no CA
    // front end already digested the frame.
    const bool crc_here = layer.is_weighted() && first_weighted &&
                          !options.ca_frontend.has_value();
    lr.power = power_.layer_power(lr.mapping, wbits == 0 ? 4 : wbits, crc_here);
    lr.timing = timing_.layer_timing(lr.mapping);
    if (layer.is_weighted()) {
      ++weighted_index;
      first_weighted = false;
    }
    report.layers.push_back(std::move(lr));
  }

  double energy = 0.0, duration = 0.0, amortized = 0.0;
  for (const auto& lr : report.layers) {
    // "Max Power" (Table 1) is the peak operational draw: the streaming
    // phase of the hungriest layer.
    report.max_power = std::max(report.max_power, lr.power.streaming.total());
    energy += lr.power.energy;
    duration += lr.timing.latency;
    amortized += lr.timing.amortized_per_frame;
  }
  report.energy_per_frame = energy;
  report.latency = duration;
  report.avg_power = duration > 0.0 ? energy / duration : 0.0;
  report.fps_batched = amortized > 0.0 ? 1.0 / amortized : 0.0;
  report.kfps_per_watt = report.max_power > 0.0
                             ? report.fps_batched / report.max_power / 1000.0
                             : 0.0;
  return report;
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const nn::PrecisionSchedule& schedule, const FaultSpec& faults) const {
  ExecutionContext ctx;
  ctx.faults = faults;
  return run_network_on_oc(net, x, schedule, ctx);
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const std::vector<int>& weight_bits, int act_bits,
    const FaultSpec& faults) const {
  ExecutionContext ctx;
  ctx.faults = faults;
  return run_network_on_oc(net, x, weight_bits, act_bits, ctx);
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const nn::PrecisionSchedule& schedule, ExecutionContext& ctx) const {
  return run_network_impl(
      net, x,
      [&schedule](std::size_t i) { return schedule.weight_bits_for(i); },
      [&schedule](std::size_t i) { return schedule.act_bits_for(i); }, ctx);
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const tensor::Tensor& x,
    const std::vector<int>& weight_bits, int act_bits,
    ExecutionContext& ctx) const {
  return run_network_impl(
      net, x,
      [&weight_bits](std::size_t i) {
        return i < weight_bits.size() ? weight_bits[i] : weight_bits.back();
      },
      [act_bits](std::size_t) { return act_bits; }, ctx);
}

tensor::Tensor LightatorSystem::run_network_on_oc(
    nn::Network& net, const std::vector<const tensor::Tensor*>& frames,
    const nn::PrecisionSchedule& schedule, ExecutionContext& ctx) const {
  if (frames.empty()) {
    throw std::invalid_argument("run_network_on_oc: no frames");
  }
  for (const tensor::Tensor* frame : frames) {
    if (frame == nullptr || frame->rank() == 0 || frame->dim(0) != 1) {
      throw std::invalid_argument(
          "run_network_on_oc: frames must be non-null [1, ...] tensors");
    }
    if (frame->shape() != frames[0]->shape()) {
      throw std::invalid_argument(
          "run_network_on_oc: frames have mismatched geometries");
    }
  }
  return run_network_impl(
      net, tensor::Tensor(),
      [&schedule](std::size_t i) { return schedule.weight_bits_for(i); },
      [&schedule](std::size_t i) { return schedule.act_bits_for(i); }, ctx,
      &frames);
}

tensor::Tensor LightatorSystem::run_network_impl(
    nn::Network& net, const tensor::Tensor& x, const BitsFn& weight_bits_for,
    const BitsFn& act_bits_for, ExecutionContext& ctx,
    const std::vector<const tensor::Tensor*>* gather) const {
  tensor::Tensor h;
  if (gather == nullptr) h = x;
  const std::size_t frames =
      gather != nullptr ? gather->size() : x.dim(0);
  if (!ctx.noise_stream_ids.empty()) {
    if (ctx.noise_stream_ids.size() != frames) {
      throw std::invalid_argument(
          "run_network_on_oc: noise_stream_ids size does not match the batch");
    }
    // Per-request noise ids promise composition-invariant noise; restart the
    // stream counter so layer L draws the same stream ordinal every forward.
    ctx.reset_noise_streams();
  }
  std::size_t weighted_index = 0;
  util::Rng fault_rng(ctx.faults.seed);
  // Activations enter through the CRC/DMVA path: unsigned codes with a
  // per-tensor scale (the paper's configurations keep A = 4 bits; binary-
  // activation baselines like LightBulb use A = 1). The scale is the max
  // over the whole batch, so sharding the batch across threads inside the
  // backend cannot change the quantization. In per-item mode (the serving
  // layer's dynamic batches) each batch item instead carries its own scale,
  // making every item's result independent of what it was batched with.
  // Until the first weighted layer consumes it, the input may still live as
  // borrowed frames (`gather`): quantization then reads straight out of the
  // frame storage — bit-identical to quantizing the stacked batch, minus
  // the stacking copy.
  auto quantize_acts = [&](const tensor::Tensor& t, int bits) {
    if (gather != nullptr) {
      return ctx.per_item_act_scale
                 ? tensor::quantize_unsigned_per_item_gather(*gather, bits)
                 : tensor::quantize_unsigned_gather(*gather, bits);
    }
    if (ctx.per_item_act_scale) {
      return tensor::quantize_unsigned_per_item(t, bits);
    }
    float m = 0.0f;
    for (std::size_t i = 0; i < t.size(); ++i) m = std::max(m, t[i]);
    return tensor::quantize_unsigned(t, bits, m > 0 ? m : 1.0);
  };
  // Materializes the borrowed frames into `h` — only needed when a
  // non-weighted layer runs before the first conv/fc.
  auto materialize_gather = [&] {
    if (gather == nullptr) return;
    const tensor::Tensor& first = *(*gather)[0];
    const std::size_t per_frame = first.size();
    tensor::Shape shape = first.shape();
    shape[0] = gather->size();
    h = tensor::Tensor(shape);
    for (std::size_t i = 0; i < gather->size(); ++i) {
      std::copy((*gather)[i]->data(), (*gather)[i]->data() + per_frame,
                h.data() + i * per_frame);
    }
    gather = nullptr;
  };
  // Weights come from the context's cache when one is attached (the serving
  // layer programs each replica's weights once); fault injection always
  // mutates a private copy.
  auto cached_weights = [&](std::size_t idx,
                            int wbits) -> const tensor::QuantizedTensor* {
    if (ctx.weight_cache == nullptr || ctx.faults.any()) return nullptr;
    const auto& cache = ctx.weight_cache->weights;
    if (idx >= cache.size() || cache[idx].bits != wbits) return nullptr;
    return &cache[idx];
  };
  // Per-layer power/timing accumulators: the architecture models evaluated
  // at the layer's mapped shape, next to the simulator's own wall time.
  // Entries are keyed by weighted-layer index so repeated batches accumulate
  // wall time / frame counts instead of duplicating the (batch-invariant)
  // modeled numbers.
  auto record_stats = [&](std::size_t layer_index, const nn::LayerDesc& desc,
                          int wbits, double wall_seconds) {
    if (!ctx.collect_stats) return;
    // An existing entry only accumulates wall time / frames — skip the
    // (batch-invariant) architecture-model evaluation on repeat batches.
    for (auto& existing : ctx.stats) {
      if (existing.layer_index == layer_index && existing.name == desc.name &&
          existing.weight_bits == wbits) {
        existing.wall_seconds += wall_seconds;
        existing.frames += frames;
        return;
      }
    }
    LayerExecStats s;
    s.layer_index = layer_index;
    s.name = desc.name;
    s.weight_bits = wbits;
    s.macs = desc.macs();
    s.frames = frames;
    s.wall_seconds = wall_seconds;
    const LayerMapping mapping = mapper_.map_layer(desc);
    s.modeled_latency = timing_.layer_timing(mapping).latency;
    s.modeled_energy = power_.layer_power(mapping, wbits).energy;
    ctx.stats.push_back(std::move(s));
  };
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    nn::Layer& layer = net.layer(i);
    switch (layer.kind()) {
      case nn::LayerKind::kConv: {
        auto& conv = dynamic_cast<nn::Conv2d&>(layer);
        const int wbits = weight_bits_for(weighted_index);
        const int abits = act_bits_for(weighted_index);
        ++weighted_index;
        auto xq = quantize_acts(h, abits);
        const tensor::QuantizedTensor* cached =
            cached_weights(weighted_index - 1, wbits);
        tensor::QuantizedTensor wq;
        if (cached == nullptr) {
          wq = tensor::quantize_symmetric(conv.weight(), wbits);
          if (ctx.faults.any()) {
            apply_weight_faults(wq, ctx.faults, fault_rng);
            apply_activation_faults(xq, ctx.faults, fault_rng);
          }
        }
        nn::LayerDesc desc;
        desc.kind = nn::LayerKind::kConv;
        desc.name = conv.name();
        desc.in_h = gather != nullptr ? (*gather)[0]->dim(2) : h.dim(2);
        desc.in_w = gather != nullptr ? (*gather)[0]->dim(3) : h.dim(3);
        desc.conv = conv.spec();
        gather = nullptr;  // consumed by quantize_acts above
        const auto start = std::chrono::steady_clock::now();
        h = oc_.conv2d(xq, cached != nullptr ? *cached : wq, conv.bias(),
                       conv.spec(), ctx);
        record_stats(weighted_index - 1, desc, wbits,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
        break;
      }
      case nn::LayerKind::kLinear: {
        auto& fc = dynamic_cast<nn::Linear&>(layer);
        const int wbits = weight_bits_for(weighted_index);
        const int abits = act_bits_for(weighted_index);
        ++weighted_index;
        auto xq = quantize_acts(h, abits);
        const tensor::QuantizedTensor* cached =
            cached_weights(weighted_index - 1, wbits);
        tensor::QuantizedTensor wq;
        if (cached == nullptr) {
          wq = tensor::quantize_symmetric(fc.weight(), wbits);
          if (ctx.faults.any()) {
            apply_weight_faults(wq, ctx.faults, fault_rng);
            apply_activation_faults(xq, ctx.faults, fault_rng);
          }
        }
        nn::LayerDesc desc;
        desc.kind = nn::LayerKind::kLinear;
        desc.name = fc.name();
        desc.fc_in = fc.in_features();
        desc.fc_out = fc.out_features();
        gather = nullptr;  // consumed by quantize_acts above
        const auto start = std::chrono::steady_clock::now();
        h = oc_.linear(xq, cached != nullptr ? *cached : wq, fc.bias(), ctx);
        record_stats(weighted_index - 1, desc, wbits,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
        break;
      }
      default:
        // Pools, activations, flatten run in the electronic block / CA banks
        // on the materialized batch (a non-weighted first layer forfeits the
        // gather path's zero-copy, nothing else).
        materialize_gather();
        h = layer.forward(h, /*training=*/false);
        break;
    }
  }
  return h;
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const nn::PrecisionSchedule& schedule,
                                       std::size_t batch_size,
                                       std::size_t max_samples,
                                       const FaultSpec& faults) const {
  ExecutionContext ctx;
  ctx.faults = faults;
  return evaluate_on_oc(net, data, schedule, ctx, batch_size, max_samples);
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const nn::PrecisionSchedule& schedule,
                                       ExecutionContext& ctx,
                                       std::size_t batch_size,
                                       std::size_t max_samples) const {
  const std::size_t n =
      max_samples == 0 ? data.size() : std::min(max_samples, data.size());
  std::size_t correct = 0, seen = 0;
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t count = std::min(batch_size, n - begin);
    const auto x = data.batch_images(begin, count);
    const auto y = data.batch_labels(begin, count);
    const auto logits = run_network_on_oc(net, x, schedule, ctx);
    const auto preds = tensor::predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y[i]) ++correct;
    }
    seen += count;
  }
  return seen == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(seen);
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const std::vector<int>& weight_bits,
                                       int act_bits, std::size_t batch_size,
                                       std::size_t max_samples) const {
  ExecutionContext ctx;
  return evaluate_on_oc(net, data, weight_bits, act_bits, ctx, batch_size,
                        max_samples);
}

double LightatorSystem::evaluate_on_oc(nn::Network& net,
                                       const nn::Dataset& data,
                                       const std::vector<int>& weight_bits,
                                       int act_bits, ExecutionContext& ctx,
                                       std::size_t batch_size,
                                       std::size_t max_samples) const {
  const std::size_t n =
      max_samples == 0 ? data.size() : std::min(max_samples, data.size());
  std::size_t correct = 0, seen = 0;
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t count = std::min(batch_size, n - begin);
    const auto x = data.batch_images(begin, count);
    const auto y = data.batch_labels(begin, count);
    const auto logits = run_network_on_oc(net, x, weight_bits, act_bits, ctx);
    const auto preds = tensor::predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y[i]) ++correct;
    }
    seen += count;
  }
  return seen == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(seen);
}

tensor::Tensor LightatorSystem::capture_and_infer(
    nn::Network& net, const std::vector<sensor::Image>& scenes,
    const nn::PrecisionSchedule& schedule, ExecutionContext& ctx,
    const CaptureOptions& capture) const {
  if (scenes.empty()) {
    throw std::invalid_argument("capture_and_infer: no scenes");
  }
  // Acquire every frame in parallel; each frame's sensor noise comes from a
  // stateless per-frame seed, so the captured codes are identical no matter
  // how the pool shards the frames.
  std::vector<tensor::Tensor> frames(scenes.size());
  ctx.thread_pool().parallel_for(0, scenes.size(), [&](std::size_t i) {
    std::unique_ptr<util::Rng> noise;
    if (capture.sensor_noise_seed != 0) {
      noise = std::make_unique<util::Rng>(
          mix_seed(capture.sensor_noise_seed, /*stream=*/0, i));
    }
    frames[i] = acquire(scenes[i], capture.ca, noise.get());
  });
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].shape() != frames[0].shape()) {
      throw std::invalid_argument(
          "capture_and_infer: scenes produced mismatched frame geometries");
    }
  }
  // Run the batched OC forward straight off the acquired frames (the gather
  // path): one forward amortizes quantization and weight programming over
  // all frames, without re-stacking them first.
  std::vector<const tensor::Tensor*> frame_ptrs(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) frame_ptrs[i] = &frames[i];
  return run_network_on_oc(net, frame_ptrs, schedule, ctx);
}

OcWeightCache build_oc_weight_cache(const nn::Network& net,
                                    const nn::PrecisionSchedule& schedule,
                                    const ArchConfig* arch) {
  OcWeightCache cache;
  // Pre-pack the SIMD GEMM panels only when the packed kernels can run;
  // packing is a pure re-layout of the quantized levels, so it never
  // changes forward results — entries without panels just pack per call.
  const bool pack = arch != nullptr && tensor::simd::avx2_enabled();
  const std::size_t seg = pack ? arch->geometry.mrs_per_arm : 0;
  std::size_t weighted_index = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const nn::Layer& layer = net.layer(i);
    // Exactly the quantize_symmetric calls run_network_impl would make, so a
    // cached forward is bit-identical to an uncached one.
    if (layer.kind() == nn::LayerKind::kConv) {
      const auto& conv = dynamic_cast<const nn::Conv2d&>(layer);
      tensor::QuantizedTensor q = tensor::quantize_symmetric(
          conv.weight(), schedule.weight_bits_for(weighted_index));
      if (pack) {
        auto pw = std::make_shared<tensor::PackedWeights>();
        pw->seg = seg;
        pw->has_a = true;
        const std::size_t kdim = conv.spec().weights_per_filter();
        pw->a = tensor::pack_a_s16(q.levels.data(), conv.spec().out_channels,
                                   kdim, kdim, seg);
        q.prepack = std::move(pw);
      }
      cache.weights.push_back(std::move(q));
      ++weighted_index;
    } else if (layer.kind() == nn::LayerKind::kLinear) {
      const auto& fc = dynamic_cast<const nn::Linear&>(layer);
      tensor::QuantizedTensor q = tensor::quantize_symmetric(
          fc.weight(), schedule.weight_bits_for(weighted_index));
      if (pack) {
        auto pw = std::make_shared<tensor::PackedWeights>();
        pw->seg = seg;
        pw->has_b = true;
        pw->bt = tensor::pack_b_s16_transposed(q.levels.data(),
                                               fc.in_features(),
                                               fc.out_features(),
                                               fc.in_features(), seg);
        q.prepack = std::move(pw);
      }
      cache.weights.push_back(std::move(q));
      ++weighted_index;
    }
  }
  return cache;
}

tensor::Tensor LightatorSystem::acquire(const sensor::Image& scene,
                                        const std::optional<CaOptions>& ca,
                                        util::Rng* noise) const {
  sensor::PixelArrayParams sensor_params = config_.sensor;
  sensor_params.rows = scene.height();
  sensor_params.cols = scene.width();
  sensor::PixelArray array(sensor_params);
  array.capture(scene, noise);
  const sensor::CodeFrame frame = array.read_codes(noise);

  // Reconstruct the RGB view the OC sees: demosaic the 4-bit Bayer codes.
  sensor::Image raw(frame.rows, frame.cols, 1);
  const float full_scale = 15.0f;
  for (std::size_t y = 0; y < frame.rows; ++y) {
    for (std::size_t x = 0; x < frame.cols; ++x) {
      raw.at(y, x) = static_cast<float>(frame.at(y, x)) / full_scale;
    }
  }
  sensor::Image rgb = sensor::bayer_demosaic(raw);

  sensor::Image processed = rgb;
  if (ca.has_value()) {
    const CompressiveAcquisitor acquisitor(*ca, config_);
    processed = acquisitor.apply(rgb);
  }
  tensor::Tensor out({1, processed.channels(), processed.height(),
                      processed.width()});
  for (std::size_t c = 0; c < processed.channels(); ++c) {
    for (std::size_t y = 0; y < processed.height(); ++y) {
      for (std::size_t x = 0; x < processed.width(); ++x) {
        out.at(0, c, y, x) = processed.at(y, x, c);
      }
    }
  }
  return out;
}

}  // namespace lightator::core
