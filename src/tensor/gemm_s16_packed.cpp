#include "tensor/gemm_s16_packed.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/gemm_s16.hpp"
#include "tensor/simd.hpp"

#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
#include <immintrin.h>
#endif

namespace lightator::tensor {

namespace {

/// (k, k+1) pairs of one packed row/panel, walked segment by segment. A
/// segment of `len` terms occupies (len + 1) / 2 pairs; the pad slot of an
/// odd segment is zero in both operands, so kernels never special-case it.
std::size_t pairs_in_segment(std::size_t len) { return (len + 1) / 2; }

// Every microkernel below computes C rows [row_begin, row_end) restricted to
// B strips [strip_begin, strip_end), and STORES (never accumulates into) each
// (row, strip) range exactly once — the contract that lets the dispatch loop
// block the strip dimension for cache residency without double-counting.
// Within a strip, every kernel reduces identically: integer pair-sums per
// segment, one double addition per arm boundary, in segment order, from
// zero — so tier and blocking choices are invisible in the output bits.

/// Portable kernel over the packed layout — the LIGHTATOR_DISABLE_SIMD /
/// non-SIMD fallback and the oracle the SIMD fuzz tests compare against.
/// Mirrors the madd dataflow exactly: each (k, k+1) pair-sum is formed in
/// int32 (never overflows: 2 * 32767^2 < 2^31), accumulated per column in
/// `Acc` across the segment, and spilled to double at the arm boundary —
/// bit-identical to gemm_s16_segmented's per-(i, j) arithmetic.
template <typename Acc>
void gemm_packed_scalar(const PackedA& a, const PackedB& b, double* c,
                        std::size_t ldc, std::size_t row_begin,
                        std::size_t row_end, std::size_t strip_begin,
                        std::size_t strip_end) {
  const std::size_t kp2 = a.kp / 2;
  Acc acc[kPackedCols];
  double dacc[kPackedCols];
  for (std::size_t s = strip_begin; s < strip_end; ++s) {
    const std::size_t j0 = s * kPackedCols;
    const std::size_t valid = std::min(kPackedCols, b.n - j0);
    const std::int16_t* panel = b.base() + s * kp2 * 2 * kPackedCols;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const std::int16_t* a_row = a.base() + i * a.kp;
      double* c_row = c + i * ldc;
      std::fill(dacc, dacc + kPackedCols, 0.0);
      std::size_t p = 0;
      for (std::size_t k0 = 0; k0 < a.k; k0 += a.seg) {
        const std::size_t len = std::min(a.seg, a.k - k0);
        std::fill(acc, acc + kPackedCols, Acc{0});
        for (std::size_t pe = p + pairs_in_segment(len); p < pe; ++p) {
          const std::int16_t a0 = a_row[2 * p];
          const std::int16_t a1 = a_row[2 * p + 1];
          if (a0 == 0 && a1 == 0) continue;
          const std::int16_t* bp = panel + p * 2 * kPackedCols;
          for (std::size_t j = 0; j < kPackedCols; ++j) {
            const std::int32_t pair =
                static_cast<std::int32_t>(a0) * bp[2 * j] +
                static_cast<std::int32_t>(a1) * bp[2 * j + 1];
            acc[j] += static_cast<Acc>(pair);
          }
        }
        // Arm boundary: the BPD emits these partial sums.
        for (std::size_t j = 0; j < valid; ++j) {
          dacc[j] += static_cast<double>(acc[j]);
        }
      }
      for (std::size_t j = 0; j < valid; ++j) {
        c_row[j0 + j] = dacc[j];
      }
    }
  }
}

#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)

/// The A pair broadcast reads rows as unaligned 32-bit words; memcpy keeps
/// it strict-aliasing clean (and compiles to a single load).
std::uint32_t load_pair_u32(const std::int16_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// AVX2 int32 kernel: 16 output columns per strip live in two 8-lane int32
/// accumulators; one madd per register multiplies a broadcast A pair into 8
/// columns' (k, k+1) values and pair-sums them inside the segment. Lanes
/// spill to the double C row only at arm boundaries.
__attribute__((target("avx2"))) void gemm_packed_avx2_s32(
    const PackedA& a, const PackedB& b, double* c, std::size_t ldc,
    std::size_t row_begin, std::size_t row_end, std::size_t strip_begin,
    std::size_t strip_end) {
  const std::size_t kp2 = a.kp / 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int16_t* a_row = a.base() + i * a.kp;
    double* c_row = c + i * ldc;
    for (std::size_t s = strip_begin; s < strip_end; ++s) {
      const std::size_t j0 = s * kPackedCols;
      const std::size_t valid = std::min(kPackedCols, b.n - j0);
      const std::int16_t* panel = b.base() + s * kp2 * 2 * kPackedCols;
      std::size_t p = 0;
      // The per-(i, j) double accumulators live in registers across the
      // whole segment sweep and store once per strip — the C row is not
      // read-modify-written at every arm boundary. The addition order per
      // output (segment partials, in segment order, from zero) is exactly
      // the scalar kernel's, so results stay bit-identical.
      __m256d d0 = _mm256_setzero_pd();
      __m256d d1 = _mm256_setzero_pd();
      __m256d d2 = _mm256_setzero_pd();
      __m256d d3 = _mm256_setzero_pd();
      for (std::size_t k0 = 0; k0 < a.k; k0 += a.seg) {
        const std::size_t len = std::min(a.seg, a.k - k0);
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (std::size_t pe = p + pairs_in_segment(len); p < pe; ++p) {
          const std::uint32_t pair = load_pair_u32(a_row + 2 * p);
          if (pair == 0) continue;  // quantized weights are sparse at low bits
          const __m256i va =
              _mm256_set1_epi32(static_cast<std::int32_t>(pair));
          const std::int16_t* bp = panel + p * 2 * kPackedCols;
          const __m256i b0 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
          const __m256i b1 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
          acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, b0));
          acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, b1));
        }
        // Arm boundary: add the integer lanes into the double accumulators.
        d0 = _mm256_add_pd(d0, _mm256_cvtepi32_pd(_mm256_castsi256_si128(acc0)));
        d1 = _mm256_add_pd(d1,
                           _mm256_cvtepi32_pd(_mm256_extracti128_si256(acc0, 1)));
        d2 = _mm256_add_pd(d2, _mm256_cvtepi32_pd(_mm256_castsi256_si128(acc1)));
        d3 = _mm256_add_pd(d3,
                           _mm256_cvtepi32_pd(_mm256_extracti128_si256(acc1, 1)));
      }
      if (valid == kPackedCols) {
        double* cj = c_row + j0;
        _mm256_storeu_pd(cj, d0);
        _mm256_storeu_pd(cj + 4, d1);
        _mm256_storeu_pd(cj + 8, d2);
        _mm256_storeu_pd(cj + 12, d3);
      } else {
        alignas(32) double dtail[kPackedCols];
        _mm256_store_pd(dtail, d0);
        _mm256_store_pd(dtail + 4, d1);
        _mm256_store_pd(dtail + 8, d2);
        _mm256_store_pd(dtail + 12, d3);
        for (std::size_t j = 0; j < valid; ++j) {
          c_row[j0 + j] = dtail[j];
        }
      }
    }
  }
}

/// AVX2 int64 kernel for the overflow-unsafe flat-segment mode: the madd
/// pair-sums are exact in int32 (2 * 32767^2 < 2^31) and are sign-extended
/// into four 4-lane int64 accumulators before accumulation, so arbitrarily
/// deep flat segments reduce exactly like the scalar int64 path.
__attribute__((target("avx2"))) void gemm_packed_avx2_s64(
    const PackedA& a, const PackedB& b, double* c, std::size_t ldc,
    std::size_t row_begin, std::size_t row_end, std::size_t strip_begin,
    std::size_t strip_end) {
  const std::size_t kp2 = a.kp / 2;
  alignas(32) std::int64_t tail[kPackedCols];
  double dacc[kPackedCols];
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int16_t* a_row = a.base() + i * a.kp;
    double* c_row = c + i * ldc;
    for (std::size_t s = strip_begin; s < strip_end; ++s) {
      const std::size_t j0 = s * kPackedCols;
      const std::size_t valid = std::min(kPackedCols, b.n - j0);
      const std::int16_t* panel = b.base() + s * kp2 * 2 * kPackedCols;
      std::size_t p = 0;
      std::fill(dacc, dacc + kPackedCols, 0.0);
      for (std::size_t k0 = 0; k0 < a.k; k0 += a.seg) {
        const std::size_t len = std::min(a.seg, a.k - k0);
        __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                          _mm256_setzero_si256(), _mm256_setzero_si256()};
        for (std::size_t pe = p + pairs_in_segment(len); p < pe; ++p) {
          const std::uint32_t pair = load_pair_u32(a_row + 2 * p);
          if (pair == 0) continue;
          const __m256i va =
              _mm256_set1_epi32(static_cast<std::int32_t>(pair));
          const std::int16_t* bp = panel + p * 2 * kPackedCols;
          const __m256i m0 = _mm256_madd_epi16(
              va, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp)));
          const __m256i m1 = _mm256_madd_epi16(
              va,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16)));
          acc[0] = _mm256_add_epi64(
              acc[0], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m0)));
          acc[1] = _mm256_add_epi64(
              acc[1], _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m0, 1)));
          acc[2] = _mm256_add_epi64(
              acc[2], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m1)));
          acc[3] = _mm256_add_epi64(
              acc[3], _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m1, 1)));
        }
        _mm256_store_si256(reinterpret_cast<__m256i*>(tail), acc[0]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tail + 4), acc[1]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tail + 8), acc[2]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tail + 12), acc[3]);
        for (std::size_t j = 0; j < valid; ++j) {
          dacc[j] += static_cast<double>(tail[j]);
        }
      }
      for (std::size_t j = 0; j < valid; ++j) {
        c_row[j0 + j] = dacc[j];
      }
    }
  }
}

#endif  // LIGHTATOR_HAVE_AVX2_KERNELS

#if defined(LIGHTATOR_HAVE_AVX512_KERNELS)

// GCC's avx512fintrin.h trips -Wmaybe-uninitialized on its own
// _mm512_undefined_* temporaries when these intrinsics inline (GCC bug
// 105593); the kernels themselves initialize every accumulator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define LIGHTATOR_AVX512_TARGET "avx512f,avx512bw,avx512dq,avx512vl"

/// AVX-512 int32 kernel: one 512-bit register covers a strip's entire
/// 32-int16 k-pair block, so a single madd per pair feeds all 16 output
/// columns (the AVX2 kernel needs two). The int32 lanes convert to two
/// 8-lane double accumulators at each arm boundary and store once per
/// (row, strip) — the same reduction order as every other tier.
__attribute__((target(LIGHTATOR_AVX512_TARGET))) void gemm_packed_avx512_s32(
    const PackedA& a, const PackedB& b, double* c, std::size_t ldc,
    std::size_t row_begin, std::size_t row_end, std::size_t strip_begin,
    std::size_t strip_end) {
  const std::size_t kp2 = a.kp / 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int16_t* a_row = a.base() + i * a.kp;
    double* c_row = c + i * ldc;
    for (std::size_t s = strip_begin; s < strip_end; ++s) {
      const std::size_t j0 = s * kPackedCols;
      const std::size_t valid = std::min(kPackedCols, b.n - j0);
      const std::int16_t* panel = b.base() + s * kp2 * 2 * kPackedCols;
      std::size_t p = 0;
      __m512d d0 = _mm512_setzero_pd();
      __m512d d1 = _mm512_setzero_pd();
      for (std::size_t k0 = 0; k0 < a.k; k0 += a.seg) {
        const std::size_t len = std::min(a.seg, a.k - k0);
        __m512i acc = _mm512_setzero_si512();
        for (std::size_t pe = p + pairs_in_segment(len); p < pe; ++p) {
          const std::uint32_t pair = load_pair_u32(a_row + 2 * p);
          if (pair == 0) continue;
          const __m512i va =
              _mm512_set1_epi32(static_cast<std::int32_t>(pair));
          const __m512i bv = _mm512_loadu_si512(panel + p * 2 * kPackedCols);
          acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, bv));
        }
        d0 = _mm512_add_pd(d0,
                           _mm512_cvtepi32_pd(_mm512_castsi512_si256(acc)));
        d1 = _mm512_add_pd(
            d1, _mm512_cvtepi32_pd(_mm512_extracti32x8_epi32(acc, 1)));
      }
      if (valid == kPackedCols) {
        _mm512_storeu_pd(c_row + j0, d0);
        _mm512_storeu_pd(c_row + j0 + 8, d1);
      } else {
        alignas(64) double dtail[kPackedCols];
        _mm512_store_pd(dtail, d0);
        _mm512_store_pd(dtail + 8, d1);
        for (std::size_t j = 0; j < valid; ++j) {
          c_row[j0 + j] = dtail[j];
        }
      }
    }
  }
}

/// AVX-512 VNNI int32 kernel: `vpdpwssd` fuses the madd and the accumulator
/// add into one instruction. It accumulates without the madd's saturation
/// corner, but the int32-safe predicate already excludes the only input
/// (|a| = |b| = 32768) where the two differ — inside the narrow mode the
/// arithmetic is identical, so VNNI stays bit-exact with every other tier.
__attribute__((target(LIGHTATOR_AVX512_TARGET ",avx512vnni"))) void
gemm_packed_vnni_s32(const PackedA& a, const PackedB& b, double* c,
                     std::size_t ldc, std::size_t row_begin,
                     std::size_t row_end, std::size_t strip_begin,
                     std::size_t strip_end) {
  const std::size_t kp2 = a.kp / 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int16_t* a_row = a.base() + i * a.kp;
    double* c_row = c + i * ldc;
    for (std::size_t s = strip_begin; s < strip_end; ++s) {
      const std::size_t j0 = s * kPackedCols;
      const std::size_t valid = std::min(kPackedCols, b.n - j0);
      const std::int16_t* panel = b.base() + s * kp2 * 2 * kPackedCols;
      std::size_t p = 0;
      __m512d d0 = _mm512_setzero_pd();
      __m512d d1 = _mm512_setzero_pd();
      for (std::size_t k0 = 0; k0 < a.k; k0 += a.seg) {
        const std::size_t len = std::min(a.seg, a.k - k0);
        __m512i acc = _mm512_setzero_si512();
        for (std::size_t pe = p + pairs_in_segment(len); p < pe; ++p) {
          const std::uint32_t pair = load_pair_u32(a_row + 2 * p);
          if (pair == 0) continue;
          const __m512i va =
              _mm512_set1_epi32(static_cast<std::int32_t>(pair));
          const __m512i bv = _mm512_loadu_si512(panel + p * 2 * kPackedCols);
          acc = _mm512_dpwssd_epi32(acc, va, bv);
        }
        d0 = _mm512_add_pd(d0,
                           _mm512_cvtepi32_pd(_mm512_castsi512_si256(acc)));
        d1 = _mm512_add_pd(
            d1, _mm512_cvtepi32_pd(_mm512_extracti32x8_epi32(acc, 1)));
      }
      if (valid == kPackedCols) {
        _mm512_storeu_pd(c_row + j0, d0);
        _mm512_storeu_pd(c_row + j0 + 8, d1);
      } else {
        alignas(64) double dtail[kPackedCols];
        _mm512_store_pd(dtail, d0);
        _mm512_store_pd(dtail + 8, d1);
        for (std::size_t j = 0; j < valid; ++j) {
          c_row[j0 + j] = dtail[j];
        }
      }
    }
  }
}

/// AVX-512 widening kernel for the overflow-unsafe flat-segment mode: madd
/// pair-sums sign-extend into two 8-lane int64 accumulators per pair, and
/// the int64 lanes convert straight to doubles (cvtepi64_pd, the DQ
/// requirement) at arm boundaries. The VNNI tier also routes its wide mode
/// here — vpdpwssd only accumulates in int32.
__attribute__((target(LIGHTATOR_AVX512_TARGET))) void gemm_packed_avx512_s64(
    const PackedA& a, const PackedB& b, double* c, std::size_t ldc,
    std::size_t row_begin, std::size_t row_end, std::size_t strip_begin,
    std::size_t strip_end) {
  const std::size_t kp2 = a.kp / 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int16_t* a_row = a.base() + i * a.kp;
    double* c_row = c + i * ldc;
    for (std::size_t s = strip_begin; s < strip_end; ++s) {
      const std::size_t j0 = s * kPackedCols;
      const std::size_t valid = std::min(kPackedCols, b.n - j0);
      const std::int16_t* panel = b.base() + s * kp2 * 2 * kPackedCols;
      std::size_t p = 0;
      __m512d d0 = _mm512_setzero_pd();
      __m512d d1 = _mm512_setzero_pd();
      for (std::size_t k0 = 0; k0 < a.k; k0 += a.seg) {
        const std::size_t len = std::min(a.seg, a.k - k0);
        __m512i acc0 = _mm512_setzero_si512();
        __m512i acc1 = _mm512_setzero_si512();
        for (std::size_t pe = p + pairs_in_segment(len); p < pe; ++p) {
          const std::uint32_t pair = load_pair_u32(a_row + 2 * p);
          if (pair == 0) continue;
          const __m512i va =
              _mm512_set1_epi32(static_cast<std::int32_t>(pair));
          const __m512i m = _mm512_madd_epi16(
              va, _mm512_loadu_si512(panel + p * 2 * kPackedCols));
          acc0 = _mm512_add_epi64(
              acc0, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(m)));
          acc1 = _mm512_add_epi64(
              acc1, _mm512_cvtepi32_epi64(_mm512_extracti32x8_epi32(m, 1)));
        }
        d0 = _mm512_add_pd(d0, _mm512_cvtepi64_pd(acc0));
        d1 = _mm512_add_pd(d1, _mm512_cvtepi64_pd(acc1));
      }
      if (valid == kPackedCols) {
        _mm512_storeu_pd(c_row + j0, d0);
        _mm512_storeu_pd(c_row + j0 + 8, d1);
      } else {
        alignas(64) double dtail[kPackedCols];
        _mm512_store_pd(dtail, d0);
        _mm512_store_pd(dtail + 8, d1);
        for (std::size_t j = 0; j < valid; ++j) {
          c_row[j0 + j] = dtail[j];
        }
      }
    }
  }
}

#undef LIGHTATOR_AVX512_TARGET

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // LIGHTATOR_HAVE_AVX512_KERNELS

#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)

/// AVX2 panel pack for full 16-column strips of a row-major B: loads the
/// two rows of each k-pair, interleaves them per column (unpack + lane
/// permute), and stores the strip's 32-int16 block — one pass instead of 32
/// stride-2 scalar writes. The magnitude scan is fused into the same pass
/// (abs-max over every loaded row, with the -32768 corner handled via a raw
/// min so the width predicate matches the scalar scan exactly). Returns the
/// strip's contribution to max_abs. Shared by every SIMD tier — the panel
/// layout is identical from AVX2 through VNNI (a 512-bit kernel just loads
/// the strip's two 256-bit halves as one register).
__attribute__((target("avx2"))) std::int32_t pack_b_strip_avx2(
    const std::int16_t* b, std::size_t k, std::size_t ldb, std::size_t seg,
    std::size_t j0, std::int16_t* panel) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i vmax = zero;          // max |value| seen (epi16)
  __m256i vmin = zero;          // raw min, to catch -32768
  std::int16_t* dst = panel;
  for (std::size_t k0 = 0; k0 < k; k0 += seg) {
    const std::size_t len = std::min(seg, k - k0);
    for (std::size_t i = 0; i < len; i += 2) {
      const __m256i r0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + (k0 + i) * ldb + j0));
      const __m256i r1 =
          i + 1 < len ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            b + (k0 + i + 1) * ldb + j0))
                      : zero;
      vmax = _mm256_max_epi16(vmax, _mm256_abs_epi16(r0));
      vmax = _mm256_max_epi16(vmax, _mm256_abs_epi16(r1));
      vmin = _mm256_min_epi16(vmin, _mm256_min_epi16(r0, r1));
      const __m256i lo = _mm256_unpacklo_epi16(r0, r1);
      const __m256i hi = _mm256_unpackhi_epi16(r0, r1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                          _mm256_permute2x128_si256(lo, hi, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16),
                          _mm256_permute2x128_si256(lo, hi, 0x31));
      dst += 2 * kPackedCols;
    }
  }
  alignas(32) std::int16_t lanes[kPackedCols];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmax);
  std::int32_t m = 0;
  for (const std::int16_t v : lanes) {
    m = std::max(m, static_cast<std::int32_t>(v));
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  for (const std::int16_t v : lanes) {
    if (v == std::numeric_limits<std::int16_t>::min()) m = 32768;
  }
  return m;
}

#endif  // LIGHTATOR_HAVE_AVX2_KERNELS

/// Packed position of logical depth index kk: pair index and slot within the
/// pair, honoring the per-segment even padding.
struct PackedPos {
  std::size_t pair;
  std::size_t slot;
};

std::vector<PackedPos> packed_positions(std::size_t k, std::size_t seg) {
  std::vector<PackedPos> pos(k);
  std::size_t pair_base = 0;
  for (std::size_t k0 = 0; k0 < k; k0 += seg) {
    const std::size_t len = std::min(seg, k - k0);
    for (std::size_t i = 0; i < len; ++i) {
      pos[k0 + i] = {pair_base + i / 2, i % 2};
    }
    pair_base += pairs_in_segment(len);
  }
  return pos;
}

}  // namespace

std::size_t packed_depth(std::size_t k, std::size_t segment) {
  const std::size_t seg = effective_segment(segment, k);
  std::size_t kp = 0;
  for (std::size_t k0 = 0; k0 < k; k0 += seg) {
    kp += 2 * pairs_in_segment(std::min(seg, k - k0));
  }
  return kp;
}

namespace {

/// Shared fill for the owning and borrowing PackedA variants: `dst` must
/// hold m * out.kp int16 and is fully overwritten (pads zeroed here).
void pack_a_fill(const std::int16_t* a, std::size_t m, std::size_t k,
                 std::size_t lda, PackedA& out, std::int16_t* dst_base) {
  std::fill(dst_base, dst_base + m * out.kp, std::int16_t{0});
  out.max_abs = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::int16_t* src = a + i * lda;
    std::int16_t* dst = dst_base + i * out.kp;
    std::size_t off = 0;
    for (std::size_t k0 = 0; k0 < k; k0 += out.seg) {
      const std::size_t len = std::min(out.seg, k - k0);
      std::copy(src + k0, src + k0 + len, dst + off);
      off += 2 * pairs_in_segment(len);
    }
    out.max_abs = std::max(out.max_abs, max_abs_s16(src, k));
  }
}

/// Shared fill for the owning and borrowing PackedB variants: `dst` must
/// hold packed_b_elems int16 and is fully overwritten.
void pack_b_fill(const std::int16_t* b, std::size_t k, std::size_t n,
                 std::size_t ldb, PackedB& out, std::int16_t* dst_base) {
  const std::size_t kp2 = out.kp / 2;
  const std::size_t strips = (n + kPackedCols - 1) / kPackedCols;
  std::fill(dst_base, dst_base + strips * kp2 * 2 * kPackedCols,
            std::int16_t{0});
  out.max_abs = 0;
  // This is the per-forward pack (one im2col panel per batch item), so full
  // strips go through the AVX2 interleave with the magnitude scan fused in;
  // only the ragged last strip falls back to scalar writes. Gated on
  // simd_active() so a forced-scalar tier stays SIMD-free end to end.
  std::size_t s = 0;
#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
  if (simd::simd_active() && simd::avx2_enabled()) {
    for (; (s + 1) * kPackedCols <= n; ++s) {
      out.max_abs = std::max(
          out.max_abs,
          pack_b_strip_avx2(b, k, ldb, out.seg, s * kPackedCols,
                            dst_base + s * kp2 * 2 * kPackedCols));
    }
  }
#endif
  // Positions are derived incrementally per segment rather than via
  // packed_positions(): this runs on the per-forward hot path, and the
  // memory-planning pass promises it allocation-free.
  for (; s < strips; ++s) {
    const std::size_t j0 = s * kPackedCols;
    const std::size_t valid = std::min(kPackedCols, n - j0);
    std::int16_t* panel = dst_base + s * kp2 * 2 * kPackedCols;
    std::size_t pair_base = 0;
    for (std::size_t k0 = 0; k0 < k; k0 += out.seg) {
      const std::size_t len = std::min(out.seg, k - k0);
      for (std::size_t i = 0; i < len; ++i) {
        const std::int16_t* src = b + (k0 + i) * ldb + j0;
        std::int16_t* dst =
            panel + (pair_base + i / 2) * 2 * kPackedCols + i % 2;
        for (std::size_t j = 0; j < valid; ++j) {
          dst[2 * j] = src[j];
        }
        out.max_abs = std::max(out.max_abs, max_abs_s16(src, valid));
      }
      pair_base += pairs_in_segment(len);
    }
  }
}

}  // namespace

std::size_t packed_a_elems(std::size_t m, std::size_t k, std::size_t segment) {
  return m * packed_depth(k, segment);
}

std::size_t packed_b_elems(std::size_t k, std::size_t n, std::size_t segment) {
  const std::size_t kp2 = packed_depth(k, segment) / 2;
  const std::size_t strips = (n + kPackedCols - 1) / kPackedCols;
  return strips * kp2 * 2 * kPackedCols;
}

PackedA pack_a_s16(const std::int16_t* a, std::size_t m, std::size_t k,
                   std::size_t lda, std::size_t segment) {
  PackedA out;
  out.m = m;
  out.k = k;
  out.seg = effective_segment(segment, k);
  out.kp = packed_depth(k, segment);
  out.data.resize(m * out.kp);
  pack_a_fill(a, m, k, lda, out, out.data.data());
  return out;
}

PackedA pack_a_s16_into(const std::int16_t* a, std::size_t m, std::size_t k,
                        std::size_t lda, std::size_t segment,
                        std::int16_t* storage) {
  PackedA out;
  out.m = m;
  out.k = k;
  out.seg = effective_segment(segment, k);
  out.kp = packed_depth(k, segment);
  out.ext = storage;
  pack_a_fill(a, m, k, lda, out, storage);
  return out;
}

PackedB pack_b_s16(const std::int16_t* b, std::size_t k, std::size_t n,
                   std::size_t ldb, std::size_t segment) {
  PackedB out;
  out.k = k;
  out.n = n;
  out.seg = effective_segment(segment, k);
  out.kp = packed_depth(k, segment);
  out.data.resize(packed_b_elems(k, n, segment));
  pack_b_fill(b, k, n, ldb, out, out.data.data());
  return out;
}

PackedB pack_b_s16_into(const std::int16_t* b, std::size_t k, std::size_t n,
                        std::size_t ldb, std::size_t segment,
                        std::int16_t* storage) {
  PackedB out;
  out.k = k;
  out.n = n;
  out.seg = effective_segment(segment, k);
  out.kp = packed_depth(k, segment);
  out.ext = storage;
  pack_b_fill(b, k, n, ldb, out, storage);
  return out;
}

PackedB pack_b_s16_transposed(const std::int16_t* w, std::size_t k,
                              std::size_t n, std::size_t ldw,
                              std::size_t segment) {
  PackedB out;
  out.k = k;
  out.n = n;
  out.seg = effective_segment(segment, k);
  out.kp = packed_depth(k, segment);
  const std::size_t kp2 = out.kp / 2;
  const std::size_t strips = (n + kPackedCols - 1) / kPackedCols;
  out.data.assign(strips * kp2 * 2 * kPackedCols, 0);
  const auto pos = packed_positions(k, out.seg);
  for (std::size_t j = 0; j < n; ++j) {  // panel column j = W row j
    const std::int16_t* src = w + j * ldw;
    std::int16_t* panel =
        out.data.data() + (j / kPackedCols) * kp2 * 2 * kPackedCols;
    const std::size_t jloc = j % kPackedCols;
    for (std::size_t kk = 0; kk < k; ++kk) {
      panel[pos[kk].pair * 2 * kPackedCols + 2 * jloc + pos[kk].slot] =
          src[kk];
    }
    out.max_abs = std::max(out.max_abs, max_abs_s16(src, k));
  }
  return out;
}

void gemm_s16_packed(const PackedA& a, const PackedB& b, double* c,
                     std::size_t ldc, std::size_t row_begin,
                     std::size_t row_end, const KernelConfig& config) {
  if (a.k != b.k || a.kp != b.kp || a.seg != b.seg) {
    throw std::invalid_argument(
        "gemm_s16_packed: A/B panels packed for different depths or segments");
  }
  if (row_begin > row_end || row_end > a.m) {
    throw std::invalid_argument("gemm_s16_packed: row range out of bounds");
  }
  if (row_begin == row_end) return;
  if (b.n == 0) return;
  // The same magnitude-scan predicate as the scalar kernel (scans ignore the
  // zero padding, which cannot raise a max), so both paths always widen at
  // the same point. The predicate is independent of the tier: every tier has
  // a narrow and a wide kernel with identical integer dataflow.
  const std::size_t seg_for_safety = a.seg == 0 ? a.k : a.seg;
  const bool narrow = gemm_s16_int32_safe(a.max_abs, b.max_abs, seg_for_safety);
  using Kernel = void (*)(const PackedA&, const PackedB&, double*, std::size_t,
                          std::size_t, std::size_t, std::size_t, std::size_t);
  Kernel kern = narrow ? &gemm_packed_scalar<std::int32_t>
                       : &gemm_packed_scalar<std::int64_t>;
  switch (simd::resolve_tier(config.tier)) {
#if defined(LIGHTATOR_HAVE_AVX512_KERNELS)
    case simd::KernelTier::kVnni:
      // vpdpwssd only accumulates int32; the wide mode shares the AVX-512
      // widening kernel (dispatch, not a crash, on deep flat segments).
      kern = narrow ? &gemm_packed_vnni_s32 : &gemm_packed_avx512_s64;
      break;
    case simd::KernelTier::kAvx512:
      kern = narrow ? &gemm_packed_avx512_s32 : &gemm_packed_avx512_s64;
      break;
#endif
#if defined(LIGHTATOR_HAVE_AVX2_KERNELS)
    case simd::KernelTier::kAvx2:
      kern = narrow ? &gemm_packed_avx2_s32 : &gemm_packed_avx2_s64;
      break;
#endif
    default:
      break;
  }
  const std::size_t strips = (b.n + kPackedCols - 1) / kPackedCols;
  const std::size_t nc = (config.nc_strips == 0 || config.nc_strips > strips)
                             ? strips
                             : config.nc_strips;
  // Strip blocks outer, rows inner (inside the kernel): a DRAM-sized B panel
  // is revisited one cache-resident block at a time across all rows. With
  // nc == strips this collapses to one kernel call — the unblocked shape.
  for (std::size_t sb = 0; sb < strips; sb += nc) {
    kern(a, b, c, ldc, row_begin, row_end, sb, std::min(strips, sb + nc));
  }
}

}  // namespace lightator::tensor
