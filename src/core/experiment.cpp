#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/table.hpp"

namespace lightator::core {

double MonteCarloResult::quantile(double q) const {
  if (!sketch.empty()) return sketch.quantile(q);
  // Hand-filled results (no campaign ran): exact interpolation over the raw
  // vector — the formula the sketch reproduces while exact.
  if (accuracy.empty()) return 0.0;
  std::vector<double> sorted = accuracy;
  std::sort(sorted.begin(), sorted.end());
  const double pos = std::clamp(q, 0.0, 1.0) *
                     static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

ExperimentRunner::ExperimentRunner(ExperimentOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  ctx_.backend = options_.backend;
  ctx_.noise_seed = options_.noise_seed;
  ctx_.faults = options_.faults;
  ctx_.pool = &pool_;
  ctx_.collect_stats = options_.collect_stats;
}

void ExperimentRunner::prime_item_context(ExecutionContext& item_ctx,
                                          std::uint64_t sweep_index,
                                          std::size_t item) {
  item_ctx.backend = ctx_.backend;
  item_ctx.faults = ctx_.faults;
  item_ctx.pool = &pool_;
  item_ctx.collect_stats = ctx_.collect_stats;
  // 0 means "noiseless" everywhere; a set base seed fans out into one
  // independent, reproducible stream per (sweep, item).
  item_ctx.noise_seed =
      ctx_.noise_seed == 0 ? 0
                           : mix_seed(ctx_.noise_seed, sweep_index, item);
}

MonteCarloResult ExperimentRunner::monte_carlo(
    const LightatorSystem& system, const nn::Network& net,
    const nn::Dataset& data, const nn::PrecisionSchedule& schedule,
    const MonteCarloOptions& options) {
  if (options.trials == 0) {
    throw std::invalid_argument("monte_carlo: trials must be >= 1");
  }
  MonteCarloResult result;
  result.sketch = util::StreamingQuantiles(options.sketch_capacity);
  if (!options.stream) result.accuracy.reserve(options.trials);
  // Compile once per campaign: every trial shares the immutable artifact
  // (programmed weights, packed panels, arm programs) instead of cloning the
  // whole Network per trial. The only mutable per-trial state is the fault
  // spec in the item context — CompiledModel::run applies faults to a
  // private weight copy per forward, exactly like the per-clone path did, so
  // trial results are bit-identical to the pre-split baseline.
  CompileOptions compile_options;
  compile_options.backend = options_.backend;
  compile_options.schedule = schedule;
  const CompiledModel compiled = system.compile(net, compile_options);
  // Trials run in fixed-size chunks — one sweep per chunk, sketch fed in
  // trial order after each — so a streamed campaign's peak memory is one
  // chunk, not the whole campaign. The chunking is a pure function of the
  // options (never of the pool size or the stream flag), so results stay
  // thread-count invariant and streamed == retained bit-for-bit.
  const std::size_t chunk_size = std::max<std::size_t>(
      std::max<std::size_t>(options.sketch_capacity, 64), 1);
  for (std::size_t begin = 0; begin < options.trials; begin += chunk_size) {
    const std::size_t count = std::min(chunk_size, options.trials - begin);
    std::vector<std::size_t> trials(count);
    std::iota(trials.begin(), trials.end(), begin);
    const std::vector<double> chunk =
        sweep(trials, [&](std::size_t trial, ExecutionContext& item_ctx) {
          item_ctx.faults = options.faults;
          // Distinct fault realization per trial, reproducible from
          // base_seed (keyed on the global trial number, not the chunk).
          item_ctx.faults.seed =
              mix_seed(options.base_seed, /*stream=*/0x0fa17ull, trial);
          return compiled.evaluate(data, item_ctx, options.batch_size,
                                   options.max_samples);
        });
    // Index order, never completion order: every statistic is a pure
    // function of the configuration.
    for (double a : chunk) result.sketch.add(a);
    if (!options.stream) {
      result.accuracy.insert(result.accuracy.end(), chunk.begin(),
                             chunk.end());
    }
  }
  result.mean = result.sketch.mean();
  result.stddev = result.sketch.stddev();
  return result;
}

nn::EpochStats ExperimentRunner::fit(nn::Network& net, nn::Dataset& train,
                                     nn::TrainParams params) {
  params.pool = &pool_;
  nn::Trainer trainer(params);
  return trainer.fit(net, train);
}

std::string format_stats_report(const std::vector<LayerExecStats>& stats) {
  util::TablePrinter table({"layer", "Wbits", "MACs", "frames",
                            "measured ms/frame", "modeled latency",
                            "modeled energy/frame", "sim/model"});
  for (const auto& s : stats) {
    const double per_frame =
        s.frames > 0 ? s.wall_seconds / static_cast<double>(s.frames) : 0.0;
    const double ratio =
        s.modeled_latency > 0.0 ? per_frame / s.modeled_latency : 0.0;
    table.add_row({s.name, std::to_string(s.weight_bits),
                   util::format_sig(static_cast<double>(s.macs), 3),
                   std::to_string(s.frames),
                   util::format_fixed(per_frame * 1e3, 3),
                   util::format_time(s.modeled_latency),
                   util::format_sig(s.modeled_energy, 3) + " J",
                   util::format_sig(ratio, 3) + "x"});
  }
  return table.to_text();
}

}  // namespace lightator::core
