// ExperimentRunner determinism suite.
//
// The contract under test: every parallel construct introduced by the
// experiment layer — sweep()'s seed-per-item map, the fault Monte-Carlo, the
// sharded trainer, the multi-frame capture pipeline, and the measured
// precision search — produces bit-identical results for pool sizes 1, 4, and
// 8. Parallelism must never change an experiment's numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/backends/physical_backend.hpp"
#include "core/experiment.hpp"
#include "core/precision_search.hpp"
#include "nn/models.hpp"
#include "nn/qat.hpp"
#include "workloads/scenes.hpp"

namespace lightator::core {
namespace {

const std::size_t kPoolSizes[] = {1, 4, 8};

/// Tiny labeled dataset on 1x4x4 inputs for the MLP-based tests.
nn::Dataset make_tiny_dataset(std::size_t samples, std::size_t classes,
                              std::uint64_t seed) {
  nn::Dataset data;
  data.num_classes = classes;
  data.images = tensor::Tensor({samples, 1, 4, 4});
  util::Rng rng(seed);
  data.images.fill_uniform(rng, 0.0f, 1.0f);
  data.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) data.labels[i] = i % classes;
  return data;
}

void expect_bit_exact(const tensor::Tensor& a, const tensor::Tensor& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " diverges at flat index " << i;
  }
}

TEST(ExperimentRunner, SweepPreservesOrderAndDerivesDistinctSeeds) {
  ExperimentOptions opts;
  opts.noise_seed = 99;
  ExperimentRunner runner(opts);
  std::vector<int> items(16);
  std::iota(items.begin(), items.end(), 0);
  const auto seeds = runner.sweep(
      items, [](int item, ExecutionContext& ctx) -> std::uint64_t {
        (void)item;
        return ctx.noise_seed;
      });
  ASSERT_EQ(seeds.size(), items.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_NE(seeds[i], 0u) << "item " << i;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
    }
  }
  // Successive sweeps draw fresh streams.
  const auto seeds2 = runner.sweep(
      items, [](int, ExecutionContext& ctx) { return ctx.noise_seed; });
  EXPECT_NE(seeds[0], seeds2[0]);
}

TEST(ExperimentRunner, SweepNoiselessBaseStaysNoiseless) {
  ExperimentRunner runner;  // noise_seed = 0
  const std::vector<int> items = {1, 2, 3};
  const auto seeds = runner.sweep(
      items, [](int, ExecutionContext& ctx) { return ctx.noise_seed; });
  for (auto s : seeds) EXPECT_EQ(s, 0u);
}

TEST(ExperimentRunner, SweepDeterministicAcrossPoolSizes) {
  // Each item runs a noisy physical-backend conv; the per-item seed stream
  // must make the outputs a pure function of (base seed, item index).
  const OpticalCore oc(ArchConfig::defaults());
  const tensor::ConvSpec spec{1, 2, 3, 1, 0};
  util::Rng rng(12);
  tensor::Tensor x({2, 1, 5, 5});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({2, 1, 3, 3});
  w.fill_normal(rng, 0.4f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  std::vector<int> items(6);
  std::iota(items.begin(), items.end(), 0);

  std::vector<std::vector<tensor::Tensor>> per_pool;
  for (const std::size_t threads : kPoolSizes) {
    ExperimentOptions opts;
    opts.backend = "physical";
    opts.threads = threads;
    opts.noise_seed = 1234;
    ExperimentRunner runner(opts);
    per_pool.push_back(runner.sweep(
        items, [&](int, ExecutionContext& ctx) {
          return oc.backend("physical").conv2d(xq, wq, tensor::Tensor(), spec,
                                               ctx);
        }));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      expect_bit_exact(per_pool[0][i], per_pool[p][i],
                       "pool" + std::to_string(kPoolSizes[p]) + "_item" +
                           std::to_string(i));
    }
  }
  // Items drew different noise from the same base seed.
  bool any_diff = false;
  for (std::size_t i = 0; i < per_pool[0][0].size() && !any_diff; ++i) {
    any_diff = per_pool[0][0][i] != per_pool[0][1][i];
  }
  EXPECT_TRUE(any_diff) << "sweep items reused one noise stream";
}

TEST(ExperimentRunner, SweepMergesStatsInIndexOrder) {
  ExperimentOptions opts;
  opts.collect_stats = true;
  ExperimentRunner runner(opts);
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(5);
  const nn::Network net = nn::build_mlp(rng, 16, 8, 3);
  const auto data = make_tiny_dataset(8, 3, 21);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  const std::vector<int> items = {0, 1, 2};
  CompileOptions co;
  co.schedule = schedule;
  const CompiledModel compiled = sys.compile(net, co);
  runner.sweep(items, [&](int, ExecutionContext& ctx) {
    return compiled.evaluate(data, ctx, /*batch=*/4);
  });
  // MLP: 2 weighted layers; all items accumulate into the same two entries.
  ASSERT_EQ(runner.context().stats.size(), 2u);
  for (const auto& s : runner.context().stats) {
    EXPECT_EQ(s.frames, items.size() * data.size());
    EXPECT_GT(s.modeled_latency, 0.0);
  }
}

TEST(ExperimentRunner, SharedCompiledModelDeterministicAcrossPoolSizes) {
  // One CompiledModel shared by every sweep item of every pool size: the
  // artifact is stateless under run(), so concurrent items need no clones
  // and the results stay bit-identical to a serial evaluation of the same
  // artifact — the experiment-layer half of the compile/execute split.
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(35);
  const nn::Network net = nn::build_mlp(rng, 16, 10, 4);
  const auto data = make_tiny_dataset(16, 4, 71);
  CompileOptions co;
  co.backend = "physical";
  co.schedule = nn::PrecisionSchedule::uniform(4);
  const CompiledModel compiled = sys.compile(net, co);
  std::vector<int> items(6);
  std::iota(items.begin(), items.end(), 0);

  std::vector<std::vector<double>> per_pool;
  for (const std::size_t threads : kPoolSizes) {
    ExperimentOptions opts;
    opts.backend = "physical";
    opts.threads = threads;
    opts.noise_seed = 321;
    ExperimentRunner runner(opts);
    per_pool.push_back(runner.sweep(items, [&](int, ExecutionContext& ctx) {
      return compiled.evaluate(data, ctx, /*batch=*/8);
    }));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(per_pool[0][i], per_pool[p][i])
          << "pool " << kPoolSizes[p] << " item " << i;
    }
  }
}

TEST(ExperimentRunner, MonteCarloDeterministicAcrossPoolSizes) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(31);
  const nn::Network net = nn::build_mlp(rng, 16, 10, 4);
  const auto data = make_tiny_dataset(16, 4, 77);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  MonteCarloOptions mco;
  mco.trials = 6;
  mco.faults.stuck_cell_rate = 0.05;
  mco.faults.dead_channel_rate = 0.02;
  mco.faults.ring_drift_sigma = 0.05;
  mco.base_seed = 9;
  mco.batch_size = 8;

  std::vector<MonteCarloResult> results;
  for (const std::size_t threads : kPoolSizes) {
    ExperimentOptions opts;
    opts.backend = "physical";
    opts.threads = threads;
    opts.noise_seed = 55;
    ExperimentRunner runner(opts);
    results.push_back(runner.monte_carlo(sys, net, data, schedule, mco));
  }
  for (std::size_t p = 1; p < results.size(); ++p) {
    ASSERT_EQ(results[p].accuracy.size(), mco.trials);
    for (std::size_t t = 0; t < mco.trials; ++t) {
      EXPECT_EQ(results[0].accuracy[t], results[p].accuracy[t])
          << "pool " << kPoolSizes[p] << " trial " << t;
    }
    EXPECT_EQ(results[0].mean, results[p].mean);
    EXPECT_EQ(results[0].stddev, results[p].stddev);
  }
  EXPECT_GE(results[0].mean, 0.0);
  EXPECT_LE(results[0].mean, 1.0);
  EXPECT_LE(results[0].quantile(0.1), results[0].quantile(0.9) + 1e-12);
}

TEST(ExperimentRunner, MonteCarloTrialsDrawIndependentFaults) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(32);
  const nn::Network net = nn::build_mlp(rng, 16, 10, 2);
  const auto data = make_tiny_dataset(24, 2, 13);
  MonteCarloOptions mco;
  mco.trials = 8;
  mco.faults.stuck_cell_rate = 0.3;  // violent faults: accuracies spread
  mco.base_seed = 3;
  ExperimentRunner runner;  // gemm
  const auto result = runner.monte_carlo(
      sys, net, data, nn::PrecisionSchedule::uniform(4), mco);
  bool any_diff = false;
  for (std::size_t t = 1; t < result.accuracy.size() && !any_diff; ++t) {
    any_diff = result.accuracy[t] != result.accuracy[0];
  }
  EXPECT_TRUE(any_diff) << "every trial saw the identical fault pattern";
}

TEST(NetworkClone, IndependentParametersAndForward) {
  util::Rng rng(41);
  nn::Network net = nn::build_mlp(rng, 16, 8, 3);
  nn::Network copy = net.clone();
  tensor::Tensor x({2, 1, 4, 4});
  x.fill_uniform(rng, 0.0f, 1.0f);
  expect_bit_exact(net.forward(x), copy.forward(x), "clone_forward");
  // Mutating the master must not touch the clone.
  (*net.params()[0])[0] += 1.0f;
  EXPECT_NE((*net.params()[0])[0], (*copy.params()[0])[0]);
}

TEST(Trainer, ShardedEpochInvariantAcrossPoolSizes) {
  std::vector<std::vector<float>> final_params;
  for (const std::size_t threads : kPoolSizes) {
    util::Rng rng(7);
    nn::Network net = nn::build_mlp(rng, 16, 12, 4);
    nn::Dataset train = make_tiny_dataset(48, 4, 3);
    util::ThreadPool pool(threads);
    nn::TrainParams tp;
    tp.batch_size = 12;
    tp.epochs = 2;
    tp.grad_shards = 4;
    tp.pool = &pool;
    tp.shuffle_seed = 11;
    nn::Trainer(tp).fit(net, train);
    std::vector<float> flat;
    for (tensor::Tensor* p : net.params()) {
      flat.insert(flat.end(), p->data(), p->data() + p->size());
    }
    final_params.push_back(std::move(flat));
  }
  for (std::size_t p = 1; p < final_params.size(); ++p) {
    ASSERT_EQ(final_params[0].size(), final_params[p].size());
    for (std::size_t i = 0; i < final_params[0].size(); ++i) {
      ASSERT_EQ(final_params[0][i], final_params[p][i])
          << "pool " << kPoolSizes[p] << " param " << i;
    }
  }
}

TEST(Trainer, ShardedQatEpochInvariantAcrossPoolSizes) {
  // The QAT running-max activation scales reduce across shards; parameters
  // must still be bit-identical for any pool size.
  std::vector<float> reference;
  for (const std::size_t threads : kPoolSizes) {
    util::Rng rng(17);
    nn::Network net = nn::build_mlp(rng, 16, 12, 4);
    nn::enable_qat(net, nn::PrecisionSchedule::uniform(3));
    nn::Dataset train = make_tiny_dataset(32, 4, 5);
    util::ThreadPool pool(threads);
    nn::TrainParams tp;
    tp.batch_size = 16;
    tp.epochs = 1;
    tp.grad_shards = 2;
    tp.pool = &pool;
    nn::Trainer(tp).fit(net, train);
    std::vector<float> flat;
    for (tensor::Tensor* p : net.params()) {
      flat.insert(flat.end(), p->data(), p->data() + p->size());
    }
    if (reference.empty()) {
      reference = std::move(flat);
    } else {
      ASSERT_EQ(reference.size(), flat.size());
      for (std::size_t i = 0; i < flat.size(); ++i) {
        ASSERT_EQ(reference[i], flat[i])
            << "pool " << threads << " param " << i;
      }
    }
  }
}

TEST(Trainer, HonorsShuffleSeedOnFirstUse) {
  auto run = [](std::uint64_t seed) {
    util::Rng rng(9);
    nn::Network net = nn::build_mlp(rng, 16, 8, 4);
    nn::Dataset train = make_tiny_dataset(64, 4, 8);
    nn::TrainParams tp;
    tp.batch_size = 8;
    tp.shuffle_seed = seed;
    nn::Trainer trainer(tp);
    // train_epoch directly: the seed must apply without a fit() warm-up.
    trainer.train_epoch(net, train);
    return (*net.params()[0])[0];
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(123));
}

TEST(CaptureAndInfer, BatchedMatchesSerialAndThreadInvariant) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(61);
  nn::Network net = nn::build_lenet(rng);
  const auto schedule = nn::PrecisionSchedule::uniform(4);
  // 56x56 scenes + CA (gray, 2x2 pool) -> 28x28x1: LeNet geometry.
  std::vector<sensor::Image> scenes;
  for (int i = 0; i < 3; ++i) {
    scenes.push_back(workloads::make_blob_scene(56, 56, rng));
  }
  CaptureOptions capture;
  capture.ca = CaOptions{2, true, 4};
  capture.sensor_noise_seed = 44;

  std::vector<tensor::Tensor> logits;
  for (const std::size_t threads : kPoolSizes) {
    util::ThreadPool pool(threads);
    ExecutionContext ctx;
    ctx.pool = &pool;
    logits.push_back(sys.capture_and_infer(net, scenes, schedule, ctx,
                                           capture));
  }
  ASSERT_EQ(logits[0].dim(0), scenes.size());
  for (std::size_t p = 1; p < logits.size(); ++p) {
    expect_bit_exact(logits[0], logits[p],
                     "capture_pool" + std::to_string(kPoolSizes[p]));
  }
  // The batched pipeline must agree bit-for-bit with acquiring each frame
  // serially (same per-frame seeds), stacking by hand, and running one
  // batched OC forward.
  tensor::Tensor manual;
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    util::Rng noise(mix_seed(capture.sensor_noise_seed, 0, i));
    const auto frame = sys.acquire(scenes[i], capture.ca, &noise);
    if (manual.empty()) {
      manual = tensor::Tensor(
          {scenes.size(), frame.dim(1), frame.dim(2), frame.dim(3)});
    }
    std::copy(frame.data(), frame.data() + frame.size(),
              manual.data() + i * frame.size());
  }
  ExecutionContext ctx;
  CompileOptions co;
  co.schedule = schedule;
  const auto expected = sys.compile(net, co).run(manual, ctx).take();
  expect_bit_exact(expected, logits[0], "capture_vs_manual_stack");
}

TEST(Faults, RingDriftDeterministicAndClamped) {
  util::Rng rng(71);
  tensor::Tensor w({4, 4});
  w.fill_normal(rng, 0.5f);
  auto wq = tensor::quantize_symmetric(w, 3);
  auto drifted = wq;
  FaultSpec spec;
  spec.ring_drift_sigma = 0.2;
  EXPECT_TRUE(spec.any());
  util::Rng frng1(5), frng2(5);
  const auto hits = apply_weight_faults(drifted, spec, frng1);
  EXPECT_GT(hits, 0u);
  const int m = wq.max_level();
  bool any_change = false;
  for (std::size_t i = 0; i < drifted.levels.size(); ++i) {
    EXPECT_LE(std::abs(drifted.levels[i]), m);
    any_change = any_change || drifted.levels[i] != wq.levels[i];
  }
  EXPECT_TRUE(any_change);
  auto drifted2 = wq;
  apply_weight_faults(drifted2, spec, frng2);
  for (std::size_t i = 0; i < drifted.levels.size(); ++i) {
    EXPECT_EQ(drifted.levels[i], drifted2.levels[i]) << "index " << i;
  }
}

TEST(PhysicalBackend, ArmCacheReusedAcrossCalls) {
  const OpticalCore oc(ArchConfig::defaults());
  const auto* physical =
      dynamic_cast<const PhysicalBackend*>(&oc.backend("physical"));
  ASSERT_NE(physical, nullptr);
  EXPECT_EQ(physical->cached_arm_count(), 0u);
  util::Rng rng(81);
  tensor::Tensor x({2, 1, 4, 4});
  x.fill_uniform(rng, 0.0f, 1.0f);
  tensor::Tensor w({1, 1, 3, 3});
  w.fill_normal(rng, 0.4f);
  const auto xq = tensor::quantize_unsigned(x, 4);
  const auto wq = tensor::quantize_symmetric(w, 4);
  ExecutionContext ctx;
  const tensor::ConvSpec spec{1, 1, 3, 1, 0};
  const auto y1 = physical->conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  const std::size_t cached_after_first = physical->cached_arm_count();
  EXPECT_GT(cached_after_first, 0u);
  // A second identical call re-uses the parked arms instead of growing the
  // cache, and produces the identical (noiseless) result.
  const auto y2 = physical->conv2d(xq, wq, tensor::Tensor(), spec, ctx);
  EXPECT_EQ(physical->cached_arm_count(), cached_after_first);
  expect_bit_exact(y1, y2, "arm_cache_reuse");
}

TEST(PrecisionSearch, MeasuredDefaultRunsThroughContextAndIsPoolInvariant) {
  const LightatorSystem sys(ArchConfig::defaults());
  util::Rng rng(91);
  nn::Network net = nn::build_lenet(rng);
  const nn::ModelDesc model = nn::lenet_desc();
  const auto data = [] {
    nn::Dataset d;
    d.num_classes = 10;
    d.images = tensor::Tensor({12, 1, 28, 28});
    util::Rng r(14);
    d.images.fill_uniform(r, 0.0f, 1.0f);
    d.labels.resize(12);
    for (std::size_t i = 0; i < 12; ++i) d.labels[i] = i % 10;
    return d;
  }();

  PrecisionSearchOptions opts;
  opts.power_budget =
      sys.analyze(model, nn::PrecisionSchedule::uniform(4)).max_power * 0.7;
  opts.max_accuracy_drop = 1.0;  // accuracy unconstrained: must hit budget

  std::vector<PrecisionAssignment> assignments;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PrecisionSearch search(sys, model);
    search.bind_validation(net, data, /*act_bits=*/4, /*batch_size=*/6);
    ExperimentOptions eo;
    eo.threads = threads;
    ExperimentRunner runner(eo);
    assignments.push_back(search.search(opts, runner.context()));
  }
  EXPECT_EQ(assignments[0].weight_bits, assignments[1].weight_bits);
  EXPECT_EQ(assignments[0].estimated_drop, assignments[1].estimated_drop);
  EXPECT_LE(assignments[0].max_power, opts.power_budget * 1.001);
  // The measured evaluator (not the analytic proxy) produced the drop:
  // accuracy on 12 random images is a multiple of 1/12.
  const double drop = assignments[0].estimated_drop;
  const double scaled = drop * 12.0;
  EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
}

}  // namespace
}  // namespace lightator::core
