#include "core/precision_search.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lightator::core {

std::string PrecisionAssignment::label() const {
  std::string out = "[";
  for (std::size_t i = 0; i < weight_bits.size(); ++i) {
    out += std::to_string(weight_bits[i]);
    if (i + 1 < weight_bits.size()) out += ",";
  }
  return out + ":4]";
}

std::vector<const nn::LayerDesc*> PrecisionSearch::weighted_layers() const {
  std::vector<const nn::LayerDesc*> out;
  for (const auto& l : model_.layers) {
    if (l.is_weighted()) out.push_back(&l);
  }
  return out;
}

double PrecisionSearch::layer_sensitivity(std::size_t weighted_index,
                                          int bits) const {
  const auto layers = weighted_layers();
  if (weighted_index >= layers.size()) {
    throw std::out_of_range("weighted layer index out of range");
  }
  if (bits <= 1) return 1e9;  // cannot lower further
  // Uniform quantization noise power ~ step^2 / 12 with step ~ 1/(2^(b-1)-1).
  auto noise = [](int b) {
    const double step = 1.0 / static_cast<double>((1 << (b - 1)) - 1);
    return step * step / 12.0;
  };
  const double noise_increase = noise(bits - 1) - noise(bits);
  // Early layers poison everything downstream: weight by the fraction of
  // total MACs computed at or after this layer.
  double downstream = 0.0, total = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const double macs = static_cast<double>(layers[i]->macs());
    total += macs;
    if (i >= weighted_index) downstream += macs;
  }
  const double position_weight = total > 0.0 ? downstream / total : 1.0;
  return noise_increase * position_weight;
}

void PrecisionSearch::bind_validation(nn::Network& net,
                                      const nn::Dataset& data, int act_bits,
                                      std::size_t batch_size,
                                      std::size_t max_samples) {
  eval_net_ = &net;
  eval_data_ = &data;
  eval_act_bits_ = act_bits;
  eval_batch_size_ = batch_size;
  eval_max_samples_ = max_samples;
}

PrecisionAssignment PrecisionSearch::search(
    const PrecisionSearchOptions& options, const Evaluator& evaluate) const {
  // No measured default on this path: context-less callers get the analytic
  // proxy unless they pass an evaluator themselves.
  return search_impl(options, evaluate);
}

PrecisionAssignment PrecisionSearch::search(
    const PrecisionSearchOptions& options, ExecutionContext& ctx,
    const Evaluator& evaluate) const {
  if (evaluate) return search_impl(options, evaluate);
  if (eval_net_ == nullptr || eval_data_ == nullptr) {
    return search_impl(options, nullptr);  // nothing bound: analytic proxy
  }
  // The measured default: each candidate assignment compiles ONCE (weights
  // quantized and panels packed for that bit vector) and the artifact is
  // reused across every validation batch of the evaluation — the greedy loop
  // no longer re-programs weights per batch. The context's pool shards the
  // validation batches, so measured search stays multicore-fast and
  // thread-count invariant.
  //
  // One autotuned base compile seeds a pinned kernel plan shared by every
  // candidate compile: the bit vector never changes the GEMM geometries, so
  // candidates inherit the tuned dispatch without re-measuring — which is
  // what makes widening candidate_batch cheap (and keeps every candidate's
  // compile deterministic).
  auto tuned = std::make_shared<KernelPlan>();
  {
    CompileOptions base;
    base.backend = ctx.backend;
    base.weight_bits.assign(weighted_layers().size(), options.max_bits);
    base.act_bits = eval_act_bits_;
    *tuned = system_.compile(*eval_net_, std::move(base)).kernel_plan();
  }
  const std::shared_ptr<const KernelPlan> pinned = std::move(tuned);
  const Evaluator measured = [this, &ctx,
                              pinned](const std::vector<int>& bits) {
    CompileOptions compile_options;
    compile_options.backend = ctx.backend;
    compile_options.weight_bits = bits;
    compile_options.act_bits = eval_act_bits_;
    compile_options.pinned_kernel_plan = pinned;
    const CompiledModel candidate =
        system_.compile(*eval_net_, std::move(compile_options));
    return candidate.evaluate(*eval_data_, ctx, eval_batch_size_,
                              eval_max_samples_);
  };
  return search_impl(options, measured);
}

PrecisionAssignment PrecisionSearch::search_impl(
    const PrecisionSearchOptions& options, const Evaluator& evaluate) const {
  if (options.min_bits < 1 || options.max_bits < options.min_bits) {
    throw std::invalid_argument("invalid bit range");
  }
  const auto layers = weighted_layers();
  PrecisionAssignment current;
  current.weight_bits.assign(layers.size(), options.max_bits);

  const double base_accuracy =
      evaluate ? evaluate(current.weight_bits) : 1.0;
  double proxy_drop = 0.0;

  auto power_of = [&](const std::vector<int>& bits) {
    return system_.analyze(model_, bits).max_power;
  };
  current.max_power = power_of(current.weight_bits);

  while (true) {
    if (options.power_budget > 0.0 &&
        current.max_power <= options.power_budget) {
      break;  // budget met
    }
    // Candidates: layers whose next bit costs least sensitivity per watt
    // saved, scored against the current (so, within a batched step, possibly
    // stale) power numbers. Max-power is a plateau metric (several layers
    // can pin the max), so when no single step frees power, lower the
    // least-sensitive layer anyway — progress toward the budget requires
    // clearing the plateau.
    struct Scored {
      std::size_t layer;
      double score;
    };
    std::vector<Scored> scored;
    std::vector<Scored> plateau;  // layers whose step frees no power yet
    for (std::size_t i = 0; i < layers.size(); ++i) {
      if (current.weight_bits[i] <= options.min_bits) continue;
      const double sensitivity =
          layer_sensitivity(i, current.weight_bits[i]);
      std::vector<int> trial = current.weight_bits;
      --trial[i];
      const double saved = current.max_power - power_of(trial);
      if (saved > 0.0) {
        scored.push_back(Scored{i, sensitivity / saved});
      } else {
        plateau.push_back(Scored{i, sensitivity});
      }
    }
    const auto by_score = [](const Scored& a, const Scored& b) {
      return a.score < b.score;
    };
    std::stable_sort(scored.begin(), scored.end(), by_score);
    std::stable_sort(plateau.begin(), plateau.end(), by_score);
    const bool budget_unmet = options.power_budget > 0.0 &&
                              current.max_power > options.power_budget;

    // The per-step candidate set: the top-K scored layers with a measured
    // evaluator (K = candidate_batch), the single best otherwise — with
    // plateau layers (least-sensitive first) filling out the batch while the
    // budget is unmet, since clearing a max-power plateau needs steps that
    // free no power yet. With K = 1 this is exactly the classic greedy step.
    std::vector<std::size_t> batch;
    const std::size_t width =
        evaluate ? std::max<std::size_t>(1, options.candidate_batch) : 1;
    for (const Scored& s : scored) {
      if (batch.size() >= width) break;
      batch.push_back(s.layer);
    }
    if (budget_unmet) {
      for (const Scored& s : plateau) {
        if (batch.size() >= width) break;
        batch.push_back(s.layer);
      }
    }
    if (batch.empty()) break;  // nothing lowerable (or nothing worth lowering)

    // Evaluate the batch and commit whichever candidate measures best (the
    // analytic proxy never widens the batch, so it keeps the classic
    // accumulate-as-you-go drop).
    // Proxy-to-drop scaling: calibrated so lowering every VGG9 layer from
    // 4 to 3 bits accumulates ~3% — the paper's observed [4:4] -> [3:4]
    // accuracy cost (Table 1, CIFAR100: 64.22 -> 61.04).
    constexpr double kProxyScale = 1.5;
    std::size_t chosen = layers.size();
    double chosen_drop = 1e18;
    for (const std::size_t layer : batch) {
      std::vector<int> trial = current.weight_bits;
      --trial[layer];
      const double trial_drop =
          evaluate ? base_accuracy - evaluate(trial)
                   : proxy_drop + layer_sensitivity(layer,
                                                    current.weight_bits[layer]) *
                                      kProxyScale;
      if (trial_drop < chosen_drop) {
        chosen_drop = trial_drop;
        chosen = layer;
      }
    }
    if (chosen == layers.size() || chosen_drop > options.max_accuracy_drop) {
      break;
    }

    --current.weight_bits[chosen];
    current.max_power = power_of(current.weight_bits);
    current.estimated_drop = chosen_drop;
    if (!evaluate) proxy_drop = chosen_drop;
  }
  return current;
}

}  // namespace lightator::core
