#include "sensor/bayer.hpp"

#include <stdexcept>

namespace lightator::sensor {

BayerChannel bayer_channel_at(std::size_t y, std::size_t x) {
  const bool even_row = (y % 2) == 0;
  const bool even_col = (x % 2) == 0;
  if (even_row && even_col) return BayerChannel::kRed;
  if (!even_row && !even_col) return BayerChannel::kBlue;
  return BayerChannel::kGreen;
}

Image bayer_mosaic(const Image& rgb) {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("bayer_mosaic expects an RGB image");
  }
  Image raw(rgb.height(), rgb.width(), 1);
  for (std::size_t y = 0; y < rgb.height(); ++y) {
    for (std::size_t x = 0; x < rgb.width(); ++x) {
      const auto c = static_cast<std::size_t>(bayer_channel_at(y, x));
      raw.at(y, x) = rgb.at(y, x, c);
    }
  }
  return raw;
}

namespace {

/// Averages the raw values at the 4-neighborhood offsets that land in-bounds
/// and whose Bayer site matches `want`.
float neighborhood_average(const Image& raw, std::size_t y, std::size_t x,
                           BayerChannel want) {
  static constexpr int kOffsets[8][2] = {{-1, -1}, {-1, 0}, {-1, 1}, {0, -1},
                                         {0, 1},   {1, -1}, {1, 0},  {1, 1}};
  float acc = 0.0f;
  int count = 0;
  for (const auto& off : kOffsets) {
    const long yy = static_cast<long>(y) + off[0];
    const long xx = static_cast<long>(x) + off[1];
    if (yy < 0 || xx < 0 || yy >= static_cast<long>(raw.height()) ||
        xx >= static_cast<long>(raw.width())) {
      continue;
    }
    const auto uy = static_cast<std::size_t>(yy);
    const auto ux = static_cast<std::size_t>(xx);
    if (bayer_channel_at(uy, ux) == want) {
      acc += raw.at(uy, ux);
      ++count;
    }
  }
  return count == 0 ? 0.0f : acc / static_cast<float>(count);
}

}  // namespace

Image bayer_demosaic(const Image& raw) {
  if (raw.channels() != 1) {
    throw std::invalid_argument("bayer_demosaic expects a raw single-channel image");
  }
  Image rgb(raw.height(), raw.width(), 3);
  for (std::size_t y = 0; y < raw.height(); ++y) {
    for (std::size_t x = 0; x < raw.width(); ++x) {
      const BayerChannel own = bayer_channel_at(y, x);
      for (std::size_t c = 0; c < 3; ++c) {
        const auto want = static_cast<BayerChannel>(c);
        rgb.at(y, x, c) = (want == own)
                              ? raw.at(y, x)
                              : neighborhood_average(raw, y, x, want);
      }
    }
  }
  return rgb;
}

}  // namespace lightator::sensor
