// Static memory planning + the reusable scratch arena behind it.
//
// The planner (compute_arena_plan) walks a CompiledPlan's step sequence once,
// propagating per-item geometry, and records every buffer the executor will
// need for a given batch size: the two ping-pong inter-layer tensors, the
// activation-code buffer, the per-step backend scratch (im2col panel,
// packed-B panel, accumulator — sized by the backend's *_scratch_bytes
// virtuals), and the output. Peak liveness falls out of the walk: the two
// ping-pong slots are sized to the maxima of the steps that write them, and
// one shared scratch region is sized to the largest step (steps run
// sequentially, so they can all share it). The NNPACK plan-then-execute
// idiom: size everything up front, allocate once, run forever.
//
// ScratchArena is the runtime side: one per ExecutionContext, prepared
// lazily against (plan, batch, frame geometry, shard count) and reused
// verbatim when the key matches — which is every steady-state forward. All
// buffers grow monotonically (capacity-preserving resize), so after the
// first forward at the high-water geometry the hot path performs zero heap
// allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/compiler/plan.hpp"
#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace lightator::core {

/// Byte extents of one step's arena use (diagnostics / tests).
struct ArenaStepExtent {
  std::size_t step = 0;           // index into CompiledPlan::steps
  std::size_t out_bytes = 0;      // inter-layer tensor this step writes
  std::size_t codes_bytes = 0;    // quantized activation codes it consumes
  std::size_t scratch_bytes = 0;  // backend scratch while it runs
};

/// The batch-parameterized memory plan: how many bytes each arena region
/// needs for `batch` items of `frame_shape` geometry with `slots` parallel
/// batch shards. total_bytes() is the planned peak.
struct ArenaPlan {
  std::size_t batch = 0;
  tensor::Shape frame_shape;  // per-item [1, ...] geometry
  std::size_t slots = 1;

  std::size_t io_bytes[2] = {0, 0};  // ping-pong inter-layer tensors
  std::size_t codes_bytes = 0;       // activation codes (+ per-item scales)
  std::size_t scratch_bytes = 0;     // one shared region, max over steps
  std::size_t output_bytes = 0;      // pooled output tensor
  std::vector<ArenaStepExtent> step_extents;

  std::size_t total_bytes() const {
    return io_bytes[0] + io_bytes[1] + codes_bytes + scratch_bytes +
           output_bytes;
  }
};

/// Computes the arena plan for running `steps` on `backend` at the given
/// batch/geometry/shard configuration. Pure: no allocation decisions are
/// made here beyond sizing.
ArenaPlan compute_arena_plan(const std::vector<CompiledStep>& steps,
                             const ComputeBackend& backend, std::size_t batch,
                             const tensor::Shape& frame_shape,
                             std::size_t slots);

/// Peak live bytes of the naive (pre-pass, per-step-allocating) executor on
/// the same geometry: max over steps of input + codes + output + backend
/// scratch held simultaneously. The baseline compute_arena_plan is judged
/// against in CompiledModel::memory_report and bench/backend_compare.
std::size_t naive_peak_bytes(const std::vector<CompiledStep>& steps,
                             const ComputeBackend& backend, std::size_t batch,
                             const tensor::Shape& frame_shape,
                             std::size_t slots);

/// Planned-vs-naive peak memory of a compiled plan (CompiledModel::
/// memory_report, surfaced by bench/backend_compare as peak_bytes_planned /
/// peak_bytes_naive).
struct MemoryReport {
  std::size_t planned_peak_bytes = 0;
  std::size_t naive_peak_bytes = 0;
};

/// The reusable execution-scratch arena owned by an ExecutionContext.
/// prepare() re-plans only when (plan, batch, geometry, slots) changes;
/// every buffer grows monotonically, so a warm arena makes the whole
/// forward allocation-free.
class ScratchArena {
 public:
  /// Sizes the arena for `plan` at the given configuration. Cheap no-op when
  /// the key matches the previous call (the steady-state serving case).
  void prepare(const CompiledPlan& plan, const ComputeBackend& backend,
               std::size_t batch, const tensor::Shape& frame_shape,
               std::size_t slots);

  const ArenaPlan& plan() const { return plan_; }

  /// Ping-pong inter-layer tensor slots (executor alternates 0/1 per step).
  tensor::Tensor& io(std::size_t which) { return io_[which & 1]; }

  /// The activation-code buffer every weighted step quantizes into.
  tensor::QuantizedTensor& codes() { return codes_; }

  /// Base of the shared per-step backend scratch region (null if no step
  /// needs scratch).
  std::byte* scratch() {
    return scratch_storage_.empty() ? nullptr : scratch_storage_.data();
  }

  /// A pooled output tensor: reuses a previously handed-out tensor once the
  /// caller dropped its handle (use_count back to 1), else grows the pool.
  /// Lets run() return an owning BatchOutput without a per-forward
  /// allocation at steady state.
  std::shared_ptr<tensor::Tensor> acquire_output();

 private:
  ArenaPlan plan_;
  const void* plan_key_ = nullptr;  // identity of the planned step sequence
  tensor::Tensor io_[2];
  tensor::QuantizedTensor codes_;
  std::vector<std::byte> scratch_storage_;
  std::vector<std::shared_ptr<tensor::Tensor>> outputs_;
};

}  // namespace lightator::core
