#include "core/timing_model.hpp"

namespace lightator::core {

LayerTiming TimingModel::layer_timing(const LayerMapping& mapping) const {
  LayerTiming t;
  t.rounds = mapping.rounds;
  // Pre-set CA banks never retune; weighted layers pay one settle per round.
  const bool remaps = mapping.weighted && mapping.rounds > 0;
  t.remap_time =
      remaps ? static_cast<double>(mapping.rounds) * config_.remap_settle : 0.0;
  t.stream_time = static_cast<double>(mapping.rounds) *
                  static_cast<double>(mapping.cycles_per_round) *
                  config_.cycle_time();
  t.latency = t.remap_time + t.stream_time;
  const double batch = static_cast<double>(
      config_.throughput_batch == 0 ? 1 : config_.throughput_batch);
  t.amortized_per_frame = t.remap_time / batch + t.stream_time;
  return t;
}

ModelTiming TimingModel::model_timing(
    const std::vector<LayerMapping>& mappings) const {
  ModelTiming out;
  out.layers.reserve(mappings.size());
  for (const auto& m : mappings) {
    LayerTiming t = layer_timing(m);
    out.latency += t.latency;
    out.amortized_per_frame += t.amortized_per_frame;
    out.layers.push_back(t);
  }
  if (out.amortized_per_frame > 0.0) {
    out.fps_batched = 1.0 / out.amortized_per_frame;
  }
  if (out.latency > 0.0) out.fps_latency = 1.0 / out.latency;
  return out;
}

}  // namespace lightator::core
