// Fig. 10: log-scaled single-frame execution time of Eyeriss, ENVISION,
// AppCip, and YodaNN vs. Lightator on VGG16 and AlexNet (YodaNN runs VGG13,
// the paper's substitution for its supported filter sizes).
#include <cstdio>

#include "accel/electronic_baselines.hpp"
#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "nn/model_desc.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  const util::Config cfg = bench::parse_args(argc, argv);
  const core::ArchConfig arch = core::ArchConfig::from_config(cfg);
  const core::LightatorSystem sys(arch);
  const auto schedule = nn::PrecisionSchedule::uniform(4);

  bench::print_header(
      "Fig. 10 - execution time vs electronic accelerators",
      "DAC 2024 Lightator, Fig. 10 (VGG16 & AlexNet single-frame latency)");

  const nn::ModelDesc vgg16 = nn::vgg16_desc();
  const nn::ModelDesc vgg13 = nn::vgg13_desc();
  const nn::ModelDesc alexnet = nn::alexnet_desc();

  core::ExperimentRunner runner;
  // One sweep item per accelerator (the VGG16/13 + AlexNet timing pair), with
  // the Lightator analyses riding along as the last item.
  struct Row {
    double t_big = 0.0, t_alex = 0.0;
  };
  const auto baselines = accel::all_electronic_baselines();
  std::vector<std::size_t> items(baselines.size() + 1);
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  const auto rows = runner.sweep(
      items, [&](std::size_t i, core::ExecutionContext&) {
        Row r;
        if (i < baselines.size()) {
          const auto& a = baselines[i];
          // YodaNN runs VGG13 in place of VGG16 (paper's note).
          r.t_big = a.execution_time(a.name == "YodaNN" ? vgg13 : vgg16);
          r.t_alex = a.execution_time(alexnet);
        } else {
          r.t_big = sys.analyze(vgg16, schedule).latency;
          r.t_alex = sys.analyze(alexnet, schedule).latency;
        }
        return r;
      });
  const double lt_vgg16 = rows.back().t_big;
  const double lt_alexnet = rows.back().t_alex;

  util::TablePrinter table(
      {"accelerator", "VGG16 (ms)", "AlexNet (ms)", "AlexNet vs Lightator",
       "paper ratio"});
  const char* paper_ratio[] = {"10.7x", "8.8x", "18.1x", "20.4x"};
  for (std::size_t i = 0; i < baselines.size(); ++i) {
    const auto& a = baselines[i];
    table.add_row({a.name + (a.name == "YodaNN" ? " (VGG13)" : ""),
                   util::format_fixed(rows[i].t_big * 1e3, 2),
                   util::format_fixed(rows[i].t_alex * 1e3, 2),
                   util::format_fixed(rows[i].t_alex / lt_alexnet, 1) + "x",
                   paper_ratio[i]});
  }
  table.add_row({"Lightator [4:4]", util::format_fixed(lt_vgg16 * 1e3, 2),
                 util::format_fixed(lt_alexnet * 1e3, 2), "1.0x", "1.0x"});
  std::printf("%s\n", table.to_text().c_str());

  std::printf("Lightator latency decomposition (remap-dominated, Fig. 10 "
              "regime):\n");
  for (const auto* model : {&vgg16, &alexnet}) {
    const auto report = sys.analyze(*model, schedule);
    double remap = 0.0, stream = 0.0;
    for (const auto& l : report.layers) {
      remap += l.timing.remap_time;
      stream += l.timing.stream_time;
    }
    std::printf("  %-8s remap %s + stream %s = %s\n", model->name.c_str(),
                util::format_time(remap).c_str(),
                util::format_time(stream).c_str(),
                util::format_time(report.latency).c_str());
  }
  return 0;
}
