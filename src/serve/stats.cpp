#include "serve/stats.hpp"

#include <sstream>

#include "util/table.hpp"

namespace lightator::serve {

double ServerStats::mean_batch_size() const {
  return batches > 0
             ? static_cast<double>(completed) / static_cast<double>(batches)
             : 0.0;
}

double ServerStats::throughput_rps() const {
  return wall_seconds > 0.0
             ? static_cast<double>(completed) / wall_seconds
             : 0.0;
}

std::string ServerStats::to_text() const {
  std::ostringstream out;
  out << "requests:   " << completed << " completed, " << rejected
      << " rejected, " << failed << " failed (of " << submitted
      << " submitted)\n";
  out << "batches:    " << batches << " (mean size "
      << util::format_fixed(mean_batch_size(), 2) << ")  hist:";
  for (const auto& [size, count] : batch_size_hist) {
    out << " " << size << "x" << count;
  }
  out << "\n";
  out << "latency:    p50 " << util::format_time(latency_seconds.quantile(0.5))
      << "  p95 " << util::format_time(latency_seconds.quantile(0.95))
      << "  p99 " << util::format_time(latency_seconds.quantile(0.99))
      << "  max " << util::format_time(latency_seconds.max()) << "\n";
  out << "queue wait: p50 " << util::format_time(queue_seconds.quantile(0.5))
      << "  p95 " << util::format_time(queue_seconds.quantile(0.95))
      << "  p99 " << util::format_time(queue_seconds.quantile(0.99)) << "\n";
  out << "throughput: " << util::format_fixed(throughput_rps(), 1)
      << " req/s (wall " << util::format_time(wall_seconds) << ", busy "
      << util::format_time(busy_seconds) << ")\n";
  return out.str();
}

std::string ServerStats::to_json(const std::string& indent) const {
  std::ostringstream out;
  const std::string i1 = indent;
  out << "{\n";
  out << i1 << "\"submitted\": " << submitted << ",\n";
  out << i1 << "\"completed\": " << completed << ",\n";
  out << i1 << "\"rejected\": " << rejected << ",\n";
  out << i1 << "\"failed\": " << failed << ",\n";
  out << i1 << "\"batches\": " << batches << ",\n";
  out << i1 << "\"mean_batch_size\": " << mean_batch_size() << ",\n";
  out << i1 << "\"throughput_rps\": " << throughput_rps() << ",\n";
  out << i1 << "\"wall_seconds\": " << wall_seconds << ",\n";
  out << i1 << "\"busy_seconds\": " << busy_seconds << ",\n";
  out << i1 << "\"latency_ms\": {\"p50\": "
      << latency_seconds.quantile(0.5) * 1e3
      << ", \"p95\": " << latency_seconds.quantile(0.95) * 1e3
      << ", \"p99\": " << latency_seconds.quantile(0.99) * 1e3
      << ", \"max\": " << latency_seconds.max() * 1e3 << "},\n";
  out << i1 << "\"queue_wait_ms\": {\"p50\": "
      << queue_seconds.quantile(0.5) * 1e3
      << ", \"p95\": " << queue_seconds.quantile(0.95) * 1e3
      << ", \"p99\": " << queue_seconds.quantile(0.99) * 1e3 << "},\n";
  out << i1 << "\"batch_size_hist\": {";
  bool first = true;
  for (const auto& [size, count] : batch_size_hist) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << size << "\": " << count;
  }
  out << "}\n}";
  return out.str();
}

}  // namespace lightator::serve
