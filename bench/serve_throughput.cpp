// Serving-layer throughput: batched dynamic-batching server vs serial
// submission, with JSON output for the CI perf gate.
//
// Drives the same seeded closed-loop request stream three ways:
//   * serial (per-call)  — one request at a time, compiling per forward:
//     exactly the pre-compile/execute-split per-call cost every entry point
//     used to pay (PR 4's serial baseline, and the quantity the historical
//     "batched_over_serial" CI floor was calibrated on);
//   * serial (compiled)  — one request at a time against one pre-compiled
//     artifact: the honest post-split no-batching baseline;
//   * batched — through an InferenceServer (N replicas sharing ONE
//     CompiledModel, geometry-bucketed micro-batching) via serve::LoadGen.
// batched/per-call isolates everything serving amortizes (compilation +
// batching); batched/compiled isolates batching alone — on one core it
// hovers near 1x (gated not to lose materially), on multicore the replicas
// pull ahead. Verifies per-request bit-exactness across all three paths
// (the serving determinism contract), then prints a JSON record:
//   { "bench": "serve_throughput", "serial_rps": ..,
//     "serial_compiled_rps": .., "batched_rps": ..,
//     "batched_over_serial": .., "batched_over_compiled": ..,
//     "bit_exact": ..., "stats": {...}, "tracing": {...}, "metrics": {...} }
// With tracing requested (trace=path or --trace path) an extra interleaved
// race measures the request-tracing overhead on a steady-state server: two
// passes tracing-disabled and two tracing-enabled (best-of each), the
// chrome://tracing JSON written from the enabled passes. The "tracing"
// section feeds two check_perf.py gates: disabled/batched >= noise floor
// (spans compiled in but off must cost nothing measurable) and
// enabled/disabled >= overhead floor.
// A multi-model router smoke follows the main runs: two LeNets behind one
// serve::InferenceRouter under mixed traffic, per-model stats checked, every
// response verified bit-exact against its own model's in-process compile.
// With artifact=path the "lenet" route serves a serialized CompiledModel
// blob (tools/model_artifact output) instead of compiling — CI's
// cross-process artifact-reuse proof; the "router" JSON section records it
// and check_perf.py requires failed == 0 and bit_exact when present.
// Overrides (key=value): requests=256 concurrency=16 replicas=2 max_batch=16
//   max_wait_us=500 threads=1 inputs=8 seed=1 out=path.json trace=path.json
//   artifact=path.blob
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/load_gen.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace lightator;

int main(int argc, char** argv) {
  // `--trace <path>` convenience spelling: strip it before the strict
  // key=value parser sees it (equivalent to trace=<path>).
  std::string trace_path;
  std::vector<char*> cfg_args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::string(argv[i]) == "--trace") {
      trace_path = argv[++i];
      continue;
    }
    cfg_args.push_back(argv[i]);
  }
  const util::Config cfg = bench::parse_args(
      static_cast<int>(cfg_args.size()), cfg_args.data());
  if (trace_path.empty()) trace_path = cfg.get_string("trace", "");
  const std::size_t requests =
      static_cast<std::size_t>(cfg.get_int("requests", 256));
  const std::size_t concurrency =
      static_cast<std::size_t>(cfg.get_int("concurrency", 16));
  const std::size_t replicas =
      static_cast<std::size_t>(cfg.get_int("replicas", 2));
  const std::size_t max_batch =
      static_cast<std::size_t>(cfg.get_int("max_batch", 16));
  const double max_wait_us = cfg.get_double("max_wait_us", 500.0);
  const std::size_t threads =
      static_cast<std::size_t>(cfg.get_int("threads", 1));
  const std::size_t num_inputs =
      static_cast<std::size_t>(cfg.get_int("inputs", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const std::string out_path = cfg.get_string("out", "");

  bench::print_header("serve_throughput",
                      "dynamic-batching inference server vs serial submission");

  const core::LightatorSystem sys(core::ArchConfig::defaults());
  util::Rng rng(21);
  nn::Network net = nn::build_lenet(rng);
  const auto schedule = nn::PrecisionSchedule::uniform(4);

  // A pool of distinct LeNet-geometry frames the load generator samples from.
  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    tensor::Tensor x({1, 1, 28, 28});
    x.fill_uniform(rng, 0.0f, 1.0f);
    inputs.push_back(std::move(x));
  }

  // The exact request sequence the load generator will submit.
  serve::LoadGenOptions lg;
  lg.requests = requests;
  lg.concurrency = concurrency;
  lg.seed = seed;

  // --- serial baseline: one request at a time, batch of 1 -------------------
  std::vector<std::size_t> serial_index(requests);
  {
    util::Rng pick(seed);
    for (std::size_t i = 0; i < requests; ++i) {
      serial_index[i] = pick.uniform_index(inputs.size());
    }
  }
  util::ThreadPool serial_pool(1);
  core::ExecutionContext serial_ctx;
  serial_ctx.pool = &serial_pool;
  core::CompileOptions serial_co;
  serial_co.schedule = schedule;
  // Pre-split per-call baseline: compile (quantize + pack) on every forward
  // — bit-identical outputs, the cost profile run_network_on_oc had before
  // the compile/execute split.
  std::vector<tensor::Tensor> serial_out(requests);
  const auto serial_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    serial_out[i] = sys.compile(net, serial_co)
                        .run(inputs[serial_index[i]], serial_ctx)
                        .take();
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  const double serial_rps =
      serial_s > 0.0 ? static_cast<double>(requests) / serial_s : 0.0;

  // Compile-once serial baseline: what a modern single-stream client pays.
  const core::CompiledModel serial_model = sys.compile(net, serial_co);
  std::vector<tensor::Tensor> compiled_out(requests);
  const auto compiled_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    compiled_out[i] = serial_model.run(inputs[serial_index[i]], serial_ctx)
                          .take();
  }
  const double compiled_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compiled_start)
          .count();
  const double serial_compiled_rps =
      compiled_s > 0.0 ? static_cast<double>(requests) / compiled_s : 0.0;

  // Per-layer execution stats for the metrics snapshot — collected on a few
  // post-timing forwards so the timed loops above stay undisturbed.
  serial_ctx.collect_stats = true;
  for (std::size_t i = 0; i < std::min<std::size_t>(requests, 8); ++i) {
    serial_model.run(inputs[serial_index[i]], serial_ctx).take();
  }
  serial_ctx.collect_stats = false;
  obs::record_layer_stats(obs::MetricsRegistry::global(), serial_ctx.stats);

  // --- batched: the inference server --------------------------------------
  serve::ServerOptions so;
  so.backend = "gemm";
  so.replicas = replicas;
  so.queue_capacity = std::max<std::size_t>(2 * concurrency, 16);
  so.batch.max_batch = max_batch;
  so.batch.max_wait_us = max_wait_us;
  so.threads_per_replica = threads;
  serve::InferenceServer server(sys, net, schedule, so);
  const serve::LoadGenReport load = serve::run_closed_loop(server, inputs, lg);
  const serve::ServerStats stats = server.stats();
  server.shutdown();

  // --- tracing overhead race (only when a trace was requested) --------------
  // Interleaved best-of-2 passes, tracing off/on, against one steady-state
  // server: interleaving cancels thermal / frequency drift, best-of damps
  // scheduler noise. The trace artifact itself comes from the enabled
  // passes.
  double tracing_disabled_rps = 0.0, tracing_enabled_rps = 0.0;
  std::size_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  const bool tracing_requested = !trace_path.empty();
  if (tracing_requested) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    serve::InferenceServer race_server(sys, net, schedule, so);
    const auto run_pass = [&] {
      return serve::run_closed_loop(race_server, inputs, lg)
          .requests_per_second;
    };
    run_pass();  // warmup: arenas, rings-to-be, queue steady state
    for (int r = 0; r < 2; ++r) {
      rec.stop();
      tracing_disabled_rps = std::max(tracing_disabled_rps, run_pass());
      rec.start();
      tracing_enabled_rps = std::max(tracing_enabled_rps, run_pass());
    }
    rec.stop();
    race_server.shutdown();
    trace_events = rec.write_chrome_json(trace_path);
    trace_dropped = rec.dropped();
    std::printf("trace    %zu events (%llu dropped) -> %s\n", trace_events,
                static_cast<unsigned long long>(trace_dropped),
                trace_path.c_str());
    std::printf("tracing  %8.1f req/s disabled, %8.1f req/s enabled "
                "(%.3fx)\n",
                tracing_disabled_rps, tracing_enabled_rps,
                tracing_disabled_rps > 0.0
                    ? tracing_enabled_rps / tracing_disabled_rps
                    : 0.0);
  }

  // --- multi-model router smoke ---------------------------------------------
  // Two models behind one InferenceRouter: "lenet" — served from the
  // artifact= blob when one is given (a blob compiled by a DIFFERENT process
  // via tools/model_artifact: the cross-process artifact-reuse proof CI
  // leans on) or compiled in-process otherwise — and "lenet-b", a second
  // network. Mixed traffic; every response must match its own model's
  // in-process compiled baseline bit-for-bit, and per-model ServerStats must
  // account exactly for their own traffic. Runs after the trace is written,
  // so the traced span stream validate_trace.py checks stays untouched.
  const std::string artifact_path = cfg.get_string("artifact", "");
  bool router_exact = true;
  std::uint64_t router_failed = 0;
  std::uint64_t router_a_completed = 0, router_b_completed = 0;
  {
    serve::InferenceRouter router;
    if (!artifact_path.empty()) {
      router.deploy_artifact("lenet", "v1", artifact_path, sys, so);
    } else {
      router.deploy("lenet", "v1", sys.compile(net, serial_co), so);
    }
    util::Rng rng_b(33);
    nn::Network net_b = nn::build_lenet(rng_b);
    const core::CompiledModel model_b = sys.compile(net_b, serial_co);
    router.deploy("lenet-b", "v1", model_b, so);

    // In-process ground truth for both models (for "lenet" this is what the
    // blob must reproduce across the process boundary).
    const core::CompiledModel truth_a = sys.compile(net, serial_co);
    const std::size_t per_model = std::min<std::size_t>(requests / 2, 64);
    for (std::size_t i = 0; i < per_model && router_exact; ++i) {
      const tensor::Tensor& x = inputs[i % inputs.size()];
      const tensor::Tensor ya = truth_a.run(x, serial_ctx).take();
      const tensor::Tensor yb = model_b.run(x, serial_ctx).take();
      const serve::InferResult ra = router.infer("lenet", x);
      const serve::InferResult rb = router.infer("lenet-b", x);
      router_exact = ra.output().size() == ya.size() &&
                     rb.output().size() == yb.size();
      for (std::size_t j = 0; router_exact && j < ya.size(); ++j) {
        router_exact = ra.output()[j] == ya[j] && rb.output()[j] == yb[j];
      }
    }
    const serve::ServerStats sa = router.stats("lenet");
    const serve::ServerStats sb = router.stats("lenet-b");
    router_failed = sa.failed + sb.failed;
    router_a_completed = sa.completed;
    router_b_completed = sb.completed;
    router_exact = router_exact && sa.completed == sb.completed;
    router.shutdown();
    std::printf("router   lenet %llu + lenet-b %llu requests (%s)   "
                "bit-exact %s\n",
                static_cast<unsigned long long>(router_a_completed),
                static_cast<unsigned long long>(router_b_completed),
                artifact_path.empty() ? "compiled in-process"
                                      : ("artifact " + artifact_path).c_str(),
                router_exact ? "yes" : "NO");
  }

  // --- bit-exactness: the serving determinism contract ---------------------
  bool exact = true;
  for (std::size_t i = 0; exact && i < requests; ++i) {
    exact = load.input_index[i] == serial_index[i] &&
            load.outputs[i].size() == serial_out[i].size() &&
            compiled_out[i].size() == serial_out[i].size();
    for (std::size_t j = 0; exact && j < serial_out[i].size(); ++j) {
      exact = load.outputs[i][j] == serial_out[i][j] &&
              compiled_out[i][j] == serial_out[i][j];
    }
  }

  const double ratio =
      serial_rps > 0.0 ? load.requests_per_second / serial_rps : 0.0;
  const double compiled_ratio =
      serial_compiled_rps > 0.0
          ? load.requests_per_second / serial_compiled_rps
          : 0.0;
  std::printf("serial   %8.1f req/s  (%zu requests, batch 1, "
              "compile-per-call)\n",
              serial_rps, requests);
  std::printf("compiled %8.1f req/s  (batch 1, one artifact)\n",
              serial_compiled_rps);
  std::printf("batched  %8.1f req/s  (%zu replicas, max_batch %zu, "
              "mean batch %.2f)\n",
              load.requests_per_second, server.replica_count(), max_batch,
              stats.mean_batch_size());
  std::printf("speedup  %8.2fx vs per-call, %.2fx vs compiled   "
              "bit-exact %s\n\n",
              ratio, compiled_ratio, exact ? "yes" : "NO");
  std::printf("%s\n", stats.to_text().c_str());

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve_throughput\",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"replicas\": " << server.replica_count() << ",\n"
       << "  \"concurrency\": " << concurrency << ",\n"
       << "  \"max_batch\": " << max_batch << ",\n"
       << "  \"max_wait_us\": " << max_wait_us << ",\n"
       << "  \"serial_rps\": " << serial_rps << ",\n"
       << "  \"serial_compiled_rps\": " << serial_compiled_rps << ",\n"
       << "  \"batched_rps\": " << load.requests_per_second << ",\n"
       << "  \"batched_over_serial\": " << ratio << ",\n"
       << "  \"batched_over_compiled\": " << compiled_ratio << ",\n"
       << "  \"reject_retries\": " << load.reject_retries << ",\n"
       << "  \"bit_exact\": " << (exact ? "true" : "false") << ",\n"
       << "  \"stats\": " << stats.to_json("    ") << ",\n";
  if (tracing_requested) {
    json << "  \"tracing\": {\n"
         << "    \"disabled_rps\": " << tracing_disabled_rps << ",\n"
         << "    \"enabled_rps\": " << tracing_enabled_rps << ",\n"
         << "    \"disabled_over_batched\": "
         << (load.requests_per_second > 0.0
                 ? tracing_disabled_rps / load.requests_per_second
                 : 0.0)
         << ",\n"
         << "    \"enabled_over_disabled\": "
         << (tracing_disabled_rps > 0.0
                 ? tracing_enabled_rps / tracing_disabled_rps
                 : 0.0)
         << ",\n"
         << "    \"trace_events\": " << trace_events << ",\n"
         << "    \"trace_dropped\": " << trace_dropped << "\n  },\n";
  }
  json << "  \"router\": {\n"
       << "    \"models\": 2,\n"
       << "    \"artifact\": "
       << (artifact_path.empty() ? "false" : "true") << ",\n"
       << "    \"lenet_completed\": " << router_a_completed << ",\n"
       << "    \"lenet_b_completed\": " << router_b_completed << ",\n"
       << "    \"failed\": " << router_failed << ",\n"
       << "    \"bit_exact\": " << (router_exact ? "true" : "false")
       << "\n  },\n";
  json << "  \"metrics\": " << obs::MetricsRegistry::global().snapshot_json()
       << "\n}\n";

  std::printf("%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }
  return (exact && router_exact && router_failed == 0) ? 0 : 1;
}
