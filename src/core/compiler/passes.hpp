// The three standard compiler passes (see pass_manager.hpp for the
// pipeline contract and plan.hpp for what they operate on).
#pragma once

#include <memory>

#include "core/compiler/pass_manager.hpp"

namespace lightator::core {

/// Drops stages that cannot change results: flatten (the executor shapes
/// activation codes logically before fc layers), identity activations with
/// no active QAT fake-quant, and 1x1/stride-1 pools.
std::unique_ptr<CompilerPass> make_dead_stage_elimination_pass();

/// Folds a weighted step's following activation stage — and, for conv, a
/// following max/avg pool — into its FusedEpilogue, so the backend applies
/// scale, bias, activation, fake-quant, and pooling on cache-resident GEMM
/// output rows and the intermediate tensors never materialize.
std::unique_ptr<CompilerPass> make_stage_fusion_pass();

/// Marks the plan for arena-backed execution (CompiledPlan::arena_enabled):
/// the executor stages every intermediate in the per-context ScratchArena,
/// whose batch-parameterized layout compute_arena_plan derives from the
/// backend's static scratch sizes.
std::unique_ptr<CompilerPass> make_memory_planning_pass();

}  // namespace lightator::core
